"""CLI experiment subcommands at miniature scale (integration)."""

import pytest

from repro.cli import main


class TestMiniatureExperiments:
    def test_table3_micro_run(self, capsys):
        """The Table 3 flow end-to-end with a tiny MEMS population."""
        assert main(["table3", "--train", "60", "--test", "40",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "-40" in out and "both" in out
        # Three data rows plus header.
        assert len([l for l in out.splitlines() if l.strip()]) >= 4

    def test_cost_micro_run(self, capsys):
        assert main(["cost", "--train", "60", "--test", "40",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "shipped" in out and "saved" in out
