"""Grid lookup-table tests (paper Section 3.3)."""

import numpy as np
import pytest

from repro.core.guardband import GuardBandedClassifier
from repro.core.metrics import GUARD
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError
from repro.learn import SVC
from repro.tester import LookupTable

from tests.synthetic import make_synthetic_dataset


def _fitted_model(n_kept=3, delta=0.05):
    train = make_synthetic_dataset(n=400, seed=1)
    model = GuardBandedClassifier(
        train.names[:n_kept], delta=delta,
        model_factory=lambda: SVC(C=50.0, gamma="scale"))
    model.fit(train)
    return model, train


class TestLookupTable:
    def test_resolution_chosen_from_budget(self):
        model, _ = _fitted_model(n_kept=3)
        lut = LookupTable(model, max_cells=8000)
        # floor(8000 ** (1/3)) up to floating-point representation.
        assert lut.resolution in (19, 20)
        assert lut.n_cells <= 8000

    def test_explicit_resolution_respected(self):
        model, _ = _fitted_model(n_kept=2)
        lut = LookupTable(model, resolution=16)
        assert lut.table.shape == (16, 16)

    def test_memory_guard(self):
        model, _ = _fitted_model(n_kept=3)
        with pytest.raises(CompactionError, match="cells"):
            LookupTable(model, resolution=100, max_cells=1000)

    def test_attributes_three_valued(self):
        model, _ = _fitted_model()
        lut = LookupTable(model, max_cells=5000)
        assert set(np.unique(lut.table)) <= {GOOD, BAD, GUARD}

    def test_high_agreement_with_live_model(self):
        model, train = _fitted_model(n_kept=3)
        lut = LookupTable(model, max_cells=30000)
        assert lut.agreement_with_model(train) > 0.9

    def test_far_out_of_range_classified_bad(self):
        model, train = _fitted_model()
        lut = LookupTable(model, max_cells=5000)
        crazy = np.full((1, len(lut.feature_names)), 1e9)
        assert lut.classify(crazy)[0] == BAD

    def test_classify_single_row(self):
        model, train = _fitted_model()
        lut = LookupTable(model, max_cells=5000)
        row = train.project(lut.feature_names).values[0]
        assert lut.classify(row) in (GOOD, BAD, GUARD)

    def test_cell_indices_clip_to_grid(self):
        model, _ = _fitted_model()
        lut = LookupTable(model, max_cells=5000)
        idx = lut.cell_of(np.full(len(lut.feature_names), -1e12))
        assert np.all(idx == 0)

    def test_memory_bytes_is_table_size(self):
        model, _ = _fitted_model(n_kept=2)
        lut = LookupTable(model, resolution=10)
        assert lut.memory_bytes() == 100  # int8 cells
