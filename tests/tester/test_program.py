"""Tester program simulation tests."""

import numpy as np
import pytest

from repro.core.costmodel import TestCostModel as CostModel
from repro.core.guardband import GuardBandedClassifier
from repro.core.metrics import GUARD
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError
from repro.learn import SVC
from repro.tester import LookupTable
from repro.tester import TestProgram as Program

from tests.synthetic import make_synthetic_dataset


def _setup(delta=0.06):
    train = make_synthetic_dataset(n=500, seed=1)
    test = make_synthetic_dataset(n=300, seed=2)
    kept = list(train.names[:4])
    model = GuardBandedClassifier(
        kept, delta=delta,
        model_factory=lambda: SVC(C=50.0, gamma="scale"))
    model.fit(train)
    cost = CostModel.uniform(train.names)
    return model, test, cost


class TestRetestPolicies:
    def test_full_retest_resolves_guard_devices_exactly(self):
        model, test, cost = _setup()
        program = Program(model, cost, retest_policy="full_retest")
        outcome = program.run(test)
        guard = outcome.first_pass == GUARD
        assert np.array_equal(outcome.decisions[guard],
                              test.labels[guard])
        assert outcome.n_retested == int(guard.sum())

    def test_accept_policy_ships_guard_devices(self):
        model, test, cost = _setup()
        outcome = Program(model, cost, retest_policy="accept").run(test)
        guard = outcome.first_pass == GUARD
        assert np.all(outcome.decisions[guard] == GOOD)
        assert outcome.n_retested == 0

    def test_reject_policy_scraps_guard_devices(self):
        model, test, cost = _setup()
        outcome = Program(model, cost, retest_policy="reject").run(test)
        guard = outcome.first_pass == GUARD
        assert np.all(outcome.decisions[guard] == BAD)

    def test_policy_ordering_of_outcomes(self):
        """accept maximizes escapes; reject maximizes yield loss."""
        model, test, cost = _setup()
        accept = Program(model, cost, retest_policy="accept").run(test)
        reject = Program(model, cost, retest_policy="reject").run(test)
        full = Program(model, cost,
                           retest_policy="full_retest").run(test)
        assert (accept.report.defect_escape_rate
                >= full.report.defect_escape_rate)
        assert (reject.report.yield_loss_rate
                >= full.report.yield_loss_rate)

    def test_invalid_policy_rejected(self):
        model, _, cost = _setup()
        with pytest.raises(CompactionError, match="policy"):
            Program(model, cost, retest_policy="coin_flip")


class _AllGuardClassifier:
    """Stub that places every device in the guard band."""

    def __init__(self, feature_names):
        self.feature_names = tuple(feature_names)

    def predict_measurements(self, values):
        return np.zeros(np.asarray(values).shape[0], dtype=int)


class TestRetestEdgeCases:
    def test_zero_guard_band_devices(self):
        """delta=0 collapses the guard band: no device is ever
        retested and every policy produces the same outcome."""
        model, test, cost = _setup(delta=0.0)
        outcomes = {
            policy: Program(model, cost, retest_policy=policy).run(test)
            for policy in ("full_retest", "accept", "reject")}
        for outcome in outcomes.values():
            assert not np.any(outcome.first_pass == GUARD)
            assert outcome.n_retested == 0
            # No guard devices -> no retest surcharge under any policy.
            assert outcome.total_cost == pytest.approx(
                cost.cost(model.feature_names) * len(test))
        reference = outcomes["full_retest"]
        for outcome in outcomes.values():
            assert np.array_equal(outcome.decisions, reference.decisions)

    def test_all_guard_band_population(self):
        """An all-guard first pass resolves purely by policy."""
        test = make_synthetic_dataset(n=150, seed=4)
        kept = list(test.names[:3])
        stub = _AllGuardClassifier(kept)
        cost = CostModel.uniform(test.names)

        full = Program(stub, cost, retest_policy="full_retest").run(test)
        assert full.n_retested == len(test)
        assert np.array_equal(full.decisions, test.labels)
        assert full.report.error_rate == 0.0

        accept = Program(stub, cost, retest_policy="accept").run(test)
        assert np.all(accept.decisions == GOOD)
        assert accept.report.n_defect_escape == int(
            np.sum(test.labels == BAD))

        reject = Program(stub, cost, retest_policy="reject").run(test)
        assert np.all(reject.decisions == BAD)
        assert reject.report.n_yield_loss == int(
            np.sum(test.labels == GOOD))

    def test_all_guard_cost_accounting_per_policy(self):
        """full_retest pays the complete set per guard device; the
        binning policies never pay a retest surcharge."""
        test = make_synthetic_dataset(n=80, seed=6)
        kept = list(test.names[:3])
        stub = _AllGuardClassifier(kept)
        cost = CostModel.uniform(test.names, cost=2.0)
        compacted = cost.cost(kept) * len(test)

        full = Program(stub, cost, retest_policy="full_retest").run(test)
        assert full.total_cost == pytest.approx(
            compacted + cost.full_cost() * len(test))
        for policy in ("accept", "reject"):
            outcome = Program(stub, cost, retest_policy=policy).run(test)
            assert outcome.n_retested == 0
            assert outcome.total_cost == pytest.approx(compacted)


class TestCostAccounting:
    def test_compacted_program_cheaper(self):
        model, test, cost = _setup()
        outcome = Program(model, cost).run(test)
        assert outcome.total_cost < outcome.full_cost
        assert 0.0 < outcome.cost_reduction < 1.0

    def test_retest_adds_full_cost_per_guard_device(self):
        model, test, cost = _setup()
        outcome = Program(model, cost).run(test)
        per_device = cost.cost(model.feature_names)
        expected = (per_device * len(test)
                    + cost.full_cost() * outcome.n_retested)
        assert outcome.total_cost == pytest.approx(expected)

    def test_no_cost_model_means_zero_costs(self):
        model, test, _ = _setup()
        outcome = Program(model).run(test)
        assert outcome.total_cost == 0.0
        assert outcome.cost_reduction == 0.0

    def test_summary_mentions_key_numbers(self):
        model, test, cost = _setup()
        text = Program(model, cost).run(test).summary()
        assert "shipped" in text and "retested" in text


class TestOutcomeTyping:
    def test_report_is_a_classification_report(self):
        from repro.tester import ClassificationReport, TestOutcome

        model, test, cost = _setup()
        outcome = Program(model, cost).run(test)
        assert isinstance(outcome.report, ClassificationReport)
        assert (TestOutcome.__annotations__["report"]
                is ClassificationReport)


class TestLookupTableProgram:
    def test_program_runs_from_lookup_table(self):
        model, test, cost = _setup()
        lut = LookupTable(model, max_cells=30000)
        outcome = Program(lut, cost).run(test)
        assert outcome.report.error_rate < 0.1
        # The LUT path and the live-model path broadly agree.
        live = Program(model, cost).run(test)
        agreement = np.mean(outcome.decisions == live.decisions)
        assert agreement > 0.9
