"""Unit tests for the BENCH_*.json schema checker.

The checker (``benchmarks/check_bench_json.py``) is CI's
``bench-json-check`` gate: it must accept every committed BENCH record
and reject the failure shapes that silently poison the perf
trajectory (missing identity keys, NaN/Infinity anywhere in the
record, non-JSON files).
"""

import glob
import json
import math
import os

from benchmarks.check_bench_json import check_file, main, validate_record

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks")


def _valid_record():
    return {
        "experiment": "bench_example",
        "unix_time": 1.7e9,
        "cpus": 4,
        "configs": {"fast": {"p50_ms": 1.25, "values": [0.0, 2, -3.5]}},
    }


class TestValidateRecord:
    def test_valid_record_passes(self):
        assert validate_record(_valid_record()) == []

    def test_missing_required_keys_fail(self):
        for key in ("experiment", "unix_time", "cpus"):
            record = _valid_record()
            del record[key]
            problems = validate_record(record)
            assert any(key in p for p in problems), (key, problems)

    def test_non_object_top_level_fails(self):
        assert validate_record([1, 2, 3])
        assert validate_record("text")

    def test_empty_experiment_fails(self):
        record = _valid_record()
        record["experiment"] = "  "
        assert any("experiment" in p for p in validate_record(record))

    def test_bad_cpus_fails(self):
        for cpus in (0, -1, 2.5, "4", True):
            record = _valid_record()
            record["cpus"] = cpus
            assert any("cpus" in p for p in validate_record(record)), cpus

    def test_nan_and_inf_fail_anywhere(self):
        for bad in (math.nan, math.inf, -math.inf):
            record = _valid_record()
            record["configs"]["fast"]["values"][1] = bad
            problems = validate_record(record)
            assert any("non-finite" in p for p in problems), bad
            # The violation names where the number lives.
            assert any("values[1]" in p for p in problems), problems

    def test_booleans_are_not_numbers(self):
        record = _valid_record()
        record["configs"]["fast"]["equivalent"] = True
        assert validate_record(record) == []


class TestCheckFile:
    def test_valid_file_passes(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(_valid_record()))
        assert check_file(str(path)) == []

    def test_nan_literal_rejected_at_the_parser(self, tmp_path):
        # json.dump writes NaN as the literal `NaN`, which strict JSON
        # parsers reject -- so must the checker, even before the
        # finite-number walk.
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"experiment": "e", "unix_time": NaN, "cpus": 1}')
        problems = check_file(str(path))
        assert problems and "NaN" in problems[0]

    def test_unparseable_file_fails(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json {")
        assert check_file(str(path))

    def test_missing_file_fails(self, tmp_path):
        assert check_file(str(tmp_path / "nope.json"))


class TestCommittedRecords:
    def test_every_committed_bench_file_passes(self):
        paths = sorted(glob.glob(os.path.join(BENCH_DIR, "BENCH_*.json")))
        assert paths, "no committed BENCH_*.json files found"
        for path in paths:
            assert check_file(path) == [], path

    def test_cli_entrypoint_green_on_committed_files(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_cli_entrypoint_red_on_bad_file(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"experiment": "e"}))
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "unix_time" in out
