"""SpecDataset container tests."""

import numpy as np
import pytest

from repro.core.specs import BAD, GOOD, Specification, SpecificationSet
from repro.errors import DatasetError
from repro.process.dataset import SpecDataset

from tests.synthetic import make_synthetic_dataset


def _specs():
    return SpecificationSet([
        Specification("a", "u", 0.5, 0.0, 1.0),
        Specification("b", "u", 5.0, 0.0, 10.0),
    ])


class TestConstruction:
    def test_labels_derived_from_ranges(self):
        ds = SpecDataset(_specs(), [[0.5, 5.0], [2.0, 5.0]])
        assert ds.labels.tolist() == [GOOD, BAD]
        assert ds.yield_fraction == 0.5

    def test_explicit_labels_preserved(self):
        ds = SpecDataset(_specs(), [[0.5, 5.0]], labels=[BAD])
        assert ds.labels.tolist() == [BAD]

    def test_shape_and_content_validation(self):
        with pytest.raises(DatasetError):
            SpecDataset(_specs(), [[1.0]])
        with pytest.raises(DatasetError):
            SpecDataset(_specs(), [[np.nan, 1.0]])
        with pytest.raises(DatasetError):
            SpecDataset(_specs(), [[1.0, 1.0]], labels=[5])
        with pytest.raises(DatasetError):
            SpecDataset(_specs(), np.zeros(4))


class TestViewsAndSplits:
    def test_project_keeps_full_labels(self):
        """A device failing a projected-away spec stays bad."""
        ds = SpecDataset(_specs(), [[0.5, 50.0]])  # fails "b" only
        proj = ds.project(["a"])
        assert proj.labels.tolist() == [BAD]
        assert proj.names == ("a",)
        assert proj.values.shape == (1, 1)

    def test_project_reorders_columns(self):
        ds = SpecDataset(_specs(), [[0.25, 7.5]])
        proj = ds.project(["b", "a"])
        assert proj.values[0].tolist() == [7.5, 0.25]

    def test_column_accessor(self):
        ds = SpecDataset(_specs(), [[0.25, 7.5], [0.5, 2.5]])
        assert ds.column("b").tolist() == [7.5, 2.5]

    def test_normalized_values(self):
        ds = SpecDataset(_specs(), [[0.5, 2.5]])
        z = ds.normalized_values()
        assert np.allclose(z, [[0.5, 0.25]])
        z_sub = ds.normalized_values(["b"])
        assert np.allclose(z_sub, [[0.25]])

    def test_split_partitions_instances(self):
        ds = make_synthetic_dataset(n=100)
        a, b = ds.split(0.7, seed=1)
        assert len(a) == 70 and len(b) == 30
        combined = np.vstack([a.values, b.values])
        assert sorted(map(tuple, combined)) == sorted(map(tuple, ds.values))

    def test_split_validation(self):
        ds = make_synthetic_dataset(n=10)
        with pytest.raises(DatasetError):
            ds.split(1.5)

    def test_subset_by_indices(self):
        ds = make_synthetic_dataset(n=20)
        sub = ds.subset([3, 5, 7])
        assert len(sub) == 3
        assert np.array_equal(sub.values[1], ds.values[5])
        assert sub.labels[1] == ds.labels[5]

    def test_concat(self):
        a = make_synthetic_dataset(n=10, seed=1)
        b = make_synthetic_dataset(n=15, seed=2)
        c = a.concat(b)
        assert len(c) == 25
        with pytest.raises(DatasetError):
            a.concat(make_synthetic_dataset(n=5, n_specs=5))

    def test_relabeled_against_shifted_ranges(self):
        ds = SpecDataset(_specs(), [[0.02, 5.0]])
        assert ds.labels.tolist() == [GOOD]
        strict = ds.relabeled(_specs().shifted(0.05))
        assert strict.labels.tolist() == [BAD]  # 0.02 < shrunk low bound


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        ds = make_synthetic_dataset(n=30)
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = SpecDataset.load(path)
        assert np.array_equal(loaded.values, ds.values)
        assert np.array_equal(loaded.labels, ds.labels)
        assert loaded.specifications == ds.specifications
        assert loaded.names == ds.names


class TestDtypeRecording:
    def test_meta_records_dtype_and_endianness(self, tmp_path):
        ds = make_synthetic_dataset(n=8)
        path = tmp_path / "ds.npz"
        ds.save(path)
        import json

        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["spec_json"]))
        assert meta["values_dtype"] == ds.values.dtype.str == "<f8"
        assert meta["labels_dtype"] == np.asarray(ds.labels).dtype.str

    def test_roundtrip_preserves_dtypes(self, tmp_path):
        ds = make_synthetic_dataset(n=8)
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = SpecDataset.load(path)
        assert loaded.values.dtype == ds.values.dtype
        assert np.asarray(loaded.labels).dtype == \
            np.asarray(ds.labels).dtype

    def test_mismatched_dtype_rejected(self, tmp_path):
        """A file whose recorded dtype contradicts its stored arrays
        (e.g. rewritten on a foreign-endian host) must fail loudly."""
        import json

        ds = make_synthetic_dataset(n=8)
        path = tmp_path / "ds.npz"
        ds.save(path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
            meta = json.loads(str(payload["spec_json"]))
        meta["values_dtype"] = ">f8"
        payload["spec_json"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **payload)
        with pytest.raises(DatasetError):
            SpecDataset.load(path)

    def test_legacy_bare_list_meta_still_loads(self, tmp_path):
        """Pre-dtype files stored the spec list directly; keep loading
        them (no dtype check is possible, but nothing breaks)."""
        import json

        ds = make_synthetic_dataset(n=8)
        path = tmp_path / "ds.npz"
        ds.save(path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
            meta = json.loads(str(payload["spec_json"]))
        payload["spec_json"] = np.array(json.dumps(meta["specifications"]))
        np.savez_compressed(path, **payload)
        loaded = SpecDataset.load(path)
        assert np.array_equal(loaded.values, ds.values)
