"""Process-variation model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.process.variation import (
    LognormalDisturbance,
    NormalDisturbance,
    Parameter,
    ProcessModel,
    UniformDisturbance,
)


class TestDisturbances:
    @given(spread=st.floats(0.01, 0.5), nominal=st.floats(0.1, 100.0),
           seed=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_uniform_stays_in_band(self, spread, nominal, seed):
        rng = np.random.default_rng(seed)
        d = UniformDisturbance(spread)
        samples = [d.sample(rng, nominal) for _ in range(20)]
        lo, hi = nominal * (1 - spread), nominal * (1 + spread)
        assert all(lo <= s <= hi for s in samples)

    def test_uniform_mean_near_nominal(self):
        rng = np.random.default_rng(0)
        d = UniformDisturbance(0.2)
        samples = [d.sample(rng, 10.0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.02)

    def test_normal_clipping(self):
        rng = np.random.default_rng(1)
        d = NormalDisturbance(0.1, clip_sigmas=2.0)
        samples = [d.sample(rng, 1.0) for _ in range(3000)]
        assert min(samples) >= 1.0 * (1 - 0.2) - 1e-12
        assert max(samples) <= 1.0 * (1 + 0.2) + 1e-12

    def test_lognormal_always_positive(self):
        rng = np.random.default_rng(2)
        d = LognormalDisturbance(1.0)
        assert all(d.sample(rng, 1e-6) > 0 for _ in range(200))

    def test_normal_large_sigma_never_flips_sign(self):
        """Regression: relative_sigma=0.3 with the default 4-sigma clip
        produced negative samples (min -0.2x nominal over 20k draws)."""
        rng = np.random.default_rng(0)
        d = NormalDisturbance(0.3)
        samples = np.array([d.sample(rng, 1.0) for _ in range(20_000)])
        assert samples.min() > 0.0

    @given(sigma=st.floats(0.01, 5.0), clip=st.floats(0.5, 8.0),
           seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_normal_multiplier_always_positive(self, sigma, clip, seed):
        rng = np.random.default_rng(seed)
        d = NormalDisturbance(sigma, clip_sigmas=clip)
        samples = [d.sample(rng, 2.5) for _ in range(50)]
        assert all(s > 0 for s in samples)
        # The upper clip is never tightened.
        assert max(samples) <= 2.5 * (1 + sigma * clip) + 1e-9

    def test_normal_clamp_inactive_for_small_sigma(self):
        """Draws are unchanged when the clip already keeps samples
        positive (back-compat with seed-pinned datasets)."""
        d = NormalDisturbance(0.05)
        rng_new = np.random.default_rng(7)
        rng_old = np.random.default_rng(7)
        new = [d.sample(rng_new, 1.0) for _ in range(200)]
        old = [1.0 * (1.0 + 0.05 * float(np.clip(rng_old.normal(0.0, 1.0),
                                                 -4.0, 4.0)))
               for _ in range(200)]
        assert new == old


class TestProcessModel:
    def _model(self):
        return ProcessModel([
            Parameter("w", 10e-6, UniformDisturbance(0.1)),
            Parameter("l", 1e-6, NormalDisturbance(0.05)),
        ])

    def test_sample_returns_named_dict(self):
        rng = np.random.default_rng(0)
        sample = self._model().sample(rng)
        assert set(sample) == {"w", "l"}
        assert sample["w"] > 0

    def test_sample_many_shape(self):
        rng = np.random.default_rng(0)
        out = self._model().sample_many(rng, 7)
        assert out.shape == (7, 2)

    def test_reproducible_for_seed(self):
        model = self._model()
        a = model.sample(np.random.default_rng(3))
        b = model.sample(np.random.default_rng(3))
        assert a == b

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            ProcessModel([
                Parameter("w", 1.0, UniformDisturbance(0.1)),
                Parameter("w", 2.0, UniformDisturbance(0.1)),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ProcessModel([])
