"""Defect-injection tests (paper future work)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.mems import AccelerometerGeometry
from repro.opamp import OpAmpParameters
from repro.process.defects import DefectInjector, _varied_field_names
from repro.process.montecarlo import generate_dataset

from tests.synthetic import SyntheticDut


class DictDut(SyntheticDut):
    """Synthetic DUT whose parameters are a dict (protocol variant)."""

    def sample_parameters(self, rng):
        latent = super().sample_parameters(rng)
        return {"p{}".format(i): float(v) for i, v in enumerate(latent)}

    def measure(self, params):
        latent = np.array([params["p{}".format(i)]
                           for i in range(self.n_latent)])
        return super().measure(latent)


class TestVariedFieldNames:
    def test_opamp_uses_varied_tuple(self):
        assert _varied_field_names(OpAmpParameters()) == \
            OpAmpParameters.VARIED

    def test_mems_uses_varied_relative(self):
        assert _varied_field_names(AccelerometerGeometry()) == \
            AccelerometerGeometry.VARIED_RELATIVE

    def test_dict_uses_keys(self):
        assert set(_varied_field_names({"a": 1.0, "b": 2.0})) == {"a", "b"}


class TestDefectInjector:
    def test_zero_rate_changes_nothing(self):
        dut = SyntheticDut()
        injector = DefectInjector(dut, defect_rate=0.0)
        rng_a, rng_b = (np.random.default_rng(3) for _ in range(2))
        clean = dut.sample_parameters(rng_a)
        wrapped = injector.sample_parameters(rng_b)
        # rng consumption differs (the injector draws the coin), so
        # compare via the counter instead of values.
        assert injector.n_injected == 0
        assert clean.shape == wrapped.shape

    def test_injection_rate_roughly_respected(self):
        dut = DictDut()
        injector = DefectInjector(dut, defect_rate=0.3)
        rng = np.random.default_rng(0)
        for _ in range(500):
            injector.sample_parameters(rng)
        assert 0.2 < injector.n_injected / 500 < 0.4

    def test_defective_dict_parameter_scaled(self):
        dut = DictDut()
        injector = DefectInjector(dut, defect_rate=1.0, severity=4.0)
        rng = np.random.default_rng(1)
        params = injector.sample_parameters(rng)
        assert injector.n_injected == 1
        assert isinstance(params, dict)

    def test_defective_dataclass_parameter_scaled(self):
        bench_params = OpAmpParameters()

        class StubDut:
            specifications = None

            def sample_parameters(self, rng):
                return bench_params

            def measure(self, params):
                return np.zeros(1)

        injector = DefectInjector(StubDut(), defect_rate=1.0, severity=4.0)
        rng = np.random.default_rng(2)
        defective = injector.sample_parameters(rng)
        ratios = [getattr(defective, n) / getattr(bench_params, n)
                  for n in OpAmpParameters.VARIED]
        changed = [r for r in ratios if abs(r - 1.0) > 1e-12]
        assert len(changed) == 1
        assert changed[0] == pytest.approx(4.0) or \
            changed[0] == pytest.approx(0.25)

    def test_specifications_and_name_delegated(self):
        dut = SyntheticDut()
        injector = DefectInjector(dut)
        assert injector.specifications is dut.specifications
        assert injector.name.endswith("+defects")

    def test_validation(self):
        dut = SyntheticDut()
        with pytest.raises(DatasetError):
            DefectInjector(dut, defect_rate=1.5)
        with pytest.raises(DatasetError):
            DefectInjector(dut, severity=0.5)

    def test_defective_population_has_lower_yield(self):
        dut = SyntheticDut(seed=7)
        clean = generate_dataset(dut, 300, seed=11)
        defective = generate_dataset(
            DefectInjector(dut, defect_rate=0.3, severity=6.0),
            300, seed=11)
        assert defective.yield_fraction < clean.yield_fraction
