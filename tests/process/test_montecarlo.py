"""Monte-Carlo generation loop tests."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, DatasetError
from repro.process.montecarlo import GenerationReport, generate_dataset

from tests.synthetic import SyntheticDut


class FlakyDut(SyntheticDut):
    """A DUT whose simulation fails for a fraction of instances."""

    def __init__(self, fail_every=5, **kw):
        super().__init__(**kw)
        self._counter = 0
        self.fail_every = fail_every

    def measure(self, params):
        self._counter += 1
        if self._counter % self.fail_every == 0:
            raise ConvergenceError("simulated convergence failure")
        return super().measure(params)


class NonFiniteDut(SyntheticDut):
    """A DUT that occasionally produces NaN measurements."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self._counter = 0

    def measure(self, params):
        self._counter += 1
        values = super().measure(params)
        if self._counter % 7 == 0:
            values = values.copy()
            values[0] = np.nan
        return values


class TestGenerateDataset:
    def test_shape_and_determinism(self):
        dut = SyntheticDut()
        a = generate_dataset(dut, 50, seed=42)
        b = generate_dataset(dut, 50, seed=42)
        assert len(a) == 50
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        dut = SyntheticDut()
        a = generate_dataset(dut, 20, seed=1)
        b = generate_dataset(dut, 20, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_resample_on_failure(self):
        dut = FlakyDut(fail_every=5)
        ds, report = generate_dataset(dut, 40, seed=0,
                                      return_report=True)
        assert len(ds) == 40
        assert report.n_failed > 0
        assert report.n_simulated == 40 + report.n_failed

    def test_raise_mode_propagates(self):
        dut = FlakyDut(fail_every=3)
        with pytest.raises(ConvergenceError):
            generate_dataset(dut, 40, seed=0, on_error="raise")

    def test_non_finite_measurements_resampled(self):
        dut = NonFiniteDut()
        ds = generate_dataset(dut, 30, seed=0)
        assert np.all(np.isfinite(ds.values))

    def test_failure_budget_enforced(self):
        dut = FlakyDut(fail_every=2)  # 50 % failure rate
        with pytest.raises(DatasetError, match="aborted"):
            generate_dataset(dut, 50, seed=0, max_failures=5)

    @pytest.mark.parametrize("seed_mode", ["per-instance", "sequential"])
    def test_budget_aborts_at_exactly_max_failures(self, seed_mode):
        """Regression: max_failures=3 used to abort only at failure 4."""
        dut = FlakyDut(fail_every=2)
        with pytest.raises(DatasetError, match="3 simulation failures"):
            generate_dataset(dut, 50, seed=0, max_failures=3,
                             seed_mode=seed_mode)

    def test_input_validation(self):
        dut = SyntheticDut()
        with pytest.raises(DatasetError):
            generate_dataset(dut, 0, seed=0)
        with pytest.raises(DatasetError):
            generate_dataset(dut, 10, seed=0, on_error="ignore")

    def test_labels_match_specifications(self):
        dut = SyntheticDut()
        ds = generate_dataset(dut, 60, seed=3)
        expected = dut.specifications.labels(ds.values)
        assert np.array_equal(ds.labels, expected)


class TestGenerationReport:
    def test_failure_messages_bounded(self):
        """The stored message list is capped; the count never is."""
        report = GenerationReport(n_requested=10)
        for i in range(GenerationReport.MAX_STORED_FAILURES + 25):
            report.record_failure("failure {}".format(i))
        assert report.n_failed == GenerationReport.MAX_STORED_FAILURES + 25
        assert len(report.failures) == GenerationReport.MAX_STORED_FAILURES
        # The newest messages survive.
        assert report.failures[-1] == "failure {}".format(
            GenerationReport.MAX_STORED_FAILURES + 24)
        assert report.failures[0] == "failure 25"

    def test_generation_keeps_report_bounded(self):
        dut = FlakyDut(fail_every=2)
        cap = GenerationReport.MAX_STORED_FAILURES
        ds, report = generate_dataset(dut, 150, seed=0,
                                      max_failures=10_000,
                                      return_report=True)
        assert report.n_failed > cap
        assert len(report.failures) == cap


class TestThroughputReporting:
    """elapsed_s / instances_per_minute: one figure for every surface."""

    def test_elapsed_defaults_to_zero(self):
        report = GenerationReport(n_requested=10)
        assert report.elapsed_s == 0.0
        assert report.instances_per_minute == 0.0

    def test_rate_is_rows_per_minute(self):
        report = GenerationReport(n_requested=120, elapsed_s=30.0)
        assert report.instances_per_minute == 240.0

    def test_generation_stamps_elapsed(self):
        _, report = generate_dataset(SyntheticDut(), 25, seed=0,
                                     return_report=True)
        assert report.elapsed_s > 0.0
        assert report.instances_per_minute == pytest.approx(
            60.0 * 25 / report.elapsed_s)

    def test_parallel_generation_stamps_elapsed(self):
        _, report = generate_dataset(SyntheticDut(), 25, seed=0,
                                     n_jobs=2, return_report=True)
        assert report.elapsed_s > 0.0
        assert report.instances_per_minute > 0.0
