"""Shared pytest fixtures (helpers live in tests/synthetic.py)."""

import pytest

from tests.synthetic import make_synthetic_dataset


@pytest.fixture
def synthetic_train():
    """400-instance synthetic training set (redundant specs)."""
    return make_synthetic_dataset(n=400, seed=1)


@pytest.fixture
def synthetic_test():
    """200-instance synthetic held-out set from the same DUT."""
    return make_synthetic_dataset(n=200, seed=2)


@pytest.fixture
def noisy_train():
    """Training set whose spec redundancy is only approximate."""
    return make_synthetic_dataset(n=400, noise=0.15, seed=3)


@pytest.fixture
def noisy_test():
    """Held-out counterpart of noisy_train."""
    return make_synthetic_dataset(n=200, noise=0.15, seed=4)
