"""ShardedSpecDataset accessors: bitwise parity with the in-RAM path,
plus manifest/shard integrity rejection."""

import json

import numpy as np
import pytest

from repro.data import ShardedSpecDataset, generate_shards
from repro.data.manifest import MANIFEST_NAME
from repro.errors import DatasetError
from repro.process.montecarlo import generate_dataset

from tests.synthetic import SyntheticDut


N, SHARD_ROWS, SEED = 53, 16, 11


@pytest.fixture(scope="module")
def dut():
    return SyntheticDut()


@pytest.fixture(scope="module")
def store_root(dut, tmp_path_factory):
    root = tmp_path_factory.mktemp("store") / "s"
    generate_shards(root, dut, N, SEED, shard_rows=SHARD_ROWS)
    return root


@pytest.fixture
def store(store_root):
    return ShardedSpecDataset(store_root)


@pytest.fixture(scope="module")
def reference(dut):
    return generate_dataset(dut, N, SEED)


class TestAccessorParity:
    def test_identity(self, store, dut):
        assert len(store) == N
        assert store.n_specs == len(dut.specifications)
        assert store.names == dut.specifications.names
        assert store.seed == SEED
        assert store.device == "SyntheticDut"
        assert store.n_shards == (N + SHARD_ROWS - 1) // SHARD_ROWS

    def test_values_bitwise(self, store, reference):
        assert np.array_equal(store.values, reference.values)

    def test_labels_bitwise(self, store, reference):
        assert np.array_equal(store.labels, reference.labels)
        assert store.yield_fraction == reference.yield_fraction

    def test_column_bitwise(self, store, reference):
        for name in store.names:
            assert np.array_equal(store.column(name),
                                  reference.column(name))

    def test_normalized_values_bitwise(self, store, reference):
        names = list(store.names[:3])
        assert np.array_equal(store.normalized_values(names),
                              reference.project(names).normalized_values())
        assert np.array_equal(store.normalized_values(),
                              reference.normalized_values())

    def test_shifted_labels_bitwise(self, store, reference):
        names = list(store.names[2:5])
        specs = reference.specifications.subset(names)
        values = reference.project(names).values
        deltas = np.array([0.05, 0.1, 0.02])
        assert np.array_equal(
            store.shifted_labels(names, deltas),
            specs.shifted(deltas).labels(values))
        assert np.array_equal(
            store.shifted_labels(names, -deltas),
            specs.shifted(-deltas).labels(values))
        # deltas=None is the *unshifted* label path, byte for byte.
        assert np.array_equal(store.shifted_labels(names, None),
                              specs.labels(values))

    def test_iter_batches_any_size(self, store, reference):
        for batch_size in (None, 1, 7, SHARD_ROWS, 1000):
            got = np.vstack(list(store.iter_batches(batch_size)))
            assert np.array_equal(got, reference.values)

    def test_iter_batches_rejects_nonpositive(self, store):
        with pytest.raises(DatasetError):
            list(store.iter_batches(0))

    def test_head_and_to_dataset(self, store, reference):
        head = store.head(20)
        assert np.array_equal(head.values, reference.values[:20])
        assert head.specifications == store.specifications
        full = store.to_dataset()
        assert np.array_equal(full.values, reference.values)
        with pytest.raises(DatasetError):
            store.head(0)
        with pytest.raises(DatasetError):
            store.head(N + 1)


class TestIntegrity:
    def _copy_store(self, src, dst):
        import shutil

        shutil.copytree(src, dst)
        return dst

    def test_verify_passes_on_clean_store(self, store):
        assert store.verify() == store.n_shards

    def test_verify_detects_bit_flip(self, store_root, tmp_path):
        root = self._copy_store(store_root, tmp_path / "s")
        store = ShardedSpecDataset(root)
        path = store.shard_path(1)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x01  # inside the array payload
        open(path, "wb").write(bytes(data))
        fresh = ShardedSpecDataset(root)
        with pytest.raises(DatasetError):
            fresh.verify()

    def test_stale_manifest_hash_rejected(self, store_root, tmp_path):
        root = self._copy_store(store_root, tmp_path / "s")
        manifest_path = root / MANIFEST_NAME
        doc = json.loads(manifest_path.read_text())
        doc["shards"][0]["sha256"] = "0" * 64
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(DatasetError):
            ShardedSpecDataset(root).verify()

    def test_foreign_dtype_rejected(self, store_root, tmp_path):
        root = self._copy_store(store_root, tmp_path / "s")
        manifest_path = root / MANIFEST_NAME
        doc = json.loads(manifest_path.read_text())
        doc["dtype"] = ">f8"
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(DatasetError):
            ShardedSpecDataset(root)

    def test_gapped_row_ranges_rejected(self, store_root, tmp_path):
        root = self._copy_store(store_root, tmp_path / "s")
        manifest_path = root / MANIFEST_NAME
        doc = json.loads(manifest_path.read_text())
        doc["shards"][1]["start"] += 1
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(DatasetError):
            ShardedSpecDataset(root)

    def test_bad_format_and_version_rejected(self, store_root, tmp_path):
        for key, value in (("format", "something-else"), ("version", 99)):
            root = self._copy_store(store_root,
                                    tmp_path / "s_{}".format(key))
            manifest_path = root / MANIFEST_NAME
            doc = json.loads(manifest_path.read_text())
            doc[key] = value
            manifest_path.write_text(json.dumps(doc))
            with pytest.raises(DatasetError):
                ShardedSpecDataset(root)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            ShardedSpecDataset(tmp_path)

    def test_truncated_shard_rejected(self, store_root, tmp_path):
        root = self._copy_store(store_root, tmp_path / "s")
        store = ShardedSpecDataset(root)
        path = store.shard_path(0)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:60])
        fresh = ShardedSpecDataset(root)
        with pytest.raises(DatasetError):
            fresh.shard_values(0)
