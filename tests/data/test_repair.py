"""Shard repair: regenerate corrupted shards from the seed tree.

Invariant 1 of the data plane (any shard in isolation) makes repair
possible at all: every row is a pure function of ``(device, seed, row
index)``, so a corrupted shard can be re-simulated alone and must hash
back to the manifest's original digest.  These tests break shards in
every observed way -- flipped content bytes, truncation, deletion --
and require repair to restore the store file-for-file, while refusing
to bless bytes that do not reproduce the manifest.
"""

import os

import numpy as np
import pytest

from repro.chaos import corrupt_file
from repro.data import ShardedSpecDataset, generate_shards, repair_shards
from repro.errors import DatasetError

from tests.synthetic import SyntheticDut


def _store(tmp_path, n=40, seed=5, shard_rows=16):
    root = tmp_path / "store"
    store = generate_shards(root, SyntheticDut(), n, seed,
                            shard_rows=shard_rows)
    return root, store


def _shard_file(root, store, index):
    return os.path.join(str(root), store.manifest.shards[index]["file"])


class TestRepair:
    def test_corrupted_shard_is_restored_hash_identical(self, tmp_path):
        root, store = _store(tmp_path)
        original_hashes = store.shard_hashes()
        reference = np.array(store.values)
        del store

        corrupted = ShardedSpecDataset(root)
        corrupt_file(_shard_file(root, corrupted, 1), seed=17)
        with pytest.raises(DatasetError):
            corrupted.verify()
        del corrupted

        repaired = repair_shards(root, SyntheticDut())
        assert repaired == [1]
        healed = ShardedSpecDataset(root)
        assert healed.verify() == 3
        assert healed.shard_hashes() == original_hashes
        assert np.array_equal(healed.values, reference)

    def test_truncated_and_missing_shards_both_repair(self, tmp_path):
        root, store = _store(tmp_path, n=48)
        original_hashes = store.shard_hashes()
        del store

        store = ShardedSpecDataset(root)
        # Shard 0: truncated mid-file (torn write / crashed publish).
        path0 = _shard_file(root, store, 0)
        with open(path0, "r+b") as handle:
            handle.truncate(os.path.getsize(path0) // 2)
        # Shard 2: deleted outright.
        os.unlink(_shard_file(root, store, 2))
        del store

        assert repair_shards(root, SyntheticDut()) == [0, 2]
        healed = ShardedSpecDataset(root)
        assert healed.verify() == 3
        assert healed.shard_hashes() == original_hashes

    def test_clean_store_is_left_untouched(self, tmp_path):
        root, store = _store(tmp_path)
        mtimes = {
            index: os.path.getmtime(_shard_file(root, store, index))
            for index in range(len(store.manifest.shards))
        }
        del store
        assert repair_shards(root, SyntheticDut()) == []
        for index, mtime in mtimes.items():
            assert os.path.getmtime(
                _shard_file(root, ShardedSpecDataset(root), index)) == mtime

    def test_repair_is_recorded_in_manifest_events(self, tmp_path):
        root, store = _store(tmp_path)
        corrupt_file(_shard_file(root, store, 0), seed=3)
        del store
        repair_shards(root, SyntheticDut())
        events = ShardedSpecDataset(root).manifest.events
        repairs = [e for e in events if e["op"] == "repair"]
        assert len(repairs) == 1
        assert repairs[0]["shards"] == [0]

    def test_foreign_spec_universe_is_refused(self, tmp_path):
        root, _ = _store(tmp_path)
        with pytest.raises(DatasetError, match="different specification"):
            repair_shards(root, SyntheticDut(n_specs=4))

    def test_wrong_bytes_are_never_blessed(self, tmp_path):
        # A DUT with the same spec universe but shifted physics
        # regenerates *valid-looking* bytes that do not hash back to
        # the manifest; repair must raise, not rewrite history.
        class ShiftedDut(SyntheticDut):
            def measure(self, params):
                return super().measure(params) + 1.0

        root, store = _store(tmp_path)
        corrupt_file(_shard_file(root, store, 1), seed=9)
        del store
        with pytest.raises(DatasetError, match="refusing to bless"):
            repair_shards(root, ShiftedDut())
        # The mismatch surfaced *before* the store was re-blessed: the
        # shard is still reported corrupt, not silently replaced.
        with pytest.raises(DatasetError):
            ShardedSpecDataset(root).verify()

    def test_corrupt_file_is_deterministic(self, tmp_path):
        root_a, store_a = _store(tmp_path / "a")
        root_b, store_b = _store(tmp_path / "b")
        offsets_a = corrupt_file(_shard_file(root_a, store_a, 0), seed=21)
        offsets_b = corrupt_file(_shard_file(root_b, store_b, 0), seed=21)
        assert offsets_a == offsets_b
        with open(_shard_file(root_a, store_a, 0), "rb") as fa:
            with open(_shard_file(root_b, store_b, 0), "rb") as fb:
                assert fa.read() == fb.read()
