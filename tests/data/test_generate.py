"""Resumable generation: extend ≡ cold, across shard sizes and workers."""

import numpy as np
import pytest

from repro.data import (
    ShardedSpecDataset,
    dataset_device_name,
    ensure_dataset,
    extend_shards,
    generate_shards,
)
from repro.errors import DatasetError
from repro.process.montecarlo import generate_dataset

from tests.synthetic import SyntheticDut
from tests.runtime.test_simulation import PureFlakyDut


class TestResumeDeterminism:
    @pytest.mark.parametrize("shard_rows", [8, 16, 100])
    @pytest.mark.parametrize("n_jobs", [None, 2])
    def test_extend_is_hash_identical_to_cold(self, tmp_path, shard_rows,
                                              n_jobs):
        """generate(N) + extend(M) == cold generate(M), file for file."""
        dut, n, m, seed = SyntheticDut(), 21, 57, 4
        cold = generate_shards(tmp_path / "cold", dut, m, seed,
                               shard_rows=shard_rows, n_jobs=n_jobs)
        generate_shards(tmp_path / "warm", dut, n, seed,
                        shard_rows=shard_rows, n_jobs=n_jobs)
        warm = extend_shards(tmp_path / "warm", dut, m, n_jobs=n_jobs)
        assert warm.shard_hashes() == cold.shard_hashes()
        assert [dict(s) for s in warm.manifest.shards] == \
            [dict(s) for s in cold.manifest.shards]
        assert np.array_equal(warm.values, cold.values)

    def test_concatenation_equals_in_ram_generation(self, tmp_path):
        dut, n, seed = SyntheticDut(), 43, 9
        reference = generate_dataset(dut, n, seed)
        for shard_rows in (7, 43, 64):
            store = generate_shards(
                tmp_path / "s{}".format(shard_rows), dut, n, seed,
                shard_rows=shard_rows)
            assert np.array_equal(store.values, reference.values)

    def test_parallel_generation_is_bitwise_serial(self, tmp_path):
        dut, n, seed = SyntheticDut(), 40, 2
        serial = generate_shards(tmp_path / "serial", dut, n, seed,
                                 shard_rows=16)
        parallel = generate_shards(tmp_path / "par", dut, n, seed,
                                   shard_rows=16, n_jobs=2)
        assert serial.shard_hashes() == parallel.shard_hashes()

    def test_extend_with_failures_matches_cold_accounting(self, tmp_path):
        """Per-shard failure counts survive the resume split exactly."""
        dut, n, m, seed = PureFlakyDut(), 18, 50, 5
        cold = generate_shards(tmp_path / "cold", dut, m, seed,
                               shard_rows=16, max_failures=1000)
        generate_shards(tmp_path / "warm", dut, n, seed,
                        shard_rows=16, max_failures=1000)
        warm = extend_shards(tmp_path / "warm", dut, m,
                             max_failures=1000)
        assert warm.shard_hashes() == cold.shard_hashes()
        assert ([(s["n_failed"], s["n_simulated"])
                 for s in warm.manifest.shards]
                == [(s["n_failed"], s["n_simulated"])
                    for s in cold.manifest.shards])
        assert sum(s["n_failed"] for s in cold.manifest.shards) > 0

    def test_multiple_extensions_compose(self, tmp_path):
        dut, seed = SyntheticDut(), 7
        cold = generate_shards(tmp_path / "cold", dut, 60, seed,
                               shard_rows=16)
        generate_shards(tmp_path / "warm", dut, 5, seed, shard_rows=16)
        for target in (17, 33, 48, 60):
            warm = extend_shards(tmp_path / "warm", dut, target)
        assert warm.shard_hashes() == cold.shard_hashes()


class TestExtendSemantics:
    def test_extend_is_noop_at_or_below_current_size(self, tmp_path):
        dut = SyntheticDut()
        store = generate_shards(tmp_path / "s", dut, 30, 1, shard_rows=8)
        hashes = store.shard_hashes()
        again = extend_shards(tmp_path / "s", dut, 20)
        assert again.n_rows == 30
        assert again.shard_hashes() == hashes

    def test_generate_refuses_existing_store(self, tmp_path):
        dut = SyntheticDut()
        generate_shards(tmp_path / "s", dut, 10, 1, shard_rows=8)
        with pytest.raises(DatasetError):
            generate_shards(tmp_path / "s", dut, 20, 1, shard_rows=8)

    def test_extend_refuses_contradicting_seed(self, tmp_path):
        dut = SyntheticDut()
        generate_shards(tmp_path / "s", dut, 10, 1, shard_rows=8)
        with pytest.raises(DatasetError):
            extend_shards(tmp_path / "s", dut, 20, seed=2)

    def test_extend_refuses_foreign_spec_universe(self, tmp_path):
        generate_shards(tmp_path / "s", SyntheticDut(), 10, 1,
                        shard_rows=8)
        with pytest.raises(DatasetError):
            extend_shards(tmp_path / "s", SyntheticDut(n_specs=4), 20)

    def test_generate_rejects_nonpositive(self, tmp_path):
        with pytest.raises(DatasetError):
            generate_shards(tmp_path / "s", SyntheticDut(), 0, 1)

    def test_manifest_records_events_and_throughput(self, tmp_path):
        dut = SyntheticDut()
        generate_shards(tmp_path / "s", dut, 20, 1, shard_rows=8)
        store = extend_shards(tmp_path / "s", dut, 30)
        events = store.manifest.events
        assert [e["op"] for e in events] == ["generate", "extend"]
        assert events[0]["start"] == 0 and events[0]["stop"] == 20
        assert events[1]["start"] == 20 and events[1]["stop"] == 30
        for event in events:
            assert event["elapsed_s"] >= 0.0
            assert event["instances_per_minute"] >= 0.0


class TestEnsureDataset:
    def test_creates_then_extends_one_store(self, tmp_path):
        dut = SyntheticDut()
        first = ensure_dataset(tmp_path, dut, 12, 3, shard_rows=8)
        assert first.n_rows == 12
        second = ensure_dataset(tmp_path, dut, 30, 3)
        assert second.n_rows == 30
        assert second.root == first.root
        cold = generate_shards(tmp_path / "cold", dut, 30, 3,
                               shard_rows=8)
        assert second.shard_hashes() == cold.shard_hashes()

    def test_big_store_serves_smaller_requests(self, tmp_path):
        dut = SyntheticDut()
        ensure_dataset(tmp_path, dut, 25, 3, shard_rows=8)
        store = ensure_dataset(tmp_path, dut, 10, 3)
        assert store.n_rows == 25  # consumers take head(10)
        reference = generate_dataset(dut, 10, 3)
        assert np.array_equal(store.head(10).values, reference.values)

    def test_stores_are_keyed_by_device_and_seed(self, tmp_path):
        dut = SyntheticDut()
        a = ensure_dataset(tmp_path, dut, 8, 1, shard_rows=8)
        b = ensure_dataset(tmp_path, dut, 8, 2, shard_rows=8)
        assert a.root != b.root
        assert dataset_device_name(dut) == "SyntheticDut"
        assert "SyntheticDut-s1" in a.root

    def test_interrupted_generation_leaves_valid_prefix(self, tmp_path):
        """Crash mid-run == valid shorter store; ensure_dataset resumes
        it to the full target, hash-identical to an uninterrupted run."""
        dut = SyntheticDut()
        cold = generate_shards(tmp_path / "cold", dut, 40, 1,
                               shard_rows=8)
        # Simulate the crash: a store that stopped after 3 shards.
        partial = generate_shards(tmp_path / "SyntheticDut-s1", dut,
                                  24, 1, shard_rows=8)
        assert partial.n_shards == 3
        resumed = ensure_dataset(tmp_path, dut, 40, 1)
        assert resumed.shard_hashes() == cold.shard_hashes()
