"""Shard file format: write/memmap round trips and defensive loads."""

import os
import zipfile

import numpy as np
import pytest

from repro.data.shard import (
    MEMBER,
    array_sha256,
    open_shard_values,
    write_shard,
)
from repro.errors import DatasetError


def _values(n_specs=4, rows=9, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n_specs, rows))


class TestRoundTrip:
    def test_write_then_memmap_is_bitwise(self, tmp_path):
        values = _values()
        path = tmp_path / "shard-00000.npz"
        digest = write_shard(path, values)
        loaded = open_shard_values(path)
        assert loaded.dtype == values.dtype
        assert loaded.shape == values.shape
        assert np.array_equal(np.asarray(loaded), values)
        assert array_sha256(loaded) == digest

    def test_memmap_is_read_only_view(self, tmp_path):
        path = tmp_path / "s.npz"
        write_shard(path, _values())
        loaded = open_shard_values(path)
        assert isinstance(loaded, np.memmap)
        with pytest.raises((ValueError, OSError)):
            loaded[0, 0] = 1.0

    def test_hash_covers_content_not_file_bytes(self, tmp_path):
        """Two writes of the same array hash identically (zip
        timestamps may differ), and any value change is detected."""
        values = _values(seed=3)
        d1 = write_shard(tmp_path / "a.npz", values)
        d2 = write_shard(tmp_path / "b.npz", values.copy())
        assert d1 == d2
        changed = values.copy()
        changed[0, 0] += 1e-12
        assert write_shard(tmp_path / "c.npz", changed) != d1

    def test_hash_distinguishes_shape_and_dtype(self):
        a = np.zeros((2, 6))
        assert array_sha256(a) != array_sha256(a.reshape(3, 4))
        assert array_sha256(a) != array_sha256(
            np.zeros((2, 6), dtype=np.float32))

    def test_expectations_enforced(self, tmp_path):
        path = tmp_path / "s.npz"
        write_shard(path, _values(n_specs=3, rows=5))
        assert open_shard_values(
            path, expect_dtype="<f8", expect_shape=(3, 5)) is not None
        with pytest.raises(DatasetError):
            open_shard_values(path, expect_shape=(3, 6))
        with pytest.raises(DatasetError):
            open_shard_values(path, expect_dtype="<f4")


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            open_shard_values(tmp_path / "absent.npz")

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(DatasetError):
            open_shard_values(path)

    def test_compressed_member_rejected(self, tmp_path):
        """A deflated npz cannot be memory-mapped; refuse it cleanly."""
        path = tmp_path / "compressed.npz"
        np.savez_compressed(path, **{MEMBER: _values()})
        with pytest.raises(DatasetError):
            open_shard_values(path)

    def test_missing_member_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, other=_values())
        with pytest.raises(DatasetError):
            open_shard_values(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "s.npz"
        write_shard(path, _values())
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(DatasetError):
            open_shard_values(path)

    def test_fortran_order_rejected(self, tmp_path):
        path = tmp_path / "fortran.npz"
        handle = zipfile.ZipFile(path, "w", zipfile.ZIP_STORED)
        import io

        buf = io.BytesIO()
        np.save(buf, np.asfortranarray(_values()))
        handle.writestr(MEMBER + ".npy", buf.getvalue())
        handle.close()
        with pytest.raises(DatasetError):
            open_shard_values(path)

    def test_write_rejects_non_2d(self, tmp_path):
        with pytest.raises(DatasetError):
            write_shard(tmp_path / "bad.npz", np.zeros(5))

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        target = tmp_path / "sub" / "s.npz"
        with pytest.raises(Exception):
            write_shard(target, _values())  # parent dir doesn't exist
        assert not os.path.exists(target)
