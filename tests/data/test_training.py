"""Out-of-core training: bit identity with the in-RAM fits."""

import numpy as np
import pytest

from repro.core.guardband import GuardBandedClassifier
from repro.data import fit_guard_banded, fit_ovr_bank, generate_shards
from repro.errors import LearningError
from repro.learn import SVC
from repro.learn import smo as smo_module
from repro.learn.ovr import OneVsRestSVCBank

from tests.synthetic import SyntheticDut


class FixedSVCFactory:
    def __call__(self):
        return SVC(C=25.0, gamma=0.8)


N, SEED, SHARD_ROWS = 90, 13, 16


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("train") / "s"
    return generate_shards(root, SyntheticDut(), N, SEED,
                           shard_rows=SHARD_ROWS)


@pytest.fixture(scope="module")
def dataset(store):
    return store.to_dataset()


def _assert_same_pair(a, b):
    for attr in ("_strict", "_loose"):
        model_a, model_b = getattr(a, attr), getattr(b, attr)
        assert model_a.alpha_.tobytes() == model_b.alpha_.tobytes()
        assert model_a.intercept_ == model_b.intercept_


class TestGuardBandedOutOfCore:
    FEATURES = ["s0", "s1", "s2"]

    def _fit(self, data, budget):
        return fit_guard_banded(data, self.FEATURES, delta=0.05,
                                model_factory=FixedSVCFactory(),
                                column_budget=budget)

    def test_below_precompute_limit_identical(self, store, dataset):
        """Small problems precompute either way: trivially identical."""
        ram = self._fit(dataset, None)
        ooc = self._fit(store, 1 << 20)
        _assert_same_pair(ram, ooc)
        assert np.array_equal(ram.predict_dataset(dataset),
                              ooc.predict_dataset(dataset))

    def test_above_precompute_limit_identical(self, store, dataset,
                                              monkeypatch):
        """The real out-of-core regime: streamed labels + bounded
        kernel-column cache must still match in-RAM bit for bit."""
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 16)
        ram = self._fit(dataset, None)
        ooc = self._fit(store, 4 << 20)
        _assert_same_pair(ram, ooc)
        assert np.array_equal(ram.predict_dataset(dataset),
                              ooc.predict_dataset(store.to_dataset()))

    def test_eviction_pressure_changes_nothing(self, store, dataset,
                                               monkeypatch):
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 16)
        ram = self._fit(dataset, None)
        # Budget of ~2 blocks: constant eviction during the fit.
        tiny = 2 * 8 * N * 64
        ooc = self._fit(store, tiny)
        _assert_same_pair(ram, ooc)

    def test_sharding_geometry_is_invisible(self, tmp_path, dataset,
                                            monkeypatch):
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 16)
        ram = self._fit(dataset, None)
        for shard_rows in (8, 32):
            other = generate_shards(
                tmp_path / "s{}".format(shard_rows), SyntheticDut(),
                N, SEED, shard_rows=shard_rows)
            _assert_same_pair(ram, self._fit(other, 4 << 20))

    def test_classifier_accepts_store_directly(self, store, dataset):
        clf = GuardBandedClassifier(
            self.FEATURES, delta=0.05,
            model_factory=FixedSVCFactory()).fit(store)
        ram = GuardBandedClassifier(
            self.FEATURES, delta=0.05,
            model_factory=FixedSVCFactory()).fit(dataset)
        _assert_same_pair(ram, clf)


class TestOvrBankOutOfCore:
    def _labels(self, dataset):
        """Deterministic 3-class grade labels from one feature."""
        column = dataset.values[:, 0]
        edges = np.quantile(column, [0.33, 0.66])
        return np.digitize(column, edges)

    def test_bank_with_column_cache_is_bitwise(self, store, dataset,
                                               monkeypatch):
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 16)
        X = store.normalized_values(["s0", "s1", "s2"])
        assert np.array_equal(
            X, dataset.project(["s0", "s1", "s2"]).normalized_values())
        y = self._labels(dataset)
        plain = OneVsRestSVCBank(sorted(set(y.tolist())),
                                 model_factory=FixedSVCFactory()).fit(X, y)
        banked = fit_ovr_bank(X, y, model_factory=FixedSVCFactory(),
                              column_budget=4 << 20)
        assert len(plain.models_) == len(banked.models_) == 3
        for model, other in zip(plain.models_, banked.models_):
            assert model.alpha_.tobytes() == other.alpha_.tobytes()
            assert model.intercept_ == other.intercept_
        assert np.array_equal(plain.predict(X), banked.predict(X))

    def test_bank_requires_two_classes(self, dataset):
        X = dataset.normalized_values(["s0"])
        with pytest.raises(LearningError):
            fit_ovr_bank(X, np.zeros(len(X), dtype=int))
