"""Registry semantics: metrics, span nesting, the disabled singleton."""

import asyncio
import json

import pytest

from repro.telemetry import (
    NULL,
    JsonlSink,
    Telemetry,
    configure,
    disable,
    get_telemetry,
    set_telemetry,
)


class TestMetrics:
    def test_counter_accumulates(self):
        tel = Telemetry(run_id="t")
        tel.counter("repro_x_total", 2)
        tel.counter("repro_x_total", 3)
        assert tel._counters[("repro_x_total", ())] == 5

    def test_counter_label_order_is_canonical(self):
        tel = Telemetry(run_id="t")
        tel.counter("repro_x_total", 1, a="1", b="2")
        tel.counter("repro_x_total", 1, b="2", a="1")
        assert len(tel._counters) == 1
        (key,) = tel._counters
        assert key == ("repro_x_total", (("a", "1"), ("b", "2")))

    def test_gauge_overwrites(self):
        tel = Telemetry(run_id="t")
        tel.gauge("repro_depth", 3)
        tel.gauge("repro_depth", 7)
        assert tel._gauges[("repro_depth", ())] == 7.0

    def test_histogram_buckets_fill_and_layout_is_fixed(self):
        tel = Telemetry(run_id="t")
        buckets = (0.01, 0.1, 1.0)
        for value in (0.005, 0.05, 0.5, 5.0):
            tel.observe("repro_seconds", value, buckets=buckets)
        # A later call with different buckets must not reshape the
        # series (Prometheus histograms cannot change mid-stream).
        tel.observe("repro_seconds", 0.5, buckets=(42.0,))
        hist = tel._histograms[("repro_seconds", ())]
        assert hist["buckets"] == buckets
        assert hist["counts"] == [1, 1, 2, 1]
        assert hist["count"] == 5

    def test_snapshot_is_json_serializable(self):
        tel = Telemetry(run_id="t")
        tel.counter("repro_x_total", 1, kind="a")
        tel.gauge("repro_g", 0.5)
        tel.observe("repro_h", 0.2)
        snap = json.loads(json.dumps(tel.snapshot()))
        assert snap["run"] == "t"
        assert snap["counters"][0]["labels"] == {"kind": "a"}
        assert snap["histograms"][0]["count"] == 1


class TestSpans:
    def test_nesting_links_parent_and_trace(self):
        tel = Telemetry(run_id="t")
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                assert tel.current_span() is inner
            assert tel.current_span() is outer
        assert tel.current_span() is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_sibling_roots_get_distinct_traces(self):
        tel = Telemetry(run_id="t")
        with tel.span("a") as a:
            pass
        with tel.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_exception_marks_error_and_restores_parent(self):
        tel = Telemetry(run_id="t")
        with pytest.raises(ValueError):
            with tel.span("boom") as span:
                raise ValueError("nope")
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"
        assert tel.current_span() is None
        # The error span still feeds the per-stage aggregates.
        assert tel._counters[
            ("repro_stage_calls_total", (("stage", "boom"),))] == 1

    def test_set_attaches_attrs(self):
        tel = Telemetry(run_id="t")
        with tel.span("s", fixed=1) as span:
            span.set(devices=42)
        assert span.attrs == {"fixed": 1, "devices": 42}

    def test_concurrent_tasks_have_isolated_stacks(self):
        """Two asyncio tasks never adopt each other's spans as parents."""
        tel = Telemetry(run_id="t")
        seen = {}

        async def worker(name):
            with tel.span("outer-" + name) as outer:
                await asyncio.sleep(0.001)
                with tel.span("inner-" + name) as inner:
                    await asyncio.sleep(0.001)
                seen[name] = (outer, inner)

        async def main():
            await asyncio.gather(worker("a"), worker("b"))

        asyncio.run(main())
        for name in ("a", "b"):
            outer, inner = seen[name]
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
        assert seen["a"][0].trace_id != seen["b"][0].trace_id


class TestDisabled:
    def test_default_is_null(self):
        assert get_telemetry() is NULL
        assert NULL.enabled is False

    def test_null_span_is_shared_noop(self):
        first = NULL.span("x", a=1)
        second = NULL.span("y")
        assert first is second
        with first as span:
            assert span.set(anything=1) is span
        assert NULL.current_span() is None

    def test_null_metrics_are_noops(self):
        NULL.counter("repro_x_total", 5)
        NULL.gauge("repro_g", 1.0)
        NULL.observe("repro_h", 0.1)
        assert NULL.snapshot()["counters"] == []


class TestActivation:
    def test_set_telemetry_returns_previous(self):
        tel = Telemetry(run_id="t")
        previous = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            assert set_telemetry(previous) is tel

    def test_configure_and_disable_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = configure(path=str(path), run_id="run-1")
        assert get_telemetry() is tel
        with tel.span("stage"):
            pass
        disable()
        assert get_telemetry() is NULL
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds == ["span", "snapshot"]
        assert all(event["run"] == "run-1" for event in events)
