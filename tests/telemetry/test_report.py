"""Trace reading and the per-stage summary table."""

import io

import pytest

from repro.telemetry import (
    JsonlSink,
    Telemetry,
    read_trace,
    render_report,
    stage_table,
)


@pytest.fixture
def trace(tmp_path):
    """A small trace: nested spans, an error span, a final snapshot."""
    path = tmp_path / "trace.jsonl"
    tel = Telemetry(run_id="run-42", sink=JsonlSink(str(path)))
    with tel.span("floor.lot", devices=100):
        with tel.span("sim.batch", slots=100):
            pass
    with tel.span("floor.lot", devices=50):
        pass
    with pytest.raises(RuntimeError):
        with tel.span("sim.batch", slots=10):
            raise RuntimeError("budget")
    tel.counter("repro_floor_shipped_total", 77)
    tel.close()
    return str(path)


class TestReadTrace:
    def test_splits_spans_and_snapshots(self, trace):
        spans, snapshots = read_trace(trace)
        assert len(spans) == 4
        assert len(snapshots) == 1
        assert {span["name"] for span in spans} == {"floor.lot",
                                                    "sim.batch"}
        assert all(span["run"] == "run-42" for span in spans)

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"span"}\n{oops\n')
        with pytest.raises(ValueError, match=":2:"):
            read_trace(str(path))


class TestStageTable:
    def test_aggregates_calls_volume_and_errors(self, trace):
        spans, _ = read_trace(trace)
        rows = {row["stage"]: row for row in stage_table(spans)}
        lot = rows["floor.lot"]
        assert lot["calls"] == 2
        assert lot["volume"] == 150
        assert lot["volume_attr"] == "devices"
        assert lot["errors"] == 0
        sim = rows["sim.batch"]
        assert sim["calls"] == 2
        assert sim["volume"] == 110
        assert sim["errors"] == 1

    def test_rows_sorted_by_total_time(self, trace):
        spans, _ = read_trace(trace)
        rows = stage_table(spans)
        totals = [row["total_s"] for row in rows]
        assert totals == sorted(totals, reverse=True)


class TestRenderReport:
    def test_renders_stages_and_counters(self, trace):
        out = io.StringIO()
        rows = render_report(trace, out=out)
        text = out.getvalue()
        assert "run: run-42" in text
        assert "floor.lot" in text and "sim.batch" in text
        assert "repro_floor_shipped_total = 77" in text
        # The per-stage aggregates are table rows, not footer noise.
        assert "repro_stage_calls_total" not in text
        assert len(rows) == 2

    def test_cli_subcommand(self, trace, capsys):
        from repro.cli import main

        assert main(["telemetry-report", trace]) == 0
        captured = capsys.readouterr()
        assert "floor.lot" in captured.out

    def test_cli_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["telemetry-report",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
