"""Prometheus text exposition: golden file, round trip, validation."""

import math
import os

import pytest

from repro.telemetry import Telemetry, parse_prometheus, prometheus_text

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_exposition.txt")


def _demo_registry():
    """Deterministic registry matching ``golden_exposition.txt``."""
    tel = Telemetry(run_id="golden")
    tel.counter("repro_demo_requests", 3, path="/disposition",
                status="200")
    tel.counter("repro_demo_requests", 1, path="/metrics", status="200")
    tel.gauge("repro_demo_queue_depth", 7)
    tel.gauge("repro_demo_ratio", 0.25)
    for value in (0.25, 0.5, 2.0):
        tel.observe("repro_demo_seconds", value, buckets=(0.25, 1.0))
    return tel


class TestExposition:
    def test_matches_golden_file(self):
        """The wire format is a contract: byte-for-byte stable."""
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert prometheus_text(_demo_registry()) == golden

    def test_round_trips_through_the_parser(self):
        families = parse_prometheus(prometheus_text(_demo_registry()))
        requests = families["repro_demo_requests_total"]
        assert requests["type"] == "counter"
        assert (("repro_demo_requests_total",
                 {"path": "/disposition", "status": "200"}, 3.0)
                in requests["samples"])
        seconds = families["repro_demo_seconds"]
        assert seconds["type"] == "histogram"
        names = [sample[0] for sample in seconds["samples"]]
        assert names.count("repro_demo_seconds_bucket") == 3
        assert "repro_demo_seconds_sum" in names
        assert "repro_demo_seconds_count" in names

    def test_counter_total_suffix_is_not_doubled(self):
        tel = Telemetry(run_id="t")
        tel.counter("repro_a_total", 1)
        tel.counter("repro_b", 1)
        text = prometheus_text(tel)
        assert "repro_a_total 1" in text
        assert "repro_b_total 1" in text
        assert "repro_a_total_total" not in text

    def test_label_values_are_escaped(self):
        tel = Telemetry(run_id="t")
        tel.counter("repro_x_total", 1, path='say "hi"\nthere\\now')
        text = prometheus_text(tel)
        families = parse_prometheus(text)
        (_, labels, value) = families["repro_x_total"]["samples"][0]
        assert labels["path"] == 'say "hi"\nthere\\now'
        assert value == 1.0

    def test_empty_registry_is_still_valid(self):
        text = prometheus_text(Telemetry(run_id="t"))
        assert text.endswith("\n")
        assert parse_prometheus(text) == {}


class TestParserValidation:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_prometheus("repro_x_total 1\n")

    def test_rejects_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE repro_x counter\nrepro_x\n")

    def test_rejects_non_cumulative_buckets(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.1"} 5\n'
                'repro_h_bucket{le="1"} 3\n'
                'repro_h_bucket{le="+Inf"} 5\n'
                "repro_h_sum 1\n"
                "repro_h_count 5\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus(text)

    def test_rejects_missing_inf_bucket(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="0.1"} 1\n'
                "repro_h_sum 0.05\n"
                "repro_h_count 1\n")
        with pytest.raises(ValueError, match="missing \\+Inf"):
            parse_prometheus(text)

    def test_rejects_count_mismatch(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="+Inf"} 2\n'
                "repro_h_sum 0.05\n"
                "repro_h_count 3\n")
        with pytest.raises(ValueError, match="disagrees with"):
            parse_prometheus(text)

    def test_parses_special_values(self):
        text = ("# TYPE repro_g_nan gauge\nrepro_g_nan NaN\n"
                "# TYPE repro_g_inf gauge\nrepro_g_inf +Inf\n")
        families = parse_prometheus(text)
        assert math.isnan(families["repro_g_nan"]["samples"][0][2])
        assert families["repro_g_inf"]["samples"][0][2] == math.inf
