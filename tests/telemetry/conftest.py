"""Shared guard: never leak an activated registry across tests.

Telemetry is process-global state (:func:`repro.telemetry.
set_telemetry`); a test that configures it and fails mid-way would
silently enable instrumentation for every later test.  The autouse
fixture restores whatever was active before each test.
"""

import pytest

from repro.telemetry import set_telemetry


@pytest.fixture(autouse=True)
def restore_telemetry():
    from repro.telemetry import get_telemetry

    previous = get_telemetry()
    yield
    set_telemetry(previous)
