"""The determinism boundary: telemetry never changes a result.

Instrumented code reads clocks and bumps counters; these tests pin
down that no dataset row, compaction choice or floor decision depends
on whether a registry is active -- across simulation engines and
worker counts, exactly as the package docstring promises.
"""

import numpy as np
import pytest

from repro.core.costmodel import TestCostModel as CostModel
from repro.core.pipeline import CompactionPipeline
from repro.floor import TestFloor as Floor
from repro.learn import SVC
from repro.runtime.simulation import generate_instances
from repro.telemetry import Telemetry, disable, set_telemetry

from tests.synthetic import SyntheticDut, make_synthetic_dataset


class FixedSVCFactory:
    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def _with_telemetry(fn):
    """Run ``fn`` with a fresh enabled registry active; restore after."""
    previous = set_telemetry(Telemetry(run_id="invariant"))
    try:
        return fn()
    finally:
        set_telemetry(previous)


@pytest.mark.parametrize("engine", ["scalar", "batched"])
@pytest.mark.parametrize("n_jobs", [None, 2])
class TestGenerationBitIdentity:
    def test_population_identical_telemetry_on_and_off(self, engine,
                                                       n_jobs):
        dut = SyntheticDut(n_specs=5, seed=11)
        disable()
        baseline, _ = generate_instances(dut, 96, seed=3,
                                         n_jobs=n_jobs, engine=engine)
        observed, _ = _with_telemetry(
            lambda: generate_instances(dut, 96, seed=3, n_jobs=n_jobs,
                                       engine=engine))
        assert baseline.tobytes() == observed.tobytes()


@pytest.fixture(scope="module")
def floor_setup():
    """A compacted artifact plus production rows (built once)."""
    dut = SyntheticDut(n_specs=6, seed=99)
    train = make_synthetic_dataset(n=160, n_specs=6, seed=1, dut_seed=99)
    test = make_synthetic_dataset(n=120, n_specs=6, seed=2, dut_seed=99)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=CostModel.uniform(train.names),
        device="synthetic", train_seed=1)
    rng = np.random.default_rng(17)
    rows = np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(200)])
    return train, test, artifact, rows


class TestFloorBitIdentity:
    def test_decisions_identical_telemetry_on_and_off(self, floor_setup):
        _, _, artifact, rows = floor_setup
        disable()
        baseline = Floor(artifact).dispose(rows)

        def observed_run():
            return Floor(artifact).dispose(rows)

        observed = _with_telemetry(observed_run)
        assert np.array_equal(baseline.decisions, observed.decisions)
        assert np.array_equal(baseline.first_pass, observed.first_pass)
        assert baseline.cost == observed.cost

    def test_training_identical_telemetry_on_and_off(self, floor_setup):
        train, test, baseline_artifact, rows = floor_setup

        def observed_run():
            pipeline = CompactionPipeline(
                tolerance=0.02, guard_band=0.06,
                model_factory=FixedSVCFactory())
            _, artifact = pipeline.deploy(
                train, test,
                cost_model=CostModel.uniform(train.names),
                device="synthetic", train_seed=1)
            return artifact

        disable()
        observed_artifact = observed_run()
        telemetered_artifact = _with_telemetry(observed_run)
        for artifact in (observed_artifact, telemetered_artifact):
            assert artifact.kept == baseline_artifact.kept
            assert artifact.eliminated == baseline_artifact.eliminated
        base = Floor(baseline_artifact, monitor=False).dispose(rows)
        told = Floor(telemetered_artifact,
                     monitor=False).dispose(rows)
        assert np.array_equal(base.decisions, told.decisions)
