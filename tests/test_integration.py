"""End-to-end integration tests across the whole stack.

These use small real circuit simulations (op-amp and MEMS), so they
are slower than the unit tests but verify the full pipeline:
Monte-Carlo generation -> labeling -> compaction -> guard banding ->
tester deployment.
"""

import numpy as np
import pytest

from repro import compact_specification_tests
from repro.core.compaction import TestCompactor as Compactor
from repro.core.costmodel import TestCostModel as CostModel
from repro.core.metrics import GUARD
from repro.learn import SVC
# Aliased so pytest does not collect the imported helper (its name
# matches the default "test*" function pattern).
from repro.mems import AccelerometerBench, TEMPERATURES
from repro.mems import tests_at_temperature as _tests_at_temperature
from repro.opamp import OpAmpBench
from repro.tester import LookupTable, TestProgram as Program

# The module simulates real Monte-Carlo populations end to end -- the
# slowest generation work in the suite.  `pytest -m "not slow"` skips
# it for a fast pre-commit loop; the tier-1 command runs unfiltered.
pytestmark = pytest.mark.slow


def _fixed_factory():
    return SVC(C=500.0, gamma=8.0)


@pytest.fixture(scope="module")
def mems_data():
    """Small real MEMS population shared by the module's tests."""
    bench = AccelerometerBench()
    train = bench.generate_dataset(300, seed=70)
    test = bench.generate_dataset(200, seed=71)
    return train, test


@pytest.fixture(scope="module")
def opamp_data():
    """Small real op-amp population (slowest fixture in the suite)."""
    bench = OpAmpBench()
    train = bench.generate_dataset(120, seed=80)
    test = bench.generate_dataset(80, seed=81)
    return train, test


class TestMemsEndToEnd:
    def test_temperature_block_elimination(self, mems_data):
        train, test = mems_data
        compactor = Compactor(guard_band=0.03,
                              model_factory=_fixed_factory)
        eliminated = _tests_at_temperature(-40) + _tests_at_temperature(80)
        model, report = compactor.evaluate_subset(train, test, eliminated)
        # The paper's core result at reduced scale: small errors.
        assert report.error_rate < 0.05
        assert set(model.feature_names) == set(_tests_at_temperature(27))

    def test_full_tester_flow(self, mems_data):
        train, test = mems_data
        compactor = Compactor(guard_band=0.03,
                              model_factory=_fixed_factory)
        eliminated = _tests_at_temperature(-40) + _tests_at_temperature(80)
        model, _ = compactor.evaluate_subset(train, test, eliminated)

        costs, groups = {}, {}
        for temp in TEMPERATURES:
            for name in _tests_at_temperature(temp):
                costs[name] = 1.0
                groups[name] = "{:g}C".format(temp)
        cost_model = CostModel(costs, groups,
                               {"-40C": 25.0, "27C": 2.0, "80C": 25.0})

        lut = LookupTable(model, max_cells=100_000)
        outcome = Program(lut, cost_model).run(test)
        assert outcome.cost_reduction > 0.5
        assert outcome.report.error_rate < 0.1

    def test_greedy_loop_on_mems(self, mems_data):
        train, test = mems_data
        result = compact_specification_tests(
            train, test, tolerance=0.03, guard_band=0.03,
            model_factory=_fixed_factory)
        # Twelve highly redundant tests: several must fall.
        assert len(result.eliminated) >= 4
        assert result.final_report.error_rate <= 0.03 + 1e-9


class TestOpampEndToEnd:
    def test_compaction_finds_redundancy(self, opamp_data):
        train, test = opamp_data
        result = compact_specification_tests(
            train, test, tolerance=0.03, guard_band=0.05,
            model_factory=_fixed_factory)
        assert len(result.eliminated) >= 1
        assert result.final_report.error_rate <= 0.03 + 1e-9

    def test_no_elimination_zero_error(self, opamp_data):
        train, test = opamp_data
        compactor = Compactor(guard_band=0.05,
                              model_factory=_fixed_factory)
        _, report = compactor.evaluate_subset(train, test, [])
        assert report.error_rate == 0.0

    def test_guard_band_population_reasonable(self, opamp_data):
        train, test = opamp_data
        compactor = Compactor(guard_band=0.05,
                              model_factory=_fixed_factory)
        model, report = compactor.evaluate_subset(train, test, ["gain"])
        # Paper Fig. 5 shows a substantial but bounded guard population.
        assert 0.0 < report.guard_rate < 0.7


class TestDeterminism:
    def test_same_seed_same_compaction(self, mems_data):
        train, test = mems_data
        kwargs = dict(tolerance=0.03, guard_band=0.03,
                      model_factory=_fixed_factory)
        a = compact_specification_tests(train, test, **kwargs)
        b = compact_specification_tests(train, test, **kwargs)
        assert a.eliminated == b.eliminated
        assert a.final_report == b.final_report
