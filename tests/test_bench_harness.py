"""Benchmark-harness tests (caching and scale selection)."""

import numpy as np
import pytest

from benchmarks import harness
from repro.mems import MEMS_SPECIFICATIONS


class TestScales:
    def test_default_scale_selected(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert harness.bench_scale() == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert harness.bench_scale() == "full"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "gigantic")
        with pytest.raises(ValueError):
            harness.bench_scale()

    def test_every_scale_covers_every_device(self):
        for sizes in harness.SCALES.values():
            assert set(sizes) == {"opamp", "mems"}
        assert set(harness.SEEDS) == {"opamp", "mems"}

    def test_sim_jobs_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SIM_JOBS", raising=False)
        assert harness.sim_jobs() == 1

    def test_sim_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SIM_JOBS", "-1")
        assert harness.sim_jobs() == -1

    def test_sim_jobs_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SIM_JOBS", "many")
        with pytest.raises(ValueError):
            harness.sim_jobs()


class TestLoadPopulation:
    STORE = "mems-accelerometer-s7"

    def test_generates_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        ds = harness.load_population("mems", 4, seed=7)
        assert len(ds) == 4
        assert (tmp_path / self.STORE / "manifest.json").exists()
        # Second call loads from disk (byte-identical values).
        again = harness.load_population("mems", 4, seed=7)
        assert np.array_equal(again.values, ds.values)

    def test_subsamples_larger_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        big = harness.load_population("mems", 6, seed=7)
        small = harness.load_population("mems", 3, seed=7)
        assert np.array_equal(small.values, big.values[:3])
        # The subsample reused the one (device, seed) store.
        assert [p.name for p in tmp_path.iterdir()] == [self.STORE]

    def test_growing_request_extends_in_place(self, tmp_path,
                                              monkeypatch):
        """Asking for more rows resumes the existing store rather than
        regenerating it -- and matches a cold cache bit for bit."""
        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        small = harness.load_population("mems", 3, seed=7)
        grown = harness.load_population("mems", 5, seed=7)
        assert np.array_equal(grown.values[:3], small.values)
        assert [p.name for p in tmp_path.iterdir()] == [self.STORE]

    def test_untagged_legacy_cache_ignored(self, tmp_path, monkeypatch):
        """Flat pre-data-plane cache files (sequential draw order or
        per-instance ``.pi.npz``) must never be served as populations."""
        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        stale = harness.load_population("mems", 5, seed=7)
        import shutil

        shutil.rmtree(tmp_path / self.STORE)
        (tmp_path / "mems_5_7.pi.npz").write_bytes(b"not a population")
        fresh = harness.load_population("mems", 3, seed=7)
        assert np.array_equal(fresh.values, stale.values[:3])
        assert (tmp_path / self.STORE / "manifest.json").exists()

    def test_relabels_with_current_specifications(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        ds = harness.load_population("mems", 3, seed=7)
        assert ds.specifications == MEMS_SPECIFICATIONS

    def test_parallel_generation_caches_identical_bytes(self, tmp_path,
                                                        monkeypatch):
        import shutil

        monkeypatch.setattr(harness, "CACHE_DIR", tmp_path)
        serial = harness.load_population("mems", 5, seed=3)
        shutil.rmtree(tmp_path / "mems-accelerometer-s3")
        parallel = harness.load_population("mems", 5, seed=3, n_jobs=2)
        assert np.array_equal(serial.values, parallel.values)

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            harness.load_population("flux-capacitor", 5, seed=0)


class TestWallTime:
    def test_returns_result_and_duration(self):
        result, seconds = harness.wall_time(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert seconds >= 0.0


class TestPrintTable:
    def test_prints_all_rows(self, capsys):
        harness.print_table("demo", ["a", "b"],
                            [(1, 2.5), ("x", 0.125)])
        out = capsys.readouterr().out
        assert "demo" in out
        assert "2.500" in out
        assert "0.125" in out
