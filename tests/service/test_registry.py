"""Registry semantics: versioning, hot-swap, retirement, LRU, checksums."""

import hashlib
import shutil

import pytest

from repro.errors import ServiceError, UnknownArtifactError
from repro.service import ArtifactRegistry, file_checksum


class TestRegisterAndResolve:
    def test_register_from_path_records_checksum(self, saved):
        registry = ArtifactRegistry()
        entry = registry.register("synthA", "1", saved["lookup"])
        assert entry.checksum == file_checksum(saved["lookup"])
        assert entry.path == saved["lookup"]
        assert not entry.retired

    def test_get_returns_key_and_artifact(self, registry, lookup_pair):
        key, artifact = registry.get("synthA")
        assert key == ("synthA", "1")
        assert artifact.kept == lookup_pair[1].kept

    def test_register_from_object_is_served(self, live_pair):
        registry = ArtifactRegistry()
        registry.register("obj", "1", live_pair[1])
        key, artifact = registry.get("obj")
        assert key == ("obj", "1")
        assert artifact is live_pair[1]

    def test_unknown_device_raises(self, registry):
        with pytest.raises(UnknownArtifactError):
            registry.resolve("nope")

    def test_unknown_version_raises_and_names_registered(self, registry):
        with pytest.raises(UnknownArtifactError, match="synthA@1"):
            registry.resolve("synthA", "9")

    def test_latest_wins_without_pin(self, registry, saved):
        registry.register("synthA", "2", saved["swap"])
        assert registry.resolve("synthA") == ("synthA", "2")
        # A pinned request still reaches the older version.
        assert registry.resolve("synthA", "1") == ("synthA", "1")

    def test_describe_lists_every_registration(self, registry, saved):
        registry.register("synthA", "2", saved["swap"])
        listing = registry.describe()
        keys = {(row["device"], row["version"]) for row in listing}
        assert keys == {("synthA", "1"), ("synthA", "2"), ("synthB", "1")}
        assert all("checksum" in row and "kept" in row for row in listing)


class TestRetire:
    def test_retired_version_stops_serving(self, registry):
        registry.retire("synthA", "1")
        with pytest.raises(UnknownArtifactError, match="retired"):
            registry.resolve("synthA", "1")
        with pytest.raises(UnknownArtifactError):
            registry.resolve("synthA")

    def test_retire_falls_back_to_previous_active(self, registry, saved):
        registry.register("synthA", "2", saved["swap"])
        registry.retire("synthA", "2")
        assert registry.resolve("synthA") == ("synthA", "1")

    def test_retired_entry_stays_listed(self, registry):
        registry.retire("synthA", "1")
        rows = {(r["device"], r["version"]): r for r in registry.describe()}
        assert rows[("synthA", "1")]["retired"] is True


class TestResidencyBound:
    def test_lru_evicts_and_reloads_transparently(self, saved):
        registry = ArtifactRegistry(max_resident=1)
        registry.register("synthA", "1", saved["lookup"])
        registry.register("synthB", "1", saved["live"])
        # Only one artifact may be resident at a time.
        assert len(registry.resident_keys()) == 1
        _, first = registry.get("synthA")
        _, second = registry.get("synthB")
        before = registry.n_reloads
        _, again = registry.get("synthA")
        assert registry.n_reloads > before
        # The reloaded artifact is the same program, not the other one.
        assert again.kept == first.kept
        assert (again.specifications.names == first.specifications.names)
        assert (second.specifications.names != first.specifications.names)

    def test_object_backed_entries_are_pinned(self, saved, live_pair):
        registry = ArtifactRegistry(max_resident=1)
        registry.register("obj", "1", live_pair[1])
        registry.register("synthA", "1", saved["lookup"])
        registry.get("synthA")
        # The object-backed entry survives any amount of file churn.
        _, artifact = registry.get("obj")
        assert artifact is live_pair[1]

    def test_pinned_entries_ride_on_top_of_the_budget(self, saved,
                                                      live_pair):
        """A pinned object-backed entry must not consume the
        file-backed residency budget: with max_resident=1 a single
        file-backed artifact stays resident instead of reloading on
        every get()."""
        registry = ArtifactRegistry(max_resident=1)
        registry.register("obj", "1", live_pair[1])  # pinned
        registry.register("synthA", "1", saved["lookup"])
        registry.get("synthA")
        before = registry.n_reloads
        registry.get("synthA")
        assert registry.n_reloads == before
        assert set(registry.resident_keys()) == {("obj", "1"),
                                                 ("synthA", "1")}

    def test_max_resident_must_be_positive(self):
        with pytest.raises(ServiceError):
            ArtifactRegistry(max_resident=0)


class TestChecksumPinning:
    def test_changed_file_refuses_to_reload(self, saved):
        registry = ArtifactRegistry(max_resident=1)
        registry.register("synthA", "1", saved["lookup"])
        registry.register("synthB", "1", saved["live"])  # evicts synthA
        # The file silently changes on disk (still a valid artifact --
        # the checksum, not the loader, must catch it).
        shutil.copyfile(saved["swap"], saved["lookup"])
        with pytest.raises(ServiceError, match="changed on disk"):
            registry.get("synthA")

    def test_reregistering_blesses_new_bytes(self, saved):
        registry = ArtifactRegistry(max_resident=1)
        registry.register("synthA", "1", saved["lookup"])
        shutil.copyfile(saved["swap"], saved["lookup"])
        entry = registry.register("synthA", "1", saved["lookup"])
        assert entry.checksum == file_checksum(saved["lookup"])
        registry.get("synthA")  # serves without complaint

    def test_checksum_describes_the_loaded_bytes_exactly(self, saved):
        """Registration reads the file once: the bytes hashed and the
        bytes the artifact is built from are the same buffer, so a
        file swapped at any point mid-registration cannot
        desynchronize the recorded digest from the resident
        artifact."""
        from repro.floor import TestProgramArtifact

        seen = {}

        def recording_loader(blob, source):
            seen["blob"] = blob
            # The file changes under the registry mid-load --
            # irrelevant, the buffer already in hand is what serves.
            shutil.copyfile(saved["swap"], source)
            return TestProgramArtifact.loads(blob, source=source)

        registry = ArtifactRegistry(loader=recording_loader)
        entry = registry.register("synthA", "1", saved["lookup"])
        assert entry.checksum == hashlib.sha256(seen["blob"]).hexdigest()
        # What is resident is the lookup program, not the swap bytes
        # the file now holds.
        _, artifact = registry.get("synthA")
        assert artifact.lookup is not None

    def test_swapped_bytes_are_never_unpickled_on_reload(self, saved):
        """On a cold reload the pin is verified against the bytes read
        before they reach the unpickler."""
        from repro.floor import TestProgramArtifact

        loaded_sources = []

        def loader(blob, source):
            loaded_sources.append(source)
            return TestProgramArtifact.loads(blob, source=source)

        registry = ArtifactRegistry(max_resident=1, loader=loader)
        registry.register("synthA", "1", saved["lookup"])
        registry.register("synthB", "1", saved["live"])  # evicts synthA
        shutil.copyfile(saved["swap"], saved["lookup"])
        loaded_sources.clear()
        with pytest.raises(ServiceError, match="changed on disk"):
            registry.get("synthA")
        assert loaded_sources == []
