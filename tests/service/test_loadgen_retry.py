"""Loadgen worker-failure path: retry, don't fail the plan.

A connection refused or a 503 mid-plan means a cluster shard is
respawning; the generator must back off and replay the request against
the respawned worker instead of failing the whole plan.  The fast
tests prove the retry loop against stub servers that fail in
controlled ways; the live test kills a real cluster worker mid-load
and requires the run to finish bit-identical anyway.
"""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service import TrafficPlan, offline_reference, run_load, shard_for
from repro.service.loadgen import MAX_RETRIES
from repro.service.server import _json_body, _read_request, _write_response

from tests.synthetic import SyntheticDut


def _plan(n_devices=40):
    return TrafficPlan(
        "synthA", SyntheticDut(n_specs=6, seed=99), n_devices, seed=7
    )


def run_with_stub(scenario, handler, timeout=60):
    """asyncio.run a loadgen scenario against a stub HTTP handler."""

    async def main():
        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            return await scenario(port)
        finally:
            server.close()
            await server.wait_closed()

    return asyncio.run(asyncio.wait_for(main(), timeout))


def _stub_handler(*, fail_503=0, drop=0, state=None):
    """A /disposition stub: N 503 replies, M dropped connections, then
    all-pass decisions."""
    state = state if state is not None else {"n_503": 0, "n_drop": 0}

    async def handle(reader, writer):
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    return
                _, _, _, _, body = request
                payload = _json_body(body)
                if state["n_503"] < fail_503:
                    state["n_503"] += 1
                    await _write_response(
                        writer, 503, {"error": "shard respawning"}, True
                    )
                    continue
                if state["n_drop"] < drop:
                    state["n_drop"] += 1
                    writer.close()
                    return
                decisions = [1] * len(payload["measurements"])
                await _write_response(
                    writer, 200, {"decisions": decisions}, True
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass

    return handle, state


class TestRetryPaths:
    def test_503_is_retried_with_backoff(self):
        handler, state = _stub_handler(fail_503=3)

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan()], n_clients=2, seed=3
            )

        report = run_with_stub(scenario, handler)
        # Every 503 became a backoff retry, and the plan completed.
        assert state["n_503"] == 3
        assert report.n_retried == 3
        assert report.plans[0].n_devices == 40

    def test_dropped_connection_is_retried(self):
        # The server accepts the request then closes without replying
        # -- the shape of a worker SIGKILLed mid-round-trip.  The
        # client's own reconnect treats the *first* drop per request
        # as a stale keep-alive; the stub drops twice in a row so the
        # failure reaches run_load's retry loop.
        handler, state = _stub_handler(drop=2)

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan()], n_clients=1, seed=3
            )

        report = run_with_stub(scenario, handler)
        assert state["n_drop"] == 2
        assert report.n_retried >= 1
        assert report.plans[0].n_devices == 40

    def test_permanent_failure_still_raises(self):
        # Retries are for transient windows; a server that always
        # refuses must surface a ServiceError, not loop forever.
        async def handle(reader, writer):
            try:
                while True:
                    request = await _read_request(reader)
                    if request is None:
                        return
                    await _write_response(
                        writer, 404, {"error": "unknown artifact"}, True
                    )
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan(4)], n_clients=1, seed=3
            )

        with pytest.raises(ServiceError, match="404"):
            run_with_stub(scenario, handle)

    def test_retry_budget_is_bounded(self):
        # MAX_RETRIES of pure 503 must end in a clean error carrying
        # the 503, not an infinite retry loop.
        handler, _ = _stub_handler(fail_503=10**9)

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan(1)], n_clients=1, max_chunk=1, seed=3
            )

        # Shrink the budget so the test is fast.
        import repro.service.loadgen as loadgen_module

        original = loadgen_module.MAX_RETRIES
        loadgen_module.MAX_RETRIES = 5
        try:
            with pytest.raises(ServiceError, match="503"):
                run_with_stub(scenario, handler)
        finally:
            loadgen_module.MAX_RETRIES = original
        assert MAX_RETRIES == original


class TestSeededBackoff:
    """RetryBackoff: replayable jitter, Retry-After floor, cap."""

    def test_same_seed_replays_the_same_delays(self):
        import numpy as np

        from repro.service import RetryBackoff

        first = RetryBackoff(np.random.SeedSequence(42))
        second = RetryBackoff(np.random.SeedSequence(42))
        for attempt in range(10):
            assert first.next_delay(attempt) == second.next_delay(attempt)
        assert first.delays == second.delays

    def test_different_clients_desynchronize(self):
        import numpy as np

        from repro.service import RetryBackoff

        children = np.random.SeedSequence(42).spawn(2)
        a = RetryBackoff(children[0])
        b = RetryBackoff(children[1])
        assert [a.next_delay(i) for i in range(5)] != [
            b.next_delay(i) for i in range(5)]

    def test_exponential_with_jitter_under_cap(self):
        import numpy as np

        from repro.service import RetryBackoff
        from repro.service.loadgen import BACKOFF_CAP, BACKOFF_SECONDS

        backoff = RetryBackoff(np.random.SeedSequence(7))
        for attempt in range(20):
            delay = backoff.next_delay(attempt)
            base = min(BACKOFF_CAP, BACKOFF_SECONDS * 2.0 ** attempt)
            assert 0.75 * base <= delay < 1.25 * base
        # Deep attempts never exceed the jittered cap.
        assert max(backoff.delays) < BACKOFF_CAP * 1.25

    def test_retry_after_floors_the_sleep(self):
        import numpy as np

        from repro.service import RetryBackoff

        backoff = RetryBackoff(np.random.SeedSequence(3))
        # Attempt 0's jittered exponential is ~20ms; the server said 2s.
        assert backoff.next_delay(0, retry_after=2.0) == 2.0
        # A floor below the local guess changes nothing.
        delay = backoff.next_delay(9, retry_after=0.001)
        assert delay > 0.001

    def test_parse_retry_after_degrades_on_garbage(self):
        from repro.service.loadgen import parse_retry_after

        assert parse_retry_after({"retry-after": "1"}) == 1.0
        assert parse_retry_after({"retry-after": "0.25"}) == 0.25
        assert parse_retry_after({}) is None
        assert parse_retry_after({"retry-after": "soon"}) is None
        assert parse_retry_after({"retry-after": "-3"}) is None


class TestRetryReplayability:
    """The realized retry schedule is a pure function of the run seed."""

    @staticmethod
    def _raw_503_handler(fail_503):
        """N raw 503s (no Retry-After -- pure local backoff), then 200s."""
        state = {"n_503": 0}

        async def handle(reader, writer):
            try:
                while True:
                    request = await _read_request(reader)
                    if request is None:
                        return
                    _, _, _, _, body = request
                    payload = _json_body(body)
                    if state["n_503"] < fail_503:
                        state["n_503"] += 1
                        reply = b'{"error": "respawning"}'
                        writer.write(
                            b"HTTP/1.1 503 Service Unavailable\r\n"
                            b"Content-Type: application/json\r\n"
                            b"Content-Length: "
                            + str(len(reply)).encode()
                            + b"\r\nConnection: keep-alive\r\n\r\n"
                            + reply)
                        await writer.drain()
                        continue
                    decisions = [1] * len(payload["measurements"])
                    await _write_response(
                        writer, 200, {"decisions": decisions}, True)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

        return handle, state

    def _run(self, fail_503):
        handler, _ = self._raw_503_handler(fail_503)

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan()], n_clients=1, seed=11
            )

        return run_with_stub(scenario, handler)

    def test_identical_runs_replay_identical_delays(self):
        import numpy as np

        first = self._run(fail_503=3)
        second = self._run(fail_503=3)
        assert first.retry_delays is not None
        assert len(first.retry_delays) == 3
        np.testing.assert_array_equal(first.retry_delays,
                                      second.retry_delays)
        # And the decisions replayed bit-identically too.
        np.testing.assert_array_equal(first.plans[0].decisions,
                                      second.plans[0].decisions)

    def test_clean_run_records_no_delays(self):
        report = self._run(fail_503=0)
        assert report.n_retried == 0
        assert len(report.retry_delays) == 0

    def test_server_retry_after_floors_the_realized_delays(self):
        # A raw 503 carrying an explicit Retry-After must floor every
        # backoff sleep at the server's schedule, not the local guess.
        state = {"n_503": 0}
        floor_s = 0.09

        async def handle(reader, writer):
            try:
                while True:
                    request = await _read_request(reader)
                    if request is None:
                        return
                    _, _, _, _, body = request
                    payload = _json_body(body)
                    if state["n_503"] < 2:
                        state["n_503"] += 1
                        reply = b'{"error": "respawning"}'
                        writer.write(
                            b"HTTP/1.1 503 Service Unavailable\r\n"
                            b"Content-Type: application/json\r\n"
                            b"Content-Length: "
                            + str(len(reply)).encode()
                            + b"\r\nRetry-After: "
                            + str(floor_s).encode()
                            + b"\r\nConnection: keep-alive\r\n\r\n"
                            + reply)
                        await writer.drain()
                        continue
                    decisions = [1] * len(payload["measurements"])
                    await _write_response(
                        writer, 200, {"decisions": decisions}, True)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

        async def scenario(port):
            return await run_load(
                "127.0.0.1", port, [_plan(8)], n_clients=1, seed=2
            )

        report = run_with_stub(scenario, handle)
        assert state["n_503"] == 2
        assert len(report.retry_delays) == 2
        assert all(delay >= floor_s for delay in report.retry_delays)


@pytest.mark.slow
class TestKilledWorkerLive:
    def test_worker_kill_mid_load_retries_and_stays_equivalent(
        self, saved, lookup_pair
    ):
        from repro.service import ClusterService

        lookup_dut, lookup_artifact = lookup_pair
        plan = TrafficPlan(
            "synthA",
            lookup_dut,
            800,
            seed=13,
            reference=offline_reference(lookup_artifact),
        )
        victim = shard_for("synthA", 2)

        async def main():
            cluster = ClusterService(
                registrations=[("synthA", "1", saved["lookup"])],
                n_workers=2,
                health_interval=0.2,
            )
            await cluster.start("127.0.0.1", 0)
            try:
                load = asyncio.ensure_future(
                    run_load(
                        "127.0.0.1",
                        cluster.port,
                        [plan],
                        n_clients=2,
                        max_chunk=8,
                        seed=5,
                    )
                )
                # Let the load get going, then kill the shard serving
                # it -- mid-plan, with requests in flight.
                await asyncio.sleep(0.1)
                cluster.kill_worker(victim)
                return await load
            finally:
                await cluster.stop()

        report = asyncio.run(asyncio.wait_for(main(), 180))
        # The plan finished despite the crash, the respawn window cost
        # retries, and every decision still matches the offline floor.
        assert report.n_retried > 0
        assert report.equivalent
        assert report.plans[0].n_devices == 800
