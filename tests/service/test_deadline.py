"""Graceful degradation under deadlines: X-Repro-Deadline-Ms -> 504.

The header carries the caller's *remaining budget* in milliseconds;
each tier converts it to an absolute monotonic deadline and refuses to
spend floor work on a request that has already missed it.  An expired
deadline is a typed 504 before any disposition runs -- at the router,
at the worker front end, and inside the batcher queue.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ServiceError
from repro.floor import TestFloor as Floor
from repro.service import FloorService, HttpClient, MicroBatcher
from repro.service.cluster import ClusterService, WorkerHandle
from repro.service.server import DEADLINE_HEADER, parse_deadline


def _rows(dut, n, seed):
    rng = np.random.default_rng(seed)
    return np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(n)])


class TestParseDeadline:
    def test_absent_header_means_no_deadline(self):
        assert parse_deadline({}) is None
        assert parse_deadline({DEADLINE_HEADER: "  "}) is None

    def test_budget_becomes_absolute_monotonic_deadline(self):
        before = time.monotonic()
        deadline = parse_deadline({DEADLINE_HEADER: "250"})
        after = time.monotonic()
        assert before + 0.25 <= deadline <= after + 0.25

    @pytest.mark.parametrize("raw", ["soon", "12abc", "", "nan", "inf",
                                     "0", "-50"])
    def test_malformed_or_nonpositive_budgets_are_typed(self, raw):
        if not raw.strip():
            assert parse_deadline({DEADLINE_HEADER: raw}) is None
            return
        with pytest.raises(ServiceError, match="Deadline-Ms"):
            parse_deadline({DEADLINE_HEADER: raw})


class TestServiceDeadline:
    def _route(self, registry, budget_ms, payload_rows):
        async def main():
            service = FloorService(registry)
            body = json.dumps({"device": "synthA",
                               "measurements": payload_rows}).encode()
            headers = {DEADLINE_HEADER: budget_ms} if budget_ms else {}
            return await service._route(
                "POST", "/disposition", headers, body, ("127.0.0.1", 1))

        return asyncio.run(main())

    def test_expired_deadline_is_504_before_floor_work(self, registry,
                                                       lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 2, seed=3).tolist()
        # 1 microsecond of budget is gone by the time the route runs.
        status, reply = self._route(registry, "0.001", rows)
        assert status == 504
        assert "deadline" in reply["error"]

    def test_generous_deadline_serves_normally(self, registry, lookup_pair):
        dut, artifact = lookup_pair
        rows = _rows(dut, 3, seed=4)
        status, reply = self._route(registry, "30000", rows.tolist())
        assert status == 200
        offline = Floor(artifact, monitor=False).dispose(rows)
        assert reply["decisions"] == [int(d) for d in offline.decisions]

    def test_malformed_deadline_is_400_not_500(self, registry, lookup_pair):
        dut, _ = lookup_pair
        status, reply = self._route(registry, "whenever",
                                    _rows(dut, 1, seed=5).tolist())
        assert status == 400
        assert "Deadline-Ms" in reply["error"]


class TestBatcherDeadline:
    def test_pre_queue_expiry_is_typed(self, lookup_pair):
        _, artifact = lookup_pair
        dut = lookup_pair[0]

        async def scenario():
            batcher = MicroBatcher(Floor(artifact, monitor=False))
            with pytest.raises(DeadlineExceededError, match="before"):
                await batcher.submit(_rows(dut, 2, seed=6),
                                     deadline=time.monotonic() - 0.01)
            return batcher.stats.n_deadline_expired

        assert asyncio.run(asyncio.wait_for(scenario(), 10)) == 1

    def test_expiry_while_queued_is_typed_and_peers_survive(self,
                                                            lookup_pair):
        """A request whose budget dies in the queue 504s; the batch
        that eventually flushes still serves its live peers."""
        dut, artifact = lookup_pair

        async def scenario():
            batcher = MicroBatcher(Floor(artifact, monitor=False),
                                   max_batch_size=1024, max_latency=0.25)
            doomed = asyncio.ensure_future(batcher.submit(
                _rows(dut, 2, seed=7),
                deadline=time.monotonic() + 0.02))
            alive = asyncio.ensure_future(batcher.submit(
                _rows(dut, 3, seed=8)))
            results = await asyncio.gather(doomed, alive,
                                           return_exceptions=True)
            return results, batcher.stats.n_deadline_expired

        (doomed_result, alive_result), n_expired = asyncio.run(
            asyncio.wait_for(scenario(), 10))
        assert isinstance(doomed_result, DeadlineExceededError)
        assert "waited" in str(doomed_result)
        assert alive_result["counts"]["n_devices"] == 3
        assert n_expired == 1


class TestClusterDeadline:
    def test_expired_deadline_never_reaches_a_worker(self, monkeypatch):
        cluster = ClusterService(n_workers=2)
        cluster._workers = [WorkerHandle(index=i, port=1000 + i,
                                         healthy=True) for i in range(2)]

        def fake_backend(backends, worker):  # pragma: no cover
            raise AssertionError("an expired request must not be proxied")

        monkeypatch.setattr(cluster, "_backend", fake_backend)
        body = json.dumps({"device": "synthA",
                           "measurements": [[0.0] * 6]}).encode()

        async def main():
            return await cluster._route(
                "POST", "/disposition", {DEADLINE_HEADER: "0.001"},
                body, ("127.0.0.1", 1), "", {})

        status, reply, _ = asyncio.run(main())
        assert status == 504
        assert "router" in reply["error"]

    def test_remaining_budget_is_forwarded_to_the_worker(self, monkeypatch):
        cluster = ClusterService(n_workers=1)
        cluster._workers = [WorkerHandle(index=0, port=1000, healthy=True)]
        seen = {}

        class FakeClient:
            last_headers = {}

            async def request(self, method, path, body, headers=None):
                seen.update(headers or {})
                return 200, {"decisions": [1]}

        monkeypatch.setattr(
            cluster, "_backend", lambda backends, worker: FakeClient())
        body = json.dumps({"device": "synthA",
                           "measurements": [[0.0] * 6]}).encode()

        async def main():
            return await cluster._route(
                "POST", "/disposition", {DEADLINE_HEADER: "5000"},
                body, ("127.0.0.1", 1), "", {})

        status, _, _ = asyncio.run(main())
        assert status == 200
        forwarded = float(seen[DEADLINE_HEADER])
        # The worker sees the *remaining* budget: positive, and never
        # more than what the caller granted.
        assert 0 < forwarded <= 5000


@pytest.mark.slow
class TestDeadlineLive:
    def test_end_to_end_504_through_a_live_cluster(self, saved):
        async def main():
            cluster = ClusterService(
                registrations=[("synthA", "1", saved["lookup"])],
                n_workers=2)
            await cluster.start("127.0.0.1", 0)
            client = HttpClient("127.0.0.1", cluster.port)
            payload = {"device": "synthA", "measurements": [[0.0] * 6]}
            try:
                expired = await client.request(
                    "POST", "/disposition", payload,
                    headers={"X-Repro-Deadline-Ms": "0.001"})
                served = await client.request(
                    "POST", "/disposition", payload,
                    headers={"X-Repro-Deadline-Ms": "30000"})
            finally:
                await client.close()
                await cluster.stop()
            return expired, served

        (expired_status, expired_reply), (served_status, _) = asyncio.run(
            asyncio.wait_for(main(), 180))
        assert expired_status == 504
        assert "deadline" in expired_reply["error"]
        assert served_status == 200
