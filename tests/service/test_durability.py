"""StateJournal semantics: append/replay, torn tails, corruption.

The journal's one job is that a restart reconstructs exactly the acked
control-plane history -- no more (mid-file corruption must raise, not
be skipped) and no less (a torn trailing record was never acked, so
truncating it is correct).  These tests drive the file format directly:
crafting valid lines with the module's own encoder, tearing them at
byte granularity, and checking both recovery verdicts.
"""

import os

import pytest

from repro.errors import JournalError
from repro.service import JournalWarning, StateJournal
from repro.service import durability as durability_module
from repro.service.durability import JOURNAL_FILE, _encode


def _journal_path(tmp_path):
    return os.path.join(str(tmp_path), JOURNAL_FILE)


class TestAppendReplay:
    def test_round_trip_across_restart(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "synthA", "1", path="a1.rtp")
        journal.append("register", "synthA", "2", path="a2.rtp")
        journal.append("retire", "synthA", "1")
        journal.close()

        reopened = StateJournal(tmp_path)
        ops = reopened.replay()
        assert [(r["op"], r["device"], r["version"]) for r in ops] == [
            ("register", "synthA", "1"),
            ("register", "synthA", "2"),
            ("retire", "synthA", "1"),
        ]
        assert [r["seq"] for r in ops] == [1, 2, 3]
        assert ops[0]["path"] == "a1.rtp"
        assert len(reopened) == 3
        reopened.close()

    def test_append_continues_sequence_after_restart(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        journal.close()
        reopened = StateJournal(tmp_path)
        record = reopened.append("register", "b", "1", path="b.rtp")
        assert record["seq"] == 2
        reopened.close()

    def test_replay_returns_copies(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        journal.replay()[0]["device"] = "mutated"
        assert journal.replay()[0]["device"] == "a"
        journal.close()

    def test_register_requires_path(self, tmp_path):
        journal = StateJournal(tmp_path)
        with pytest.raises(JournalError, match="path"):
            journal.append("register", "a", "1")
        journal.close()

    def test_unknown_op_is_typed(self, tmp_path):
        journal = StateJournal(tmp_path)
        with pytest.raises(JournalError, match="unknown journal op"):
            journal.append("explode", "a", "1")
        journal.close()


class TestTornTail:
    """A crash mid-append leaves a partial final record: truncate it."""

    def test_unterminated_tail_is_truncated_with_warning(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        journal.append("register", "b", "1", path="b.rtp")
        journal.close()
        path = _journal_path(tmp_path)
        good_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            # Half an encoded record, no terminator: the exact shape
            # a kill -9 mid-write leaves behind.
            line = _encode({"seq": 3, "op": "retire", "device": "a",
                            "version": "1"})
            handle.write(line[: len(line) // 2])

        with pytest.warns(JournalWarning, match="torn trailing record"):
            reopened = StateJournal(tmp_path)
        assert len(reopened) == 2
        # The truncation is durable: the file itself shrank back.
        assert os.path.getsize(path) == good_size
        # And the journal is writable again at the right sequence.
        assert reopened.append("retire", "a", "1")["seq"] == 3
        reopened.close()

    def test_corrupt_final_complete_line_is_also_a_tail(self, tmp_path):
        # A final line that fails its checksum (terminator intact) is
        # still the torn-tail case: nothing valid follows it, so it
        # cannot have been acked before anything that survived.
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        journal.close()
        with open(_journal_path(tmp_path), "ab") as handle:
            handle.write(b"0000000000000000 {\"seq\": 2}\n")
        with pytest.warns(JournalWarning):
            reopened = StateJournal(tmp_path)
        assert len(reopened) == 1
        reopened.close()

    def test_empty_and_missing_journals_are_clean(self, tmp_path):
        journal = StateJournal(tmp_path)  # no file yet
        assert len(journal) == 0
        journal.close()
        open(_journal_path(tmp_path), "wb").close()
        assert len(StateJournal(tmp_path)) == 0


class TestMidFileCorruption:
    """Corruption *before* the tail must refuse to reconstruct."""

    def _write_lines(self, tmp_path, lines):
        with open(_journal_path(tmp_path), "wb") as handle:
            for line in lines:
                handle.write(line)

    def test_flipped_byte_mid_file_raises(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        journal.append("register", "b", "1", path="b.rtp")
        journal.close()
        path = _journal_path(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(20)  # inside record 1's payload
            byte = handle.read(1)
            handle.seek(20)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(JournalError, match="corrupt at record 1"):
            StateJournal(tmp_path)

    def test_sequence_gap_raises(self, tmp_path):
        self._write_lines(tmp_path, [
            _encode({"seq": 1, "op": "register", "device": "a",
                     "version": "1", "path": "a.rtp"}),
            _encode({"seq": 3, "op": "retire", "device": "a",
                     "version": "1"}),
            _encode({"seq": 4, "op": "register", "device": "b",
                     "version": "1", "path": "b.rtp"}),
        ])
        with pytest.raises(JournalError, match="sequence gap"):
            StateJournal(tmp_path)

    def test_unknown_op_on_disk_raises(self, tmp_path):
        self._write_lines(tmp_path, [
            _encode({"seq": 1, "op": "format", "device": "a",
                     "version": "1"}),
            _encode({"seq": 2, "op": "retire", "device": "a",
                     "version": "1"}),
        ])
        with pytest.raises(JournalError, match="unknown op"):
            StateJournal(tmp_path)


class TestFaultHook:
    """The chaos hook's two journal faults, at the unit level."""

    def _with_hook(self, hook):
        durability_module.JOURNAL_FAULT_HOOK = hook

    def teardown_method(self):
        durability_module.JOURNAL_FAULT_HOOK = None

    def test_disk_full_writes_nothing(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        size_before = os.path.getsize(_journal_path(tmp_path))
        self._with_hook(lambda record: "disk_full")
        with pytest.raises(OSError, match="no space left"):
            journal.append("register", "b", "1", path="b.rtp")
        self._with_hook(None)
        # Nothing was acked, nothing landed; the journal is not
        # poisoned and the next append takes the same sequence slot.
        assert os.path.getsize(_journal_path(tmp_path)) == size_before
        assert journal.append("register", "b", "1", path="b.rtp")["seq"] == 2
        journal.close()

    def test_torn_append_poisons_until_restart(self, tmp_path):
        journal = StateJournal(tmp_path)
        journal.append("register", "a", "1", path="a.rtp")
        self._with_hook(lambda record: "torn")
        with pytest.raises(OSError, match="torn journal append"):
            journal.append("register", "b", "1", path="b.rtp")
        self._with_hook(None)
        # The file now ends in a partial record only a recovery scan
        # may remove; further appends must refuse rather than write
        # after garbage.
        with pytest.raises(JournalError, match="restart"):
            journal.append("register", "c", "1", path="c.rtp")
        journal.close()

        with pytest.warns(JournalWarning):
            recovered = StateJournal(tmp_path)
        assert [r["device"] for r in recovered.replay()] == ["a"]
        assert recovered.append(
            "register", "c", "1", path="c.rtp")["seq"] == 2
        recovered.close()


class TestManifestFromOps:
    def test_hot_swap_order_is_preserved(self):
        manifest = StateJournal.manifest_from_ops([
            {"op": "register", "device": "a", "version": "1",
             "path": "a1.rtp"},
            {"op": "register", "device": "a", "version": "2",
             "path": "a2.rtp"},
            {"op": "register", "device": "b", "version": "1",
             "path": "b1.rtp"},
        ])
        assert [(e["device"], e["version"]) for e in manifest] == [
            ("a", "1"), ("a", "2"), ("b", "1")]
        assert all(e["retired"] is False for e in manifest)

    def test_re_register_moves_to_newest(self):
        # Registering a1 again after a2 makes a1 newest-active --
        # exactly the cluster's commit semantics, which replay must
        # reproduce or a restart would silently un-swap an artifact.
        manifest = StateJournal.manifest_from_ops([
            {"op": "register", "device": "a", "version": "1",
             "path": "a1.rtp"},
            {"op": "register", "device": "a", "version": "2",
             "path": "a2.rtp"},
            {"op": "register", "device": "a", "version": "1",
             "path": "a1.rtp"},
        ])
        assert [e["version"] for e in manifest] == ["2", "1"]

    def test_retire_flags_in_place(self):
        manifest = StateJournal.manifest_from_ops([
            {"op": "register", "device": "a", "version": "1",
             "path": "a1.rtp"},
            {"op": "register", "device": "a", "version": "2",
             "path": "a2.rtp"},
            {"op": "retire", "device": "a", "version": "2"},
        ])
        assert [(e["version"], e["retired"]) for e in manifest] == [
            ("1", False), ("2", True)]

    def test_retire_of_unknown_key_is_corruption(self):
        with pytest.raises(JournalError, match="never registered"):
            StateJournal.manifest_from_ops([
                {"op": "retire", "device": "ghost", "version": "1"},
            ])
