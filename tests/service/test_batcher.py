"""Micro-batcher semantics: flush triggers, backpressure, equivalence."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.floor import TestFloor as Floor
from repro.service import MicroBatcher


def _rows(dut, n, seed):
    """n full-spec device rows from the dut's own distribution."""
    rng = np.random.default_rng(seed)
    return np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(n)])


def _batcher(pair, monitor=False, **kwargs):
    _, artifact = pair
    return MicroBatcher(Floor(artifact, monitor=monitor), **kwargs)


class TestFlushTriggers:
    def test_size_flush_fires_without_waiting_for_latency(self, lookup_pair):
        dut, _ = lookup_pair

        async def scenario():
            # A latency that would time the test out if it were waited on.
            batcher = _batcher(lookup_pair, max_batch_size=8,
                               max_latency=60.0)
            rows = _rows(dut, 8, seed=3)
            results = await asyncio.gather(
                *(batcher.submit(rows[i]) for i in range(8)))
            return batcher, results

        batcher, results = asyncio.run(asyncio.wait_for(scenario(), 10))
        assert batcher.stats.n_size_flushes == 1
        assert batcher.stats.n_latency_flushes == 0
        assert all(r["flush_reason"] == "size" for r in results)
        assert all(r["batch_rows"] == 8 for r in results)

    def test_latency_flush_releases_a_lone_request(self, lookup_pair):
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=1024,
                               max_latency=0.01)
            return batcher, await batcher.submit(_rows(dut, 3, seed=4))

        batcher, result = asyncio.run(asyncio.wait_for(scenario(), 10))
        assert result["flush_reason"] == "latency"
        assert result["batch_rows"] == 3
        assert batcher.stats.n_latency_flushes == 1

    def test_queue_drains_to_zero_after_flush(self, lookup_pair):
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=4,
                               max_latency=0.01)
            await batcher.submit(_rows(dut, 6, seed=5))
            return batcher.queue_depth

        assert asyncio.run(scenario()) == 0


class TestBackpressure:
    def test_overflow_is_rejected_immediately(self, lookup_pair):
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=16,
                               max_latency=60.0, max_pending=16)
            # Park 10 rows below the flush threshold...
            first = asyncio.ensure_future(batcher.submit(_rows(dut, 10, 6)))
            await asyncio.sleep(0)
            assert batcher.queue_depth == 10
            # ...the next 10-row request would exceed max_pending=16.
            with pytest.raises(ServiceOverloadError):
                await batcher.submit(_rows(dut, 10, 7))
            assert batcher.stats.n_rejected == 1
            # The parked request is intact and completes on flush.
            batcher.flush()
            result = await first
            assert result["counts"]["n_devices"] == 10

        asyncio.run(asyncio.wait_for(scenario(), 10))

    def test_oversized_single_request_is_permanent_400(self, lookup_pair):
        """A request bigger than the whole queue can never be served:
        it must get a non-retryable ServiceError, not a 429 that a
        well-behaved client would retry forever."""
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=8,
                               max_pending=8)
            with pytest.raises(ServiceError, match="split it"):
                await batcher.submit(_rows(dut, 9, seed=8))
            assert batcher.stats.n_rejected == 0

        asyncio.run(scenario())

    def test_submit_after_close_raises(self, lookup_pair):
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair)
            batcher.close()
            with pytest.raises(ServiceError):
                await batcher.submit(_rows(dut, 1, seed=9))

        asyncio.run(scenario())

    def test_max_pending_must_cover_one_batch(self, lookup_pair):
        with pytest.raises(ServiceError):
            _batcher(lookup_pair, max_batch_size=64, max_pending=32)


class TestWidthValidation:
    def test_width_mismatch_rejected_before_enqueue(self, lookup_pair):
        async def scenario():
            batcher = _batcher(lookup_pair)
            with pytest.raises(ServiceError, match="measurements"):
                await batcher.submit(np.zeros((2, batcher.n_specs + 1)))
            assert batcher.queue_depth == 0

        asyncio.run(asyncio.wait_for(scenario(), 10))

    def test_mismatched_widths_cannot_orphan_coalesced_peers(
            self, lookup_pair):
        """A bad-width request in the same latency window must fail
        alone; valid coalesced peers still get their results."""
        dut, _ = lookup_pair

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=64,
                               max_latency=0.01)
            good = asyncio.ensure_future(
                batcher.submit(_rows(dut, 2, seed=11)))
            bad = asyncio.ensure_future(
                batcher.submit(np.zeros((2, batcher.n_specs - 1))))
            results = await asyncio.gather(good, bad,
                                           return_exceptions=True)
            return results

        good_result, bad_result = asyncio.run(
            asyncio.wait_for(scenario(), 10))
        assert good_result["counts"]["n_devices"] == 2
        assert isinstance(bad_result, ServiceError)


class TestEquivalence:
    @pytest.mark.parametrize("pair_name", ["lookup_pair", "live_pair"])
    def test_coalesced_decisions_match_direct_floor(self, pair_name,
                                                    request):
        """Any coalescing pattern == running each request alone."""
        dut, artifact = request.getfixturevalue(pair_name)
        direct = Floor(artifact, monitor=False)
        chunks = [_rows(dut, n, seed=20 + i)
                  for i, n in enumerate((1, 7, 3, 12, 1, 5))]

        async def scenario():
            batcher = _batcher(request.getfixturevalue(pair_name),
                               max_batch_size=16, max_latency=0.005)
            return await asyncio.gather(
                *(batcher.submit(chunk) for chunk in chunks))

        results = asyncio.run(asyncio.wait_for(scenario(), 10))
        for chunk, result in zip(chunks, results):
            alone = direct.dispose(chunk)
            assert np.array_equal(result["decisions"], alone.decisions)
            assert result["counts"]["n_devices"] == chunk.shape[0]

    def test_request_counts_slice_the_combined_batch(self, lookup_pair):
        dut, artifact = lookup_pair
        chunks = [_rows(dut, 4, seed=31), _rows(dut, 6, seed=32)]

        async def scenario():
            batcher = _batcher(lookup_pair, max_batch_size=10,
                               max_latency=60.0)
            return await asyncio.gather(
                *(batcher.submit(chunk) for chunk in chunks))

        results = asyncio.run(asyncio.wait_for(scenario(), 10))
        direct = Floor(artifact, monitor=False)
        for chunk, result in zip(chunks, results):
            counts = result["counts"]
            alone = direct.dispose(chunk).counts()
            for field in ("n_shipped", "n_scrapped", "n_guard",
                          "n_yield_loss", "n_defect_escape"):
                assert counts[field] == alone[field]
            assert result["batch_rows"] == 10


class TestMonitorContinuity:
    def test_monitor_window_rolls_across_batches(self, lookup_pair):
        """dispose() feeds the drift monitor without resetting it."""
        dut, artifact = lookup_pair

        async def scenario():
            batcher = MicroBatcher(Floor(artifact),
                                   max_batch_size=32, max_latency=0.005)
            for seed in (41, 42, 43):
                await batcher.submit(_rows(dut, 20, seed))
            return batcher.floor.monitor.n_seen

        assert asyncio.run(asyncio.wait_for(scenario(), 10)) == 60
