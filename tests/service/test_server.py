"""HTTP front-end behaviour: routing, errors, hot-swap, metrics, 429."""

import asyncio
import json

import numpy as np
import pytest

from repro.floor import TestFloor as Floor
from repro.service import (
    ArtifactRegistry,
    FloorService,
    HttpClient,
)


def _rows(dut, n, seed):
    rng = np.random.default_rng(seed)
    return np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(n)])


def run_with_service(scenario, registry, timeout=30, **service_kwargs):
    """Start a FloorService on an ephemeral port, run, always stop."""

    async def main():
        service = FloorService(registry, **service_kwargs)
        await service.start("127.0.0.1", 0)
        client = HttpClient("127.0.0.1", service.port)
        try:
            return await scenario(service, client)
        finally:
            await client.close()
            await service.stop()

    return asyncio.run(asyncio.wait_for(main(), timeout))


class TestRouting:
    def test_health(self, registry):
        async def scenario(service, client):
            return await client.request("GET", "/health")

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        assert reply["status"] == "ok"
        assert reply["n_artifacts"] == 2

    def test_disposition_single_device(self, registry, lookup_pair):
        dut, artifact = lookup_pair
        row = _rows(dut, 1, seed=5)[0]

        async def scenario(service, client):
            return await client.request("POST", "/disposition", {
                "device": "synthA", "measurements": row.tolist()})

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        assert reply["device"] == "synthA" and reply["version"] == "1"
        offline = Floor(artifact, monitor=False).dispose(row)
        assert reply["decisions"] == [int(d) for d in offline.decisions]

    def test_disposition_chunk_matches_offline_floor(self, registry,
                                                     live_pair):
        dut, artifact = live_pair
        rows = _rows(dut, 37, seed=6)

        async def scenario(service, client):
            return await client.request("POST", "/disposition", {
                "device": "synthB", "measurements": rows.tolist()})

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        offline = Floor(artifact, monitor=False).dispose(rows)
        assert reply["decisions"] == [int(d) for d in offline.decisions]
        assert reply["counts"]["n_devices"] == 37

    def test_artifacts_listing(self, registry):
        async def scenario(service, client):
            return await client.request("GET", "/artifacts")

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        keys = {(r["device"], r["version"]) for r in reply["artifacts"]}
        assert keys == {("synthA", "1"), ("synthB", "1")}

    def test_metrics_after_traffic(self, registry, lookup_pair):
        dut, _ = lookup_pair

        async def scenario(service, client):
            await client.request("POST", "/disposition", {
                "device": "synthA",
                "measurements": _rows(dut, 5, seed=7).tolist()})
            return await client.request("GET", "/metrics")

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        entry = reply["artifacts"]["synthA@1"]
        assert entry["n_devices"] == 5
        assert entry["queue_depth"] == 0
        assert entry["drift"]["devices_seen"] == 5
        assert reply["total_devices"] == 5


class TestErrors:
    @pytest.mark.parametrize("payload,status", [
        ({"device": "nope", "measurements": [[0.0] * 6]}, 404),
        ({"device": "synthA", "version": "9",
          "measurements": [[0.0] * 6]}, 404),
        ({"device": "synthA"}, 400),
        ({"measurements": [[0.0] * 6]}, 400),
        ({"device": "synthA", "measurements": [[0.0] * 3]}, 400),
    ])
    def test_disposition_error_statuses(self, registry, payload, status):
        async def scenario(service, client):
            return await client.request("POST", "/disposition", payload)

        got, reply = run_with_service(scenario, registry)
        assert got == status
        assert "error" in reply

    def test_unknown_path_and_wrong_method(self, registry):
        async def scenario(service, client):
            first = await client.request("GET", "/nope")
            second = await client.request("GET", "/disposition")
            return first, second

        (s1, _), (s2, _) = run_with_service(scenario, registry)
        assert s1 == 404
        assert s2 == 405

    def test_malformed_json_is_400(self, registry):
        async def scenario(service, client):
            assert client._writer is None
            await client._connect()
            body = b"{not json"
            head = ("POST /disposition HTTP/1.1\r\n"
                    "Content-Length: {}\r\n\r\n".format(len(body)))
            client._writer.write(head.encode() + body)
            await client._writer.drain()
            status_line = await client._reader.readline()
            return int(status_line.split()[1])

        assert run_with_service(scenario, registry) == 400

    def test_excessive_header_lines_are_400(self, registry):
        """Unbounded header streaming is cut off, not buffered forever."""
        async def scenario(service, client):
            assert client._writer is None
            await client._connect()
            head = "GET /health HTTP/1.1\r\n" + "".join(
                "X-Filler-{}: x\r\n".format(i) for i in range(200))
            client._writer.write(head.encode())
            await client._writer.drain()
            status_line = await client._reader.readline()
            return int(status_line.split()[1])

        assert run_with_service(scenario, registry) == 400


class TestControlPlaneAuth:
    """POST /artifacts[/retire] is loopback-only unless a token is set."""

    _REMOTE = ("203.0.113.5", 40001)
    _LOCAL = ("127.0.0.1", 40001)

    def _route(self, registry, headers, peer, path="/artifacts/retire",
               **service_kwargs):
        async def main():
            service = FloorService(registry, **service_kwargs)
            body = b'{"device": "synthA", "version": "1"}'
            return await service._route("POST", path, headers, body, peer)

        return asyncio.run(main())

    def test_remote_post_without_token_is_403(self, registry):
        status, reply = self._route(registry, {}, self._REMOTE)
        assert status == 403
        assert "X-Admin-Token" in reply["error"]

    def test_remote_post_with_wrong_token_is_403(self, registry):
        status, _ = self._route(
            registry, {"x-admin-token": "nope"}, self._REMOTE,
            admin_token="s3cret")
        assert status == 403

    def test_remote_post_with_token_is_honoured(self, registry):
        status, reply = self._route(
            registry, {"x-admin-token": "s3cret"}, self._REMOTE,
            admin_token="s3cret")
        assert status == 200
        assert reply["retired"]["retired"] is True

    def test_loopback_post_needs_no_token(self, registry):
        status, _ = self._route(registry, {}, self._LOCAL)
        assert status == 200

    def test_ipv4_mapped_loopback_peer_is_loopback(self, registry):
        # Dual-stack binds report IPv4 peers as ::ffff:a.b.c.d.
        status, _ = self._route(
            registry, {}, ("::ffff:127.0.0.1", 40001, 0, 0))
        assert status == 200

    def test_empty_token_means_loopback_only_not_open(self, registry):
        # An unset shell variable reaching --admin-token must not
        # authorize every remote peer presenting no header.
        status, _ = self._route(registry, {}, self._REMOTE,
                                admin_token="")
        assert status == 403
        status, _ = self._route(registry, {}, self._LOCAL,
                                admin_token="")
        assert status == 200

    def test_non_ascii_token_header_is_403_not_500(self, registry):
        status, _ = self._route(
            registry, {"x-admin-token": "caf\xe9"}, self._REMOTE,
            admin_token="s3cret")
        assert status == 403

    def test_configured_token_also_gates_loopback(self, registry):
        # Once a token exists, every control-plane caller must show it.
        status, _ = self._route(registry, {}, self._LOCAL,
                                admin_token="s3cret")
        assert status == 403

    def test_data_plane_is_unaffected(self, registry, lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 2, seed=12)

        async def main():
            service = FloorService(registry)
            body = json.dumps({"device": "synthA",
                               "measurements": rows.tolist()}).encode()
            return await service._route(
                "POST", "/disposition", {}, body, self._REMOTE)

        status, _ = asyncio.run(main())
        assert status == 200


class TestBackpressureHTTP:
    def test_queue_full_replies_429(self, registry, lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 6, seed=8)

        async def scenario(service, client):
            # Park a request below the size-flush threshold; the
            # second connection's request must overflow max_pending.
            parked = asyncio.ensure_future(client.request(
                "POST", "/disposition",
                {"device": "synthA", "measurements": rows.tolist()}))
            await asyncio.sleep(0.05)
            other = HttpClient("127.0.0.1", service.port)
            try:
                status, reply = await other.request(
                    "POST", "/disposition",
                    {"device": "synthA", "measurements": rows.tolist()})
            finally:
                await other.close()
            first_status, _ = await parked
            return status, reply, first_status

        status, reply, first_status = run_with_service(
            scenario, registry,
            max_batch_size=8, max_latency=0.5, max_pending=8)
        assert status == 429
        assert "retry" in reply["error"]
        assert first_status == 200


class TestServingMemoryBound:
    def test_batcher_set_is_lru_bounded(self, saved, lookup_pair,
                                        live_pair, swap_pair):
        """max_resident bounds the serving floors, not just the cache.

        Three registered keys served through a one-slot registry must
        never hold more than one batcher (and its artifact) alive;
        decisions stay correct across evictions.
        """
        registry = ArtifactRegistry(max_resident=1)
        registry.register("a", "1", saved["lookup"])
        registry.register("b", "1", saved["live"])
        registry.register("c", "1", saved["swap"])
        pairs = {"a": lookup_pair, "b": live_pair, "c": swap_pair}

        async def scenario(service, client):
            replies = {}
            for name in ("a", "b", "c", "a", "b"):
                dut, _ = pairs[name]
                rows = _rows(dut, 6, seed=ord(name[0]))
                status, reply = await client.request(
                    "POST", "/disposition",
                    {"device": name, "measurements": rows.tolist()})
                assert status == 200
                offline = Floor(pairs[name][1], monitor=False)
                assert reply["decisions"] == [
                    int(d) for d in offline.dispose(rows).decisions]
                replies[name] = reply
            return len(service._batchers)

        n_batchers = run_with_service(scenario, registry)
        assert n_batchers == 1


class TestHotSwap:
    def test_register_over_http_hot_swaps(self, registry, saved,
                                          lookup_pair, swap_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 20, seed=9)

        async def scenario(service, client):
            before = await client.request("POST", "/disposition", {
                "device": "synthA", "measurements": rows.tolist()})
            status, _ = await client.request("POST", "/artifacts", {
                "device": "synthA", "version": "2",
                "path": saved["swap"]})
            assert status == 201
            after = await client.request("POST", "/disposition", {
                "device": "synthA", "measurements": rows.tolist()})
            pinned = await client.request("POST", "/disposition", {
                "device": "synthA", "version": "1",
                "measurements": rows.tolist()})
            return before, after, pinned

        before, after, pinned = run_with_service(scenario, registry)
        assert before[1]["version"] == "1"
        assert after[1]["version"] == "2"
        assert pinned[1]["version"] == "1"
        # Each reply matches the offline floor of the version it names.
        for reply, pair in ((before, lookup_pair), (after, swap_pair),
                            (pinned, lookup_pair)):
            offline = Floor(pair[1], monitor=False).dispose(rows)
            assert reply[1]["decisions"] == [int(d)
                                             for d in offline.decisions]

    def test_retire_over_http(self, registry, lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 4, seed=10)

        async def scenario(service, client):
            status, _ = await client.request(
                "POST", "/artifacts/retire",
                {"device": "synthA", "version": "1"})
            assert status == 200
            return await client.request("POST", "/disposition", {
                "device": "synthA", "measurements": rows.tolist()})

        status, reply = run_with_service(scenario, registry)
        assert status == 404
        assert "synthA" in reply["error"]

    def test_hot_swap_under_concurrent_requests(self, registry, saved,
                                                lookup_pair, swap_pair):
        """Every in-flight reply is internally consistent mid-swap.

        Thirty concurrent requests race a v1->v2 hot-swap; whichever
        version each reply names, its decisions must equal that
        version's offline floor over the same rows.
        """
        dut, _ = lookup_pair
        chunks = [_rows(dut, 5, seed=100 + i) for i in range(30)]

        async def scenario(service, client):
            clients = [HttpClient("127.0.0.1", service.port)
                       for _ in range(4)]

            async def fire(i):
                reply = await clients[i % 4].request(
                    "POST", "/disposition",
                    {"device": "synthA",
                     "measurements": chunks[i].tolist()})
                return i, reply

            async def swap():
                await asyncio.sleep(0.002)
                return await client.request("POST", "/artifacts", {
                    "device": "synthA", "version": "2",
                    "path": saved["swap"]})

            try:
                results = await asyncio.gather(
                    *(fire(i) for i in range(30)), swap())
            finally:
                for extra in clients:
                    await extra.close()
            return results[:-1], results[-1]

        replies, (swap_status, _) = run_with_service(
            scenario, registry, max_batch_size=8, max_latency=0.001)
        assert swap_status == 201
        offline = {
            "1": Floor(lookup_pair[1], monitor=False),
            "2": Floor(swap_pair[1], monitor=False),
        }
        versions = set()
        for i, (status, reply) in replies:
            assert status == 200
            versions.add(reply["version"])
            expected = offline[reply["version"]].dispose(chunks[i])
            assert reply["decisions"] == [int(d)
                                          for d in expected.decisions]
        assert "1" in versions  # at least the early traffic hit v1
