"""Cluster-layer tests: sharding router, fan-out, respawn.

The expensive truths (decisions bit-identical through a sharded
cluster, crash -> 503 -> respawn -> identical decisions) run against
real worker processes; the control-plane atomicity proofs (rollback on
partial fan-out failure) run against fake workers with a monkeypatched
transport, so they are fast and deterministic.
"""

import asyncio

import numpy as np
import pytest

from repro.errors import (
    ClusterDegradedError,
    ServiceError,
    UnknownArtifactError,
)
from repro.service import (
    ClusterService,
    HttpClient,
    TrafficPlan,
    offline_reference,
    run_load,
    shard_for,
)
from repro.service.cluster import WorkerHandle


def run_with_cluster(scenario, registrations, timeout=180, **cluster_kwargs):
    """asyncio.run a scenario against a live multi-process cluster."""

    async def main():
        cluster = ClusterService(registrations=registrations, **cluster_kwargs)
        await cluster.start("127.0.0.1", 0)
        try:
            return await scenario(cluster)
        finally:
            await cluster.stop()

    return asyncio.run(asyncio.wait_for(main(), timeout))


class TestShardFor:
    def test_pure_and_stable_across_calls(self):
        # The mapping is a pure function: recomputing it (a "router
        # restart") can never move a device to a different worker.
        for device in ("synthA", "synthB", "opamp", "a-very-long-key"):
            for n in (1, 2, 3, 4, 8):
                assert shard_for(device, n) == shard_for(device, n)

    def test_pinned_values(self):
        # Regression pin: these exact assignments are wire-visible
        # behavior (which worker's drift monitor sees a device's
        # traffic).  If this test ever fails, the hash changed and
        # every deployed cluster would reshuffle on upgrade.
        assert shard_for("synthA", 2) == 0
        assert shard_for("synthB", 2) == 1
        assert [shard_for("dev{}".format(i), 4) for i in (0, 2, 5, 6)] == [
            3,
            0,
            1,
            2,
        ]

    def test_independent_of_python_hash_randomization(self):
        # sha256, not hash(): the value must be reproducible in any
        # process, so spell out the definition and check against it.
        import hashlib

        digest = hashlib.sha256(b"synthA").digest()
        assert shard_for("synthA", 7) == int.from_bytes(digest[:8], "big") % 7

    def test_in_range_and_covers_workers(self):
        shards = {shard_for("device-{}".format(i), 4) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_single_worker_degenerates(self):
        assert shard_for("anything", 1) == 0

    def test_rejects_zero_workers(self):
        with pytest.raises(ServiceError):
            shard_for("synthA", 0)


def _fake_cluster(n_workers, registrations=()):
    """An unstarted cluster with healthy fake workers (no processes)."""
    cluster = ClusterService(registrations=registrations, n_workers=n_workers)
    cluster._workers = [
        WorkerHandle(index=i, port=1000 + i, healthy=True)
        for i in range(n_workers)
    ]
    return cluster


class TestAtomicFanOut:
    """Control-plane atomicity against fake workers."""

    def test_register_commits_on_all_workers(self, monkeypatch):
        cluster = _fake_cluster(3)
        calls = []

        async def fake_post(worker, path, payload):
            calls.append((worker.index, path, dict(payload)))
            return 201, {"registered": {"device": payload["device"]}}

        monkeypatch.setattr(cluster, "_post_worker", fake_post)
        asyncio.run(cluster.register_artifact("synthA", "1", "a.rtp"))
        assert [c[0] for c in calls] == [0, 1, 2]
        assert all(c[1] == "/artifacts" for c in calls)
        assert cluster._manifest == [
            {
                "device": "synthA",
                "version": "1",
                "path": "a.rtp",
                "retired": False,
            }
        ]

    def test_partial_register_rolls_back_and_keeps_manifest(self, monkeypatch):
        cluster = _fake_cluster(3)
        calls = []

        async def fake_post(worker, path, payload):
            calls.append((worker.index, path, dict(payload)))
            if worker.index == 1 and path == "/artifacts":
                return 400, {"error": "corrupt artifact file"}
            return (200 if path.endswith("retire") else 201), {}

        monkeypatch.setattr(cluster, "_post_worker", fake_post)
        with pytest.raises(ServiceError, match="rolled back"):
            asyncio.run(cluster.register_artifact("synthA", "1", "a.rtp"))
        # Nothing committed: the manifest never saw the registration.
        assert cluster._manifest == []
        # Worker 0 (the only one that applied it) was rolled back by
        # retiring the orphan key; workers 2.. were never touched.
        rollback = [c for c in calls if c[0] == 0 and "retire" in c[1]]
        assert len(rollback) == 1
        assert rollback[0][2] == {"device": "synthA", "version": "1"}
        assert not any(c[0] == 2 for c in calls)

    def test_partial_hot_swap_rollback_replays_manifest(self, monkeypatch):
        # synthA@1 is committed; a hot-swap to @2 fails on the last
        # worker.  The rolled-back workers must replay the manifest
        # (retire the orphan @2, re-register @1) so newest-active-wins
        # still resolves to @1 everywhere.
        cluster = _fake_cluster(2, registrations=[("synthA", "1", "a1.rtp")])
        calls = []

        async def fake_post(worker, path, payload):
            calls.append((worker.index, path, dict(payload)))
            if (
                worker.index == 1
                and path == "/artifacts"
                and payload["version"] == "2"
            ):
                return 400, {"error": "no such file"}
            return (200 if path.endswith("retire") else 201), {}

        monkeypatch.setattr(cluster, "_post_worker", fake_post)
        with pytest.raises(ServiceError, match="rolled back"):
            asyncio.run(cluster.register_artifact("synthA", "2", "a2.rtp"))
        assert [e["version"] for e in cluster._manifest] == ["1"]
        w0 = [c for c in calls if c[0] == 0]
        # apply @2, then rollback: retire the orphan @2, replay @1.
        assert [(c[1], c[2].get("version")) for c in w0] == [
            ("/artifacts", "2"),
            ("/artifacts/retire", "2"),
            ("/artifacts", "1"),
        ]

    def test_partial_retire_rolls_back_by_replaying(self, monkeypatch):
        cluster = _fake_cluster(2, registrations=[("synthA", "1", "a1.rtp")])
        calls = []

        async def fake_post(worker, path, payload):
            calls.append((worker.index, path, dict(payload)))
            if worker.index == 1 and path == "/artifacts/retire":
                return 500, {"error": "boom"}
            return (200 if path.endswith("retire") else 201), {}

        monkeypatch.setattr(cluster, "_post_worker", fake_post)
        with pytest.raises(ServiceError, match="rolled back"):
            asyncio.run(cluster.retire_artifact("synthA", "1"))
        # The manifest still lists the version as active...
        assert cluster._manifest[0]["retired"] is False
        # ...and worker 0 was re-registered back to the active state.
        w0 = [c for c in calls if c[0] == 0]
        assert [c[1] for c in w0] == [
            "/artifacts/retire",
            "/artifacts",
        ]

    def test_retire_unknown_version_is_404_material(self):
        cluster = _fake_cluster(2)
        with pytest.raises(UnknownArtifactError):
            asyncio.run(cluster.retire_artifact("synthA", "9"))

    def test_control_plane_refused_while_degraded(self, monkeypatch):
        cluster = _fake_cluster(2, registrations=[("synthA", "1", "a1.rtp")])
        cluster._workers[1].healthy = False

        async def fake_post(worker, path, payload):  # pragma: no cover
            raise AssertionError("must not reach any worker while degraded")

        monkeypatch.setattr(cluster, "_post_worker", fake_post)

        async def scenario():
            # One event loop for both ops: the control lock binds to
            # the loop it is first awaited on.
            with pytest.raises(ClusterDegradedError, match="w1"):
                await cluster.register_artifact("synthA", "2", "a2.rtp")
            with pytest.raises(ClusterDegradedError):
                await cluster.retire_artifact("synthA", "1")

        asyncio.run(scenario())

    def test_rejects_zero_workers(self):
        with pytest.raises(ServiceError):
            ClusterService(n_workers=0)


class TestMetricsStaleFanIn:
    """/metrics must survive a worker dying mid-scrape.

    Regression: the fan-in used to propagate the connection error of
    one dead worker and fail the whole scrape.  Now the scrape serves
    a partial snapshot with the dead shard marked ``stale`` and flips
    it unhealthy for the health loop to respawn.
    """

    def _scrape_with_backends(self, live_handler, dead_handler):
        """metrics() over a 2-worker fake cluster with stub backends."""

        async def main():
            live = await asyncio.start_server(
                live_handler, "127.0.0.1", 0)
            dead = await asyncio.start_server(
                dead_handler, "127.0.0.1", 0)
            try:
                cluster = _fake_cluster(2)
                cluster._workers[0].port = \
                    live.sockets[0].getsockname()[1]
                cluster._workers[1].port = \
                    dead.sockets[0].getsockname()[1]
                snapshot = await cluster.metrics()
                return snapshot, cluster
            finally:
                for server in (live, dead):
                    server.close()
                    await server.wait_closed()

        return asyncio.run(asyncio.wait_for(main(), 30))

    @staticmethod
    async def _healthy_metrics(reader, writer):
        from repro.service.server import _read_request, _write_response

        try:
            while True:
                if await _read_request(reader) is None:
                    return
                await _write_response(
                    writer, 200,
                    {"total_devices": 7, "total_rejected": 1,
                     "artifacts": {}}, True)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass

    @staticmethod
    async def _dies_after_accept(reader, writer):
        # The shape of a worker SIGKILLed between the health probe and
        # the scrape: the TCP accept succeeds, then the socket dies
        # without a byte of response.
        writer.close()

    def test_mid_scrape_death_serves_partial_snapshot(self):
        snapshot, cluster = self._scrape_with_backends(
            self._healthy_metrics, self._dies_after_accept)
        assert snapshot["workers"]["w0"]["stale"] is False
        assert snapshot["workers"]["w0"]["healthy"] is True
        assert snapshot["workers"]["w1"] == {"healthy": False,
                                             "stale": True}
        # Aggregates cover only the shards that answered.
        assert snapshot["total_devices"] == 7
        assert snapshot["total_rejected"] == 1
        # The dead shard was flipped unhealthy for the respawn loop.
        assert cluster._workers[1].healthy is False

    def test_error_status_is_stale_not_fatal(self):
        from repro.service.server import _read_request, _write_response

        async def broken_metrics(reader, writer):
            try:
                while True:
                    if await _read_request(reader) is None:
                        return
                    await _write_response(
                        writer, 500, {"error": "boom"}, True)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass

        snapshot, _ = self._scrape_with_backends(
            self._healthy_metrics, broken_metrics)
        assert snapshot["workers"]["w1"]["stale"] is True
        assert snapshot["total_devices"] == 7

    def test_already_unhealthy_worker_is_reported_stale(self):
        cluster = _fake_cluster(2)
        cluster._workers[1].healthy = False

        async def fake_get(worker, path):
            assert worker.index == 0
            return 200, {"total_devices": 3, "total_rejected": 0,
                         "artifacts": {}}

        cluster._get_worker = fake_get
        snapshot = asyncio.run(cluster.metrics())
        assert snapshot["workers"]["w1"] == {"healthy": False,
                                             "stale": True}
        assert snapshot["workers"]["w0"]["stale"] is False


@pytest.mark.slow
class TestSpawnRetryLive:
    """Worker startup faults are retried with a fresh spawn.

    REPRO_CHAOS_STARTUP makes the *first* spawn of every worker index
    fail deterministically (die before the pipe handshake, or report a
    bind failure through it); the supervisor must retry and the
    cluster must come up serving.
    """

    @pytest.mark.parametrize("mode", ["handshake_death", "bind_fail"])
    def test_first_spawn_fault_is_survived(self, tmp_path, monkeypatch,
                                           saved, lookup_pair, mode):
        import os

        marker_dir = tmp_path / "chaos-markers"
        marker_dir.mkdir()
        monkeypatch.setenv("REPRO_CHAOS_STARTUP",
                           "{}:{}".format(marker_dir, mode))
        dut, artifact = lookup_pair
        from repro.service import TrafficPlan, offline_reference, run_load

        plan = TrafficPlan("synthA", dut, 60, seed=21,
                           reference=offline_reference(artifact))

        async def scenario(cluster):
            return await run_load("127.0.0.1", cluster.port, [plan],
                                  n_clients=2, max_chunk=8, seed=4)

        report = run_with_cluster(
            scenario, [("synthA", "1", saved["lookup"])], n_workers=2)
        # Both workers burned their one startup fault...
        fired = sorted(os.listdir(marker_dir))
        assert fired == ["worker-0.fired", "worker-1.fired"]
        # ...and the retried spawns serve bit-identical decisions.
        assert report.equivalent

    def test_startup_fault_retries_are_counted(self, tmp_path, monkeypatch,
                                               saved):
        from repro.telemetry import Telemetry

        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        monkeypatch.setenv("REPRO_CHAOS_STARTUP",
                           "{}:handshake_death".format(marker_dir))
        telemetry = Telemetry()

        async def scenario(cluster):
            return cluster.health()

        health = run_with_cluster(
            scenario, [("synthA", "1", saved["lookup"])], n_workers=2,
            telemetry=telemetry)
        assert health["n_healthy"] == 2
        retries = sum(
            value
            for (name, _), value in telemetry._counters.items()
            if name == "repro_cluster_spawn_retries_total"
        )
        assert retries >= 2

    def test_round_trip_consensus_and_hot_swap(self, saved, lookup_pair,
                                               live_pair):
        lookup_dut, lookup_artifact = lookup_pair
        live_dut, live_artifact = live_pair
        plans = [
            TrafficPlan("synthA", lookup_dut, 220, seed=7,
                        reference=offline_reference(lookup_artifact)),
            TrafficPlan("synthB", live_dut, 180, seed=8,
                        reference=offline_reference(live_artifact)),
        ]

        async def scenario(cluster):
            report = await run_load("127.0.0.1", cluster.port, plans,
                                    n_clients=4, max_chunk=12, seed=3)
            client = HttpClient("127.0.0.1", cluster.port)
            try:
                _, health = await client.request("GET", "/health")
                _, listing = await client.request("GET", "/artifacts")
                status, reply = await client.request(
                    "POST", "/artifacts",
                    {"device": "synthA", "version": "2",
                     "path": saved["swap"]})
                assert status == 201, reply
                _, after = await client.request("GET", "/artifacts")
                _, metrics = await client.request("GET", "/metrics")
            finally:
                await client.close()
            return report, health, listing, after, metrics

        report, health, listing, after, metrics = run_with_cluster(
            scenario,
            [("synthA", "1", saved["lookup"]), ("synthB", "1", saved["live"])],
            n_workers=2,
        )
        # Sharded serving is bit-identical to the offline floor for
        # every plan -- the tentpole invariant.
        assert report.equivalent
        # synthA and synthB hash to different workers at n=2, so both
        # shards served traffic and were attributed.
        assert set(report.worker_latencies) == {"w0", "w1"}
        assert health["status"] == "ok" and health["n_healthy"] == 2
        assert listing["consistent"] and set(listing["per_worker"]) == {
            "w0",
            "w1",
        }
        # The mid-run hot-swap reached every worker atomically.
        assert after["consistent"]
        assert all(
            "synthA@2" in keys for keys in after["per_worker"].values()
        )
        # Aggregated metrics carry the per-worker breakdown.
        assert set(metrics["workers"]) == {"w0", "w1"}
        assert metrics["total_devices"] == report.n_devices

    def test_killed_worker_respawns_bit_identical(self, saved, lookup_pair):
        lookup_dut, lookup_artifact = lookup_pair
        plan = TrafficPlan("synthA", lookup_dut, 150, seed=11,
                           reference=offline_reference(lookup_artifact))
        victim = shard_for("synthA", 2)

        async def scenario(cluster):
            before = await run_load("127.0.0.1", cluster.port, [plan],
                                    n_clients=2, max_chunk=10, seed=5)
            cluster.kill_worker(victim)
            # The respawn window answers 503 + Retry-After -- the
            # request is never silently rerouted to the other shard.
            saw_503 = False
            client = HttpClient("127.0.0.1", cluster.port)
            payload = {"device": "synthA", "measurements": [[0.0] * 6]}
            try:
                for _ in range(600):
                    status, _ = await client.request(
                        "POST", "/disposition", payload)
                    if status == 503:
                        saw_503 = True
                        assert (client.last_headers.get("retry-after")
                                == "1")
                    elif status == 200 and saw_503:
                        break
                    await asyncio.sleep(0.05)
            finally:
                await client.close()
            after = await run_load("127.0.0.1", cluster.port, [plan],
                                   n_clients=2, max_chunk=10, seed=5)
            return before, saw_503, status, after, cluster._workers[victim]

        before, saw_503, status, after, worker = run_with_cluster(
            scenario,
            [("synthA", "1", saved["lookup"])],
            n_workers=2,
            health_interval=0.2,
        )
        assert saw_503, "kill never surfaced a 503 respawn window"
        assert status == 200, "shard never readmitted after respawn"
        assert worker.respawns >= 1
        # The respawned worker (re-primed from the manifest) serves
        # decisions bit-identical to its pre-crash self -- and both
        # match the offline floor.
        assert before.equivalent and after.equivalent
        np.testing.assert_array_equal(
            before.plans[0].decisions, after.plans[0].decisions
        )
