"""The service's headline contract, proven end to end over HTTP.

Mixed traffic for two resident artifacts is replayed through the load
generator at several coalescing configurations; every served decision
must be bit-identical to an offline
:class:`~repro.floor.engine.TestFloor` pass over the same seed-tree
population.  This is the acceptance gate of the serving layer: micro-
batching, concurrency, keep-alive framing and registry routing are all
invisible to the decisions.
"""

import asyncio

import numpy as np
import pytest

from repro.service import (
    ArtifactRegistry,
    FloorService,
    TrafficPlan,
    offline_reference,
    run_load,
)
from repro.service.loadgen import build_requests, materialize_population


def _plans(lookup_pair, live_pair):
    return [
        TrafficPlan("synthA", lookup_pair[0], 300, seed=7,
                    reference=offline_reference(lookup_pair[1])),
        TrafficPlan("synthB", live_pair[0], 200, seed=8,
                    reference=offline_reference(live_pair[1])),
    ]


def _run(registry, plans, n_clients, max_chunk, seed,
         **service_kwargs):
    async def main():
        service = FloorService(registry, **service_kwargs)
        await service.start("127.0.0.1", 0)
        try:
            return await run_load("127.0.0.1", service.port, plans,
                                  n_clients=n_clients,
                                  max_chunk=max_chunk, seed=seed)
        finally:
            await service.stop()

    return asyncio.run(asyncio.wait_for(main(), 60))


class TestServedEquivalence:
    @pytest.mark.parametrize("coalescing", [
        # Aggressive coalescing: big batches, patient latency window.
        dict(max_batch_size=256, max_latency=0.02),
        # Nearly no coalescing: tiny batches flush almost immediately.
        dict(max_batch_size=8, max_latency=0.0005),
    ])
    @pytest.mark.parametrize("n_clients", [1, 6])
    def test_mixed_traffic_matches_offline_floor(self, registry,
                                                 lookup_pair, live_pair,
                                                 coalescing, n_clients):
        plans = _plans(lookup_pair, live_pair)
        report = _run(registry, plans, n_clients=n_clients,
                      max_chunk=9, seed=3, **coalescing)
        assert report.equivalent
        assert [p.n_devices for p in report.plans] == [300, 200]
        assert all(p.equivalent is True for p in report.plans)

    def test_equivalence_survives_lru_thrash(self, saved, lookup_pair,
                                             live_pair):
        """Serving two artifacts with a one-slot registry cache."""
        registry = ArtifactRegistry(max_resident=1)
        registry.register("synthA", "1", saved["lookup"])
        registry.register("synthB", "1", saved["live"])
        plans = _plans(lookup_pair, live_pair)
        report = _run(registry, plans, n_clients=4, max_chunk=7, seed=5,
                      max_batch_size=32, max_latency=0.002)
        assert report.equivalent

    def test_traffic_schedule_is_deterministic(self, lookup_pair,
                                               live_pair):
        plans = _plans(lookup_pair, live_pair)
        first_requests, first_pops = build_requests(plans, max_chunk=9,
                                                    seed=3)
        second_requests, second_pops = build_requests(plans, max_chunk=9,
                                                      seed=3)
        assert first_requests == second_requests
        for index in first_pops:
            assert np.array_equal(first_pops[index], second_pops[index])

    def test_population_matches_seed_tree_at_any_batch_size(self,
                                                            lookup_pair):
        plan = TrafficPlan("synthA", lookup_pair[0], 123, seed=11)
        small = materialize_population(plan, batch_size=5)
        large = materialize_population(plan, batch_size=1000)
        assert np.array_equal(small, large)
