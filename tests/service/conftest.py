"""Shared fixtures for the service-layer tests.

Two distinct synthetic compaction runs feed the package: a
lookup-table artifact (decision equivalence is exact by construction)
and a live-model artifact with a different specification universe, so
multi-artifact routing bugs cannot cancel out.  Package-scoped because
the service only *reads* artifacts, and recompacting per test would
dominate the suite's runtime; the ``registry`` fixture builds a fresh
registry (and fresh saved files) per test.
"""

import pytest

from repro.core.costmodel import TestCostModel
from repro.core.pipeline import CompactionPipeline
from repro.learn import SVC
from repro.service import ArtifactRegistry

from tests.synthetic import SyntheticDut, make_synthetic_dataset


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (fast: no per-fit tuning)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def build_artifact(n_specs, dut_seed, lookup_resolution=None,
                   guard_band=0.06, n_train=300, n_test=200):
    """One synthetic compaction run packaged as ``(dut, artifact)``."""
    dut = SyntheticDut(n_specs=n_specs, seed=dut_seed)
    train = make_synthetic_dataset(n=n_train, n_specs=n_specs, seed=1,
                                   dut_seed=dut_seed)
    test = make_synthetic_dataset(n=n_test, n_specs=n_specs, seed=2,
                                  dut_seed=dut_seed)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=guard_band,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=TestCostModel.uniform(train.names),
        device="synthetic", train_seed=1,
        lookup_resolution=lookup_resolution)
    return dut, artifact


@pytest.fixture(scope="package")
def lookup_pair():
    """(dut, artifact) with a lookup table -- exact batch invariance."""
    return build_artifact(n_specs=6, dut_seed=99, lookup_resolution=17)


@pytest.fixture(scope="package")
def live_pair():
    """(dut, artifact) on the live SVM pair, 5-spec universe."""
    return build_artifact(n_specs=5, dut_seed=42)


@pytest.fixture(scope="package")
def swap_pair():
    """Same device universe as ``lookup_pair`` but a different program.

    Registered as a newer version in hot-swap tests: same input width,
    different guard band, so the two versions are interchangeable on
    the wire while remaining distinguishable by their decisions.
    """
    return build_artifact(n_specs=6, dut_seed=99, lookup_resolution=13,
                          guard_band=0.12)


@pytest.fixture
def saved(tmp_path, lookup_pair, live_pair, swap_pair):
    """Artifact files on disk: name -> path (fresh per test)."""
    paths = {}
    for name, (_, artifact) in (("lookup", lookup_pair),
                                ("live", live_pair),
                                ("swap", swap_pair)):
        path = tmp_path / "{}.rtp".format(name)
        artifact.save(path)
        paths[name] = str(path)
    return paths


@pytest.fixture
def registry(saved):
    """A registry serving the lookup artifact as synthA, live as synthB."""
    reg = ArtifactRegistry()
    reg.register("synthA", "1", saved["lookup"])
    reg.register("synthB", "1", saved["live"])
    return reg
