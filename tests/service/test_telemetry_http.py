"""Observability over the wire: prometheus scrapes, request IDs,
snapshot caching, and loadgen latency capture."""

import asyncio

import pytest

from repro.service import (
    FloorService,
    TrafficPlan,
    offline_reference,
    run_load,
)
from repro.telemetry import (
    Telemetry,
    parse_prometheus,
    set_telemetry,
)

from tests.service.test_server import _rows, run_with_service


@pytest.fixture(autouse=True)
def restore_telemetry():
    from repro.telemetry import get_telemetry

    previous = get_telemetry()
    yield
    set_telemetry(previous)


class TestPrometheusScrape:
    def test_scrape_is_parseable_and_carries_drift_and_latency(
            self, registry, lookup_pair):
        dut, _ = lookup_pair

        async def scenario(service, client):
            await client.request("POST", "/disposition", {
                "device": "synthA",
                "measurements": _rows(dut, 8, seed=7).tolist()})
            return await client.request(
                "GET", "/metrics?format=prometheus")

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        families = parse_prometheus(reply["text"])
        # Drift-chart state rides the scrape as gauges...
        assert "repro_floor_drift_window_devices" in families
        seen = families["repro_floor_drift_devices_seen"]["samples"]
        assert seen[0][2] == 8.0
        # ...and request wall time as a histogram.
        assert families["repro_service_request_seconds"]["type"] == \
            "histogram"
        assert "repro_service_requests_total" in families

    def test_unknown_format_is_400(self, registry):
        async def scenario(service, client):
            return await client.request("GET", "/metrics?format=xml")

        status, reply = run_with_service(scenario, registry)
        assert status == 400
        assert "error" in reply

    def test_scrape_uses_session_registry_when_active(self, registry):
        """`serve --telemetry` routes scrapes through the CLI registry."""
        session = Telemetry(run_id="session")
        set_telemetry(session)

        async def scenario(service, client):
            assert service.telemetry is session
            return await client.request(
                "GET", "/metrics?format=prometheus")

        status, reply = run_with_service(scenario, registry)
        assert status == 200
        parse_prometheus(reply["text"])


class TestRequestIds:
    def test_client_request_id_is_echoed(self, registry):
        async def scenario(service, client):
            status, _ = await client.request(
                "GET", "/health", headers={"X-Request-Id": "abc-123"})
            return status, dict(client.last_headers)

        status, headers = run_with_service(scenario, registry)
        assert status == 200
        assert headers["x-request-id"] == "abc-123"

    def test_request_id_is_generated_when_absent(self, registry):
        async def scenario(service, client):
            await client.request("GET", "/health")
            first = client.last_headers["x-request-id"]
            await client.request("GET", "/health")
            return first, client.last_headers["x-request-id"]

        first, second = run_with_service(scenario, registry)
        assert first.startswith("req-")
        assert first != second


class TestSnapshotCaching:
    def test_scrapes_between_traffic_reuse_the_snapshot(self, registry,
                                                        lookup_pair):
        dut, _ = lookup_pair

        async def scenario(service, client):
            await client.request("POST", "/disposition", {
                "device": "synthA",
                "measurements": _rows(dut, 4, seed=9).tolist()})
            _, first = await client.request("GET", "/metrics")
            version = service._metrics_version
            _, second = await client.request("GET", "/metrics")
            return first, second, version, service._metrics_version

        first, second, v1, v2 = run_with_service(scenario, registry)
        # No flush between the scrapes: same cache version, identical
        # artifact snapshot (only uptime/request counters move).
        assert v1 == v2
        assert first["artifacts"] == second["artifacts"]

    def test_scrape_during_hot_swap_sees_consistent_registry(
            self, registry, lookup_pair, saved):
        """A swap between scrapes invalidates the cache atomically:
        the next scrape carries the new version fully registered,
        never a half-swapped entry."""
        dut, _ = lookup_pair

        async def scenario(service, client):
            await client.request("POST", "/disposition", {
                "device": "synthA",
                "measurements": _rows(dut, 4, seed=9).tolist()})
            _, before = await client.request("GET", "/metrics")
            status, _ = await client.request("POST", "/artifacts", {
                "device": "synthA", "version": "2",
                "path": saved["swap"]})
            assert status == 201
            # The registration invalidated the cache; this scrape
            # rebuilds from the settled batcher set (v1 only -- v2
            # has served nothing yet).
            _, after = await client.request("GET", "/metrics")
            # Unpinned traffic now routes to v2...
            await client.request("POST", "/disposition", {
                "device": "synthA",
                "measurements": _rows(dut, 4, seed=9).tolist()})
            _, served = await client.request("GET", "/metrics")
            sp, prom = await client.request(
                "GET", "/metrics?format=prometheus")
            return before, after, served, sp, prom

        before, after, served, sp, prom = run_with_service(
            scenario, registry)
        assert "synthA@2" not in before["artifacts"]
        assert after["artifacts"] == before["artifacts"]
        # ...and the next scrape carries the new version fully
        # registered: stats and drift blocks both present, old
        # version's floor untouched.
        entry = served["artifacts"]["synthA@2"]
        assert entry["n_devices"] == 4
        assert entry["drift"]["devices_seen"] == 4
        assert served["artifacts"]["synthA@1"]["n_devices"] == 4
        assert sp == 200
        parse_prometheus(prom["text"])


class TestLoadgenLatency:
    def _plan(self, pair, n_devices=60):
        dut, artifact = pair
        return TrafficPlan("synthA", dut, n_devices, seed=7,
                           reference=offline_reference(artifact))

    def _run(self, registry, plan):
        async def main():
            service = FloorService(registry)
            await service.start("127.0.0.1", 0)
            try:
                return await run_load("127.0.0.1", service.port,
                                      [plan], n_clients=3, max_chunk=8,
                                      seed=3)
            finally:
                await service.stop()

        return asyncio.run(main())

    def test_latency_summary_fields(self, registry, lookup_pair):
        report = self._run(registry, self._plan(lookup_pair))
        assert report.equivalent
        summary = report.latency_summary()
        assert summary["n_requests"] == report.n_requests
        assert len(report.latencies_s) == report.n_requests
        assert (0.0 < summary["p50_ms"] <= summary["p95_ms"]
                <= summary["p99_ms"] <= summary["max_ms"])
        assert summary["sustained_rps"] > 0.0
        assert "p50" in report.summary()

    def test_capture_never_perturbs_served_equivalence(self, registry,
                                                       lookup_pair):
        """Latency capture (telemetry active) still serves decisions
        bit-identical to the offline floor -- the capture is an
        observer on the client, never a participant."""
        set_telemetry(Telemetry(run_id="loadgen"))
        report = self._run(registry, self._plan(lookup_pair))
        assert report.equivalent
        assert len(report.latencies_s) == report.n_requests

    def test_decision_stream_is_order_independent(self, registry,
                                                  lookup_pair):
        """Different client concurrency interleaves responses
        differently, but reassembled decisions stay identical."""

        async def run_with_clients(n_clients):
            service = FloorService(registry)
            await service.start("127.0.0.1", 0)
            try:
                return await run_load(
                    "127.0.0.1", service.port,
                    [self._plan(lookup_pair)], n_clients=n_clients,
                    max_chunk=8, seed=3)
            finally:
                await service.stop()

        one = asyncio.run(run_with_clients(1))
        many = asyncio.run(run_with_clients(4))
        assert one.equivalent and many.equivalent
        assert one.n_devices == many.n_devices
