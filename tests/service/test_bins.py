"""Bins over the wire: /disposition, /metrics and loadgen bin checks.

The serving contract for the binning layer is strictly additive: every
pre-binning reply key is untouched, and graded artifacts add ``bins``
(names, device order) and ``bin_counts`` to each reply.  The load
generator's per-plan equivalence verdict covers the served bins too,
so a service that ships the right decisions but scrambles the grades
fails the acceptance gate.
"""

import asyncio
import copy

import numpy as np
import pytest

from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.rules import ToleranceProfile, ToleranceRule
from repro.service import (
    ArtifactRegistry,
    FloorService,
    HttpClient,
    TrafficPlan,
    offline_reference,
    run_load,
)

from tests.synthetic import make_synthetic_dataset


def speed_profile():
    return ToleranceProfile(
        "speed-grades",
        [ToleranceRule("FAST", {"s0": (0.5, 1.0)}),
         ToleranceRule("TYP", {"s0": (-0.5, 0.5)}),
         ToleranceRule("SLOW", {"s0": (-1.0, -0.5)})],
        default_bin="REJECT")


@pytest.fixture(scope="module")
def graded_artifact(lookup_pair):
    """The lookup artifact upgraded with a 4-bin speed-grade profile."""
    _, artifact = lookup_pair
    artifact = copy.copy(artifact)
    return artifact.with_profile(
        speed_profile(),
        train=make_synthetic_dataset(n=300, seed=1, dut_seed=99))


@pytest.fixture
def graded_registry(tmp_path, saved, graded_artifact):
    path = str(tmp_path / "graded.rtp")
    graded_artifact.save(path)
    registry = ArtifactRegistry()
    registry.register("graded", "1", path)
    registry.register("binary", "1", saved["lookup"])
    return registry


def _rows(dut, n, seed):
    rng = np.random.default_rng(seed)
    return np.vstack([dut.measure(dut.sample_parameters(rng))
                      for _ in range(n)])


def run_with_service(scenario, registry, timeout=30, **service_kwargs):
    async def main():
        service = FloorService(registry, **service_kwargs)
        await service.start("127.0.0.1", 0)
        client = HttpClient("127.0.0.1", service.port)
        try:
            return await scenario(service, client)
        finally:
            await client.close()
            await service.stop()

    return asyncio.run(asyncio.wait_for(main(), timeout))


class TestDispositionReplies:
    def test_graded_reply_adds_bins_additively(self, graded_registry,
                                               lookup_pair,
                                               graded_artifact):
        dut, _ = lookup_pair
        rows = _rows(dut, 25, seed=11)

        async def scenario(service, client):
            return await client.request("POST", "/disposition", {
                "device": "graded", "measurements": rows.tolist()})

        status, reply = run_with_service(scenario, graded_registry)
        assert status == 200
        # Legacy surface is untouched...
        offline = Floor(graded_artifact, monitor=False).dispose(rows)
        assert reply["decisions"] == [int(d) for d in offline.decisions]
        assert reply["counts"]["n_devices"] == 25
        # ...and the graded surface rides on top, in device order.
        assert len(reply["bins"]) == 25
        names = np.asarray(offline.bin_names, dtype=object)
        assert reply["bins"] == list(names[offline.bins])
        assert reply["bin_counts"] == offline.bin_counts()
        assert sum(reply["bin_counts"].values()) == 25

    def test_binary_reply_bins_relabel_decisions(self, graded_registry,
                                                 lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 18, seed=12)

        async def scenario(service, client):
            return await client.request("POST", "/disposition", {
                "device": "binary", "measurements": rows.tolist()})

        status, reply = run_with_service(scenario, graded_registry)
        assert status == 200
        assert set(reply["bin_counts"]) == {"PASS", "FAIL"}
        expected = ["PASS" if d == 1 else "FAIL"
                    for d in reply["decisions"]]
        assert reply["bins"] == expected

    def test_bins_never_contradict_decisions(self, graded_registry,
                                             lookup_pair):
        dut, _ = lookup_pair
        rows = _rows(dut, 40, seed=13)

        async def scenario(service, client):
            return await client.request("POST", "/disposition", {
                "device": "graded", "measurements": rows.tolist()})

        _, reply = run_with_service(scenario, graded_registry)
        for decision, name in zip(reply["decisions"], reply["bins"]):
            assert (name == "REJECT") == (decision == -1)


class TestMetrics:
    def test_metrics_accumulate_bin_histograms(self, graded_registry,
                                               lookup_pair):
        dut, _ = lookup_pair

        async def scenario(service, client):
            for seed in (21, 22):
                rows = _rows(dut, 30, seed=seed)
                status, _ = await client.request("POST", "/disposition", {
                    "device": "graded", "measurements": rows.tolist()})
                assert status == 200
            return await client.request("GET", "/metrics")

        status, reply = run_with_service(scenario, graded_registry)
        assert status == 200
        entry = reply["artifacts"]["graded@1"]
        assert entry["n_devices"] == 60
        assert sum(entry["bin_counts"].values()) == 60
        assert set(entry["bin_counts"]) == {"FAST", "TYP", "SLOW",
                                            "REJECT"}
        assert entry["n_bin_retested"] >= 0


class TestLoadgenBinEquivalence:
    def test_served_bins_checked_against_offline_floor(
            self, graded_registry, lookup_pair, graded_artifact):
        dut, _ = lookup_pair
        plan = TrafficPlan("graded", dut, 120, seed=31,
                           reference=offline_reference(graded_artifact))

        async def main():
            service = FloorService(graded_registry, max_batch_size=32,
                                   max_latency=0.002)
            await service.start("127.0.0.1", 0)
            try:
                return await run_load("127.0.0.1", service.port, [plan],
                                      n_clients=3, max_chunk=11, seed=1)
            finally:
                await service.stop()

        report = asyncio.run(asyncio.wait_for(main(), 60))
        (outcome,) = report.plans
        assert outcome.equivalent is True
        assert outcome.bins is not None
        assert len(outcome.bins) == 120
        assert set(outcome.bins) <= {"FAST", "TYP", "SLOW", "REJECT"}
