"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {"table1", "table2", "fig5",
                                    "table3", "cost", "batch",
                                    "deploy", "floor", "serve",
                                    "loadgen"}

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_parsed(self):
        args = build_parser().parse_args(["fig5"])
        assert args.train == 600
        assert args.tolerance == 0.01

    def test_table3_defaults_differ(self):
        args = build_parser().parse_args(["table3"])
        assert args.guard == 0.03
        assert args.train == 1000

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig5", "--train", "50", "--tolerance", "0.05"])
        assert args.train == 50
        assert args.tolerance == 0.05

    def test_jobs_default_serial(self):
        for command in ("fig5", "batch"):
            assert build_parser().parse_args([command]).jobs == 1

    def test_jobs_only_on_engine_commands(self):
        """--jobs must not be advertised where it would be a no-op."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--jobs", "2"])

    def test_sim_jobs_on_simulating_commands(self):
        for command in ("fig5", "table3", "cost", "batch"):
            args = build_parser().parse_args([command])
            assert args.sim_jobs == 1
            args = build_parser().parse_args([command, "--sim-jobs", "4"])
            assert args.sim_jobs == 4

    def test_sim_jobs_not_on_table_printers(self):
        """table1/table2 measure one nominal instance: no population."""
        for command in ("table1", "table2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--sim-jobs", "2"])

    def test_sim_engine_on_simulating_commands(self):
        for command in ("fig5", "table3", "cost", "batch", "deploy"):
            args = build_parser().parse_args([command])
            assert args.sim_engine == "scalar"
            args = build_parser().parse_args(
                [command, "--sim-engine", "batched"])
            assert args.sim_engine == "batched"

    def test_sim_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--sim-engine", "warp"])

    def test_sim_engine_on_floor(self):
        args = build_parser().parse_args(
            ["floor", "--artifact", "x.rtp", "--sim-engine", "batched"])
        assert args.sim_engine == "batched"

    def test_deploy_options(self):
        args = build_parser().parse_args(["deploy"])
        assert args.device == "opamp"
        assert args.out is None
        assert args.lookup_resolution is None
        assert args.jobs == 1 and args.sim_jobs == 1
        args = build_parser().parse_args(
            ["deploy", "--device", "mems", "--out", "x.rtp",
             "--lookup-resolution", "auto", "--jobs", "2"])
        assert args.device == "mems"
        assert args.out == "x.rtp"
        assert args.lookup_resolution == "auto"
        args = build_parser().parse_args(
            ["deploy", "--lookup-resolution", "25"])
        assert args.lookup_resolution == 25

    def test_deploy_rejects_bad_lookup_resolution_at_parse_time(self):
        """Must fail before minutes of simulation, not after."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["deploy", "--lookup-resolution", "fine"])

    def test_floor_options(self):
        args = build_parser().parse_args(
            ["floor", "--artifact", "x.rtp"])
        assert args.artifact == "x.rtp"
        assert args.devices == 2000
        assert args.lots == 1
        assert args.policy == "full_retest"
        assert args.batch_size == 8192
        assert args.device is None
        assert args.sim_jobs == 1

    def test_floor_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["floor"])

    def test_floor_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["floor", "--artifact", "x.rtp", "--policy", "flip"])

    def test_floor_takes_no_training_options(self):
        """floor serves an existing artifact: no train/tolerance."""
        for flag in ("--train", "--tolerance"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["floor", "--artifact", "x.rtp", flag, "5"])

    def test_batch_options(self):
        args = build_parser().parse_args(
            ["batch", "--lots", "3", "--device", "mems", "--jobs", "2"])
        assert args.lots == 3
        assert args.device == "mems"
        assert args.jobs == 2
        assert args.train == 300


class TestServeLoadgenParser:
    def test_serve_artifact_specs(self):
        args = build_parser().parse_args(
            ["serve", "--artifact", "opamp=o.rtp",
             "--artifact", "mems=3=m.rtp"])
        assert args.artifact == [("opamp", "1", "o.rtp"),
                                 ("mems", "3", "m.rtp")]
        assert args.port == 8731
        assert args.max_batch == 512

    def test_serve_requires_an_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_rejects_malformed_spec(self):
        for bad in ("plain-path.rtp", "a=b=c=d", "=x.rtp"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--artifact", bad])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--url", "http://127.0.0.1:8731",
             "--artifact", "o.rtp"])
        assert args.device == "opamp"
        assert args.name is None
        assert args.clients == 4
        assert args.max_chunk == 16
        assert args.policy == "full_retest"

    def test_loadgen_requires_url_and_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--artifact", "o.rtp"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--url", "http://h:1"])

    def test_serve_loadgen_take_no_training_options(self):
        for command, extra in (("serve", ["--artifact", "a=b.rtp"]),
                               ("loadgen", ["--url", "http://h:1",
                                            "--artifact", "b.rtp"])):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, *extra, "--train", "5"])


class TestCleanErrors:
    """Operator errors exit 2 with a one-line message, no traceback."""

    def _last_error(self, capsys):
        err = [line for line in capsys.readouterr().err.splitlines()
               if line]
        assert err, "expected an error line on stderr"
        assert err[-1].startswith("error: ")
        return err[-1]

    def test_floor_missing_artifact(self, capsys):
        assert main(["floor", "--artifact", "/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)

    def test_floor_corrupt_artifact(self, tmp_path, capsys):
        path = tmp_path / "corrupt.rtp"
        path.write_bytes(b"not a pickle at all")
        assert main(["floor", "--artifact", str(path)]) == 2
        assert "artifact" in self._last_error(capsys)

    def test_floor_wrong_payload_artifact(self, tmp_path, capsys):
        """A valid pickle that is not a repro artifact is refused."""
        import pickle

        path = tmp_path / "other.rtp"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        assert main(["floor", "--artifact", str(path)]) == 2
        assert "artifact" in self._last_error(capsys)

    def test_deploy_missing_output_directory(self, capsys):
        """Must fail before minutes of simulation, not at the save."""
        assert main(["deploy", "--device", "opamp",
                     "--out", "/no/such/dir/x.rtp"]) == 2
        assert "/no/such/dir" in self._last_error(capsys)

    def test_loadgen_missing_artifact(self, capsys):
        assert main(["loadgen", "--url", "http://127.0.0.1:1",
                     "--artifact", "/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)

    def test_loadgen_bad_url(self, capsys):
        assert main(["loadgen", "--url", "bogus",
                     "--artifact", "x.rtp"]) == 2
        assert "URL" in self._last_error(capsys)

    def test_serve_missing_artifact_file(self, capsys):
        assert main(["serve", "--artifact", "opamp=/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)


class TestFastCommands:
    def test_table1_prints_eleven_specs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("gain", "slew_rate", "isc"):
            assert name in out

    def test_table2_prints_twelve_tests(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "quality_factor@-40C" in out
        assert "bw_3db@80C" in out
