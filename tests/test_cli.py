"""CLI smoke tests (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {"table1", "table2", "fig5",
                                    "table3", "cost", "batch",
                                    "deploy", "floor", "serve",
                                    "loadgen", "dataset",
                                    "telemetry-report"}

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults_parsed(self):
        args = build_parser().parse_args(["fig5"])
        assert args.train == 600
        assert args.tolerance == 0.01

    def test_table3_defaults_differ(self):
        args = build_parser().parse_args(["table3"])
        assert args.guard == 0.03
        assert args.train == 1000

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig5", "--train", "50", "--tolerance", "0.05"])
        assert args.train == 50
        assert args.tolerance == 0.05

    def test_jobs_default_serial(self):
        for command in ("fig5", "batch"):
            assert build_parser().parse_args([command]).jobs == 1

    def test_jobs_only_on_engine_commands(self):
        """--jobs must not be advertised where it would be a no-op."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table3", "--jobs", "2"])

    def test_sim_jobs_on_simulating_commands(self):
        for command in ("fig5", "table3", "cost", "batch"):
            args = build_parser().parse_args([command])
            assert args.sim_jobs == 1
            args = build_parser().parse_args([command, "--sim-jobs", "4"])
            assert args.sim_jobs == 4

    def test_sim_jobs_not_on_table_printers(self):
        """table1/table2 measure one nominal instance: no population."""
        for command in ("table1", "table2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--sim-jobs", "2"])

    def test_sim_engine_on_simulating_commands(self):
        for command in ("fig5", "table3", "cost", "batch", "deploy"):
            args = build_parser().parse_args([command])
            assert args.sim_engine == "scalar"
            args = build_parser().parse_args(
                [command, "--sim-engine", "batched"])
            assert args.sim_engine == "batched"

    def test_sim_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--sim-engine", "warp"])

    def test_sim_engine_on_floor(self):
        args = build_parser().parse_args(
            ["floor", "--artifact", "x.rtp", "--sim-engine", "batched"])
        assert args.sim_engine == "batched"

    def test_deploy_options(self):
        args = build_parser().parse_args(["deploy"])
        assert args.device == "opamp"
        assert args.out is None
        assert args.lookup_resolution is None
        assert args.jobs == 1 and args.sim_jobs == 1
        args = build_parser().parse_args(
            ["deploy", "--device", "mems", "--out", "x.rtp",
             "--lookup-resolution", "auto", "--jobs", "2"])
        assert args.device == "mems"
        assert args.out == "x.rtp"
        assert args.lookup_resolution == "auto"
        args = build_parser().parse_args(
            ["deploy", "--lookup-resolution", "25"])
        assert args.lookup_resolution == 25

    def test_deploy_rejects_bad_lookup_resolution_at_parse_time(self):
        """Must fail before minutes of simulation, not after."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["deploy", "--lookup-resolution", "fine"])

    def test_floor_options(self):
        args = build_parser().parse_args(
            ["floor", "--artifact", "x.rtp"])
        assert args.artifact == "x.rtp"
        assert args.devices == 2000
        assert args.lots == 1
        assert args.policy == "full_retest"
        assert args.batch_size == 8192
        assert args.device is None
        assert args.sim_jobs == 1

    def test_floor_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["floor"])

    def test_floor_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["floor", "--artifact", "x.rtp", "--policy", "flip"])

    def test_floor_takes_no_training_options(self):
        """floor serves an existing artifact: no train/tolerance."""
        for flag in ("--train", "--tolerance"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["floor", "--artifact", "x.rtp", flag, "5"])

    def test_batch_options(self):
        args = build_parser().parse_args(
            ["batch", "--lots", "3", "--device", "mems", "--jobs", "2"])
        assert args.lots == 3
        assert args.device == "mems"
        assert args.jobs == 2
        assert args.train == 300


class TestServeLoadgenParser:
    def test_serve_artifact_specs(self):
        args = build_parser().parse_args(
            ["serve", "--artifact", "opamp=o.rtp",
             "--artifact", "mems=3=m.rtp"])
        assert args.artifact == [("opamp", "1", "o.rtp"),
                                 ("mems", "3", "m.rtp")]
        assert args.port == 8731
        assert args.max_batch == 512

    def test_serve_requires_an_artifact_or_state_dir(self, capsys):
        # The parser accepts a bare `serve` (a --state-dir restart can
        # boot purely from the journal), but the command itself refuses
        # to start with nothing to serve and no journal to replay.
        args = build_parser().parse_args(["serve"])
        assert args.artifact is None
        assert args.state_dir is None
        assert main(["serve"]) == 2
        err = capsys.readouterr().err
        assert "--artifact" in err and "--state-dir" in err

    def test_serve_worker_defaults_and_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--artifact", "opamp=o.rtp"])
        assert args.workers == 1
        assert args.health_interval == 0.5
        args = build_parser().parse_args(
            ["serve", "--artifact", "opamp=o.rtp",
             "--workers", "4", "--health-interval", "0.2"])
        assert args.workers == 4
        assert args.health_interval == 0.2

    def test_serve_rejects_zero_workers(self, capsys):
        assert main(["serve", "--artifact", "opamp=o.rtp",
                     "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_serve_cluster_missing_artifact_file(self, capsys):
        # The cluster path must refuse a missing artifact before
        # spawning workers that would each discover it independently.
        assert main(["serve", "--artifact", "opamp=/no/such.rtp",
                     "--workers", "2"]) == 2
        assert "/no/such.rtp" in capsys.readouterr().err

    def test_serve_rejects_malformed_spec(self):
        for bad in ("plain-path.rtp", "a=b=c=d", "=x.rtp"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", "--artifact", bad])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--url", "http://127.0.0.1:8731",
             "--artifact", "o.rtp"])
        assert args.device == "opamp"
        assert args.name is None
        assert args.clients == 4
        assert args.max_chunk == 16
        assert args.policy == "full_retest"

    def test_loadgen_requires_url_and_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--artifact", "o.rtp"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--url", "http://h:1"])

    def test_serve_loadgen_take_no_training_options(self):
        for command, extra in (("serve", ["--artifact", "a=b.rtp"]),
                               ("loadgen", ["--url", "http://h:1",
                                            "--artifact", "b.rtp"])):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, *extra, "--train", "5"])


class TestCleanErrors:
    """Operator errors exit 2 with a one-line message, no traceback."""

    def _last_error(self, capsys):
        err = [line for line in capsys.readouterr().err.splitlines()
               if line]
        assert err, "expected an error line on stderr"
        assert err[-1].startswith("error: ")
        return err[-1]

    def test_floor_missing_artifact(self, capsys):
        assert main(["floor", "--artifact", "/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)

    def test_floor_corrupt_artifact(self, tmp_path, capsys):
        path = tmp_path / "corrupt.rtp"
        path.write_bytes(b"not a pickle at all")
        assert main(["floor", "--artifact", str(path)]) == 2
        assert "artifact" in self._last_error(capsys)

    def test_floor_wrong_payload_artifact(self, tmp_path, capsys):
        """A valid pickle that is not a repro artifact is refused."""
        import pickle

        path = tmp_path / "other.rtp"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        assert main(["floor", "--artifact", str(path)]) == 2
        assert "artifact" in self._last_error(capsys)

    def test_deploy_missing_output_directory(self, capsys):
        """Must fail before minutes of simulation, not at the save."""
        assert main(["deploy", "--device", "opamp",
                     "--out", "/no/such/dir/x.rtp"]) == 2
        assert "/no/such/dir" in self._last_error(capsys)

    def test_loadgen_missing_artifact(self, capsys):
        assert main(["loadgen", "--url", "http://127.0.0.1:1",
                     "--artifact", "/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)

    def test_loadgen_bad_url(self, capsys):
        assert main(["loadgen", "--url", "bogus",
                     "--artifact", "x.rtp"]) == 2
        assert "URL" in self._last_error(capsys)

    def test_serve_missing_artifact_file(self, capsys):
        assert main(["serve", "--artifact", "opamp=/no/such.rtp"]) == 2
        assert "/no/such.rtp" in self._last_error(capsys)


class TestFastCommands:
    def test_table1_prints_eleven_specs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("gain", "slew_rate", "isc"):
            assert name in out

    def test_table2_prints_twelve_tests(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "quality_factor@-40C" in out
        assert "bw_3db@80C" in out


class TestDatasetParser:
    def test_generate_options(self):
        args = build_parser().parse_args(
            ["dataset", "generate", "/tmp/store", "--device", "mems",
             "--rows", "500", "--seed", "3", "--shard-rows", "64",
             "--sim-jobs", "2", "--sim-engine", "batched"])
        assert (args.root, args.device, args.rows, args.seed) == \
            ("/tmp/store", "mems", 500, 3)
        assert (args.shard_rows, args.sim_jobs, args.sim_engine) == \
            (64, 2, "batched")

    def test_generate_requires_rows(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset", "generate", "/tmp/s"])

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dataset"])

    def test_extend_has_no_engine_override(self):
        """The manifest's engine wins on extend: no --sim-engine flag,
        or an extension could silently change the store's bit stream."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["dataset", "extend", "/tmp/s", "--rows", "10",
                 "--sim-engine", "scalar"])

    def test_dataset_flag_on_simulating_commands(self):
        for command in ("fig5", "table3", "cost", "batch"):
            args = build_parser().parse_args(
                [command, "--dataset", ".cache/ds"])
            assert args.dataset == ".cache/ds"
        args = build_parser().parse_args(
            ["floor", "--artifact", "a.rtp", "--dataset", "d"])
        assert args.dataset == "d"

    def test_dataset_flag_defaults_off(self):
        assert build_parser().parse_args(["fig5"]).dataset is None


class TestDatasetCommands:
    def _generate(self, root, rows=12, seed=5):
        return main(["dataset", "generate", str(root),
                     "--device", "opamp", "--rows", str(rows),
                     "--seed", str(seed), "--shard-rows", "8"])

    def test_generate_info_verify_extend(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert self._generate(root) == 0
        out = capsys.readouterr().out
        assert "rows 0 -> 12" in out

        assert main(["dataset", "info", str(root)]) == 0
        out = capsys.readouterr().out
        assert "shard-00000.npz" in out
        assert "8:12" in out  # second shard's row range

        assert main(["dataset", "verify", str(root)]) == 0
        assert "ok: 2 shard(s), 12 rows verified" in \
            capsys.readouterr().out

        assert main(["dataset", "extend", str(root),
                     "--rows", "15"]) == 0
        out = capsys.readouterr().out
        assert "rows 12 -> 15" in out
        assert main(["dataset", "verify", str(root)]) == 0

    def test_generate_refuses_existing_store(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert self._generate(root) == 0
        capsys.readouterr()
        assert self._generate(root) == 2
        err = capsys.readouterr().err.splitlines()
        assert err[-1].startswith("error:")
        assert "already holds a shard store" in err[-1]

    def test_info_on_missing_store_fails_cleanly(self, tmp_path,
                                                 capsys):
        assert main(["dataset", "info", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.splitlines()) == 1

    def test_verify_detects_corruption(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert self._generate(root) == 0
        capsys.readouterr()
        path = root / "shard-00000.npz"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        assert main(["dataset", "verify", str(root)]) == 2
        assert capsys.readouterr().err.startswith("error:")
