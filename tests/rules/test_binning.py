"""Disposition-aware bin assignment: the decisions/bins contract.

:func:`repro.rules.binning.assign_bins` may never contradict the
binary disposition -- these tests pin that invariant, the escape
clamping, the bank path (with a stub bank whose margins are exactly
controllable) and the degenerate-binary relabeling guarantee.
"""

import numpy as np
import pytest

from repro.core.specs import BAD, GOOD, Specification, SpecificationSet
from repro.errors import RuleError
from repro.rules import (
    ToleranceProfile,
    ToleranceRule,
    assign_bins,
    bin_histogram,
    grade_indices,
)

from tests.synthetic import make_synthetic_dataset


def grade_specs():
    return SpecificationSet([
        Specification("gain", "V/V", 5.0, 0.0, 10.0),
    ])


def grade_profile():
    return ToleranceProfile(
        "grades",
        [ToleranceRule("FAST", {"gain": (7.0, 10.0)}),
         ToleranceRule("TYP", {"gain": (3.0, 7.0)}),
         ToleranceRule("SLOW", {"gain": (0.0, 3.0)})],
        default_bin="REJECT")


class StubBank:
    """A bank with scripted predictions and margins."""

    def __init__(self, classes, predictions, margins):
        self.classes = tuple(classes)
        self._predictions = np.asarray(predictions)
        self._margins = np.asarray(margins, dtype=float)

    def predict_index(self, X):
        assert X.shape[0] == self._predictions.shape[0]
        return self._predictions

    def margins(self, X):
        return self._margins


class TestAssignBins:
    def test_scrapped_always_default(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0], [5.0], [1.0], [20.0]])
        decisions = np.array([BAD, BAD, BAD, BAD])
        bins, n = assign_bins(bound, decisions, bound.assign(values))
        assert n == 0
        assert (bins == profile.bin_index("REJECT")).all()

    def test_shipped_get_truth_grade_without_bank(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0], [5.0], [1.0]])
        decisions = np.array([GOOD, GOOD, GOOD])
        bins, n = assign_bins(bound, decisions, bound.assign(values))
        assert n == 0
        names = np.asarray(bound.bins, dtype=object)[bins]
        assert list(names) == ["FAST", "TYP", "SLOW"]

    def test_escape_clamped_to_lowest_grade(self):
        """A shipped device whose measurements match no grade rule (a
        defect escape) carries the lowest grade, never the scrap bin."""
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[42.0]])        # outside every rule
        decisions = np.array([GOOD])       # ...but the floor shipped it
        bins, _ = assign_bins(bound, decisions, bound.assign(values))
        assert bound.bins[bins[0]] == "SLOW"

    def test_bins_never_contradict_decisions(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        rng = np.random.default_rng(5)
        values = rng.uniform(-5.0, 15.0, (200, 1))
        decisions = rng.choice([GOOD, BAD], 200)
        bins, _ = assign_bins(bound, decisions, bound.assign(values))
        default = profile.bin_index("REJECT")
        assert ((bins == default) == (decisions == BAD)).all()

    def test_degenerate_binary_profile_is_pure_relabeling(self):
        dataset = make_synthetic_dataset(n=150, seed=9)
        specs = dataset.specifications
        bound = ToleranceProfile.binary_default(specs).bind(specs)
        rng = np.random.default_rng(1)
        decisions = rng.choice([GOOD, BAD], len(dataset))
        bins, n = assign_bins(
            bound, decisions, bound.assign(dataset.values))
        assert n == 0
        names = np.asarray(bound.bins, dtype=object)[bins]
        assert (names == np.where(decisions == GOOD, "PASS", "FAIL")).all()

    def test_grade_only_profile_rejected(self):
        specs = grade_specs()
        profile = ToleranceProfile(
            "only-default",
            [ToleranceRule("REJECT", {"gain": (0.0, 10.0)})],
            default_bin="REJECT")
        bound = profile.bind(specs)
        with pytest.raises(RuleError, match="no grade bin"):
            assign_bins(bound, np.array([GOOD]), np.array([0]))


class TestBankPath:
    def test_bank_grades_shipped_devices(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0], [5.0], [1.0], [5.0]])
        decisions = np.array([GOOD, GOOD, BAD, GOOD])
        # bank classes deliberately NOT in profile-bin order
        bank = StubBank(("SLOW", "FAST", "TYP"),
                        predictions=[1, 0, 2],     # FAST, SLOW, TYP
                        margins=[9.0, 9.0, 9.0])
        bins, n = assign_bins(
            bound, decisions, bound.assign(values),
            kept_norm=values, bank=bank, boundary_margin=0.5)
        assert n == 0
        names = np.asarray(bound.bins, dtype=object)[bins]
        # shipped devices take the bank's word; scrapped stays REJECT
        assert list(names) == ["FAST", "SLOW", "REJECT", "TYP"]

    def test_boundary_margin_routes_to_truth_grade(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0], [5.0], [1.0]])
        decisions = np.array([GOOD, GOOD, GOOD])
        # bank wants SLOW for everything, but devices 0 and 2 are
        # below the margin -> full-measurement grades win for them.
        bank = StubBank(("SLOW", "FAST", "TYP"),
                        predictions=[0, 0, 0],
                        margins=[0.1, 2.0, 0.05])
        bins, n = assign_bins(
            bound, decisions, bound.assign(values),
            kept_norm=values, bank=bank, boundary_margin=0.5)
        assert n == 2
        names = np.asarray(bound.bins, dtype=object)[bins]
        assert list(names) == ["FAST", "SLOW", "SLOW"]

    def test_zero_margin_disables_retest(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0]])
        bank = StubBank(("SLOW", "FAST", "TYP"),
                        predictions=[0], margins=[0.0])
        bins, n = assign_bins(
            bound, np.array([GOOD]), bound.assign(values),
            kept_norm=values, bank=bank, boundary_margin=0.0)
        assert n == 0
        assert bound.bins[bins[0]] == "SLOW"

    def test_bank_without_features_rejected(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        bank = StubBank(("SLOW", "FAST", "TYP"), [0], [1.0])
        with pytest.raises(RuleError, match="normalized kept"):
            assign_bins(bound, np.array([GOOD]), np.array([0]),
                        bank=bank)

    def test_bank_ignored_when_nothing_shipped(self):
        specs, profile = grade_specs(), grade_profile()
        bound = profile.bind(specs)
        values = np.array([[8.0], [5.0]])

        class ExplodingBank(StubBank):
            def predict_index(self, X):
                raise AssertionError("bank must not be consulted")

        bins, n = assign_bins(
            bound, np.array([BAD, BAD]), bound.assign(values),
            kept_norm=values,
            bank=ExplodingBank(("SLOW", "FAST"), [0], [1.0]))
        assert n == 0
        assert (bins == profile.bin_index("REJECT")).all()


class TestHelpers:
    def test_grade_indices_exclude_default(self):
        bound = grade_profile().bind(grade_specs())
        grades = grade_indices(bound)
        assert bound.profile.bin_index("REJECT") not in grades
        assert [bound.bins[g] for g in grades] == ["FAST", "TYP", "SLOW"]

    def test_bin_histogram_covers_every_name(self):
        names = ("A", "B", "C")
        hist = bin_histogram(np.array([0, 0, 2]), names)
        assert hist == {"A": 2, "B": 0, "C": 1}
        assert sum(hist.values()) == 3
