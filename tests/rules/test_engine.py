"""Property and conformance suite for the tolerance-rule engine.

The profile is a *contract*: these tests pin the contract's load-
bearing guarantees -- overlap rejection, coverage proof, first-match
determinism under rule permutation, guard-band monotonicity and JSON
round-trip equality -- rather than any particular profile's content.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.specs import Specification, SpecificationSet
from repro.errors import ReproError, RuleError
from repro.rules import (
    FAIL_BIN,
    PASS_BIN,
    PROFILE_FORMAT,
    ToleranceProfile,
    ToleranceRule,
)

from tests.synthetic import make_synthetic_dataset


def two_spec_set():
    return SpecificationSet([
        Specification("gain", "V/V", 5.0, 0.0, 10.0),
        Specification("bw", "MHz", 2.0, 1.0, 3.0),
    ])


def speed_grade_profile():
    """A 3-grade partition of gain in [0, 10] (bw unconditioned)."""
    return ToleranceProfile(
        "speed-grades",
        [
            ToleranceRule("FAST", {"gain": (7.0, 10.0)},
                          guard={"gain": 0.5}),
            ToleranceRule("TYP", {"gain": (3.0, 7.0)},
                          guard={"gain": 0.5}),
            ToleranceRule("SLOW", {"gain": (0.0, 3.0)}),
        ],
        default_bin="REJECT")


class TestToleranceRule:
    def test_matches_closed_intervals(self):
        rule = ToleranceRule("A", {"gain": (1.0, 2.0)})
        assert rule.matches({"gain": 1.0})
        assert rule.matches({"gain": 2.0})
        assert not rule.matches({"gain": 0.999})
        assert not rule.matches({"gain": 2.001})

    def test_unbounded_sides(self):
        low_only = ToleranceRule("A", {"gain": (5.0, None)})
        assert low_only.matches({"gain": 1e9})
        assert not low_only.matches({"gain": 4.9})
        high_only = ToleranceRule("A", {"gain": (None, 5.0)})
        assert high_only.matches({"gain": -1e9})

    def test_missing_measurement_raises(self):
        rule = ToleranceRule("A", {"gain": (1.0, 2.0)})
        with pytest.raises(RuleError, match="missing"):
            rule.matches({"bw": 1.5})

    @pytest.mark.parametrize("conditions", [
        {},                               # no conditions at all
        {"gain": (2.0, 1.0)},             # inverted bounds
        {"gain": (1.0, 1.0)},             # empty interval
        {"gain": (None, None)},           # doubly unbounded
        {"gain": (float("nan"), 1.0)},    # non-finite bound
        {"gain": (0.0, float("inf"))},    # inf must be spelled None
        {"gain": 3.0},                    # not a pair
    ])
    def test_invalid_conditions_rejected(self, conditions):
        with pytest.raises(RuleError):
            ToleranceRule("A", conditions)

    @pytest.mark.parametrize("guard", [
        {"bw": 0.1},            # guard on an unconditioned spec
        {"gain": -0.1},         # negative half-width
        {"gain": float("inf")},
    ])
    def test_invalid_guards_rejected(self, guard):
        with pytest.raises(RuleError):
            ToleranceRule("A", {"gain": (0.0, 1.0)}, guard=guard)

    def test_empty_bin_name_rejected(self):
        with pytest.raises(RuleError):
            ToleranceRule("", {"gain": (0.0, 1.0)})

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(RuleError, match="unknown rule field"):
            ToleranceRule.from_dict({
                "bin": "A", "conditions": {"gain": [0, 1]},
                "color": "red"})

    def test_dict_round_trip(self):
        rule = ToleranceRule("A", {"gain": (0.0, 1.0), "bw": (None, 2.0)},
                             guard={"gain": 0.1}, description="doc")
        again = ToleranceRule.from_dict(
            json.loads(json.dumps(rule.to_dict())))
        assert again == rule


class TestOverlapRejection:
    @pytest.mark.parametrize("a_conds, b_conds", [
        # plain 1-D interval overlap
        ({"gain": (0.0, 5.0)}, {"gain": (4.0, 10.0)}),
        # containment
        ({"gain": (0.0, 10.0)}, {"gain": (4.0, 6.0)}),
        # overlap through an unbounded side
        ({"gain": (5.0, None)}, {"gain": (None, 6.0)}),
        # 2-D: overlapping in both dims
        ({"gain": (0.0, 5.0), "bw": (1.0, 2.0)},
         {"gain": (4.0, 6.0), "bw": (1.5, 3.0)}),
        # one rule unconditioned on a dim the other constrains
        ({"gain": (0.0, 5.0)}, {"bw": (1.0, 2.0)}),
    ])
    def test_positive_measure_overlap_rejected(self, a_conds, b_conds):
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", a_conds), ToleranceRule("B", b_conds)],
            default_bin="REJECT")
        with pytest.raises(RuleError, match="overlap"):
            profile.validate(check_coverage=False)

    @pytest.mark.parametrize("a_conds, b_conds", [
        # disjoint intervals
        ({"gain": (0.0, 4.0)}, {"gain": (5.0, 10.0)}),
        # shared edge only (measure zero -- first match wins the tie)
        ({"gain": (0.0, 5.0)}, {"gain": (5.0, 10.0)}),
        # 2-D: overlap in one dim, disjoint in the other
        ({"gain": (0.0, 5.0), "bw": (1.0, 2.0)},
         {"gain": (0.0, 5.0), "bw": (2.0, 3.0)}),
    ])
    def test_non_overlapping_accepted(self, a_conds, b_conds):
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", a_conds), ToleranceRule("B", b_conds)],
            default_bin="REJECT")
        assert profile.validate(check_coverage=False) is profile

    def test_same_bin_rules_may_overlap(self):
        profile = ToleranceProfile(
            "p",
            [ToleranceRule("A", {"gain": (0.0, 6.0)}),
             ToleranceRule("A", {"gain": (4.0, 10.0)})],
            default_bin="REJECT")
        profile.validate(check_coverage=False)

    def test_rule_error_is_a_repro_error(self):
        assert issubclass(RuleError, ReproError)


class TestCoverage:
    def test_full_partition_passes(self):
        speed_grade_profile().validate(two_spec_set())

    @pytest.mark.parametrize("ranges, witness_between", [
        # hole in the middle of gain
        ([(0.0, 3.0), (5.0, 10.0)], (3.0, 5.0)),
        # hole at the low edge
        ([(1.0, 10.0)], (0.0, 1.0)),
        # hole at the high edge
        ([(0.0, 9.0)], (9.0, 10.0)),
    ])
    def test_gap_detected_with_witness(self, ranges, witness_between):
        rules = [ToleranceRule("G{}".format(i), {"gain": r})
                 for i, r in enumerate(ranges)]
        profile = ToleranceProfile("p", rules, default_bin="REJECT")
        with pytest.raises(RuleError) as err:
            profile.validate(two_spec_set())
        message = str(err.value)
        assert "coverage gap" in message
        # The witness point named in the error really is uncovered.
        lo, hi = witness_between
        witness = json.loads(
            message[message.index("{"):message.index("}") + 1]
            .replace("'", '"'))
        assert lo < witness["gain"] < hi

    def test_unknown_spec_rejected_before_coverage(self):
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", {"nope": (0.0, 1.0)})],
            default_bin="REJECT")
        with pytest.raises(RuleError, match="unknown"):
            profile.validate(two_spec_set())

    def test_no_conditioned_spec_rejected(self):
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", {"gain": (0.0, 1.0)})],
            default_bin="REJECT")
        specs = SpecificationSet([
            Specification("other", "u", 0.0, -1.0, 1.0)])
        with pytest.raises(RuleError):
            profile.validate(specs)

    def test_empty_profile_rejected(self):
        with pytest.raises(RuleError, match="no rules"):
            ToleranceProfile("p", [], default_bin="X").validate()

    def test_cell_budget_refusal(self):
        # 26 rules x ~2 cuts each on one axis is fine; blow the budget
        # with many axes instead: 2 cuts per axis over 18 axes.
        n_axes = 18
        specs = SpecificationSet([
            Specification("s{}".format(i), "u", 0.0, 0.0, 4.0)
            for i in range(n_axes)])
        rules = [ToleranceRule(
            "A", {"s{}".format(i): (1.0, 3.0) for i in range(n_axes)})]
        profile = ToleranceProfile("big", rules, default_bin="R")
        with pytest.raises(RuleError, match="cells"):
            profile.validate(specs)
        # the same profile validates with the coverage proof waived
        profile.validate(specs, check_coverage=False)


class TestFirstMatchDeterminism:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_permutation_invariance_off_boundaries(self, seed):
        """Validated (non-overlapping) rules bin identically in any
        rule order, except on exact shared edges -- sampled points
        almost surely avoid those."""
        rng = np.random.default_rng(seed)
        specs = two_spec_set()
        profile = speed_grade_profile()
        values = np.column_stack([
            rng.uniform(-1.0, 11.0, 200), rng.uniform(0.5, 3.5, 200)])
        baseline = profile.bind(specs).assign(values)
        order = rng.permutation(len(profile.rules))
        permuted = ToleranceProfile(
            profile.name, [profile.rules[i] for i in order],
            default_bin=profile.default_bin)
        permuted_bins = permuted.bind(specs).assign(values)
        base_names = np.asarray(profile.bins, dtype=object)[baseline]
        perm_names = np.asarray(permuted.bins, dtype=object)[permuted_bins]
        assert (base_names == perm_names).all()

    def test_shared_edge_goes_to_first_rule(self):
        specs = two_spec_set()
        a_first = ToleranceProfile(
            "p", [ToleranceRule("A", {"gain": (0.0, 5.0)}),
                  ToleranceRule("B", {"gain": (5.0, 10.0)})],
            default_bin="REJECT")
        b_first = ToleranceProfile(
            "p", [ToleranceRule("B", {"gain": (5.0, 10.0)}),
                  ToleranceRule("A", {"gain": (0.0, 5.0)})],
            default_bin="REJECT")
        edge = np.array([[5.0, 2.0]])
        assert a_first.bind(specs).verdict(edge).bin == "A"
        assert b_first.bind(specs).verdict(edge).bin == "B"

    def test_assign_matches_scalar_rule_loop(self):
        """The vectorized matcher agrees with per-device first-match
        over ToleranceRule.matches -- the semantics of record."""
        rng = np.random.default_rng(3)
        specs = two_spec_set()
        profile = speed_grade_profile()
        bound = profile.bind(specs)
        values = np.column_stack([
            rng.uniform(-1.0, 11.0, 300), rng.uniform(0.5, 3.5, 300)])
        got = bound.assign(values)
        for row, bin_idx in zip(values, got):
            sample = dict(zip(specs.names, row))
            expected = profile.default_bin
            for rule in profile.rules:
                if rule.matches(sample):
                    expected = rule.bin
                    break
            assert profile.bins[bin_idx] == expected


class TestGuardBands:
    @given(seed=st.integers(0, 30),
           scales=st.lists(st.floats(0.0, 3.0), min_size=2, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_uncertainty_monotonicity(self, seed, scales):
        """Widening the uncertainty never changes a bin and only moves
        devices from clear to boundary (the clear set shrinks)."""
        rng = np.random.default_rng(seed)
        specs = two_spec_set()
        bound = speed_grade_profile().bind(specs)
        values = np.column_stack([
            rng.uniform(-1.0, 11.0, 150), rng.uniform(0.5, 3.5, 150)])
        scales = sorted(scales)
        results = [bound.match(values, uncertainty_scale=s)
                   for s in scales]
        for (b0, _, _), (b1, _, _) in zip(results, results[1:]):
            assert (b0 == b1).all()
        for (_, _, c0), (_, _, c1) in zip(results, results[1:]):
            # clear at the wider scale implies clear at the narrower
            assert not (c1 & ~c0).any()

    def test_boundary_device_flagged(self):
        specs = two_spec_set()
        bound = speed_grade_profile().bind(specs)
        # 7.2 is within the 0.5 guard of FAST's 7.0 low edge.
        v = bound.verdict(np.array([[7.2, 2.0]]))
        assert v.bin == "FAST" and not v.clear
        # 8.5 is deep inside FAST.
        v = bound.verdict(np.array([[8.5, 2.0]]))
        assert v.bin == "FAST" and v.clear

    def test_default_bin_near_reachable_rule_is_boundary(self):
        # Acceptability box == A's region, so out-of-range devices
        # legitimately fall to the default bin and coverage holds.
        specs = SpecificationSet([
            Specification("gain", "V/V", 5.0, 4.0, 6.0),
            Specification("bw", "MHz", 2.0, 1.0, 3.0),
        ])
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", {"gain": (4.0, 6.0)},
                                guard={"gain": 0.5})],
            default_bin="REJECT")
        bound = profile.bind(specs)
        near = bound.verdict(np.array([[3.8, 2.0]]))   # 0.2 below A
        far = bound.verdict(np.array([[1.0, 2.0]]))
        assert near.bin == "REJECT" and not near.clear
        assert far.bin == "REJECT" and far.clear

    def test_no_guards_short_circuits_all_clear(self):
        specs = two_spec_set()
        profile = ToleranceProfile(
            "p", [ToleranceRule("A", {"gain": (0.0, 10.0)})],
            default_bin="REJECT")
        _, _, clear = profile.bind(specs).match(
            np.array([[5.0, 2.0], [99.0, 2.0]]), uncertainty_scale=10.0)
        assert clear.all()

    def test_negative_scale_rejected(self):
        bound = speed_grade_profile().bind(two_spec_set())
        with pytest.raises(RuleError):
            bound.match(np.zeros((1, 2)), uncertainty_scale=-1.0)


class TestVerdict:
    def test_exceedances(self):
        bound = speed_grade_profile().bind(two_spec_set())
        v = bound.verdict(np.array([[11.0, 0.5]]))
        assert v.bin == "REJECT" and v.rule is None
        assert v.exceedances["gain"] == pytest.approx(1.0)
        assert v.exceedances["bw"] == pytest.approx(0.5)
        assert "exceeds" in str(v)

    def test_single_row_required(self):
        bound = speed_grade_profile().bind(two_spec_set())
        with pytest.raises(RuleError):
            bound.verdict(np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        bound = speed_grade_profile().bind(two_spec_set())
        with pytest.raises(RuleError):
            bound.assign(np.zeros((4, 3)))


class TestSerialization:
    def test_json_round_trip_equality(self, tmp_path):
        profile = speed_grade_profile()
        path = tmp_path / "grades.json"
        profile.save(path)
        again = ToleranceProfile.load(path)
        assert again == profile
        assert again.to_dict() == profile.to_dict()
        # and idempotent: a second round trip produces the same doc
        assert ToleranceProfile.from_dict(again.to_dict()) == profile

    def test_save_validates_first(self, tmp_path):
        bad = ToleranceProfile(
            "p", [ToleranceRule("A", {"gain": (0.0, 5.0)}),
                  ToleranceRule("B", {"gain": (4.0, 9.0)})],
            default_bin="R")
        path = tmp_path / "bad.json"
        with pytest.raises(RuleError):
            bad.save(path)
        assert not path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(RuleError, match="cannot read"):
            ToleranceProfile.load(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(RuleError, match="cannot read"):
            ToleranceProfile.load(path)

    def test_load_overlapping_profile_rejected(self, tmp_path):
        doc = speed_grade_profile().to_dict()
        doc["rules"][0]["conditions"]["gain"] = [0.0, 10.0]
        path = tmp_path / "overlap.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(RuleError, match="overlap"):
            ToleranceProfile.load(path)

    def test_wrong_format_and_version_rejected(self):
        with pytest.raises(RuleError, match="not a tolerance-profile"):
            ToleranceProfile.from_dict({"format": "something-else"})
        with pytest.raises(RuleError, match="version"):
            ToleranceProfile.from_dict(
                {"format": PROFILE_FORMAT, "version": 99})

    def test_describe_names_every_rule(self):
        text = speed_grade_profile().describe()
        for bin_name in ("FAST", "TYP", "SLOW", "REJECT"):
            assert bin_name in text


class TestBinaryDefault:
    @given(seed=st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_reproduces_labels(self, seed):
        """The degenerate profile equals SpecificationSet.labels
        device for device -- the structural parity guarantee."""
        dataset = make_synthetic_dataset(n=120, seed=seed)
        specs = dataset.specifications
        profile = ToleranceProfile.binary_default(specs)
        bound = profile.bind(specs)
        bins = bound.assign(dataset.values)
        names = np.asarray(profile.bins, dtype=object)[bins]
        from repro.core.specs import GOOD
        expected = np.where(dataset.labels == GOOD, PASS_BIN, FAIL_BIN)
        assert (names == expected).all()

    def test_exact_boundary_values_pass(self):
        specs = two_spec_set()
        bound = ToleranceProfile.binary_default(specs).bind(specs)
        edge = np.array([[0.0, 3.0], [10.0, 1.0]])
        names = np.asarray(bound.bins, dtype=object)[bound.assign(edge)]
        assert (names == PASS_BIN).all()

    def test_bin_order_default_last(self):
        profile = ToleranceProfile.binary_default(two_spec_set())
        assert profile.bins == (PASS_BIN, FAIL_BIN)
        assert profile.bin_index(FAIL_BIN) == 1
        with pytest.raises(RuleError, match="unknown bin"):
            profile.bin_index("GOLD")
