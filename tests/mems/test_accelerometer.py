"""Electrical-equivalent accelerometer simulation tests."""

import numpy as np
import pytest

from repro.mems import AccelerometerGeometry, build_equivalent_circuit, \
    frequency_response
from repro.mems import mechanics as M


class TestEquivalentCircuit:
    def test_lumped_values_match_mechanics(self):
        g = AccelerometerGeometry()
        ckt, lumped = build_equivalent_circuit(g, 27.0)
        assert lumped["m"] == pytest.approx(M.effective_mass(g))
        assert lumped["k"] == pytest.approx(M.spring_constant(g, 27.0))
        assert lumped["c"] == pytest.approx(
            M.damping_coefficient(g, 27.0))
        assert ckt.device("Lmass").inductance == lumped["m"]
        assert ckt.device("Ckinv").capacitance == pytest.approx(
            1.0 / lumped["k"])

    def test_response_matches_analytic_transfer(self):
        """AC-simulated |x(f)| equals 1/|k - w^2 m + j w c|."""
        g = AccelerometerGeometry()
        freqs = np.logspace(2.5, 4.5, 101)
        sim = frequency_response(g, freqs, 27.0)
        m = M.effective_mass(g)
        c = M.damping_coefficient(g, 27.0)
        k = M.spring_constant(g, 27.0)
        w = 2 * np.pi * freqs
        analytic = 1.0 / np.abs(k - m * w ** 2 + 1j * w * c)
        assert np.allclose(sim, analytic, rtol=1e-6)

    def test_static_compliance(self):
        g = AccelerometerGeometry()
        resp = frequency_response(g, [1.0], 27.0)
        assert resp[0] == pytest.approx(
            1.0 / M.spring_constant(g, 27.0), rel=1e-4)

    def test_resonant_peak_location(self):
        g = AccelerometerGeometry()
        f0 = M.resonant_frequency(g)
        freqs = np.linspace(0.5 * f0, 1.5 * f0, 401)
        resp = frequency_response(g, freqs, 27.0)
        q = M.quality_factor_analytic(g)
        f_peak_expected = f0 * np.sqrt(1 - 1 / (2 * q * q))
        f_peak = freqs[np.argmax(resp)]
        assert f_peak == pytest.approx(f_peak_expected, rel=0.01)
