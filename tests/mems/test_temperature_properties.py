"""Property-based tests of the MEMS temperature physics.

The hot/cold test elimination works because temperature behaviour is a
deterministic, monotone function of geometry -- these hypothesis tests
assert that structure over the whole Monte-Carlo geometry space, not
just the nominal point.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mems import AccelerometerGeometry
from repro.mems import mechanics as M


def _random_geometry(seed, spread=0.08):
    rng = np.random.default_rng(seed)
    return AccelerometerGeometry().perturbed(rng, relative_spread=spread,
                                             angle_sigma_deg=1.0)


class TestTemperatureMonotonicity:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_stiffness_monotone_in_temperature(self, seed):
        """Hot stiffens, cold softens -- for every MC geometry."""
        g = _random_geometry(seed)
        k = [M.spring_constant(g, t) for t in (-40.0, 27.0, 80.0)]
        assert k[0] < k[1] < k[2]

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_q_monotone_decreasing_in_temperature(self, seed):
        g = _random_geometry(seed)
        q = [M.quality_factor_analytic(g, t) for t in (-40.0, 27.0, 80.0)]
        assert q[0] > q[1] > q[2]

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_temperature_shift_bounded(self, seed):
        """No geometry in the MC space comes near thermal buckling."""
        g = _random_geometry(seed)
        k_room = M.spring_constant(g, 27.0)
        for t in (-40.0, 80.0):
            shift = abs(M.spring_constant(g, t) - k_room) / k_room
            assert shift < 0.25

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_all_lumped_parameters_positive(self, seed):
        g = _random_geometry(seed)
        for t in (-40.0, 27.0, 80.0):
            assert M.spring_constant(g, t) > 0
            assert M.damping_coefficient(g, t) > 0
        assert M.effective_mass(g) > 0
        assert M.sense_gain(g) > 0


class TestGeometryScalingProperties:
    @given(scale=st.floats(0.85, 1.18), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_stiffness_homogeneous_in_beam_width(self, scale, seed):
        """k scales as width^3 for any base geometry (angle 0)."""
        rng = np.random.default_rng(seed)
        base = AccelerometerGeometry().perturbed(rng, 0.05,
                                                 angle_sigma_deg=0.0)
        from dataclasses import replace

        scaled = replace(base, beam_width=base.beam_width * scale)
        # The thermal term breaks exact homogeneity; compare bending
        # parts by evaluating at room temperature where it is small.
        ratio = (M.spring_constant(scaled, 27.0)
                 / M.spring_constant(base, 27.0))
        assert ratio == pytest.approx(scale ** 3, rel=0.05)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_resonance_consistency(self, seed):
        """f0^2 * m == k/(4 pi^2) across the geometry space."""
        g = _random_geometry(seed)
        f0 = M.resonant_frequency(g, 27.0)
        lhs = (2 * np.pi * f0) ** 2 * M.effective_mass(g)
        assert lhs == pytest.approx(M.spring_constant(g, 27.0), rel=1e-9)
