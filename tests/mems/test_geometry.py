"""Accelerometer geometry tests."""

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.mems import AccelerometerGeometry


class TestGeometry:
    def test_defaults_validate(self):
        AccelerometerGeometry().validate()

    def test_negative_dimension_rejected(self):
        geo = AccelerometerGeometry(beam_width=-1e-6)
        with pytest.raises(CircuitError, match="positive"):
            geo.validate()

    def test_angle_may_be_zero_or_negative(self):
        AccelerometerGeometry(spring_angle_deg=0.0).validate()
        AccelerometerGeometry(spring_angle_deg=-2.0).validate()

    def test_beam_aspect_sanity(self):
        geo = AccelerometerGeometry(beam_width=300e-6)
        with pytest.raises(CircuitError, match="below beam length"):
            geo.validate()

    def test_perturbed_respects_spreads(self):
        nominal = AccelerometerGeometry()
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = nominal.perturbed(rng, relative_spread=0.05,
                                  angle_sigma_deg=0.5)
            for name in AccelerometerGeometry.VARIED_RELATIVE:
                ratio = getattr(p, name) / getattr(nominal, name)
                assert 0.95 <= ratio <= 1.05
            assert abs(p.spring_angle_deg) < 3.0  # ~6 sigma

    def test_cte_not_varied(self):
        """Material CTE stays at nominal (paper varies geometry only)."""
        nominal = AccelerometerGeometry()
        rng = np.random.default_rng(1)
        p = nominal.perturbed(rng)
        assert p.cte_mismatch == nominal.cte_mismatch

    def test_perturbed_deterministic(self):
        nominal = AccelerometerGeometry()
        a = nominal.perturbed(np.random.default_rng(9))
        b = nominal.perturbed(np.random.default_rng(9))
        assert a == b

    def test_as_dict(self):
        geo = AccelerometerGeometry()
        d = geo.as_dict()
        assert d["beam_length"] == geo.beam_length
        assert AccelerometerGeometry(**d) == geo
