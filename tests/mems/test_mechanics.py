"""MEMS mechanics tests: scaling laws and temperature physics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mems import AccelerometerGeometry
from repro.mems import mechanics as M


class TestScalingLaws:
    def test_stiffness_cubic_in_width(self):
        g = AccelerometerGeometry()
        wide = AccelerometerGeometry(beam_width=g.beam_width * 2)
        ratio = M.spring_constant(wide) / M.spring_constant(g)
        assert ratio == pytest.approx(8.0, rel=0.02)

    def test_stiffness_inverse_cubic_in_length(self):
        g = AccelerometerGeometry()
        long = AccelerometerGeometry(beam_length=g.beam_length * 2)
        ratio = M.spring_constant(long) / M.spring_constant(g)
        assert ratio == pytest.approx(1 / 8.0, rel=0.05)

    def test_mass_scales_with_plate_area(self):
        g = AccelerometerGeometry()
        big = AccelerometerGeometry(mass_length=g.mass_length * 2)
        assert M.effective_mass(big) > 1.8 * M.effective_mass(g)

    @given(scale=st.floats(0.7, 1.4))
    @settings(max_examples=30, deadline=None)
    def test_resonance_from_k_and_m(self, scale):
        """f0 always equals sqrt(k/m)/2pi regardless of geometry."""
        g = AccelerometerGeometry(beam_length=210e-6 * scale)
        f0 = M.resonant_frequency(g)
        expected = math.sqrt(
            M.spring_constant(g) / M.effective_mass(g)) / (2 * math.pi)
        assert f0 == pytest.approx(expected, rel=1e-12)

    def test_angle_misalignment_stiffens(self):
        straight = AccelerometerGeometry(spring_angle_deg=0.0)
        tilted = AccelerometerGeometry(spring_angle_deg=3.0)
        assert M.spring_constant(tilted) > M.spring_constant(straight)
        # Symmetric in the angle sign.
        tilted_neg = AccelerometerGeometry(spring_angle_deg=-3.0)
        assert M.spring_constant(tilted_neg) == pytest.approx(
            M.spring_constant(tilted), rel=1e-9)


class TestTemperaturePhysics:
    def test_hot_die_stiffens_cold_die_softens(self):
        """Anchor motion: expansion tensions the beams (paper's model)."""
        g = AccelerometerGeometry()
        k_cold = M.spring_constant(g, -40.0)
        k_room = M.spring_constant(g, 27.0)
        k_hot = M.spring_constant(g, 80.0)
        assert k_cold < k_room < k_hot

    def test_anchor_displacement_sign(self):
        g = AccelerometerGeometry()
        assert M.anchor_displacement(g, 80.0) > 0
        assert M.anchor_displacement(g, -40.0) < 0
        assert M.anchor_displacement(g, M.T_ROOM) == 0.0

    def test_viscosity_increases_with_temperature(self):
        assert M.viscosity(80.0) > M.viscosity(27.0) > M.viscosity(-40.0)

    def test_quality_factor_drops_when_hot(self):
        g = AccelerometerGeometry()
        assert (M.quality_factor_analytic(g, 80.0)
                < M.quality_factor_analytic(g, 27.0)
                < M.quality_factor_analytic(g, -40.0))

    def test_youngs_modulus_softens_with_temperature(self):
        assert M.youngs_modulus(80.0) < M.youngs_modulus(27.0)

    def test_nominal_q_near_two(self):
        q = M.quality_factor_analytic(AccelerometerGeometry())
        assert q == pytest.approx(2.0, rel=0.1)

    def test_nominal_f0_in_range(self):
        f0 = M.resonant_frequency(AccelerometerGeometry())
        assert 4.5e3 < f0 < 6.0e3

    def test_temperature_shift_is_few_percent(self):
        """Temperature moves k by percent, not by orders of magnitude."""
        g = AccelerometerGeometry()
        k_room = M.spring_constant(g, 27.0)
        for t in (-40.0, 80.0):
            shift = abs(M.spring_constant(g, t) - k_room) / k_room
            assert 0.005 < shift < 0.15


class TestSense:
    def test_sense_capacitance_scales_with_fingers(self):
        g = AccelerometerGeometry()
        double = AccelerometerGeometry(n_fingers=g.n_fingers * 2)
        assert M.sense_capacitance(double) == pytest.approx(
            2 * M.sense_capacitance(g))

    def test_sense_gain_inverse_in_gap(self):
        g = AccelerometerGeometry()
        wide = AccelerometerGeometry(finger_gap=g.finger_gap * 2)
        assert M.sense_gain(wide) == pytest.approx(M.sense_gain(g) / 2)
