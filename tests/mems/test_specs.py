"""MEMS specification-measurement tests."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.mems import (
    MEMS_SPECIFICATIONS,
    TEMPERATURES,
    AccelerometerBench,
    AccelerometerGeometry,
    measure_accelerometer,
)
# Aliased so pytest does not collect them as test functions.
from repro.mems import test_name as spec_test_name
from repro.mems import tests_at_temperature as temperature_block
from repro.mems import mechanics as M
from repro.mems.specs import SWEEP_FREQUENCIES, fit_second_order


class TestNaming:
    def test_twelve_tests_total(self):
        assert len(MEMS_SPECIFICATIONS) == 12

    def test_test_name_format(self):
        assert spec_test_name("peak_freq", -40.0) == "peak_freq@-40C"

    def test_temperature_blocks_partition_the_set(self):
        all_names = set()
        for t in TEMPERATURES:
            block = temperature_block(t)
            assert len(block) == 4
            all_names.update(block)
        assert all_names == set(MEMS_SPECIFICATIONS.names)


class TestSecondOrderFit:
    def test_recovers_known_parameters(self):
        a, f0, q = 2e-6, 5e3, 1.8
        freqs = SWEEP_FREQUENCIES
        u = (freqs / f0) ** 2
        resp = a / np.sqrt((1 - u) ** 2 + u / q ** 2)
        a_fit, f0_fit, q_fit = fit_second_order(freqs, resp)
        assert a_fit == pytest.approx(a, rel=1e-6)
        assert f0_fit == pytest.approx(f0, rel=1e-6)
        assert q_fit == pytest.approx(q, rel=1e-6)

    def test_overdamped_fit_still_works(self):
        a, f0, q = 1e-6, 5e3, 0.5
        freqs = SWEEP_FREQUENCIES
        u = (freqs / f0) ** 2
        resp = a / np.sqrt((1 - u) ** 2 + u / q ** 2)
        _, f0_fit, q_fit = fit_second_order(freqs, resp)
        assert q_fit == pytest.approx(0.5, rel=1e-4)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_second_order([1, 2, 3], [1, 2, 3, 4])
        with pytest.raises(AnalysisError):
            fit_second_order(np.arange(1, 7), np.zeros(6))


class TestMeasurement:
    def test_nominal_passes_all_ranges(self):
        values = measure_accelerometer()
        assert set(values) == set(MEMS_SPECIFICATIONS.names)
        for spec in MEMS_SPECIFICATIONS:
            assert spec.contains(values[spec.name])

    def test_measured_q_matches_analytic(self):
        g = AccelerometerGeometry()
        values = measure_accelerometer(g)
        for t in TEMPERATURES:
            q_measured = values[spec_test_name("quality_factor", t)]
            q_analytic = M.quality_factor_analytic(g, t)
            assert q_measured == pytest.approx(q_analytic, rel=0.02)

    def test_temperature_ordering_of_q(self):
        values = measure_accelerometer()
        assert (values["quality_factor@80C"]
                < values["quality_factor@27C"]
                < values["quality_factor@-40C"])

    def test_scale_factor_drops_when_hot(self):
        """Hot die stiffens -> less displacement per g."""
        values = measure_accelerometer()
        assert (values["scale_factor@80C"]
                < values["scale_factor@27C"]
                < values["scale_factor@-40C"])

    def test_bench_protocol(self):
        bench = AccelerometerBench()
        rng = np.random.default_rng(0)
        geo = bench.sample_parameters(rng)
        row = bench.measure(geo)
        assert row.shape == (12,)
        assert np.all(np.isfinite(row))

    def test_dataset_generation_and_yield(self):
        bench = AccelerometerBench()
        ds = bench.generate_dataset(60, seed=11)
        assert len(ds) == 60
        assert 0.4 < ds.yield_fraction <= 1.0
