"""Subset-keyed Gram cache tests (hit behavior, numerics, eviction)."""

import numpy as np
import pytest

from repro.errors import CompactionError
from repro.learn.kernels import kernel_function, squared_distances
from repro.runtime.kernel_cache import GramCache

from tests.synthetic import make_synthetic_dataset


@pytest.fixture
def dataset():
    return make_synthetic_dataset(n=60, seed=5)


@pytest.fixture
def cache(dataset):
    return GramCache.from_dataset(dataset)


class TestNumerics:
    def test_distances_match_direct_computation(self, dataset, cache):
        names = ("s1", "s3", "s4")
        X = dataset.normalized_values(names)
        direct = squared_distances(X, X)
        assert np.allclose(cache.distances(names), direct)

    def test_gram_matches_rbf_kernel(self, dataset, cache):
        names = ("s0", "s2")
        X = dataset.normalized_values(names)
        rbf = kernel_function("rbf", gamma=4.0)
        assert np.allclose(cache.gram(names, 4.0), rbf(X, X))

    def test_single_column_subset(self, dataset, cache):
        X = dataset.normalized_values(("s5",))
        assert np.allclose(cache.distances(("s5",)),
                           squared_distances(X, X))

    def test_deterministic_across_instances(self, dataset):
        """Two caches (any history) produce bit-identical matrices."""
        a = GramCache.from_dataset(dataset)
        b = GramCache.from_dataset(dataset)
        a.distances(("s0", "s1", "s2", "s3"))  # different warm-up path
        key = ("s1", "s2", "s3")
        assert np.array_equal(a.gram(key, 2.0), b.gram(key, 2.0))


class TestHitBehavior:
    def test_repeated_subset_hits(self, cache):
        names = ("s0", "s1")
        cache.distances(names)
        assert cache.stats["distance_misses"] == 1
        cache.distances(names)
        assert cache.stats["distance_hits"] == 1

    def test_subset_key_is_order_insensitive(self, cache):
        first = cache.distances(("s2", "s0"))
        second = cache.distances(("s0", "s2"))
        assert cache.stats["distance_hits"] == 1
        assert second is first

    def test_columns_shared_across_subsets(self, cache):
        cache.distances(("s0", "s1", "s2"))
        builds = cache.stats["column_builds"]
        cache.distances(("s1", "s2", "s3"))
        # Only s3 is new; s1/s2 come from the per-column store.
        assert cache.stats["column_builds"] == builds + 1

    def test_gram_cached_per_gamma(self, cache):
        names = ("s0", "s4")
        cache.gram(names, 2.0)
        cache.gram(names, 2.0)
        cache.gram(names, 8.0)
        assert cache.stats["gram_hits"] == 1
        assert cache.stats["gram_misses"] == 2

    def test_view_binds_subset(self, cache):
        view = cache.view(("s1", "s5"))
        assert view.n == cache.n
        K = view.gram(1.5)
        assert K.shape == (cache.n, cache.n)
        assert cache.stats["gram_misses"] == 1


class TestBudget:
    def test_eviction_under_tiny_budget(self, dataset):
        matrix_bytes = len(dataset) * len(dataset) * 8
        tiny = GramCache.from_dataset(dataset, max_bytes=3 * matrix_bytes)
        for names in (("s0", "s1"), ("s2", "s3"), ("s4", "s5"),
                      ("s0", "s2"), ("s1", "s3")):
            tiny.distances(names)
        assert tiny.stats["evictions"] > 0
        assert tiny.nbytes <= 3 * matrix_bytes
        # Evicted subsets still compute correctly (and bit-identically).
        fresh = GramCache.from_dataset(dataset)
        assert np.array_equal(tiny.distances(("s0", "s1")),
                              fresh.distances(("s0", "s1")))


class TestValidation:
    def test_unknown_name_rejected(self, cache):
        with pytest.raises(CompactionError):
            cache.distances(("s0", "nope"))

    def test_duplicate_name_rejected(self, cache):
        with pytest.raises(CompactionError):
            cache.distances(("s0", "s0"))

    def test_empty_subset_rejected(self, cache):
        with pytest.raises(CompactionError):
            cache.distances(())

    def test_bad_gamma_rejected(self, cache):
        with pytest.raises(CompactionError):
            cache.gram(("s0",), 0.0)
