"""Determinism contract of the parallel Monte-Carlo generation engine.

The engine's promise: for ``seed_mode="per-instance"`` the generated
dataset is a pure function of ``(dut, seed, n_instances)`` --
independent of worker count and execution order, with failures and
resamples confined to their own instance slot -- while
``seed_mode="sequential"`` replays the legacy shared-stream draw order
byte for byte.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError, DatasetError
from repro.mems import AccelerometerBench
from repro.opamp import OpAmpBench
from repro.process.montecarlo import generate_dataset, generate_many
from repro.runtime.simulation import instance_streams

from tests.synthetic import SyntheticDut


class PureFlakyDut(SyntheticDut):
    """Fails deterministically as a pure function of the sampled params.

    Unlike a call-counting flaky DUT, the failure decision depends only
    on the instance's own draws, so it is compatible with parallel
    generation (workers hold pickled DUT copies).
    """

    FAIL_BAND = (0.0, 0.45)

    def fails_on(self, params):
        low, high = self.FAIL_BAND
        return low < float(params[0]) < high

    def measure(self, params):
        if self.fails_on(params):
            raise ConvergenceError("unstable bias point")
        return super().measure(params)


class AlwaysFailDut(SyntheticDut):
    def measure(self, params):
        raise ConvergenceError("dead device")


class CountingAlwaysFailDut(SyntheticDut):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.calls = 0

    def measure(self, params):
        self.calls += 1
        raise ConvergenceError("dead device")


class FlakyOpAmpBench(OpAmpBench):
    """A real op-amp bench with pure, param-dependent failure injection.

    Module-level (not test-local) so worker processes can unpickle it
    under any multiprocessing start method.  The batched path injects
    the same failures so scalar/batched runs resample identically.
    """

    def _fails_on(self, params):
        return params.w1 > self.nominal.w1  # pure in the params

    def measure(self, params):
        if self._fails_on(params):
            raise ConvergenceError("injected failure")
        return super().measure(params)

    def measure_batch(self, params_list):
        rows = super().measure_batch(params_list)
        return [ConvergenceError("injected failure")
                if self._fails_on(params) else row
                for params, row in zip(params_list, rows)]


class FlakyAccelerometerBench(AccelerometerBench):
    """A real MEMS bench with pure, geometry-dependent failures."""

    def _fails_on(self, geometry):
        return geometry.beam_width > self.nominal.beam_width

    def measure(self, geometry):
        if self._fails_on(geometry):
            raise ConvergenceError("injected failure")
        return super().measure(geometry)

    def measure_batch(self, geometries):
        rows = super().measure_batch(geometries)
        return [ConvergenceError("injected failure")
                if self._fails_on(geometry) else row
                for geometry, row in zip(geometries, rows)]


class TestPerInstanceDeterminism:
    def test_serial_equals_parallel(self):
        dut = SyntheticDut()
        serial = generate_dataset(dut, 40, seed=42)
        for n_jobs in (2, 3):
            par = generate_dataset(dut, 40, seed=42, n_jobs=n_jobs)
            assert np.array_equal(serial.values, par.values)
            assert np.array_equal(serial.labels, par.labels)

    def test_serial_equals_parallel_with_failures(self):
        dut = PureFlakyDut()
        serial, rs = generate_dataset(dut, 60, seed=5, max_failures=100,
                                      return_report=True)
        par, rp = generate_dataset(dut, 60, seed=5, max_failures=100,
                                   n_jobs=2, return_report=True)
        assert rs.n_failed > 0  # the injection actually fired
        assert np.array_equal(serial.values, par.values)
        assert (rs.n_failed, rs.n_simulated) == (rp.n_failed, rp.n_simulated)
        assert rs.failures == rp.failures

    def test_failures_stay_inside_their_slot(self):
        """A failing slot resamples itself; neighbors are untouched."""
        flaky = PureFlakyDut()
        clean = SyntheticDut()
        with_failures = generate_dataset(flaky, 60, seed=5,
                                         max_failures=100)
        without = generate_dataset(clean, 60, seed=5)
        # A slot's first draw decides whether it ever failed; recompute
        # it per slot from the seed tree.
        failed_first = []
        for stream in instance_streams(5, 60):
            rng = np.random.default_rng(stream)
            failed_first.append(flaky.fails_on(flaky.sample_parameters(rng)))
        assert any(failed_first)
        for slot, failed in enumerate(failed_first):
            same = np.array_equal(with_failures.values[slot],
                                  without.values[slot])
            assert same != failed  # resampled iff the first draw failed

    def test_prefix_property(self):
        """The first k slots of an n-instance run equal a k-instance run."""
        dut = SyntheticDut()
        big = generate_dataset(dut, 32, seed=9)
        small = generate_dataset(dut, 8, seed=9)
        assert np.array_equal(small.values, big.values[:8])

    def test_max_failures_aborts_at_exactly_k(self):
        for n_jobs in (None, 2):
            with pytest.raises(DatasetError,
                               match="3 simulation failures"):
                generate_dataset(AlwaysFailDut(), 10, seed=0,
                                 max_failures=3, n_jobs=n_jobs)

    def test_abort_stops_simulating(self):
        """The failure budget bounds *work*, not just the outcome: a
        serial run of a dead DUT simulates exactly max_failures times
        however many instances were requested."""
        dut = CountingAlwaysFailDut()
        with pytest.raises(DatasetError, match="aborted"):
            generate_dataset(dut, 1000, seed=0, max_failures=5)
        assert dut.calls == 5

    def test_raise_mode_propagates_from_workers(self):
        with pytest.raises(ConvergenceError, match="dead device"):
            generate_dataset(AlwaysFailDut(), 10, seed=0,
                             on_error="raise", n_jobs=2)

    def test_invalid_seed_mode_rejected(self):
        with pytest.raises(DatasetError, match="seed_mode"):
            generate_dataset(SyntheticDut(), 10, seed=0,
                             seed_mode="per-lot")


class MiscountingBatchDut(SyntheticDut):
    """Returns one result too few from measure_batch (a contract bug)."""

    def measure_batch(self, params_list):
        return super().measure_batch(params_list)[:-1]


class NonFiniteDut(SyntheticDut):
    """Returns an inf row as a pure function of the sampled params."""

    def measure(self, params):
        values = super().measure(params)
        if 0.0 < float(params[0]) < 0.45:
            values = values.copy()
            values[0] = np.inf
        return values


class TestBatchedEngine:
    """engine='batched': same dataset, reports and aborts as scalar."""

    def test_batched_equals_scalar(self):
        dut = SyntheticDut()
        scalar = generate_dataset(dut, 40, seed=42)
        batched = generate_dataset(dut, 40, seed=42, engine="batched")
        assert np.array_equal(scalar.values, batched.values)
        assert np.array_equal(scalar.labels, batched.labels)

    def test_batched_parallel_equals_scalar_serial(self):
        dut = SyntheticDut()
        scalar = generate_dataset(dut, 30, seed=8)
        batched = generate_dataset(dut, 30, seed=8, engine="batched",
                                   n_jobs=2)
        assert np.array_equal(scalar.values, batched.values)

    def test_resampled_slots_identical_with_failures(self):
        """Failing slots redraw from their own streams in retry waves;
        dataset and report match the scalar engine exactly."""
        dut = PureFlakyDut()
        scalar, rs = generate_dataset(dut, 60, seed=5, max_failures=100,
                                      return_report=True)
        batched, rb = generate_dataset(dut, 60, seed=5,
                                       max_failures=100,
                                       engine="batched",
                                       return_report=True)
        assert rs.n_failed > 0  # the injection actually fired
        assert np.array_equal(scalar.values, batched.values)
        assert (rs.n_failed, rs.n_simulated) == (rb.n_failed,
                                                 rb.n_simulated)
        assert rs.failures == rb.failures

    def test_nonfinite_rows_counted_identically(self):
        dut_a, dut_b = NonFiniteDut(), NonFiniteDut()
        scalar, rs = generate_dataset(dut_a, 50, seed=3,
                                      max_failures=100,
                                      return_report=True)
        batched, rb = generate_dataset(dut_b, 50, seed=3,
                                       max_failures=100,
                                       engine="batched",
                                       return_report=True)
        assert rs.n_failed > 0
        assert "non-finite measurement" in rs.failures
        assert np.array_equal(scalar.values, batched.values)
        assert rs.failures == rb.failures

    def test_max_failures_aborts_at_exactly_k(self):
        """The regression pin for the batched path: abort fires at
        exactly k failures with the same message as the scalar path."""
        for n_jobs in (None, 2):
            with pytest.raises(DatasetError,
                               match="3 simulation failures"):
                generate_dataset(AlwaysFailDut(), 10, seed=0,
                                 max_failures=3, engine="batched",
                                 n_jobs=n_jobs)

    def test_abort_report_matches_scalar(self):
        scalar_dut = CountingAlwaysFailDut()
        batched_dut = CountingAlwaysFailDut()
        with pytest.raises(DatasetError) as scalar_exc:
            generate_dataset(scalar_dut, 20, seed=0, max_failures=5)
        with pytest.raises(DatasetError) as batched_exc:
            generate_dataset(batched_dut, 20, seed=0, max_failures=5,
                             engine="batched")
        assert str(scalar_exc.value) == str(batched_exc.value)

    def test_raise_mode_propagates_first_error(self):
        with pytest.raises(ConvergenceError, match="dead device"):
            generate_dataset(AlwaysFailDut(), 10, seed=0,
                             on_error="raise", engine="batched")

    def test_prefix_property_holds(self):
        dut = SyntheticDut()
        big = generate_dataset(dut, 32, seed=9, engine="batched")
        small = generate_dataset(dut, 8, seed=9, engine="batched")
        assert np.array_equal(small.values, big.values[:8])

    def test_generate_many_batched_equals_scalar(self):
        requests = [(SyntheticDut(seed=s), 15, s) for s in (1, 2, 3)]
        scalar = generate_many(requests)
        batched = generate_many(requests, engine="batched")
        for a, b in zip(scalar, batched):
            assert np.array_equal(a.values, b.values)

    def test_streaming_batches_batched_equals_scalar(self):
        from repro.runtime.simulation import generate_instance_batches

        dut = PureFlakyDut()
        scalar = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200)))
        batched = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200,
            engine="batched")))
        assert np.array_equal(scalar, batched)

    def test_chunk_size_composes_with_workers(self):
        """Small populations still split across workers: the chunk
        size shrinks toward n/n_jobs so engine='batched' composes
        with process fan-out instead of serializing."""
        from repro.runtime.simulation import (
            BATCH_SLOTS, _batched_chunk_size,
        )

        assert _batched_chunk_size(1000, 1) == BATCH_SLOTS
        assert _batched_chunk_size(100, 2) == 50
        assert _batched_chunk_size(100, 8) == 13
        assert _batched_chunk_size(3, 8) == 1
        assert _batched_chunk_size(10000, 2) == BATCH_SLOTS

    def test_wave_chunking_never_changes_values(self, monkeypatch):
        """Tiny BATCH_SLOTS (many waves per lot) == one big wave."""
        import repro.runtime.simulation as sim

        dut = PureFlakyDut()
        reference = generate_dataset(dut, 30, seed=5, max_failures=100,
                                     engine="batched")
        monkeypatch.setattr(sim, "BATCH_SLOTS", 4)
        chunked = generate_dataset(dut, 30, seed=5, max_failures=100,
                                   engine="batched")
        assert np.array_equal(reference.values, chunked.values)

    def test_engine_validated(self):
        with pytest.raises(DatasetError, match="engine"):
            generate_dataset(SyntheticDut(), 10, seed=0, engine="warp")

    def test_dut_without_measure_batch_rejected(self):
        class NoBatch:
            specifications = SyntheticDut().specifications

            def sample_parameters(self, rng):
                return rng.normal(size=3)

            def measure(self, params):
                return np.zeros(6)

        with pytest.raises(DatasetError, match="measure_batch"):
            generate_dataset(NoBatch(), 10, seed=0, engine="batched")

    def test_wrapped_dut_without_measure_batch_rejected_up_front(self):
        """A DefectInjector must not advertise the batched protocol
        when its wrapped DUT cannot batch: the engine's pre-flight
        validation rejects it before any simulation starts."""
        from repro.process.defects import DefectInjector

        class NoBatch:
            specifications = SyntheticDut().specifications

            def sample_parameters(self, rng):
                return rng.normal(size=3)

            def measure(self, params):
                return np.zeros(6)

        wrapped = DefectInjector(NoBatch(), defect_rate=0.1)
        assert getattr(wrapped, "measure_batch", None) is None
        with pytest.raises(DatasetError, match="measure_batch"):
            generate_dataset(wrapped, 10, seed=0, engine="batched")
        # A batch-capable wrapped DUT still exposes the hook.
        assert DefectInjector(SyntheticDut()).measure_batch is not None

    def test_sequential_seed_mode_rejected(self):
        with pytest.raises(DatasetError, match="sequential"):
            generate_dataset(SyntheticDut(), 10, seed=0,
                             seed_mode="sequential", engine="batched")

    def test_miscounting_measure_batch_rejected(self):
        with pytest.raises(DatasetError, match="results for"):
            generate_dataset(MiscountingBatchDut(), 10, seed=0,
                             engine="batched")


class TestBatchedEngineMems:
    """Circuit-level batched parity on the (fast) real MEMS bench."""

    def test_mems_batched_equals_scalar(self):
        bench = AccelerometerBench()
        scalar = bench.generate_dataset(12, seed=23)
        batched = bench.generate_dataset(12, seed=23, engine="batched")
        assert np.array_equal(scalar.values, batched.values)
        assert np.array_equal(scalar.labels, batched.labels)

    def test_defect_injected_population_identical(self):
        """DefectInjector wraps the bench: defects are drawn at
        sampling time, so both engines measure identical defective
        populations -- and produce identical pass/fail labels."""
        from repro.process.defects import DefectInjector

        scalar_dut = DefectInjector(AccelerometerBench(),
                                    defect_rate=0.3)
        batched_dut = DefectInjector(AccelerometerBench(),
                                     defect_rate=0.3)
        scalar = generate_dataset(scalar_dut, 15, seed=41,
                                  max_failures=100)
        batched = generate_dataset(batched_dut, 15, seed=41,
                                   max_failures=100, engine="batched")
        assert scalar_dut.n_injected > 0
        assert np.array_equal(scalar.values, batched.values)
        assert np.array_equal(scalar.labels, batched.labels)

    def test_mems_batched_with_forced_resamples(self):
        scalar_bench, batched_bench = (FlakyAccelerometerBench(),
                                       FlakyAccelerometerBench())
        scalar, rs = scalar_bench.generate_dataset(
            10, seed=29, max_failures=100, return_report=True)
        batched, rb = batched_bench.generate_dataset(
            10, seed=29, max_failures=100, engine="batched",
            return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(scalar.values, batched.values)
        assert rs.failures == rb.failures


class TestSequentialBackCompat:
    def test_replays_legacy_shared_stream(self):
        """seed_mode='sequential' reproduces the historical draw order."""
        dut = SyntheticDut()
        rng = np.random.default_rng(42)
        legacy = np.vstack([dut.measure(dut.sample_parameters(rng))
                            for _ in range(50)])
        ds = generate_dataset(dut, 50, seed=42, seed_mode="sequential")
        assert np.array_equal(ds.values, legacy)

    def test_differs_from_per_instance(self):
        dut = SyntheticDut()
        seq = generate_dataset(dut, 20, seed=3, seed_mode="sequential")
        per = generate_dataset(dut, 20, seed=3)
        assert not np.array_equal(seq.values, per.values)

    def test_parallel_request_rejected(self):
        with pytest.raises(DatasetError, match="sequential"):
            generate_dataset(SyntheticDut(), 10, seed=0,
                             seed_mode="sequential", n_jobs=2)
        # n_jobs resolving to serial is fine.
        ds = generate_dataset(SyntheticDut(), 10, seed=0,
                              seed_mode="sequential", n_jobs=1)
        assert len(ds) == 10


class TestGenerateMany:
    def test_matches_individual_runs(self):
        dut_a = SyntheticDut(seed=99)
        dut_b = PureFlakyDut(seed=7)
        batch = generate_many([(dut_a, 20, 1), (dut_b, 30, 2)],
                              max_failures=100)
        individual = [
            generate_dataset(dut_a, 20, seed=1),
            generate_dataset(dut_b, 30, seed=2, max_failures=100),
        ]
        assert len(batch) == 2
        for got, want in zip(batch, individual):
            assert np.array_equal(got.values, want.values)

    def test_parallel_equals_serial(self):
        requests = [(SyntheticDut(seed=s), 15, s) for s in (1, 2, 3)]
        serial = generate_many(requests)
        parallel = generate_many(requests, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.values, b.values)

    def test_reports_returned_in_order(self):
        requests = [(SyntheticDut(), 5, 0), (SyntheticDut(), 9, 1)]
        out = generate_many(requests, return_reports=True)
        assert [r.n_requested for _, r in out] == [5, 9]
        assert [len(ds) for ds, _ in out] == [5, 9]

    def test_malformed_request_rejected(self):
        with pytest.raises(DatasetError, match="requests"):
            generate_many([(SyntheticDut(), 5)])


@pytest.mark.slow
class TestRealBenches:
    """Serial/parallel byte-equality on the real circuit-level DUTs."""

    def test_opamp_serial_equals_parallel(self):
        from repro.opamp import OpAmpBench

        bench = OpAmpBench()
        serial = bench.generate_dataset(4, seed=17)
        parallel = bench.generate_dataset(4, seed=17, n_jobs=2)
        assert np.array_equal(serial.values, parallel.values)

    def test_mems_serial_equals_parallel(self):
        bench = AccelerometerBench()
        serial = bench.generate_dataset(8, seed=23)
        parallel = bench.generate_dataset(8, seed=23, n_jobs=2)
        assert np.array_equal(serial.values, parallel.values)

    def test_mems_parallel_with_failures(self):
        bench = FlakyAccelerometerBench()
        serial, rs = bench.generate_dataset(8, seed=29, max_failures=100,
                                            return_report=True)
        parallel, rp = bench.generate_dataset(8, seed=29,
                                              max_failures=100,
                                              n_jobs=2,
                                              return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(serial.values, parallel.values)
        assert rs.n_failed == rp.n_failed

    def test_opamp_parallel_with_failures(self):
        """Real simulations through a pure failure-injecting wrapper."""
        bench = FlakyOpAmpBench()
        serial, rs = bench.generate_dataset(3, seed=31, max_failures=50,
                                            return_report=True)
        parallel, rp = bench.generate_dataset(3, seed=31, max_failures=50,
                                              n_jobs=2, return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(serial.values, parallel.values)
        assert rs.n_failed == rp.n_failed

    def test_opamp_batched_equals_scalar(self):
        """The acceptance-gate contract at the dataset level: the
        batched MNA kernel reproduces the scalar op-amp population
        bit for bit."""
        bench = OpAmpBench()
        scalar = bench.generate_dataset(4, seed=17)
        batched = bench.generate_dataset(4, seed=17, engine="batched")
        assert np.array_equal(scalar.values, batched.values)
        assert np.array_equal(scalar.labels, batched.labels)

    def test_opamp_batched_with_forced_resamples(self):
        """Injected failures force slot resamples; the batched engine
        replays them from the same per-slot streams."""
        scalar_bench, batched_bench = (FlakyOpAmpBench(),
                                       FlakyOpAmpBench())
        scalar, rs = scalar_bench.generate_dataset(
            3, seed=31, max_failures=50, return_report=True)
        batched, rb = batched_bench.generate_dataset(
            3, seed=31, max_failures=50, engine="batched",
            return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(scalar.values, batched.values)
        assert (rs.n_failed, rs.n_simulated) == (rb.n_failed,
                                                 rb.n_simulated)
        assert rs.failures == rb.failures


class TestInstanceBatchStreaming:
    """generate_instance_batches: the floor's simulated-traffic feed."""

    def test_concatenation_equals_one_shot(self):
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut = SyntheticDut()
        reference, _ = generate_instances(dut, 50, seed=31)
        for batch_size in (1, 7, 50, 64):
            batches = list(generate_instance_batches(
                dut, 50, seed=31, batch_size=batch_size))
            assert np.array_equal(np.vstack(batches), reference)
            assert all(len(b) <= batch_size for b in batches)

    def test_parallel_equals_serial(self):
        from repro.runtime.simulation import generate_instance_batches

        dut = PureFlakyDut()
        serial = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200)))
        parallel = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200,
            n_jobs=2)))
        assert np.array_equal(serial, parallel)

    def test_failure_budget_spans_batches(self):
        """The budget is run-level: failures in early batches count
        against later ones, exactly as in the one-shot path."""
        from repro.runtime.simulation import generate_instance_batches

        dut = CountingAlwaysFailDut()
        stream = generate_instance_batches(dut, 100, seed=0,
                                           batch_size=10,
                                           max_failures=5)
        with pytest.raises(DatasetError, match="5 simulation failures"):
            list(stream)
        assert dut.calls == 5

    def test_raise_mode(self):
        from repro.runtime.simulation import generate_instance_batches

        stream = generate_instance_batches(AlwaysFailDut(), 10, seed=0,
                                           batch_size=4,
                                           on_error="raise")
        with pytest.raises(ConvergenceError, match="dead device"):
            list(stream)

    def test_invalid_arguments_rejected(self):
        from repro.runtime.simulation import generate_instance_batches

        with pytest.raises(DatasetError, match="batch_size"):
            list(generate_instance_batches(SyntheticDut(), 10, seed=0,
                                           batch_size=0))
        with pytest.raises(DatasetError, match="positive"):
            list(generate_instance_batches(SyntheticDut(), 0, seed=0,
                                           batch_size=4))

    def test_interleaved_serial_streams_stay_independent(self):
        """Two lazily-consumed serial streams must not clobber each
        other's configuration between batches."""
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut_a = SyntheticDut(n_specs=6)
        dut_b = SyntheticDut(n_specs=4, n_latent=2, seed=7)
        stream_a = generate_instance_batches(dut_a, 24, seed=1,
                                             batch_size=8)
        stream_b = generate_instance_batches(dut_b, 24, seed=2,
                                             batch_size=8)
        got_a, got_b = [], []
        for batch_a, batch_b in zip(stream_a, stream_b):
            got_a.append(batch_a)
            got_b.append(batch_b)
        ref_a, _ = generate_instances(dut_a, 24, seed=1)
        ref_b, _ = generate_instances(dut_b, 24, seed=2)
        assert np.array_equal(np.vstack(got_a), ref_a)
        assert np.array_equal(np.vstack(got_b), ref_b)


class TestSeedTreeRanges:
    """instance_streams_range / first_slot: the resume primitives."""

    def test_range_equals_slice_of_full_spawn(self):
        from repro.runtime.simulation import instance_streams_range

        full = instance_streams(7, 40)
        ranged = instance_streams_range(7, 12, 25)
        for got, want in zip(ranged, full[12:25]):
            assert got.spawn_key == want.spawn_key
            assert got.entropy == want.entropy
            assert np.array_equal(got.generate_state(4),
                                  want.generate_state(4))

    def test_range_is_independent_of_total_size(self):
        from repro.runtime.simulation import instance_streams_range

        a = instance_streams_range(3, 5, 9)
        b = instance_streams(3, 1000)[5:9]
        assert [s.generate_state(2).tolist() for s in a] == \
            [s.generate_state(2).tolist() for s in b]

    def test_first_slot_yields_suffix_rows(self):
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut = SyntheticDut()
        reference, _ = generate_instances(dut, 50, seed=17)
        for first in (1, 20, 49):
            suffix = np.vstack(list(generate_instance_batches(
                dut, 50 - first, seed=17, batch_size=8,
                first_slot=first)))
            assert np.array_equal(suffix, reference[first:])

    def test_first_slot_with_failures_matches_cold_suffix(self):
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut = PureFlakyDut()
        reference, _ = generate_instances(dut, 40, seed=5,
                                          max_failures=500)
        suffix = np.vstack(list(generate_instance_batches(
            dut, 25, seed=5, batch_size=6, first_slot=15,
            max_failures=500)))
        assert np.array_equal(suffix, reference[15:])

    def test_negative_first_slot_rejected(self):
        from repro.runtime.simulation import generate_instance_batches

        with pytest.raises(DatasetError, match="first_slot"):
            list(generate_instance_batches(SyntheticDut(), 10, seed=0,
                                           batch_size=4, first_slot=-1))

    def test_caller_report_accumulates_across_batches(self):
        from repro.process.montecarlo import GenerationReport
        from repro.runtime.simulation import generate_instance_batches

        dut = PureFlakyDut()
        report = GenerationReport(n_requested=30)
        rows = np.vstack(list(generate_instance_batches(
            dut, 30, seed=5, batch_size=7, max_failures=500,
            report=report)))
        assert len(rows) == 30
        assert report.n_simulated >= 30
        assert report.n_failed == report.n_simulated - 30
        assert report.elapsed_s > 0.0
        assert report.instances_per_minute > 0.0
