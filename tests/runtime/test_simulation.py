"""Determinism contract of the parallel Monte-Carlo generation engine.

The engine's promise: for ``seed_mode="per-instance"`` the generated
dataset is a pure function of ``(dut, seed, n_instances)`` --
independent of worker count and execution order, with failures and
resamples confined to their own instance slot -- while
``seed_mode="sequential"`` replays the legacy shared-stream draw order
byte for byte.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError, DatasetError
from repro.mems import AccelerometerBench
from repro.opamp import OpAmpBench
from repro.process.montecarlo import generate_dataset, generate_many
from repro.runtime.simulation import instance_streams

from tests.synthetic import SyntheticDut


class PureFlakyDut(SyntheticDut):
    """Fails deterministically as a pure function of the sampled params.

    Unlike a call-counting flaky DUT, the failure decision depends only
    on the instance's own draws, so it is compatible with parallel
    generation (workers hold pickled DUT copies).
    """

    FAIL_BAND = (0.0, 0.45)

    def fails_on(self, params):
        low, high = self.FAIL_BAND
        return low < float(params[0]) < high

    def measure(self, params):
        if self.fails_on(params):
            raise ConvergenceError("unstable bias point")
        return super().measure(params)


class AlwaysFailDut(SyntheticDut):
    def measure(self, params):
        raise ConvergenceError("dead device")


class CountingAlwaysFailDut(SyntheticDut):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.calls = 0

    def measure(self, params):
        self.calls += 1
        raise ConvergenceError("dead device")


class FlakyOpAmpBench(OpAmpBench):
    """A real op-amp bench with pure, param-dependent failure injection.

    Module-level (not test-local) so worker processes can unpickle it
    under any multiprocessing start method.
    """

    def measure(self, params):
        if params.w1 > self.nominal.w1:  # pure in the params
            raise ConvergenceError("injected failure")
        return super().measure(params)


class FlakyAccelerometerBench(AccelerometerBench):
    """A real MEMS bench with pure, geometry-dependent failures."""

    def measure(self, geometry):
        if geometry.beam_width > self.nominal.beam_width:
            raise ConvergenceError("injected failure")
        return super().measure(geometry)


class TestPerInstanceDeterminism:
    def test_serial_equals_parallel(self):
        dut = SyntheticDut()
        serial = generate_dataset(dut, 40, seed=42)
        for n_jobs in (2, 3):
            par = generate_dataset(dut, 40, seed=42, n_jobs=n_jobs)
            assert np.array_equal(serial.values, par.values)
            assert np.array_equal(serial.labels, par.labels)

    def test_serial_equals_parallel_with_failures(self):
        dut = PureFlakyDut()
        serial, rs = generate_dataset(dut, 60, seed=5, max_failures=100,
                                      return_report=True)
        par, rp = generate_dataset(dut, 60, seed=5, max_failures=100,
                                   n_jobs=2, return_report=True)
        assert rs.n_failed > 0  # the injection actually fired
        assert np.array_equal(serial.values, par.values)
        assert (rs.n_failed, rs.n_simulated) == (rp.n_failed, rp.n_simulated)
        assert rs.failures == rp.failures

    def test_failures_stay_inside_their_slot(self):
        """A failing slot resamples itself; neighbors are untouched."""
        flaky = PureFlakyDut()
        clean = SyntheticDut()
        with_failures = generate_dataset(flaky, 60, seed=5,
                                         max_failures=100)
        without = generate_dataset(clean, 60, seed=5)
        # A slot's first draw decides whether it ever failed; recompute
        # it per slot from the seed tree.
        failed_first = []
        for stream in instance_streams(5, 60):
            rng = np.random.default_rng(stream)
            failed_first.append(flaky.fails_on(flaky.sample_parameters(rng)))
        assert any(failed_first)
        for slot, failed in enumerate(failed_first):
            same = np.array_equal(with_failures.values[slot],
                                  without.values[slot])
            assert same != failed  # resampled iff the first draw failed

    def test_prefix_property(self):
        """The first k slots of an n-instance run equal a k-instance run."""
        dut = SyntheticDut()
        big = generate_dataset(dut, 32, seed=9)
        small = generate_dataset(dut, 8, seed=9)
        assert np.array_equal(small.values, big.values[:8])

    def test_max_failures_aborts_at_exactly_k(self):
        for n_jobs in (None, 2):
            with pytest.raises(DatasetError,
                               match="3 simulation failures"):
                generate_dataset(AlwaysFailDut(), 10, seed=0,
                                 max_failures=3, n_jobs=n_jobs)

    def test_abort_stops_simulating(self):
        """The failure budget bounds *work*, not just the outcome: a
        serial run of a dead DUT simulates exactly max_failures times
        however many instances were requested."""
        dut = CountingAlwaysFailDut()
        with pytest.raises(DatasetError, match="aborted"):
            generate_dataset(dut, 1000, seed=0, max_failures=5)
        assert dut.calls == 5

    def test_raise_mode_propagates_from_workers(self):
        with pytest.raises(ConvergenceError, match="dead device"):
            generate_dataset(AlwaysFailDut(), 10, seed=0,
                             on_error="raise", n_jobs=2)

    def test_invalid_seed_mode_rejected(self):
        with pytest.raises(DatasetError, match="seed_mode"):
            generate_dataset(SyntheticDut(), 10, seed=0,
                             seed_mode="per-lot")


class TestSequentialBackCompat:
    def test_replays_legacy_shared_stream(self):
        """seed_mode='sequential' reproduces the historical draw order."""
        dut = SyntheticDut()
        rng = np.random.default_rng(42)
        legacy = np.vstack([dut.measure(dut.sample_parameters(rng))
                            for _ in range(50)])
        ds = generate_dataset(dut, 50, seed=42, seed_mode="sequential")
        assert np.array_equal(ds.values, legacy)

    def test_differs_from_per_instance(self):
        dut = SyntheticDut()
        seq = generate_dataset(dut, 20, seed=3, seed_mode="sequential")
        per = generate_dataset(dut, 20, seed=3)
        assert not np.array_equal(seq.values, per.values)

    def test_parallel_request_rejected(self):
        with pytest.raises(DatasetError, match="sequential"):
            generate_dataset(SyntheticDut(), 10, seed=0,
                             seed_mode="sequential", n_jobs=2)
        # n_jobs resolving to serial is fine.
        ds = generate_dataset(SyntheticDut(), 10, seed=0,
                              seed_mode="sequential", n_jobs=1)
        assert len(ds) == 10


class TestGenerateMany:
    def test_matches_individual_runs(self):
        dut_a = SyntheticDut(seed=99)
        dut_b = PureFlakyDut(seed=7)
        batch = generate_many([(dut_a, 20, 1), (dut_b, 30, 2)],
                              max_failures=100)
        individual = [
            generate_dataset(dut_a, 20, seed=1),
            generate_dataset(dut_b, 30, seed=2, max_failures=100),
        ]
        assert len(batch) == 2
        for got, want in zip(batch, individual):
            assert np.array_equal(got.values, want.values)

    def test_parallel_equals_serial(self):
        requests = [(SyntheticDut(seed=s), 15, s) for s in (1, 2, 3)]
        serial = generate_many(requests)
        parallel = generate_many(requests, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.values, b.values)

    def test_reports_returned_in_order(self):
        requests = [(SyntheticDut(), 5, 0), (SyntheticDut(), 9, 1)]
        out = generate_many(requests, return_reports=True)
        assert [r.n_requested for _, r in out] == [5, 9]
        assert [len(ds) for ds, _ in out] == [5, 9]

    def test_malformed_request_rejected(self):
        with pytest.raises(DatasetError, match="requests"):
            generate_many([(SyntheticDut(), 5)])


@pytest.mark.slow
class TestRealBenches:
    """Serial/parallel byte-equality on the real circuit-level DUTs."""

    def test_opamp_serial_equals_parallel(self):
        from repro.opamp import OpAmpBench

        bench = OpAmpBench()
        serial = bench.generate_dataset(4, seed=17)
        parallel = bench.generate_dataset(4, seed=17, n_jobs=2)
        assert np.array_equal(serial.values, parallel.values)

    def test_mems_serial_equals_parallel(self):
        bench = AccelerometerBench()
        serial = bench.generate_dataset(8, seed=23)
        parallel = bench.generate_dataset(8, seed=23, n_jobs=2)
        assert np.array_equal(serial.values, parallel.values)

    def test_mems_parallel_with_failures(self):
        bench = FlakyAccelerometerBench()
        serial, rs = bench.generate_dataset(8, seed=29, max_failures=100,
                                            return_report=True)
        parallel, rp = bench.generate_dataset(8, seed=29,
                                              max_failures=100,
                                              n_jobs=2,
                                              return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(serial.values, parallel.values)
        assert rs.n_failed == rp.n_failed

    def test_opamp_parallel_with_failures(self):
        """Real simulations through a pure failure-injecting wrapper."""
        bench = FlakyOpAmpBench()
        serial, rs = bench.generate_dataset(3, seed=31, max_failures=50,
                                            return_report=True)
        parallel, rp = bench.generate_dataset(3, seed=31, max_failures=50,
                                              n_jobs=2, return_report=True)
        assert rs.n_failed > 0
        assert np.array_equal(serial.values, parallel.values)
        assert rs.n_failed == rp.n_failed


class TestInstanceBatchStreaming:
    """generate_instance_batches: the floor's simulated-traffic feed."""

    def test_concatenation_equals_one_shot(self):
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut = SyntheticDut()
        reference, _ = generate_instances(dut, 50, seed=31)
        for batch_size in (1, 7, 50, 64):
            batches = list(generate_instance_batches(
                dut, 50, seed=31, batch_size=batch_size))
            assert np.array_equal(np.vstack(batches), reference)
            assert all(len(b) <= batch_size for b in batches)

    def test_parallel_equals_serial(self):
        from repro.runtime.simulation import generate_instance_batches

        dut = PureFlakyDut()
        serial = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200)))
        parallel = np.vstack(list(generate_instance_batches(
            dut, 40, seed=13, batch_size=9, max_failures=200,
            n_jobs=2)))
        assert np.array_equal(serial, parallel)

    def test_failure_budget_spans_batches(self):
        """The budget is run-level: failures in early batches count
        against later ones, exactly as in the one-shot path."""
        from repro.runtime.simulation import generate_instance_batches

        dut = CountingAlwaysFailDut()
        stream = generate_instance_batches(dut, 100, seed=0,
                                           batch_size=10,
                                           max_failures=5)
        with pytest.raises(DatasetError, match="5 simulation failures"):
            list(stream)
        assert dut.calls == 5

    def test_raise_mode(self):
        from repro.runtime.simulation import generate_instance_batches

        stream = generate_instance_batches(AlwaysFailDut(), 10, seed=0,
                                           batch_size=4,
                                           on_error="raise")
        with pytest.raises(ConvergenceError, match="dead device"):
            list(stream)

    def test_invalid_arguments_rejected(self):
        from repro.runtime.simulation import generate_instance_batches

        with pytest.raises(DatasetError, match="batch_size"):
            list(generate_instance_batches(SyntheticDut(), 10, seed=0,
                                           batch_size=0))
        with pytest.raises(DatasetError, match="positive"):
            list(generate_instance_batches(SyntheticDut(), 0, seed=0,
                                           batch_size=4))

    def test_interleaved_serial_streams_stay_independent(self):
        """Two lazily-consumed serial streams must not clobber each
        other's configuration between batches."""
        from repro.runtime.simulation import (
            generate_instance_batches, generate_instances,
        )

        dut_a = SyntheticDut(n_specs=6)
        dut_b = SyntheticDut(n_specs=4, n_latent=2, seed=7)
        stream_a = generate_instance_batches(dut_a, 24, seed=1,
                                             batch_size=8)
        stream_b = generate_instance_batches(dut_b, 24, seed=2,
                                             batch_size=8)
        got_a, got_b = [], []
        for batch_a, batch_b in zip(stream_a, stream_b):
            got_a.append(batch_a)
            got_b.append(batch_b)
        ref_a, _ = generate_instances(dut_a, 24, seed=1)
        ref_b, _ = generate_instances(dut_b, 24, seed=2)
        assert np.array_equal(np.vstack(got_a), ref_a)
        assert np.array_equal(np.vstack(got_b), ref_b)
