"""Runtime engine tests: equivalence, speculation, batching, stats."""

import pickle

import numpy as np
import pytest

from repro.core.compaction import TestCompactor as Compactor
from repro.errors import CompactionError
from repro.learn.svm import SVC
from repro.runtime import CompactionEngine, speculation_plan
from repro.runtime.parallel import parallel_map, resolve_n_jobs

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


def _engine(**kw):
    kw.setdefault("tolerance", 0.02)
    kw.setdefault("guard_band", 0.05)
    kw.setdefault("model_factory", _fixed_factory)
    return CompactionEngine(**kw)


@pytest.fixture(scope="module")
def small_data():
    train = make_synthetic_dataset(n=150, seed=1)
    test = make_synthetic_dataset(n=80, seed=2)
    return train, test


def _same_steps(a, b):
    assert len(a.steps) == len(b.steps)
    for sa, sb in zip(a.steps, b.steps):
        assert sa.test_name == sb.test_name
        assert sa.eliminated == sb.eliminated
        assert sa.report == sb.report
        assert sa.eliminated_so_far == sb.eliminated_so_far


class TestSerialEngine:
    def test_matches_plain_compactor_decisions(self, small_data):
        train, test = small_data
        plain = Compactor(tolerance=0.02, guard_band=0.05,
                          model_factory=_fixed_factory).run(train, test)
        engine = _engine(n_jobs=1).run(train, test)
        assert engine.kept == plain.kept
        assert engine.eliminated == plain.eliminated
        assert engine.final_report == plain.final_report
        assert [s.eliminated for s in engine.steps] == \
            [s.eliminated for s in plain.steps]

    def test_final_refit_reused(self, small_data):
        train, test = small_data
        result = _engine(n_jobs=1).run(train, test)
        assert result.stats["final_refit_reused"] == \
            (len(result.eliminated) > 0)

    def test_kernel_cache_exercised(self, small_data):
        train, test = small_data
        result = _engine(n_jobs=1).run(train, test)
        cache_stats = result.stats["kernel_cache"]
        # Strict and loose guard-band fits share one Gram per candidate.
        assert cache_stats["gram_hits"] >= len(result.steps)

    def test_cache_can_be_disabled(self, small_data):
        train, test = small_data
        with_cache = _engine(n_jobs=1).run(train, test)
        without = _engine(n_jobs=1, use_kernel_cache=False).run(train, test)
        assert "kernel_cache" not in without.stats
        assert without.eliminated == with_cache.eliminated

    def test_result_is_picklable(self, small_data):
        """Engine results must cross process boundaries whole."""
        train, test = small_data
        result = _engine(n_jobs=1).run(train, test)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.eliminated == result.eliminated
        pred = clone.model.predict_dataset(test)
        assert np.array_equal(pred, result.model.predict_dataset(test))


class TestParallelEquivalence:
    def test_parallel_identical_to_serial(self, small_data):
        train, test = small_data
        serial = _engine(n_jobs=1).run(train, test)
        parallel = _engine(n_jobs=2).run(train, test)
        assert parallel.kept == serial.kept
        assert parallel.eliminated == serial.eliminated
        assert parallel.order == serial.order
        assert parallel.final_report == serial.final_report
        _same_steps(serial, parallel)

    def test_parallel_model_predicts_identically(self, small_data):
        train, test = small_data
        serial = _engine(n_jobs=1).run(train, test)
        parallel = _engine(n_jobs=2).run(train, test)
        assert np.array_equal(parallel.model.predict_dataset(test),
                              serial.model.predict_dataset(test))

    def test_speculation_stats_recorded(self, small_data):
        train, test = small_data
        result = _engine(n_jobs=2).run(train, test)
        spec = result.stats["speculation"]
        assert spec["consumed"] == len(result.steps)
        assert spec["submitted"] >= spec["consumed"]


class TestRunMany:
    def _pairs(self, k=3):
        pairs = []
        for lot in range(k):
            pairs.append((
                make_synthetic_dataset(n=120, seed=10 + 2 * lot,
                                       noise=0.02 * lot),
                make_synthetic_dataset(n=70, seed=11 + 2 * lot,
                                       noise=0.02 * lot)))
        return pairs

    def test_batch_preserves_input_order(self):
        pairs = self._pairs()
        results = _engine(n_jobs=1).run_many(pairs)
        assert len(results) == len(pairs)
        for result, (train, test) in zip(results, pairs):
            # Each result must belong to its own pair: the final model
            # was evaluated on exactly that pair's held-out set.
            assert result.final_report.n_total == len(test)
            assert set(result.kept) | set(result.eliminated) == \
                set(train.names)

    def test_parallel_batch_matches_serial_batch(self):
        pairs = self._pairs()
        serial = _engine(n_jobs=1).run_many(pairs)
        parallel = _engine(n_jobs=2).run_many(pairs)
        assert [r.eliminated for r in serial] == \
            [r.eliminated for r in parallel]
        assert [r.final_report for r in serial] == \
            [r.final_report for r in parallel]
        for a, b in zip(serial, parallel):
            _same_steps(a, b)

    def test_bad_pairs_rejected(self, small_data):
        train, test = small_data
        with pytest.raises(CompactionError):
            _engine().run_many([(train, test, test)])


class TestSpeculationPlan:
    ORDER = ("a", "b", "c", "d")

    def test_head_comes_first(self):
        plan = speculation_plan((), 0, self.ORDER, 6, 4)
        assert plan[0] == ("a",)

    def test_both_branches_covered(self):
        plan = speculation_plan((), 0, self.ORDER, 3, 4)
        # Reject branch: ("b",); accept branch: ("a", "b").
        assert ("b",) in plan
        assert ("a", "b") in plan

    def test_respects_elimination_floor(self):
        plan = speculation_plan(("a",), 1, self.ORDER, 10, 2)
        # Only one more elimination allowed: no depth-2 candidates.
        assert all(len(c) <= 2 for c in plan)

    def test_exhausted_order_produces_nothing(self):
        assert speculation_plan((), 4, self.ORDER, 5, 4) == []

    def test_no_duplicates(self):
        plan = speculation_plan((), 0, self.ORDER, 16, 4)
        assert len(plan) == len(set(plan))


class TestParallelHelpers:
    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(CompactionError):
            resolve_n_jobs(0)

    def test_parallel_map_orders_results(self):
        items = list(range(7))
        assert parallel_map(_square, items, n_jobs=2) == \
            [i * i for i in items]
        assert parallel_map(_square, items, n_jobs=1) == \
            [i * i for i in items]


def _square(x):
    return x * x
