"""Exception-hierarchy contract tests.

Downstream code catches :class:`~repro.errors.ReproError` to handle
any library failure uniformly (the Monte-Carlo loop depends on this to
resample failed simulations), so the hierarchy is part of the API.
"""

import pytest

from repro.errors import (
    AnalysisError,
    CircuitError,
    CompactionError,
    ConvergenceError,
    DatasetError,
    LearningError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        CircuitError, ConvergenceError, AnalysisError, LearningError,
        CompactionError, DatasetError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_convergence_error_carries_diagnostics(self):
        err = ConvergenceError("did not converge", iterations=42,
                               residual=1e-3)
        assert err.iterations == 42
        assert err.residual == 1e-3
        assert "did not converge" in str(err)

    def test_convergence_error_defaults(self):
        import math

        err = ConvergenceError("boom")
        assert err.iterations == 0
        assert math.isnan(err.residual)

    def test_monte_carlo_catches_repro_errors_only(self):
        """Non-library errors must propagate out of the generator."""
        import numpy as np

        from repro.process.montecarlo import generate_dataset
        from tests.synthetic import SyntheticDut

        class BuggyDut(SyntheticDut):
            def measure(self, params):
                raise ValueError("a programming bug, not a sim failure")

        with pytest.raises(ValueError):
            generate_dataset(BuggyDut(), 5, seed=0)
