"""Shared fixtures: fast synthetic DUTs that skip circuit simulation.

The synthetic device exposes the same DUT protocol as the real benches
but computes its "specifications" from a random linear map of latent
process parameters -- milliseconds per dataset, with controllable
redundancy between specifications.  Core-algorithm tests use these;
the (slower) circuit-level behaviour is covered by the integration
tests and the per-module circuit tests.
"""

import numpy as np

from repro.core.specs import Specification, SpecificationSet
from repro.errors import ReproError
from repro.process.dataset import SpecDataset


class SyntheticDut:
    """Linear-map synthetic device under test.

    ``n_latent`` process parameters map through a fixed random matrix
    to ``n_specs`` measurements.  With ``n_latent < n_specs`` some
    specifications are necessarily redundant -- ideal for exercising
    the compaction loop.  ``noise`` adds per-measurement Gaussian
    disturbance, creating irreducible prediction error.
    """

    def __init__(self, n_specs=6, n_latent=3, noise=0.0, seed=99,
                 range_width=2.0):
        rng = np.random.default_rng(seed)
        self.map = rng.normal(0.0, 1.0, (n_latent, n_specs))
        self.noise = float(noise)
        self.n_latent = n_latent
        half = range_width / 2.0
        self.specifications = SpecificationSet([
            Specification("s{}".format(i), "u", 0.0, -half, half)
            for i in range(n_specs)])

    def sample_parameters(self, rng):
        return rng.normal(0.0, 1.0, self.n_latent)

    def measure(self, params):
        values = params @ self.map
        if self.noise:
            # Deterministic per-instance noise derived from the params
            # keeps measure() a pure function (replayable).
            local = np.random.default_rng(
                abs(hash(params.tobytes())) % (2 ** 32))
            values = values + local.normal(0.0, self.noise, values.shape)
        return values

    def measure_batch(self, params_list):
        """Loop-based batch measurement (the DUT-protocol contract).

        Routes through :meth:`measure` (and therefore any subclass
        failure injection), converting per-instance errors into
        returned entries -- exercising the batched *engine* without a
        circuit-level kernel.
        """
        out = []
        for params in params_list:
            try:
                out.append(self.measure(params))
            except ReproError as exc:
                out.append(exc)
        return out


def make_synthetic_dataset(n=400, n_specs=6, n_latent=3, noise=0.0,
                           seed=0, dut_seed=99, range_width=2.0):
    """Labeled synthetic dataset without touching the simulator."""
    dut = SyntheticDut(n_specs=n_specs, n_latent=n_latent, noise=noise,
                       seed=dut_seed, range_width=range_width)
    rng = np.random.default_rng(seed)
    values = np.vstack([dut.measure(dut.sample_parameters(rng))
                        for _ in range(n)])
    return SpecDataset(dut.specifications, values)


