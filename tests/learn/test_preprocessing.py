"""Normalization/scaling tests (paper Section 4.3 behaviour)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.specs import Specification, SpecificationSet
from repro.errors import LearningError
from repro.learn import RangeNormalizer, StandardScaler


class TestRangeNormalizer:
    def test_maps_range_onto_unit_interval(self):
        norm = RangeNormalizer([10.0], [20.0])
        assert norm.transform(np.array([[10.0]]))[0, 0] == 0.0
        assert norm.transform(np.array([[20.0]]))[0, 0] == 1.0
        assert norm.transform(np.array([[15.0]]))[0, 0] == 0.5

    def test_out_of_range_values_leave_unit_interval(self):
        norm = RangeNormalizer([0.0], [1.0])
        assert norm.transform(np.array([[-0.5]]))[0, 0] == -0.5
        assert norm.transform(np.array([[2.0]]))[0, 0] == 2.0

    @given(X=arrays(np.float64, (7, 3),
                    elements=st.floats(-100, 100, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, X):
        norm = RangeNormalizer([-150.0, -150.0, -150.0],
                               [150.0, 150.0, 150.0])
        back = norm.inverse_transform(norm.transform(X))
        assert np.allclose(back, X, atol=1e-9)

    def test_from_specifications(self):
        specs = SpecificationSet([
            Specification("a", "u", 5.0, 0.0, 10.0),
            Specification("b", "u", 1.0, -1.0, 3.0),
        ])
        norm = RangeNormalizer.from_specifications(specs)
        out = norm.transform(np.array([[5.0, 1.0]]))
        assert np.allclose(out, [[0.5, 0.5]])

    def test_from_data_handles_constant_columns(self):
        X = np.array([[1.0, 7.0], [2.0, 7.0]])
        norm = RangeNormalizer.from_data(X)
        out = norm.transform(X)
        assert np.all(np.isfinite(out))

    def test_one_dimensional_input(self):
        norm = RangeNormalizer([0.0, 0.0], [2.0, 4.0])
        out = norm.transform(np.array([1.0, 1.0]))
        assert out.shape == (2,)
        assert np.allclose(out, [0.5, 0.25])

    def test_subset_selects_columns(self):
        norm = RangeNormalizer([0.0, 10.0, 20.0], [1.0, 11.0, 21.0])
        sub = norm.subset([2, 0])
        assert np.allclose(sub.lows, [20.0, 0.0])

    def test_validation(self):
        with pytest.raises(LearningError):
            RangeNormalizer([1.0], [1.0])
        norm = RangeNormalizer([0.0], [1.0])
        with pytest.raises(LearningError, match="columns"):
            norm.transform(np.zeros((2, 3)))


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(3.0, 2.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    @given(X=arrays(np.float64, (9, 2),
                    elements=st.floats(-50, 50, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)),
                           X, atol=1e-8)

    def test_unfitted_raises(self):
        with pytest.raises(LearningError, match="not fitted"):
            StandardScaler().transform(np.zeros((1, 1)))
