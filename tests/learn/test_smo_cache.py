"""SMO kernel-column-cache path tests (large-problem mode)."""

import numpy as np

from repro.learn import SVC
from repro.learn.kernels import kernel_function
from repro.learn import smo as smo_module
from repro.learn.smo import _ColumnCache, solve_smo


def _blobs(n=80, seed=0):
    rng = np.random.default_rng(seed)
    X1 = rng.normal([2, 0], 0.6, (n // 2, 2))
    X2 = rng.normal([-2, 0], 0.6, (n // 2, 2))
    return np.vstack([X1, X2]), np.r_[np.ones(n // 2), -np.ones(n // 2)]


class TestColumnCache:
    def test_columns_match_block_gemm(self):
        """Cached columns are bitwise the distinct-buffer GEMM columns.

        (Not compared against ``kernel(X, X)``: the same-buffer product
        takes BLAS's syrk path, whose bits legitimately differ from the
        block GEMM fetches -- that is exactly why column sources only
        serve problems above the precompute limit.)
        """
        X, _ = _blobs(20)
        kernel = kernel_function("rbf", gamma=1.0)
        cache = _ColumnCache(kernel, X, max_columns=64, block=4)
        for i in (0, 5, 19):
            i0 = (i // 4) * 4
            expect = kernel(X, X[i0:i0 + 4].copy())[:, i - i0]
            assert np.array_equal(cache.column(i), expect)

    def test_block_size_invariance(self):
        """Any partial block width yields bitwise identical columns.

        Widths below ``n`` all go through general GEMM; a block
        spanning the whole matrix would hand BLAS the original buffer
        back (the syrk special case), which is fine in practice only
        because both the internal and the external cache use the same
        default width.
        """
        X, _ = _blobs(30, seed=1)
        kernel = kernel_function("rbf", gamma=0.5)
        caches = [_ColumnCache(kernel, X, max_columns=64, block=b)
                  for b in (2, 4, 7, 16)]
        for i in range(len(X)):
            cols = [c.column(i) for c in caches]
            for col in cols[1:]:
                assert np.array_equal(col, cols[0])

    def test_eviction_keeps_results_correct(self):
        X, _ = _blobs(30)
        kernel = kernel_function("rbf", gamma=0.5)
        cache = _ColumnCache(kernel, X, max_columns=8, block=4)
        reference = [np.array(cache.column(i)) for i in range(len(X))]
        # Touch more blocks than the cache holds, then re-read: the
        # refetched columns must be bitwise stable.
        for i in range(len(X)):
            assert np.array_equal(cache.column(i), reference[i])
        assert len(cache._blocks) <= max(1, 8 // 4)


class TestCacheModeEquivalence:
    def test_same_solution_as_precomputed(self, monkeypatch):
        """Forcing the column-cache path reproduces the dense result."""
        X, y = _blobs(100, seed=3)
        kernel = kernel_function("rbf", gamma=1.0)
        dense = solve_smo(kernel, X, y, C=10.0)
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 10)
        cached = solve_smo(kernel, X, y, C=10.0, cache_columns=16)
        # Same decision function on the training points.
        K = kernel(X, X)
        f_dense = K @ (dense.alpha * y) + dense.bias
        f_cached = K @ (cached.alpha * y) + cached.bias
        assert np.array_equal(np.sign(f_dense), np.sign(f_cached))

    def test_cache_bound_does_not_change_solution(self, monkeypatch):
        """Eviction pressure never changes a single bit of the result."""
        X, y = _blobs(90, seed=7)
        kernel = kernel_function("rbf", gamma=1.0)
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 10)
        roomy = solve_smo(kernel, X, y, C=10.0, cache_columns=512)
        tight = solve_smo(kernel, X, y, C=10.0, cache_columns=4)
        assert np.array_equal(roomy.alpha, tight.alpha)
        assert roomy.bias == tight.bias

    def test_svc_accuracy_unchanged_in_cache_mode(self, monkeypatch):
        X, y = _blobs(120, seed=5)
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 10)
        model = SVC(C=10.0, gamma=1.0).fit(X, y)
        assert model.score(X, y) == 1.0
