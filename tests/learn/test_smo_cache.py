"""SMO kernel-column-cache path tests (large-problem mode)."""

import numpy as np
import pytest

from repro.learn import SVC
from repro.learn.kernels import kernel_function
from repro.learn import smo as smo_module
from repro.learn.smo import _ColumnCache, solve_smo


def _blobs(n=80, seed=0):
    rng = np.random.default_rng(seed)
    X1 = rng.normal([2, 0], 0.6, (n // 2, 2))
    X2 = rng.normal([-2, 0], 0.6, (n // 2, 2))
    return np.vstack([X1, X2]), np.r_[np.ones(n // 2), -np.ones(n // 2)]


class TestColumnCache:
    def test_columns_match_direct_kernel(self):
        X, _ = _blobs(20)
        kernel = kernel_function("rbf", gamma=1.0)
        cache = _ColumnCache(kernel, X, max_columns=4)
        K = kernel(X, X)
        for i in (0, 5, 19):
            assert np.allclose(cache.column(i), K[i])

    def test_eviction_keeps_results_correct(self):
        X, _ = _blobs(30)
        kernel = kernel_function("rbf", gamma=0.5)
        cache = _ColumnCache(kernel, X, max_columns=2)
        K = kernel(X, X)
        # Touch more columns than the cache holds, then re-read.
        for i in range(10):
            cache.column(i)
        assert np.allclose(cache.column(0), K[0])
        assert len(cache._columns) <= 2

    def test_diag_matches_kernel(self):
        X, _ = _blobs(16)
        kernel = kernel_function("rbf", gamma=1.0)
        cache = _ColumnCache(kernel, X, max_columns=4)
        assert np.allclose(cache.diag(), np.ones(len(X)))


class TestCacheModeEquivalence:
    def test_same_solution_as_precomputed(self, monkeypatch):
        """Forcing the column-cache path reproduces the dense result."""
        X, y = _blobs(100, seed=3)
        kernel = kernel_function("rbf", gamma=1.0)
        dense = solve_smo(kernel, X, y, C=10.0)
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 10)
        cached = solve_smo(kernel, X, y, C=10.0, cache_columns=16)
        # Same decision function on the training points.
        K = kernel(X, X)
        f_dense = K @ (dense.alpha * y) + dense.bias
        f_cached = K @ (cached.alpha * y) + cached.bias
        assert np.array_equal(np.sign(f_dense), np.sign(f_cached))

    def test_svc_accuracy_unchanged_in_cache_mode(self, monkeypatch):
        X, y = _blobs(120, seed=5)
        monkeypatch.setattr(smo_module, "PRECOMPUTE_LIMIT", 10)
        model = SVC(C=10.0, gamma=1.0).fit(X, y)
        assert model.score(X, y) == 1.0
