"""Ridge regression baseline tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LearningError
from repro.learn import RidgeRegressor


class TestRidgeRegressor:
    def test_recovers_exact_linear_map(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = RidgeRegressor(alpha=1e-10).fit(X, y)
        assert np.allclose(model.coef_.ravel(), w, atol=1e-6)
        assert model.intercept_[0] == pytest.approx(3.0, abs=1e-6)
        assert model.score(X, y) == pytest.approx(1.0, abs=1e-9)

    def test_multi_output(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        W = np.array([[1.0, -1.0, 2.0], [0.5, 3.0, 0.0]])
        Y = X @ W + np.array([1.0, 2.0, 3.0])
        model = RidgeRegressor(alpha=1e-10).fit(X, Y)
        assert model.predict(X).shape == Y.shape
        assert np.allclose(model.predict(X), Y, atol=1e-6)

    @given(alpha=st.floats(1e-8, 1e3))
    @settings(max_examples=30, deadline=None)
    def test_regularization_shrinks_coefficients(self, alpha):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, -5.0]) + rng.normal(0, 0.1, 50)
        small = RidgeRegressor(alpha=1e-10).fit(X, y)
        large = RidgeRegressor(alpha=alpha).fit(X, y)
        assert (np.linalg.norm(large.coef_)
                <= np.linalg.norm(small.coef_) + 1e-9)

    def test_noise_degrades_r2(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 2))
        y_clean = X @ np.array([1.0, 1.0])
        y_noisy = y_clean + rng.normal(0, 2.0, 200)
        model = RidgeRegressor().fit(X, y_noisy)
        assert model.score(X, y_noisy) < 0.8

    def test_validation(self):
        with pytest.raises(LearningError):
            RidgeRegressor(alpha=-1.0)
        with pytest.raises(LearningError, match="not fitted"):
            RidgeRegressor().predict(np.zeros((1, 1)))
        with pytest.raises(LearningError):
            RidgeRegressor().fit(np.zeros((3, 1)), np.zeros(4))
