"""SMO warm starts, precomputed Gram matrices and SVC pickling."""

import pickle

import numpy as np
import pytest

from repro.learn.kernels import kernel_function
from repro.learn.smo import repair_alpha, solve_smo
from repro.learn.svm import SVC


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(120, 4))
    y = np.where(X[:, 0] + 0.4 * X[:, 1]
                 + 0.05 * rng.normal(size=120) > 0, 1.0, -1.0)
    return X, y


class TestRepairAlpha:
    def test_feasible_seed_untouched(self, problem):
        X, y = problem
        kernel = kernel_function("rbf", gamma=1.0)
        alpha = solve_smo(kernel, X, y, C=10.0).alpha
        repaired = repair_alpha(alpha, y, 10.0)
        assert np.allclose(repaired, alpha)

    def test_infeasible_seed_becomes_feasible(self, problem):
        _, y = problem
        repaired = repair_alpha(np.full(y.size, 3.0), y, 10.0)
        assert repaired is not None
        assert abs(float(np.dot(repaired, y))) < 1e-9
        assert np.all(repaired >= 0.0) and np.all(repaired <= 10.0)

    def test_out_of_box_seed_clipped(self, problem):
        _, y = problem
        seed = np.where(y > 0, 50.0, -5.0)
        repaired = repair_alpha(seed, y, 10.0)
        assert repaired is not None
        assert np.all(repaired <= 10.0) and np.all(repaired >= 0.0)

    def test_shape_mismatch_rejected(self):
        assert repair_alpha(np.zeros(3), np.ones(4), 1.0) is None


class TestWarmStart:
    def test_warm_start_from_solution_is_instant(self, problem):
        X, y = problem
        kernel = kernel_function("rbf", gamma=1.0)
        cold = solve_smo(kernel, X, y, C=10.0)
        warm = solve_smo(kernel, X, y, C=10.0, alpha_init=cold.alpha)
        assert warm.iterations == 0
        assert np.allclose(warm.alpha, cold.alpha)

    def test_warm_start_reaches_same_predictions(self, problem):
        X, y = problem
        # Seed from a *perturbed-label* solution (the loose/strict
        # situation): same optimum must be reached.
        y_flip = y.copy()
        y_flip[:4] = -y_flip[:4]
        kernel = kernel_function("rbf", gamma=1.0)
        seed = solve_smo(kernel, X, y_flip, C=10.0).alpha
        cold = SVC(C=10.0, gamma=1.0).fit(X, y)
        warm = SVC(C=10.0, gamma=1.0).fit(X, y, alpha_init=seed)
        assert np.array_equal(warm.predict(X), cold.predict(X))

    def test_garbage_seed_falls_back_to_cold_start(self, problem):
        X, y = problem
        kernel = kernel_function("rbf", gamma=1.0)
        bad = np.full(y.size, np.inf)
        result = solve_smo(kernel, X, y, C=10.0, alpha_init=bad)
        assert result.converged


class TestPrecomputedGram:
    def test_gram_path_is_bit_identical(self, problem):
        X, y = problem
        kernel = kernel_function("rbf", gamma=2.0)
        direct = solve_smo(kernel, X, y, C=5.0)
        via_gram = solve_smo(None, X, y, C=5.0, gram=kernel(X, X))
        assert np.array_equal(via_gram.alpha, direct.alpha)
        assert via_gram.bias == direct.bias
        assert via_gram.iterations == direct.iterations

    def test_wrong_gram_shape_rejected(self, problem):
        from repro.errors import LearningError

        X, y = problem
        with pytest.raises(LearningError):
            solve_smo(None, X, y, C=5.0, gram=np.eye(3))


class TestSVCPickling:
    def test_fitted_svc_roundtrips(self, problem):
        X, y = problem
        model = SVC(C=10.0, gamma=1.0).fit(X, y)
        clone = pickle.loads(pickle.dumps(model))
        assert np.array_equal(clone.predict(X), model.predict(X))
        assert np.allclose(clone.decision_function(X),
                           model.decision_function(X))

    def test_unfitted_svc_roundtrips(self):
        clone = pickle.loads(pickle.dumps(SVC(C=3.0)))
        assert clone.C == 3.0

    def test_constant_svc_roundtrips(self, problem):
        X, _ = problem
        model = SVC().fit(X, np.ones(X.shape[0]))
        clone = pickle.loads(pickle.dumps(model))
        assert np.all(clone.predict(X) == 1)

    def test_decision_function_bit_identical_after_pickle(self, problem):
        """The artifact layer serializes fitted SVCs and must get the
        exact same scorer back -- bit equality, not allclose."""
        X, y = problem
        model = SVC(C=10.0, gamma=1.0).fit(X, y)
        clone = pickle.loads(pickle.dumps(model))
        Xq = np.random.default_rng(9).normal(size=(200, 4))
        assert np.array_equal(clone.decision_function(Xq),
                              model.decision_function(Xq))

    def test_gram_cache_fit_bit_identical_after_pickle(self):
        """A model fitted through a shared-Gram view must round-trip
        to the identical decision function (the view itself is
        process-local and dropped on serialization)."""
        from repro.runtime.kernel_cache import GramCache

        from tests.synthetic import make_synthetic_dataset

        train = make_synthetic_dataset(n=150, seed=3)
        names = train.names[:4]
        cache = GramCache.from_dataset(train)
        X = train.normalized_values(names)
        y = train.labels.astype(float)
        model = SVC(C=50.0, gamma="scale")
        model.set_train_gram_view(cache.view(names))
        model.fit(X, y)
        # The shared Gram really served this fit (no silent fallback).
        assert cache.stats["gram_misses"] + cache.stats["gram_hits"] > 0

        clone = pickle.loads(pickle.dumps(model))
        assert clone._gram_view is None
        Xq = np.random.default_rng(5).normal(0.5, 0.4, size=(300, 4))
        assert np.array_equal(clone.decision_function(Xq),
                              model.decision_function(Xq))
        assert np.array_equal(clone.decision_function(X),
                              model.decision_function(X))

    def test_gram_view_not_pickled(self, problem):
        X, y = problem

        class FakeView:
            def matches(self, A):
                return A.shape == X.shape

            def gram(self, gamma):
                k = kernel_function("rbf", gamma=gamma)
                return k(X, X)

        model = SVC(C=10.0, gamma=1.0)
        model.set_train_gram_view(FakeView())
        model.fit(X, y)
        clone = pickle.loads(pickle.dumps(model))
        assert clone._gram_view is None
        assert np.array_equal(clone.predict(X), model.predict(X))
