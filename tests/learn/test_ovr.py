"""One-vs-rest SVC bank: equivalence to cold fits, sharing, pickling.

The bank is an *optimization* of K independent one-vs-rest SVC fits
(shared training Gram, SMO warm starts) -- so the load-bearing test is
that it predicts exactly like the unoptimized construction.  The rest
pins the degenerate-class behaviour, the margin definition, label
validation and the prediction-only pickle contract.
"""

import pickle

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learn.ovr import OneVsRestSVCBank
from repro.learn.svm import SVC
from repro.runtime.kernel_cache import GramCache

CLASSES = ("FAST", "TYP", "SLOW")


def factory():
    return SVC(C=50.0, gamma="scale")


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated Gaussian blobs in 3 features."""
    rng = np.random.default_rng(17)
    centers = {"FAST": (2.0, 0.0, 0.0),
               "TYP": (0.0, 2.0, 0.0),
               "SLOW": (0.0, 0.0, 2.0)}
    X, y = [], []
    for name, center in centers.items():
        X.append(rng.normal(center, 0.4, (60, 3)))
        y.extend([name] * 60)
    return np.vstack(X), np.asarray(y, dtype=object)


@pytest.fixture(scope="module")
def query(blobs):
    rng = np.random.default_rng(23)
    return rng.normal(0.7, 1.0, (80, 3))


def cold_prediction(X, y, query):
    """The unoptimized construction: K independent cold SVC fits."""
    scores = np.empty((query.shape[0], len(CLASSES)))
    for k, cls in enumerate(CLASSES):
        model = factory()
        model.fit(X, np.where(y == cls, 1.0, -1.0))
        scores[:, k] = model.decision_function(query)
    return scores.argmax(axis=1)


class TestEquivalenceToColdFits:
    def test_warm_started_bank_predicts_like_cold_fits(self, blobs,
                                                       query):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        assert (bank.predict_index(query)
                == cold_prediction(X, y, query)).all()

    def test_warm_start_off_is_also_equivalent(self, blobs, query):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory,
                                warm_start=False).fit(X, y)
        assert (bank.predict_index(query)
                == cold_prediction(X, y, query)).all()

    def test_shared_gram_view_changes_nothing_and_hits_cache(
            self, blobs, query):
        X, y = blobs
        names = ("a", "b", "c")
        cache = GramCache(X, names)
        shared = OneVsRestSVCBank(CLASSES, model_factory=factory,
                                  gram_view=cache.view(names)).fit(X, y)
        plain = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        assert (shared.predict_index(query)
                == plain.predict_index(query)).all()
        # One Gram build, K-1 reuses: the whole point of the bank.
        assert cache.stats["gram_misses"] == 1
        assert cache.stats["gram_hits"] == len(CLASSES) - 1


class TestPredictionSurface:
    def test_predict_returns_class_identifiers(self, blobs):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        predicted = bank.predict(X)
        assert set(predicted) <= set(CLASSES)
        # Blobs are well separated: training accuracy is essentially 1.
        assert bank.score(X, y) > 0.95

    def test_decision_matrix_shape_and_argmax(self, blobs, query):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        scores = bank.decision_matrix(query)
        assert scores.shape == (query.shape[0], 3)
        assert (scores.argmax(axis=1) == bank.predict_index(query)).all()

    def test_margins_are_top1_minus_top2(self, blobs, query):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        scores = bank.decision_matrix(query)
        top2 = np.sort(scores, axis=1)[:, -2:]
        assert bank.margins(query) == pytest.approx(
            top2[:, 1] - top2[:, 0])
        assert (bank.margins(query) >= 0.0).all()

    def test_deep_interior_devices_out_margin_boundary_ones(self, blobs):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        interior = np.array([[2.0, 0.0, 0.0]])       # dead center FAST
        boundary = np.array([[1.0, 1.0, 0.0]])       # between FAST/TYP
        assert bank.margins(interior)[0] > bank.margins(boundary)[0]

    def test_single_row_input_accepted(self, blobs):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        assert bank.predict_index(X[0]).shape == (1,)


class TestDegenerateClasses:
    def test_absent_class_never_predicted(self, blobs, query):
        X, y = blobs
        present = y != "SLOW"
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory)
        bank.fit(X[present], y[present])
        predicted = set(bank.predict(query))
        assert "SLOW" not in predicted
        assert predicted <= {"FAST", "TYP"}

    def test_two_degenerate_members_tie_at_zero_margin(self):
        """inf - inf collapses to the documented zero margin."""
        X = np.array([[0.0], [1.0]])
        bank = OneVsRestSVCBank(("A", "B", "C"), model_factory=factory)
        bank.fit(X, np.array(["A", "A"], dtype=object))
        # B and C are both constant -inf; A is constant +inf: the
        # winner has no finite runner-up, so the margin is +inf.
        assert np.isinf(bank.margins(X)).all()
        # Flip: only degenerate members -> all -inf scores tie at 0.
        lonely = OneVsRestSVCBank(("B", "C"), model_factory=factory)
        lonely.fit(X, np.array(["B", "B"], dtype=object))
        scores = lonely.decision_matrix(X)
        assert np.isinf(scores).all()


class TestValidation:
    def test_fewer_than_two_classes_rejected(self):
        with pytest.raises(LearningError, match="at least 2"):
            OneVsRestSVCBank(("only",))

    def test_duplicate_classes_rejected(self):
        with pytest.raises(LearningError, match="unique"):
            OneVsRestSVCBank(("A", "A"))

    def test_unknown_labels_rejected(self, blobs):
        X, y = blobs
        bank = OneVsRestSVCBank(("FAST", "TYP"), model_factory=factory)
        with pytest.raises(LearningError, match="not among the bank"):
            bank.fit(X, y)          # y also holds "SLOW"

    def test_empty_training_set_rejected(self):
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory)
        with pytest.raises(LearningError, match="empty"):
            bank.fit(np.empty((0, 3)), np.empty(0))

    def test_shape_mismatch_rejected(self, blobs):
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory)
        with pytest.raises(LearningError, match="matching"):
            bank.fit(X, y[:-5])

    def test_predict_before_fit_rejected(self):
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory)
        with pytest.raises(LearningError, match="not fitted"):
            bank.predict_index(np.zeros((2, 3)))


class TestPickling:
    def test_round_trip_predicts_identically(self, blobs, query):
        X, y = blobs
        names = ("a", "b", "c")
        cache = GramCache(X, names)
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory,
                                gram_view=cache.view(names)).fit(X, y)
        clone = pickle.loads(pickle.dumps(bank))
        assert clone.classes == bank.classes
        assert (clone.predict_index(query)
                == bank.predict_index(query)).all()
        # Process-local caches never travel.
        assert clone._gram_view is None

    def test_unpickled_bank_can_refit(self, blobs):
        """The default factory restored on load keeps fit() working."""
        X, y = blobs
        bank = OneVsRestSVCBank(CLASSES, model_factory=factory).fit(X, y)
        clone = pickle.loads(pickle.dumps(bank))
        clone.fit(X[:60], y[:60])
        assert clone.n_features_ == 3
