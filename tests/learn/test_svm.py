"""SVC and SMO solver tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LearningError
from repro.learn import SVC
from repro.learn.smo import solve_smo
from repro.learn.kernels import kernel_function


def _blobs(n=60, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    X1 = rng.normal([separation / 2, 0], 0.5, (n // 2, 2))
    X2 = rng.normal([-separation / 2, 0], 0.5, (n - n // 2, 2))
    X = np.vstack([X1, X2])
    y = np.r_[np.ones(n // 2), -np.ones(n - n // 2)]
    return X, y


class TestSmo:
    def test_separable_problem_zero_training_error(self):
        X, y = _blobs()
        kernel = kernel_function("rbf", gamma=1.0)
        result = solve_smo(kernel, X, y, C=10.0)
        assert result.converged
        f = kernel(X, X) @ (result.alpha * y) + result.bias
        assert np.all(np.sign(f) == y)

    def test_dual_constraint_satisfied(self):
        X, y = _blobs(seed=3)
        kernel = kernel_function("rbf", gamma=1.0)
        result = solve_smo(kernel, X, y, C=5.0)
        assert abs(np.sum(result.alpha * y)) < 1e-8
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= 5.0 + 1e-12)

    @given(C=st.floats(0.1, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_box_constraint_property(self, C):
        X, y = _blobs(n=40, separation=1.0, seed=7)
        kernel = kernel_function("rbf", gamma=1.0)
        result = solve_smo(kernel, X, y, C=C)
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= C + 1e-10)
        assert abs(np.sum(result.alpha * y)) < 1e-8

    def test_invalid_inputs(self):
        X, y = _blobs(n=10)
        kernel = kernel_function("linear")
        with pytest.raises(LearningError, match="positive"):
            solve_smo(kernel, X, y, C=-1.0)
        with pytest.raises(LearningError, match="-1/\\+1"):
            solve_smo(kernel, X, np.arange(10.0), C=1.0)


class TestSvc:
    def test_fit_predict_separable(self):
        X, y = _blobs()
        model = SVC().fit(X, y)
        assert model.score(X, y) == 1.0
        assert set(np.unique(model.predict(X))) <= {-1, 1}

    def test_generalization_on_circle(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, (400, 2))
        y = np.where(np.hypot(X[:, 0], X[:, 1]) < 1.2, 1.0, -1.0)
        model = SVC(C=10.0, gamma=2.0).fit(X, y)
        Xt = rng.uniform(-2, 2, (300, 2))
        yt = np.where(np.hypot(Xt[:, 0], Xt[:, 1]) < 1.2, 1.0, -1.0)
        assert model.score(Xt, yt) > 0.93

    def test_linear_kernel_on_linear_boundary(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(200, 3))
        y = np.where(X @ np.array([1.0, -2.0, 0.5]) > 0, 1.0, -1.0)
        model = SVC(kernel="linear", C=10.0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_decision_function_sign_matches_predict(self):
        X, y = _blobs(seed=9)
        model = SVC().fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal(np.where(scores >= 0, 1, -1),
                              model.predict(X))

    def test_chunked_decision_function_matches(self):
        """The streaming floor's memory-bounded scoring path computes
        the same scores up to BLAS shape effects in the last ulp, and
        the same labels."""
        X, y = _blobs(n=80, seed=13)
        model = SVC().fit(X, y)
        Xq = np.random.default_rng(2).normal(size=(101, 2))
        reference = model.decision_function(Xq)
        for chunk in (1, 7, 100, 5000):
            chunked = model.decision_function(Xq, chunk_size=chunk)
            assert np.allclose(chunked, reference, rtol=0.0, atol=1e-12)
            assert np.array_equal(np.where(chunked >= 0, 1, -1),
                                  model.predict(Xq))
        assert np.array_equal(model.predict(Xq, chunk_size=7),
                              model.predict(Xq))

    def test_invalid_chunk_size_rejected(self):
        X, y = _blobs(n=30)
        model = SVC().fit(X, y)
        with pytest.raises(LearningError, match="chunk_size"):
            model.decision_function(X, chunk_size=0)

    def test_single_class_degenerates_to_constant(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        model = SVC().fit(X, np.ones(20))
        assert np.all(model.predict(np.random.normal(size=(5, 2))) == 1)
        model2 = SVC().fit(X, -np.ones(20))
        assert np.all(model2.predict(X) == -1)

    def test_single_row_prediction(self):
        X, y = _blobs()
        model = SVC().fit(X, y)
        one = model.predict(X[0])
        assert one.shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(LearningError, match="not fitted"):
            SVC().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch_raises(self):
        X, y = _blobs()
        model = SVC().fit(X, y)
        with pytest.raises(LearningError, match="features"):
            model.predict(np.zeros((1, 5)))

    def test_label_validation(self):
        X = np.zeros((4, 2))
        with pytest.raises(LearningError, match="-1/\\+1"):
            SVC().fit(X, np.array([0, 1, 2, 3]))

    def test_clone_copies_hyperparameters(self):
        model = SVC(C=3.0, kernel="poly", degree=4)
        clone = model.clone()
        assert clone.get_params() == model.get_params()
        assert clone is not model

    def test_error_rate_complement_of_score(self):
        X, y = _blobs(seed=11)
        model = SVC().fit(X, y)
        assert model.error_rate(X, y) == pytest.approx(
            1.0 - model.score(X, y))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_training_labels_respected_when_separable(self, seed):
        """Well-separated data is always fit perfectly."""
        X, y = _blobs(n=30, separation=6.0, seed=seed)
        model = SVC(C=100.0, gamma=1.0).fit(X, y)
        assert model.score(X, y) == 1.0
