"""Model selection tests: splits, k-fold, grid search."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LearningError
from repro.learn import SVC, KFold, cross_val_score, grid_search, \
    train_test_split


def _blobs(n=80, seed=0):
    rng = np.random.default_rng(seed)
    X1 = rng.normal([2, 0], 0.6, (n // 2, 2))
    X2 = rng.normal([-2, 0], 0.6, (n // 2, 2))
    return np.vstack([X1, X2]), np.r_[np.ones(n // 2), -np.ones(n // 2)]


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self):
        X = np.arange(40).reshape(20, 2).astype(float)
        y = np.arange(20)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25,
                                              seed=1)
        assert Xte.shape == (5, 2) and Xtr.shape == (15, 2)
        assert set(ytr) | set(yte) == set(range(20))
        assert set(ytr) & set(yte) == set()

    def test_deterministic_given_seed(self):
        X = np.arange(30).reshape(15, 2).astype(float)
        y = np.arange(15)
        a = train_test_split(X, y, seed=7)
        b = train_test_split(X, y, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_invalid_fraction(self):
        X, y = np.zeros((4, 1)), np.zeros(4)
        with pytest.raises(LearningError):
            train_test_split(X, y, test_fraction=1.5)


class TestKFold:
    @given(n=st.integers(10, 60), k=st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_folds_partition_the_data(self, n, k):
        folds = list(KFold(n_splits=k, seed=0).split(n))
        assert len(folds) == k
        all_test = np.concatenate([te for _, te in folds])
        assert sorted(all_test.tolist()) == list(range(n))
        for train_idx, test_idx in folds:
            assert set(train_idx) & set(test_idx) == set()
            assert len(train_idx) + len(test_idx) == n

    def test_too_few_samples(self):
        with pytest.raises(LearningError):
            list(KFold(5).split(3))

    def test_invalid_split_count(self):
        with pytest.raises(LearningError):
            KFold(1)


class TestCrossValAndGrid:
    def test_cross_val_high_on_separable(self):
        X, y = _blobs()
        scores = cross_val_score(SVC(), X, y, n_splits=4)
        assert scores.shape == (4,)
        assert scores.mean() > 0.95

    def test_grid_search_returns_best(self):
        X, y = _blobs(seed=2)
        best, score, results = grid_search(
            SVC, {"C": [0.01, 10.0], "gamma": [1.0]}, X, y, n_splits=3)
        assert best["C"] in (0.01, 10.0)
        assert len(results) == 2
        assert score == max(r for _, r in results)

    def test_grid_search_empty_grid_rejected(self):
        with pytest.raises(LearningError):
            grid_search(SVC, {}, np.zeros((4, 1)), np.ones(4))
