"""Kernel function tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import LearningError
from repro.learn.kernels import (
    kernel_function, resolve_gamma, squared_distances,
)


def _matrix(rows, cols=3):
    return arrays(np.float64, (rows, cols),
                  elements=st.floats(-5, 5, allow_nan=False))


class TestSquaredDistances:
    def test_simple_case(self):
        A = np.array([[0.0, 0.0], [1.0, 0.0]])
        B = np.array([[0.0, 1.0]])
        d2 = squared_distances(A, B)
        assert d2[0, 0] == pytest.approx(1.0)
        assert d2[1, 0] == pytest.approx(2.0)

    @given(A=_matrix(4))
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero_diagonal(self, A):
        d2 = squared_distances(A, A)
        assert np.allclose(np.diagonal(d2), 0.0, atol=1e-9)
        assert np.all(d2 >= 0.0)

    @given(A=_matrix(3), B=_matrix(5))
    @settings(max_examples=30, deadline=None)
    def test_matches_bruteforce(self, A, B):
        d2 = squared_distances(A, B)
        brute = np.array([[np.sum((a - b) ** 2) for b in B] for a in A])
        assert np.allclose(d2, brute, atol=1e-7)


class TestKernels:
    def test_linear_is_dot_product(self):
        k = kernel_function("linear")
        A = np.array([[1.0, 2.0]])
        B = np.array([[3.0, 4.0]])
        assert k(A, B)[0, 0] == pytest.approx(11.0)

    def test_rbf_bounds_and_identity(self):
        k = kernel_function("rbf", gamma=0.7)
        A = np.random.default_rng(0).normal(size=(6, 3))
        K = k(A, A)
        assert np.allclose(np.diagonal(K), 1.0)
        assert np.all((K > 0.0) & (K <= 1.0 + 1e-12))

    @given(gamma=st.floats(0.01, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_rbf_gram_positive_semidefinite(self, gamma):
        A = np.random.default_rng(1).normal(size=(8, 2))
        K = kernel_function("rbf", gamma=gamma)(A, A)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-9

    def test_poly_kernel(self):
        k = kernel_function("poly", gamma=1.0, degree=2, coef0=1.0)
        A = np.array([[1.0, 0.0]])
        assert k(A, A)[0, 0] == pytest.approx(4.0)  # (1*1 + 1)^2

    def test_sigmoid_kernel_bounded(self):
        k = kernel_function("sigmoid", gamma=0.5, coef0=0.0)
        A = np.random.default_rng(2).normal(size=(5, 4))
        K = k(A, A)
        assert np.all(np.abs(K) <= 1.0)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(LearningError, match="unknown kernel"):
            kernel_function("wavelet")


class TestResolveGamma:
    def test_scale_uses_variance(self):
        X = np.array([[0.0, 0.0], [2.0, 2.0]])
        expected = 1.0 / (2 * X.var())
        assert resolve_gamma("scale", X) == pytest.approx(expected)

    def test_auto_uses_feature_count(self):
        X = np.zeros((3, 4))
        assert resolve_gamma("auto", X) == pytest.approx(0.25)

    def test_scale_on_constant_data(self):
        X = np.ones((5, 2))
        assert resolve_gamma("scale", X) == pytest.approx(0.5)

    def test_numeric_passthrough_and_validation(self):
        X = np.zeros((2, 2))
        assert resolve_gamma(1.5, X) == 1.5
        with pytest.raises(LearningError, match="positive"):
            resolve_gamma(-1.0, X)
