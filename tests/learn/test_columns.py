"""KernelColumnCache: the shared, bounded kernel-column source."""

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learn.columns import KernelColumnCache
from repro.learn.kernels import kernel_function
from repro.learn.smo import _ColumnCache


def _points(n=50, d=3, seed=0):
    return np.random.default_rng(seed).normal(0.0, 1.0, (n, d))


class TestContract:
    def test_columns_match_internal_cache_bitwise(self):
        """The external cache must serve the *same bytes* the SMO
        solver's internal cache would fetch -- that equality is what
        makes out-of-core fits bit-identical to in-RAM fits."""
        X = _points()
        gamma = 0.7
        external = KernelColumnCache(X, max_bytes=1 << 20)
        internal = _ColumnCache(kernel_function("rbf", gamma=gamma), X,
                                max_columns=512)
        provider = external.provider(gamma)
        for i in range(len(X)):
            assert np.array_equal(provider.column(i), internal.column(i))

    def test_block_width_is_invisible(self):
        X = _points(seed=1)
        a = KernelColumnCache(X, max_bytes=1 << 20, block_columns=4)
        b = KernelColumnCache(X, max_bytes=1 << 20, block_columns=13)
        for i in range(len(X)):
            assert np.array_equal(a.column(0.5, i), b.column(0.5, i))

    def test_multiple_gammas_coexist(self):
        X = _points()
        cache = KernelColumnCache(X, max_bytes=1 << 20)
        k1 = kernel_function("rbf", gamma=0.3)(X, X[0:4].copy())[:, 2]
        k2 = kernel_function("rbf", gamma=3.0)(X, X[0:4].copy())[:, 2]
        # Served per (gamma, block): distinct entries, correct bytes.
        assert np.array_equal(
            KernelColumnCache(X, max_bytes=1 << 20,
                              block_columns=4).column(0.3, 2), k1)
        assert np.array_equal(cache.provider(3.0).column(2),
                              kernel_function("rbf", gamma=3.0)(
                                  X, X[0:64].copy())[:, 2])
        assert not np.array_equal(k1, k2)

    def test_matches(self):
        X = _points()
        cache = KernelColumnCache(X, max_bytes=1 << 20)
        assert cache.matches(X)
        assert cache.matches(X.copy())
        assert not cache.matches(X[:-1])
        assert not cache.matches(X + 1e-9)


class TestBounds:
    def test_lru_eviction_respects_budget(self):
        X = _points(n=64)
        block = 8
        # Budget for exactly 3 blocks.
        budget = 3 * 8 * len(X) * block
        cache = KernelColumnCache(X, max_bytes=budget,
                                  block_columns=block)
        for i in range(len(X)):
            cache.column(1.0, i)
        assert cache.n_cached_blocks <= cache.max_blocks == 3
        # Evicted blocks refetch to the same bytes.
        reference = kernel_function("rbf", gamma=1.0)(
            X, X[0:block].copy())[:, 0]
        assert np.array_equal(cache.column(1.0, 0), reference)

    def test_hit_and_fetch_stats(self):
        X = _points(n=20)
        cache = KernelColumnCache(X, max_bytes=1 << 20, block_columns=8)
        cache.column(1.0, 0)
        assert (cache.n_fetches, cache.n_hits) == (1, 0)
        cache.column(1.0, 5)  # same block
        assert (cache.n_fetches, cache.n_hits) == (1, 1)
        cache.column(1.0, 15)  # new block
        assert (cache.n_fetches, cache.n_hits) == (2, 1)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(LearningError):
            KernelColumnCache(np.zeros(5))
        with pytest.raises(LearningError):
            KernelColumnCache(np.zeros((0, 3)))
