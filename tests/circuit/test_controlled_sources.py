"""Controlled-source behaviour in AC, and bias-tee element checks."""

import numpy as np
import pytest

from repro.circuit import Circuit, solve_ac, solve_dc


class TestControlledSourcesAC:
    def test_vcvs_gain_frequency_independent(self):
        ckt = Circuit()
        ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
        ckt.vcvs("E1", "out", "0", "in", "0", gain=-7.0)
        ckt.resistor("RL", "out", "0", 1e3)
        op = solve_dc(ckt)
        ac = solve_ac(ckt, [1.0, 1e3, 1e6], op)
        assert np.allclose(ac.v("out"), -7.0)

    def test_vccs_into_capacitor_integrates(self):
        """gm into a capacitor: |vout| = gm / (w C)."""
        gm, c = 1e-3, 1e-9
        ckt = Circuit()
        ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
        ckt.vccs("G1", "0", "out", "in", "0", gm=gm)
        ckt.capacitor("C1", "out", "0", c)
        ckt.resistor("Rbig", "out", "0", 1e12)  # DC path
        op = solve_dc(ckt)
        freqs = np.array([1e3, 1e4, 1e5])
        ac = solve_ac(ckt, freqs, op)
        expected = gm / (2 * np.pi * freqs * c)
        assert np.allclose(np.abs(ac.v("out")), expected, rtol=1e-3)

    def test_vcvs_buffer_isolates_stages(self):
        """An ideal buffer prevents inter-stage loading."""
        def corner(buffered):
            ckt = Circuit()
            ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
            ckt.resistor("R1", "in", "a", 1e3)
            ckt.capacitor("C1", "a", "0", 1e-9)
            if buffered:
                ckt.vcvs("E1", "b", "0", "a", "0", gain=1.0)
            else:
                ckt.resistor("Rshort", "a", "b", 1.0)
            ckt.resistor("R2", "b", "c", 1e3)
            ckt.capacitor("C2", "c", "0", 1e-9)
            op = solve_dc(ckt)
            freqs = np.logspace(3, 7, 121)
            ac = solve_ac(ckt, freqs, op)
            from repro.circuit import analysis as ana

            return ana.bandwidth_3db(freqs, ac.v("c"))

        # Two isolated poles at f0 give a -3 dB corner at f0*sqrt(2^0.5-1)
        # ~ 0.644 f0; the loaded cascade is slower than the buffered one.
        assert corner(buffered=False) < corner(buffered=True)


class TestBiasTeeElements:
    """The op-amp testbench relies on the L/C bias tee working."""

    def test_big_inductor_dc_short_ac_open(self):
        ckt = Circuit()
        ckt.voltage_source("Vin", "in", "0", dc=2.0, ac=1.0)
        ckt.inductor("L", "in", "out", 1e6)
        ckt.resistor("R", "out", "0", 1e3)
        op = solve_dc(ckt)
        assert op.v("out") == pytest.approx(2.0)  # DC short
        ac = solve_ac(ckt, [10.0], op)
        # At 10 Hz, |Z_L| = 6.3e7 >> 1k: essentially open.
        assert np.abs(ac.v("out"))[0] < 1e-4

    def test_big_capacitor_dc_open_ac_short(self):
        ckt = Circuit()
        ckt.voltage_source("Vin", "in", "0", dc=2.0, ac=1.0)
        ckt.capacitor("C", "in", "out", 1.0)
        ckt.resistor("R", "out", "0", 1e3)
        op = solve_dc(ckt)
        assert op.v("out") == pytest.approx(0.0, abs=1e-9)  # DC open
        ac = solve_ac(ckt, [10.0], op)
        assert np.abs(ac.v("out"))[0] == pytest.approx(1.0, abs=1e-4)
