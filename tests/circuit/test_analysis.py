"""Waveform/spectrum measurement helper tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import analysis as ana
from repro.errors import AnalysisError


def _second_order(freqs, f0, q, a=1.0):
    u = (np.asarray(freqs) / f0) ** 2
    return a / np.sqrt((1 - u) ** 2 + u / q ** 2)


class TestFrequencyMeasures:
    def test_db_conversion(self):
        assert ana.db([1.0])[0] == pytest.approx(0.0)
        assert ana.db([10.0])[0] == pytest.approx(20.0)
        assert np.isfinite(ana.db([0.0])[0])  # clamped, not -inf

    def test_bandwidth_of_first_order(self):
        fc = 1e3
        freqs = np.logspace(0, 6, 301)
        h = 1.0 / np.sqrt(1 + (freqs / fc) ** 2)
        assert ana.bandwidth_3db(freqs, h) == pytest.approx(fc, rel=0.01)

    def test_bandwidth_respects_explicit_reference(self):
        freqs = np.logspace(0, 6, 301)
        h = 10.0 / np.sqrt(1 + (freqs / 1e3) ** 2)
        bw = ana.bandwidth_3db(freqs, h, ref_gain=10.0)
        assert bw == pytest.approx(1e3, rel=0.01)

    def test_unity_gain_frequency_of_integrator(self):
        freqs = np.logspace(0, 6, 301)
        h = 1e4 / freqs  # crosses unity at 10 kHz
        assert ana.unity_gain_frequency(freqs, h) == pytest.approx(
            1e4, rel=0.01)

    def test_ugf_requires_initial_gain_above_one(self):
        freqs = np.logspace(0, 3, 31)
        with pytest.raises(AnalysisError, match="below unity"):
            ana.unity_gain_frequency(freqs, 0.5 / freqs)

    @given(f0=st.floats(1e2, 1e5), q=st.floats(1.2, 20.0))
    @settings(max_examples=50, deadline=None)
    def test_peak_frequency_of_resonance(self, f0, q):
        freqs = np.logspace(np.log10(f0) - 2, np.log10(f0) + 2, 401)
        h = _second_order(freqs, f0, q)
        f_peak_true = f0 * np.sqrt(1 - 1 / (2 * q * q))
        assert ana.peak_frequency(freqs, h) == pytest.approx(
            f_peak_true, rel=0.02)

    @given(q=st.floats(5.0, 30.0))
    @settings(max_examples=50, deadline=None)
    def test_quality_factor_recovered(self, q):
        """Half-power Q matches classical Q for reasonably sharp peaks.

        For a *low-pass* second-order response the half-power width
        around the peak equals f0/Q only asymptotically; below Q ~ 5
        the estimate is biased low by design (the MEMS bench therefore
        extracts Q by curve fitting instead).
        """
        f0 = 1e4
        freqs = np.logspace(2, 6, 1601)
        h = _second_order(freqs, f0, q)
        assert ana.quality_factor(freqs, h) == pytest.approx(q, rel=0.08)

    def test_quality_factor_biased_low_at_low_q(self):
        freqs = np.logspace(2, 6, 1601)
        h = _second_order(freqs, 1e4, 2.0)
        q_est = ana.quality_factor(freqs, h)
        assert 1.4 < q_est < 2.0

    def test_quality_factor_rejects_overdamped(self):
        freqs = np.logspace(2, 6, 201)
        h = _second_order(freqs, 1e4, 0.5)  # no resonant peak
        with pytest.raises(AnalysisError):
            ana.quality_factor(freqs, h)


class TestTimeMeasures:
    def _step(self, tau=1e-6, t_end=1e-5, n=2001, y0=0.0, y1=1.0):
        t = np.linspace(0.0, t_end, n)
        return t, y0 + (y1 - y0) * (1 - np.exp(-t / tau))

    def test_first_crossing_interpolates(self):
        t = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0, 2.0])
        assert ana.first_crossing(t, y, 0.5) == pytest.approx(0.5)

    def test_first_crossing_direction(self):
        t = np.linspace(0, 2 * np.pi, 1001)
        y = np.sin(t)
        up = ana.first_crossing(t, y, 0.5, rising=True)
        down = ana.first_crossing(t, y, 0.5, rising=False)
        assert up == pytest.approx(np.arcsin(0.5), abs=0.01)
        assert down == pytest.approx(np.pi - np.arcsin(0.5), abs=0.01)

    def test_first_crossing_missing_raises(self):
        with pytest.raises(AnalysisError, match="never crosses"):
            ana.first_crossing([0, 1], [0, 0.1], 5.0)

    def test_rise_time_of_first_order(self):
        tau = 1e-6
        t, y = self._step(tau)
        # Analytic 10-90 rise of a first-order step: tau * ln(9).
        assert ana.rise_time(t, y, 0.0, 1.0) == pytest.approx(
            tau * np.log(9.0), rel=0.01)

    def test_rise_time_falling_step(self):
        tau = 1e-6
        t, y = self._step(tau, y0=1.0, y1=0.0)
        assert ana.rise_time(t, y, 1.0, 0.0) == pytest.approx(
            tau * np.log(9.0), rel=0.01)

    def test_overshoot_zero_for_monotone(self):
        t, y = self._step()
        assert ana.overshoot(y, 0.0, 1.0) == 0.0

    def test_overshoot_of_damped_ringing(self):
        t = np.linspace(0, 20, 4001)
        zeta = 0.3
        wn = 1.0
        wd = wn * np.sqrt(1 - zeta ** 2)
        y = 1 - np.exp(-zeta * wn * t) * (
            np.cos(wd * t) + zeta / np.sqrt(1 - zeta ** 2) * np.sin(wd * t))
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta ** 2))
        assert ana.overshoot(y, 0.0, 1.0) == pytest.approx(expected,
                                                           rel=0.02)

    def test_settling_time_first_order(self):
        tau = 1e-6
        t, y = self._step(tau, t_end=2e-5, n=20001)
        # 1 % settling of a first-order step: tau * ln(100).
        assert ana.settling_time(t, y, 1.0, band=0.01) == pytest.approx(
            tau * np.log(100.0), rel=0.02)

    def test_settling_time_already_settled(self):
        t = np.linspace(0, 1, 11)
        y = np.ones(11)
        assert ana.settling_time(t, y, 1.0) == 0.0

    def test_settling_never_raises_outside_band(self):
        t = np.linspace(0, 1, 101)
        y = np.linspace(0, 0.5, 101)  # never reaches 1 +/- 1 %
        with pytest.raises(AnalysisError, match="settle"):
            ana.settling_time(t, y, 1.0, band=0.01)

    def test_slew_rate_of_ramp(self):
        t = np.linspace(0.0, 1.0, 1001)
        y = np.clip(2.0 * t, 0.0, 1.0)  # 2 V/s ramp saturating at 1
        assert ana.slew_rate(t, y) == pytest.approx(2.0, rel=0.01)

    def test_slew_rate_rejects_flat(self):
        t = np.linspace(0, 1, 11)
        with pytest.raises(AnalysisError):
            ana.slew_rate(t, np.zeros(11))
