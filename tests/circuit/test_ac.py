"""AC analysis tests against closed-form transfer functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, solve_ac, solve_dc
from repro.circuit import analysis as ana
from repro.errors import AnalysisError


def _rc_circuit(r=1e3, c=1e-6):
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
    ckt.resistor("R", "in", "out", r)
    ckt.capacitor("C", "out", "0", c)
    return ckt


def test_rc_lowpass_matches_analytic():
    ckt = _rc_circuit()
    op = solve_dc(ckt)
    freqs = np.logspace(0, 5, 61)
    ac = solve_ac(ckt, freqs, op)
    h = ac.v("out")
    expected = 1.0 / (1.0 + 1j * 2 * np.pi * freqs * 1e3 * 1e-6)
    assert np.allclose(h, expected, rtol=1e-9)


@given(r=st.floats(100, 1e5), c=st.floats(1e-9, 1e-5))
@settings(max_examples=40, deadline=None)
def test_rc_bandwidth_property(r, c):
    """Measured -3 dB corner equals 1/(2 pi R C) for any RC."""
    ckt = _rc_circuit(r, c)
    op = solve_dc(ckt)
    f_c = 1.0 / (2 * np.pi * r * c)
    freqs = np.logspace(np.log10(f_c) - 3, np.log10(f_c) + 3, 121)
    ac = solve_ac(ckt, freqs, op)
    bw = ana.bandwidth_3db(ac.freqs, ac.v("out"))
    assert bw == pytest.approx(f_c, rel=0.02)


def test_rlc_series_resonance():
    """Series RLC current peaks at f0 = 1/(2 pi sqrt(LC))."""
    L, C, R = 1e-3, 1e-9, 10.0
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
    ckt.inductor("L", "in", "a", L)
    ckt.resistor("R", "a", "b", R)
    ckt.capacitor("C", "b", "0", C)
    op = solve_dc(ckt)
    f0 = 1.0 / (2 * np.pi * np.sqrt(L * C))
    freqs = np.logspace(np.log10(f0) - 1.5, np.log10(f0) + 1.5, 201)
    ac = solve_ac(ckt, freqs, op)
    current = np.abs(ac.branch_current("Vin"))
    f_peak = ac.freqs[np.argmax(current)]
    assert f_peak == pytest.approx(f0, rel=0.03)
    # At resonance the impedance is R: |I| = 1/R.
    assert current.max() == pytest.approx(1.0 / R, rel=0.01)


def test_rlc_quality_factor():
    """Measured Q of a series RLC equals sqrt(L/C)/R."""
    L, C, R = 1e-3, 1e-9, 50.0
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
    ckt.inductor("L", "in", "a", L)
    ckt.resistor("R", "a", "b", R)
    ckt.capacitor("C", "b", "0", C)
    op = solve_dc(ckt)
    f0 = 1.0 / (2 * np.pi * np.sqrt(L * C))
    freqs = np.logspace(np.log10(f0) - 1, np.log10(f0) + 1, 801)
    ac = solve_ac(ckt, freqs, op)
    q_expected = np.sqrt(L / C) / R
    q_measured = ana.quality_factor(ac.freqs, np.abs(ac.branch_current("Vin")))
    assert q_measured == pytest.approx(q_expected, rel=0.05)


def test_linearized_mosfet_gain():
    """Common-source gain equals -gm * (Rd || ro)."""
    ckt = Circuit()
    ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
    ckt.voltage_source("Vg", "g", "0", dc=1.5, ac=1.0)
    ckt.resistor("Rd", "vdd", "d", 1e4)
    m = ckt.mosfet("M1", "d", "g", "0", kind="n", w=20e-6, l=2e-6,
                   kp=100e-6, vth=1.0, lam=0.02)
    op = solve_dc(ckt)
    _, gm, gds = m.evaluate(op.x)
    ac = solve_ac(ckt, [1.0], op)
    gain_expected = gm / (1e-4 + gds)
    assert np.abs(ac.v("d"))[0] == pytest.approx(gain_expected, rel=1e-6)


def test_ac_source_superposition():
    """Zeroing one AC source isolates the other's contribution."""
    def run(a1, a2):
        ckt = Circuit()
        ckt.voltage_source("V1", "a", "0", dc=0.0, ac=a1)
        ckt.resistor("R1", "a", "out", 1e3)
        ckt.voltage_source("V2", "b", "0", dc=0.0, ac=a2)
        ckt.resistor("R2", "b", "out", 1e3)
        ckt.resistor("RL", "out", "0", 1e3)
        op = solve_dc(ckt)
        return solve_ac(ckt, [100.0], op).v("out")[0]

    both = run(1.0, 1.0)
    assert both == pytest.approx(run(1.0, 0.0) + run(0.0, 1.0), rel=1e-12)


def test_ac_requires_positive_frequencies():
    ckt = _rc_circuit()
    op = solve_dc(ckt)
    with pytest.raises(AnalysisError, match="positive"):
        solve_ac(ckt, [0.0, 10.0], op)
    with pytest.raises(AnalysisError, match="at least one"):
        solve_ac(ckt, [], op)


def test_transfer_function_helper():
    ckt = _rc_circuit()
    op = solve_dc(ckt)
    ac = solve_ac(ckt, np.logspace(0, 4, 11), op)
    h = ac.transfer("out", "in")
    assert np.abs(h[0]) == pytest.approx(1.0, abs=1e-3)
    assert np.all(np.abs(h) <= 1.0 + 1e-12)


def test_nonlinear_in_omega_reactive_device_falls_back():
    """A user reactive device whose stamp is not omega-linear must
    still solve correctly: the hoisted entry list detects it and
    solve_ac reverts to per-frequency stamping."""
    from repro.circuit import devices as dev

    class OmegaSquaredShunt(dev.Device):
        """A frequency-squared admittance to ground (not physical,
        just definitely not linear in omega)."""

        reactive = True

        def __init__(self, name, node, scale):
            super().__init__(name, (node,))
            self.scale = float(scale)

        def stamp_ac(self, G, b, omega):
            (i,) = self.nodes
            if i >= 0:
                G[i, i] += 1j * self.scale * omega * omega

    scale = 1e-12
    ckt = Circuit("omega-squared")
    ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.add(OmegaSquaredShunt("X1", "out", scale))
    op = solve_dc(ckt)
    freqs = np.logspace(3, 6, 7)
    ac = solve_ac(ckt, freqs, op)
    # Closed form: V(out) = 1 / (1 + R * j * scale * omega^2).
    omega = 2.0 * np.pi * freqs
    expected = 1.0 / (1.0 + 1e3 * 1j * scale * omega * omega)
    np.testing.assert_allclose(ac.v("out"), expected, rtol=1e-12)
