"""Tests for the Circuit netlist container."""

import pytest

from repro.circuit import Circuit
from repro.errors import CircuitError


def test_ground_aliases_map_to_minus_one():
    ckt = Circuit()
    for name in ("0", "gnd", "GND", "ground"):
        assert ckt.node_id(name) == -1
    assert ckt.n_nodes == 0


def test_node_ids_are_stable_and_dense():
    ckt = Circuit()
    a = ckt.node_id("a")
    b = ckt.node_id("b")
    assert (a, b) == (0, 1)
    assert ckt.node_id("a") == 0
    assert ckt.node_names == ("a", "b")


def test_duplicate_device_name_rejected():
    ckt = Circuit("dup")
    ckt.resistor("R1", "a", "0", 1e3)
    with pytest.raises(CircuitError, match="duplicate"):
        ckt.resistor("R1", "b", "0", 1e3)


def test_device_lookup_and_membership():
    ckt = Circuit()
    r = ckt.resistor("R1", "a", "b", 50.0)
    assert ckt.device("R1") is r
    assert "R1" in ckt
    assert "R2" not in ckt
    with pytest.raises(CircuitError, match="no device"):
        ckt.device("R2")


def test_compile_assigns_aux_indices_in_order():
    ckt = Circuit()
    ckt.voltage_source("V1", "a", "0", dc=1.0)
    ckt.resistor("R1", "a", "b", 1.0)
    ckt.inductor("L1", "b", "0", 1.0)
    ckt.compile()
    # Two nodes, then aux unknowns in insertion order.
    assert ckt.n_unknowns == 4
    assert ckt.device("V1").aux == 2
    assert ckt.device("L1").aux == 3


def test_compile_is_idempotent():
    ckt = Circuit()
    ckt.resistor("R1", "a", "0", 1.0)
    assert ckt.n_unknowns == ckt.n_unknowns


def test_adding_device_invalidates_compilation():
    ckt = Circuit()
    ckt.resistor("R1", "a", "0", 1.0)
    assert ckt.n_unknowns == 1
    ckt.voltage_source("V1", "a", "0", dc=1.0)
    assert ckt.n_unknowns == 2


def test_partition_separates_device_kinds():
    ckt = Circuit()
    ckt.resistor("R1", "a", "0", 1.0)
    ckt.capacitor("C1", "a", "0", 1e-9)
    ckt.mosfet("M1", "a", "b", "0")
    linear, nonlinear, reactive = ckt.partition()
    assert {d.name for d in nonlinear} == {"M1"}
    assert {d.name for d in reactive} == {"C1"}
    assert {d.name for d in linear} == {"R1", "C1"}


def test_negative_resistance_rejected():
    ckt = Circuit()
    with pytest.raises(CircuitError, match="positive"):
        ckt.resistor("R1", "a", "0", -5.0)
    with pytest.raises(CircuitError, match="positive"):
        ckt.capacitor("C1", "a", "0", 0.0)
    with pytest.raises(CircuitError, match="positive"):
        ckt.inductor("L1", "a", "0", -1e-9)
