"""DC sweep analysis tests."""

import numpy as np
import pytest

from repro.circuit import Circuit, sweep_dc
from repro.circuit.devices import Pulse
from repro.errors import AnalysisError


def _divider():
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=1.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 1e3)
    return ckt


class TestSweepDc:
    def test_linear_circuit_sweeps_linearly(self):
        ckt = _divider()
        values = np.linspace(-5, 5, 11)
        sweep = sweep_dc(ckt, "Vin", values)
        assert np.allclose(sweep.v("mid"), values / 2)
        assert np.allclose(sweep.branch_current("Vin"), -values / 2e3)

    def test_source_value_restored_after_sweep(self):
        ckt = _divider()
        sweep_dc(ckt, "Vin", [2.0, 3.0])
        assert ckt.device("Vin").wave.dc == 1.0

    def test_current_source_sweep(self):
        ckt = Circuit()
        ckt.current_source("I1", "0", "a", dc=0.0)
        ckt.resistor("R1", "a", "0", 2e3)
        sweep = sweep_dc(ckt, "I1", [1e-3, 2e-3])
        assert np.allclose(sweep.v("a"), [2.0, 4.0])

    def test_mosfet_transfer_curve(self):
        """Common-source transfer curve: monotone falling, rail to rail."""
        ckt = Circuit()
        ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
        ckt.voltage_source("Vg", "g", "0", dc=0.0)
        ckt.resistor("Rd", "vdd", "d", 1e4)
        ckt.mosfet("M1", "d", "g", "0", kind="n", w=20e-6, l=2e-6,
                   kp=100e-6, vth=1.0, lam=0.02)
        sweep = sweep_dc(ckt, "Vg", np.linspace(0.0, 3.0, 31))
        vd = sweep.v("d")
        assert vd[0] == pytest.approx(5.0, abs=1e-3)   # cutoff
        assert vd[-1] < 1.0                            # hard on
        assert np.all(np.diff(vd) <= 1e-9)             # monotone falling

    def test_operating_point_accessor(self):
        ckt = _divider()
        sweep = sweep_dc(ckt, "Vin", [4.0])
        op = sweep.operating_point(0)
        assert op.v("mid") == pytest.approx(2.0)

    def test_validation(self):
        ckt = _divider()
        with pytest.raises(AnalysisError, match="independent source"):
            sweep_dc(ckt, "R1", [1.0])
        with pytest.raises(AnalysisError, match="at least one"):
            sweep_dc(ckt, "Vin", [])
        ckt2 = Circuit()
        ckt2.voltage_source("Vp", "a", "0", dc=Pulse(0, 1))
        ckt2.resistor("R", "a", "0", 1e3)
        with pytest.raises(AnalysisError, match="plain DC"):
            sweep_dc(ckt2, "Vp", [1.0])
