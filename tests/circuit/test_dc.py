"""DC operating-point solver tests against hand-solvable circuits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, solve_dc
from repro.errors import ConvergenceError


def test_resistor_divider():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=10.0)
    ckt.resistor("R1", "in", "mid", 1e3)
    ckt.resistor("R2", "mid", "0", 3e3)
    op = solve_dc(ckt)
    assert op.v("mid") == pytest.approx(7.5)
    assert op.branch_current("V1") == pytest.approx(-2.5e-3)


@given(v=st.floats(-50, 50), r1=st.floats(10, 1e6), r2=st.floats(10, 1e6))
@settings(max_examples=50, deadline=None)
def test_divider_property(v, r1, r2):
    """V_mid = V * R2 / (R1 + R2) for every divider."""
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=v)
    ckt.resistor("R1", "in", "mid", r1)
    ckt.resistor("R2", "mid", "0", r2)
    op = solve_dc(ckt)
    assert op.v("mid") == pytest.approx(v * r2 / (r1 + r2), rel=1e-9,
                                        abs=1e-12)


def test_superposition_of_two_sources():
    """Linear circuits obey superposition."""
    def build(v1, i2):
        ckt = Circuit()
        ckt.voltage_source("V1", "a", "0", dc=v1)
        ckt.resistor("R1", "a", "b", 2e3)
        ckt.resistor("R2", "b", "0", 1e3)
        ckt.current_source("I2", "0", "b", dc=i2)
        return solve_dc(ckt).v("b")

    both = build(5.0, 1e-3)
    only_v = build(5.0, 0.0)
    only_i = build(0.0, 1e-3)
    assert both == pytest.approx(only_v + only_i, rel=1e-9)


def test_current_source_into_resistor():
    ckt = Circuit()
    ckt.current_source("I1", "0", "a", dc=2e-3)
    ckt.resistor("R1", "a", "0", 1e3)
    op = solve_dc(ckt)
    assert op.v("a") == pytest.approx(2.0)


def test_vcvs_gain():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=0.5)
    ckt.vcvs("E1", "out", "0", "in", "0", gain=10.0)
    ckt.resistor("RL", "out", "0", 1e3)
    op = solve_dc(ckt)
    assert op.v("out") == pytest.approx(5.0)


def test_vccs_transconductance():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=1.0)
    ckt.vccs("G1", "0", "out", "in", "0", gm=1e-3)
    ckt.resistor("RL", "out", "0", 2e3)
    op = solve_dc(ckt)
    # 1 mA pushed into 2k load (from 0 to out means current into out).
    assert op.v("out") == pytest.approx(2.0)


def test_inductor_is_dc_short():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=3.0)
    ckt.resistor("R1", "in", "a", 1e3)
    ckt.inductor("L1", "a", "b", 1.0)
    ckt.resistor("R2", "b", "0", 1e3)
    op = solve_dc(ckt)
    assert op.v("a") == pytest.approx(op.v("b"))
    assert op.branch_current("L1") == pytest.approx(1.5e-3)


def test_capacitor_is_dc_open():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=3.0)
    ckt.resistor("R1", "in", "a", 1e3)
    ckt.capacitor("C1", "a", "0", 1e-6)
    op = solve_dc(ckt)
    assert op.v("a") == pytest.approx(3.0)  # no DC current -> no drop


def test_diode_forward_drop():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=5.0)
    ckt.resistor("R1", "in", "d", 1e3)
    ckt.diode("D1", "d", "0")
    op = solve_dc(ckt)
    vd = op.v("d")
    assert 0.4 < vd < 0.8
    # KCL: resistor current equals diode current.
    i_r = (5.0 - vd) / 1e3
    i_d = 1e-14 * (np.exp(vd / 0.02585) - 1.0)
    assert i_r == pytest.approx(i_d, rel=1e-3)


def test_diode_reverse_blocks():
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=-5.0)
    ckt.resistor("R1", "in", "d", 1e3)
    ckt.diode("D1", "d", "0")
    op = solve_dc(ckt)
    assert op.v("d") == pytest.approx(-5.0, abs=1e-3)


def test_nmos_saturation_current():
    """Square-law drain current in saturation, against hand math."""
    ckt = Circuit()
    ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
    ckt.voltage_source("Vg", "g", "0", dc=2.0)
    ckt.resistor("Rd", "vdd", "d", 1e3)
    m = ckt.mosfet("M1", "d", "g", "0", kind="n", w=10e-6, l=1e-6,
                   kp=100e-6, vth=1.0, lam=0.0)
    op = solve_dc(ckt)
    beta = 100e-6 * 10
    i_d = 0.5 * beta * (2.0 - 1.0) ** 2
    assert op.v("d") == pytest.approx(5.0 - 1e3 * i_d, rel=1e-6)
    assert m.operating_region(op.x) == "saturation"


def test_nmos_triode_region():
    ckt = Circuit()
    ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
    ckt.voltage_source("Vg", "g", "0", dc=4.0)
    ckt.resistor("Rd", "vdd", "d", 1e5)
    m = ckt.mosfet("M1", "d", "g", "0", kind="n", w=10e-6, l=1e-6,
                   kp=100e-6, vth=1.0, lam=0.0)
    op = solve_dc(ckt)
    assert m.operating_region(op.x) == "triode"
    assert op.v("d") < 4.0 - 1.0  # below vov confirms triode


def test_pmos_mirror_ratio():
    """A 2:1 PMOS mirror doubles the reference current."""
    ckt = Circuit()
    ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
    ckt.resistor("Rref", "bias", "0", 40e3)
    ckt.mosfet("MP1", "bias", "bias", "vdd", kind="p", w=20e-6, l=2e-6,
               kp=40e-6, vth=0.8, lam=1e-9)
    ckt.mosfet("MP2", "out", "bias", "vdd", kind="p", w=40e-6, l=2e-6,
               kp=40e-6, vth=0.8, lam=1e-9)
    ckt.voltage_source("Vout", "out", "0", dc=2.0)
    op = solve_dc(ckt)
    i_ref = op.v("bias") / 40e3
    # The mirror pushes current into "out"; it exits through Vout from
    # the + terminal, so the branch current is positive.
    i_out = op.branch_current("Vout")
    assert i_out == pytest.approx(2.0 * i_ref, rel=1e-3)


def test_homotopy_can_be_disabled():
    # A well-behaved circuit converges without homotopy.
    ckt = Circuit()
    ckt.voltage_source("V1", "in", "0", dc=1.0)
    ckt.resistor("R1", "in", "0", 1e3)
    op = solve_dc(ckt, use_homotopy=False)
    assert op.v("in") == pytest.approx(1.0)


def test_floating_node_raises():
    ckt = Circuit()
    ckt.current_source("I1", "0", "a", dc=1e-3)
    # Node "a" has no DC path: singular matrix.
    with pytest.raises(ConvergenceError):
        solve_dc(ckt, use_homotopy=False)


def test_stamp_dc_writing_to_g_rejected():
    """The split DC assembly would silently drop conductance stamped
    from stamp_dc, so such devices are rejected loudly."""
    import pytest

    from repro.circuit import devices as dev
    from repro.errors import CircuitError

    class SneakyShunt(dev.Device):
        def stamp_dc(self, G, b):
            (i,) = self.nodes
            G[i, i] += 1e-3

    ckt = Circuit("sneaky")
    ckt.voltage_source("V1", "a", "0", dc=1.0)
    ckt.add(SneakyShunt("X1", ("a",)))
    with pytest.raises(CircuitError, match="stamp_static"):
        solve_dc(ckt)
