"""Transient analysis tests against closed-form step responses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, solve_transient
from repro.circuit.devices import Pulse, Pwl, Sine
from repro.errors import ConvergenceError


def _rc_step(r=1e3, c=1e-7, v=1.0, delay=1e-5):
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0",
                       dc=Pulse(0.0, v, delay=delay, rise=1e-8))
    ckt.resistor("R", "in", "out", r)
    ckt.capacitor("C", "out", "0", c)
    return ckt


def test_rc_step_exponential():
    r, c = 1e3, 1e-7
    tau = r * c
    ckt = _rc_step(r, c)
    tr = solve_transient(ckt, 8e-4, 1e-6)
    for k in (0.5, 1.0, 2.0, 3.0):
        t_probe = 1e-5 + k * tau
        expected = 1.0 - np.exp(-k)
        got = float(np.interp(t_probe, tr.t, tr.v("out")))
        assert got == pytest.approx(expected, abs=0.01)


def test_initial_condition_is_dc_operating_point():
    ckt = _rc_step()
    tr = solve_transient(ckt, 1e-5, 1e-6)
    assert tr.v("out")[0] == pytest.approx(0.0, abs=1e-9)


@given(tau_steps=st.integers(20, 200))
@settings(max_examples=20, deadline=None)
def test_rc_step_accuracy_improves_with_resolution(tau_steps):
    """Trapezoidal integration stays accurate across step sizes."""
    r, c = 1e3, 1e-7
    tau = r * c
    dt = tau / tau_steps
    ckt = _rc_step(r, c, delay=0.0)
    tr = solve_transient(ckt, 3 * tau, dt)
    got = float(np.interp(tau, tr.t, tr.v("out")))
    assert got == pytest.approx(1.0 - np.exp(-1.0), abs=0.02)


def test_rl_current_ramp():
    """Inductor current rises exponentially toward V/R."""
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=Pulse(0.0, 1.0, delay=0.0,
                                                  rise=1e-9))
    ckt.resistor("R", "in", "a", 100.0)
    ckt.inductor("L", "a", "0", 1e-3)
    tau = 1e-3 / 100.0
    tr = solve_transient(ckt, 5 * tau, tau / 50)
    i = tr.branch_current("L")
    got = float(np.interp(tau, tr.t, i))
    assert got == pytest.approx((1.0 / 100.0) * (1 - np.exp(-1)), rel=0.03)


def test_sine_source_amplitude_preserved():
    """A through-wire sine keeps its amplitude and frequency."""
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=Sine(0.0, 1.0, 1e3))
    ckt.resistor("R", "in", "out", 1.0)
    ckt.resistor("RL", "out", "0", 1e6)
    tr = solve_transient(ckt, 2e-3, 1e-6)
    out = tr.v("out")
    assert out.max() == pytest.approx(1.0, abs=0.01)
    assert out.min() == pytest.approx(-1.0, abs=0.01)
    # Zero crossings every half period.
    crossings = np.sum(np.diff(np.sign(out)) != 0)
    assert 3 <= crossings <= 5


def test_pwl_waveform_followed():
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0",
                       dc=Pwl([0.0, 1e-3, 2e-3], [0.0, 2.0, -1.0]))
    ckt.resistor("R", "in", "0", 1e3)
    tr = solve_transient(ckt, 2e-3, 5e-5)
    assert float(np.interp(0.5e-3, tr.t, tr.v("in"))) == pytest.approx(
        1.0, abs=1e-6)
    assert tr.v("in")[-1] == pytest.approx(-1.0, abs=1e-6)


def test_backward_euler_method_selectable():
    ckt = _rc_step()
    tr = solve_transient(ckt, 4e-4, 2e-6, method="be")
    got = float(np.interp(1e-5 + 1e-4, tr.t, tr.v("out")))
    assert got == pytest.approx(1 - np.exp(-1), abs=0.03)


def test_unknown_method_rejected():
    ckt = _rc_step()
    with pytest.raises(ConvergenceError, match="unknown integration"):
        solve_transient(ckt, 1e-4, 1e-6, method="gear2")


def test_nonlinear_transient_diode_rectifier():
    """A half-wave rectifier clips the negative half cycle."""
    ckt = Circuit()
    ckt.voltage_source("Vin", "in", "0", dc=Sine(0.0, 5.0, 1e3))
    ckt.diode("D1", "in", "out")
    ckt.resistor("RL", "out", "0", 1e3)
    tr = solve_transient(ckt, 2e-3, 2e-6)
    out = tr.v("out")
    assert out.max() > 3.5          # forward peak minus diode drop
    assert out.min() > -0.1         # reverse half clipped near zero


def test_lc_tank_rings_at_resonance():
    """A lightly loaded LC tank rings at f0 (trapezoidal keeps energy).

    The 100 kOhm source resistor leaves the parallel tank with
    Q = R * sqrt(C/L) = 100, so the amplitude barely decays over the
    ten simulated periods and the zero-crossing count pins f0.
    """
    ckt = Circuit()
    ckt.voltage_source("Vexc", "in", "0",
                       dc=Pulse(1.0, 0.0, delay=1e-7, rise=1e-9))
    ckt.resistor("Rsrc", "in", "a", 1e5)
    ckt.inductor("L", "a", "0", 1e-3)
    ckt.capacitor("C", "a", "0", 1e-9)
    f0 = 1.0 / (2 * np.pi * np.sqrt(1e-3 * 1e-9))
    tr = solve_transient(ckt, 10.0 / f0, 1.0 / (f0 * 80))
    v = tr.v("a")
    crossings = np.sum(np.diff(np.sign(v[tr.t > 2e-7])) != 0)
    assert crossings == pytest.approx(20, abs=3)
    # Light damping: the last-period amplitude stays above 70 %.
    last = np.abs(v[tr.t > 8.0 / f0]).max()
    first = np.abs(v).max()
    assert last > 0.7 * first
