"""Parity contract of the batched MNA kernel (`repro.circuit.batch`).

The kernel's promise: a batched analysis equals running the scalar
analysis per instance -- bit for bit for every built-in device except
the diode (whose exponential goes through ``np.exp``), with failures
confined to their own instance via demotion to the scalar path.
"""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    CircuitBatch,
    solve_ac,
    solve_dc,
    solve_dc_batch,
    solve_transient,
)
from repro.circuit import devices as dev
from repro.circuit.dc import DCResult
from repro.errors import AnalysisError, CircuitError, ConvergenceError

#: Exact power-of-two conductance (1/1024 ohm) so the gm-cancellation
#: circuits below are *exactly* singular in float arithmetic.
R_EXACT = 1024.0


def _mosfet_amp(vg, rd=10e3, w=20e-6):
    """A common-source NMOS stage; ``vg`` selects the operating region."""
    ckt = Circuit("cs-amp")
    ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
    ckt.voltage_source("Vg", "g", "0", dc=vg, ac=1.0)
    ckt.resistor("Rd", "vdd", "d", rd)
    ckt.mosfet("M1", "d", "g", "0", kind="n", w=w, l=1e-6)
    ckt.capacitor("Cl", "d", "0", 1e-12)
    return ckt


def _rlc(r, l, c):
    """A driven series RLC (linear: covers R, L, C, source stamps)."""
    ckt = Circuit("rlc")
    ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
    ckt.resistor("R1", "in", "mid", r)
    ckt.inductor("L1", "mid", "out", l)
    ckt.capacitor("C1", "out", "0", c)
    return ckt


def _gm_cancel(gm, cap_node="n"):
    """Resistive divider with a Vccs that can null the node conductance.

    With ``gm = -(1/Rs + 1/Rl)`` (exact, powers of two) node ``n``'s
    self-conductance cancels to exactly zero: singular at DC (and in AC
    when the capacitor sits elsewhere), solvable for any other ``gm``.
    """
    ckt = Circuit("gm-cancel")
    ckt.voltage_source("Vin", "a", "0", dc=1.0, ac=1.0)
    ckt.resistor("Rs", "a", "n", R_EXACT)
    ckt.resistor("Rl", "n", "0", R_EXACT)
    ckt.vccs("Gx", "n", "0", "n", "0", gm)
    ckt.capacitor("Cl", cap_node, "0", 1e-9)
    return ckt


class TestTopologyValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(CircuitError, match="at least one"):
            CircuitBatch([])

    def test_device_count_mismatch_rejected(self):
        a = _rlc(1e3, 1e-3, 1e-9)
        b = _rlc(2e3, 1e-3, 1e-9)
        b.resistor("Rextra", "out", "0", 1e6)
        with pytest.raises(CircuitError, match="topology"):
            CircuitBatch([a, b])

    def test_node_wiring_mismatch_rejected(self):
        a = Circuit("a")
        a.voltage_source("V1", "x", "0", dc=1.0)
        a.resistor("R1", "x", "0", 1e3)
        b = Circuit("b")
        b.voltage_source("V1", "x", "0", dc=1.0)
        b.resistor("R1", "x", "y", 1e3)
        with pytest.raises(CircuitError, match="topology"):
            CircuitBatch([a, b])

    def test_device_name_mismatch_rejected(self):
        a = Circuit("a")
        a.voltage_source("V1", "x", "0", dc=1.0)
        a.resistor("R1", "x", "0", 1e3)
        b = Circuit("b")
        b.voltage_source("V1", "x", "0", dc=1.0)
        b.resistor("R2", "x", "0", 1e3)
        with pytest.raises(CircuitError, match="topology"):
            CircuitBatch([a, b])

    def test_unknown_device_type_rejected(self):
        class Shunt(dev.Device):
            def stamp_static(self, G):
                pass

        ckt = Circuit("custom")
        ckt.voltage_source("V1", "x", "0", dc=1.0)
        ckt.add(Shunt("X1", ("x",)))
        with pytest.raises(CircuitError, match="no stamp recipe"):
            CircuitBatch([ckt])

    def test_builtin_subclass_rejected(self):
        """Subclasses may override stamps; exact types only."""

        class MyResistor(dev.Resistor):
            pass

        ckt = Circuit("sub")
        ckt.voltage_source("V1", "x", "0", dc=1.0)
        ckt.add(MyResistor("R1", "x", "0", 1e3))
        with pytest.raises(CircuitError, match="no stamp recipe"):
            CircuitBatch([ckt])

    def test_unknown_node_rejected(self):
        batch = CircuitBatch([_rlc(1e3, 1e-3, 1e-9)])
        with pytest.raises(CircuitError, match="no node"):
            batch.node_index("nope")


class TestDCParity:
    def test_mosfet_population_bitwise(self):
        """Perturbed MOSFET stages: batched == scalar, bit for bit."""
        rng = np.random.default_rng(5)
        circuits = [_mosfet_amp(1.2 * (1 + rng.uniform(-0.3, 0.3)),
                                rd=10e3 * (1 + rng.uniform(-0.3, 0.3)))
                    for _ in range(8)]
        res = solve_dc_batch(circuits)
        assert all(error is None for error in res.errors)
        for k, circuit in enumerate(circuits):
            scalar = solve_dc(circuit)
            assert np.array_equal(scalar.x, res.x[k])
            assert scalar.iterations == res.iterations[k]

    def test_mixed_operating_regions_masked_newton(self):
        """Cutoff, saturation and triode instances converge at
        different iteration counts; masking freezes each exactly where
        the scalar iteration stops."""
        circuits = [_mosfet_amp(0.2), _mosfet_amp(1.1),
                    _mosfet_amp(4.5, rd=100.0)]
        res = solve_dc_batch(circuits)
        iteration_counts = set()
        for k, circuit in enumerate(circuits):
            scalar = solve_dc(circuit)
            assert np.array_equal(scalar.x, res.x[k])
            assert scalar.iterations == res.iterations[k]
            iteration_counts.add(scalar.iterations)
        assert len(iteration_counts) > 1  # masking actually exercised

    def test_accessors_match_scalar(self):
        circuits = [_mosfet_amp(1.2), _mosfet_amp(1.4)]
        res = solve_dc_batch(circuits)
        for k, circuit in enumerate(circuits):
            scalar = solve_dc(circuit)
            assert res.v("d")[k] == scalar.v("d")
            assert (res.branch_current("Vdd")[k]
                    == scalar.branch_current("Vdd"))
        assert np.all(res.v("0") == 0.0)
        with pytest.raises(ConvergenceError, match="branch-current"):
            res.branch_current("Rd")

    def test_singular_instance_demoted_not_fatal(self):
        """One exactly-singular instance fails alone; peers are
        bit-identical to their scalar solves."""
        good_gm = -1.0 / (8.0 * R_EXACT)
        circuits = [_gm_cancel(good_gm), _gm_cancel(-2.0 / R_EXACT),
                    _gm_cancel(2.0 * good_gm)]
        with pytest.raises(ConvergenceError):
            solve_dc(circuits[1])  # scalar: the instance is hopeless
        res = solve_dc_batch(circuits)
        assert res.errors[0] is None and res.errors[2] is None
        assert isinstance(res.errors[1], ConvergenceError)
        assert not res.ok[1] and np.all(np.isnan(res.x[1]))
        for k in (0, 2):
            assert np.array_equal(solve_dc(circuits[k]).x, res.x[k])

    def test_diode_population_close(self):
        """Diodes ride np.exp: equivalent to 1e-9 relative, and the
        same pass/fail (convergence) outcome."""
        rng = np.random.default_rng(9)
        circuits = []
        for _ in range(5):
            ckt = Circuit("rectifier")
            ckt.voltage_source("Vin", "in", "0",
                               dc=2.0 * (1 + rng.uniform(-0.4, 0.4)))
            ckt.resistor("R1", "in", "out",
                         1e3 * (1 + rng.uniform(-0.4, 0.4)))
            ckt.diode("D1", "out", "0")
            circuits.append(ckt)
        res = solve_dc_batch(circuits)
        assert all(error is None for error in res.errors)
        for k, circuit in enumerate(circuits):
            np.testing.assert_allclose(res.x[k], solve_dc(circuit).x,
                                       rtol=1e-9, atol=0)


class TestACParity:
    FREQS = np.logspace(1, 7, 31)

    def test_rlc_population_bitwise(self):
        rng = np.random.default_rng(11)
        circuits = [_rlc(1e3 * (1 + rng.uniform(-0.5, 0.5)),
                         1e-3 * (1 + rng.uniform(-0.5, 0.5)),
                         1e-9 * (1 + rng.uniform(-0.5, 0.5)))
                    for _ in range(6)]
        batch = CircuitBatch(circuits)
        op = batch.solve_dc()
        ac = batch.solve_ac(self.FREQS, op.x)
        for k, circuit in enumerate(circuits):
            scalar = solve_ac(circuit, self.FREQS, solve_dc(circuit))
            assert np.array_equal(scalar._X, ac._X[k])
            assert np.array_equal(scalar.v("out"), ac.v("out")[k])
            assert np.array_equal(scalar.branch_current("Vin"),
                                  ac.branch_current("Vin")[k])

    def test_mosfet_linearized_bitwise(self):
        circuits = [_mosfet_amp(1.1), _mosfet_amp(1.3)]
        batch = CircuitBatch(circuits)
        op = batch.solve_dc()
        ac = batch.solve_ac(self.FREQS, op.x)
        for k, circuit in enumerate(circuits):
            scalar = solve_ac(circuit, self.FREQS, solve_dc(circuit))
            assert np.array_equal(scalar._X, ac._X[k])

    def test_chunking_never_changes_values(self, monkeypatch):
        """Tiny stacking chunks (many stacked solves) == one chunk."""
        from repro.circuit import batch as batch_mod

        circuits = [_rlc(1e3, 1e-3, 1e-9), _rlc(2e3, 2e-3, 2e-9)]
        batch = CircuitBatch(circuits)
        op = batch.solve_dc()
        reference = batch.solve_ac(self.FREQS, op.x)._X.copy()
        monkeypatch.setattr(batch_mod, "AC_CHUNK_ENTRIES", 1)
        tiny = CircuitBatch(circuits)
        res = tiny.solve_ac(self.FREQS, tiny.solve_dc().x)
        assert np.array_equal(res._X, reference)

    def test_singular_instance_demoted_not_fatal(self):
        """An all-frequency-singular instance gets the scalar error
        message; its peers stay bit-identical."""
        circuits = [_gm_cancel(-1.0 / (8.0 * R_EXACT), cap_node="a"),
                    _gm_cancel(-2.0 / R_EXACT, cap_node="a"),
                    _gm_cancel(-1.0 / (4.0 * R_EXACT), cap_node="a")]
        batch = CircuitBatch(circuits)
        x_op = np.zeros((3, batch.n_unknowns))
        res = batch.solve_ac(self.FREQS, x_op)
        assert isinstance(res.errors[1], AnalysisError)
        assert "singular AC system" in str(res.errors[1])
        assert not res.ok[1]
        for k in (0, 2):
            op = DCResult(circuits[k], np.zeros(batch.n_unknowns), 0)
            scalar = solve_ac(circuits[k], self.FREQS, op)
            assert np.array_equal(scalar._X, res._X[k])

    def test_nan_operating_point_recorded_not_silently_solved(self):
        """Feeding solve_ac the x stack of a batch whose DC partially
        failed must surface per-instance errors, not NaN phasors with
        ok=True (LAPACK does not flag NaN systems as singular)."""
        circuits = [_mosfet_amp(1.1), _mosfet_amp(1.2)]
        batch = CircuitBatch(circuits)
        x_op = batch.solve_dc().x.copy()
        x_op[1] = np.nan  # as if instance 1's DC had failed
        res = batch.solve_ac(self.FREQS, x_op)
        assert res.ok[0] and not res.ok[1]
        assert isinstance(res.errors[1], AnalysisError)
        assert "operating point" in str(res.errors[1])
        assert np.all(np.isnan(res._X[1]))
        scalar = solve_ac(circuits[0], self.FREQS, solve_dc(circuits[0]))
        assert np.array_equal(scalar._X, res._X[0])

    def test_input_validation_matches_scalar(self):
        batch = CircuitBatch([_rlc(1e3, 1e-3, 1e-9)])
        x_op = np.zeros((1, batch.n_unknowns))
        with pytest.raises(AnalysisError, match="at least one"):
            batch.solve_ac([], x_op)
        with pytest.raises(AnalysisError, match="positive"):
            batch.solve_ac([-1.0], x_op)


class TestTransientParity:
    def test_pulsed_rlc_population_bitwise(self):
        rng = np.random.default_rng(13)
        circuits = []
        for _ in range(5):
            ckt = Circuit("pulse-rlc")
            ckt.voltage_source(
                "Vin", "in", "0",
                dc=dev.Pulse(0.0, 1.0, delay=1e-7, rise=1e-8))
            ckt.resistor("R1", "in", "out",
                         1e3 * (1 + rng.uniform(-0.5, 0.5)))
            ckt.capacitor("C1", "out", "0",
                          1e-9 * (1 + rng.uniform(-0.5, 0.5)))
            ckt.inductor("L1", "out", "0",
                         1e-2 * (1 + rng.uniform(-0.5, 0.5)))
            circuits.append(ckt)
        batch = CircuitBatch(circuits)
        for method in ("trap", "be"):
            res = batch.solve_transient(2e-6, 1e-8, method=method)
            assert all(error is None for error in res.errors)
            for k, circuit in enumerate(circuits):
                scalar = solve_transient(circuit, 2e-6, 1e-8,
                                         method=method)
                assert np.array_equal(scalar._X, res._X[k])
                assert np.array_equal(scalar.t, res.t)

    def test_nonlinear_population_bitwise(self):
        circuits = [_mosfet_amp(1.0), _mosfet_amp(1.3),
                    _mosfet_amp(0.4)]
        for circuit in circuits:
            circuit.device("Vg").wave = dev.Pulse(
                circuit.device("Vg").wave.dc,
                circuit.device("Vg").wave.dc + 0.3,
                delay=5e-8, rise=1e-8)
        batch = CircuitBatch(circuits)
        res = batch.solve_transient(1e-6, 5e-9)
        assert all(error is None for error in res.errors)
        for k, circuit in enumerate(circuits):
            scalar = solve_transient(circuit, 1e-6, 5e-9)
            assert np.array_equal(scalar._X, res._X[k])

    def test_step_failure_demotes_to_scalar_outcome(self):
        """An instance whose trapezoidal step is exactly singular is
        demoted to the scalar integrator, which replays its halving
        retries and ultimately gives up -- so the batch records that
        instance's scalar ConvergenceError while its peers integrate
        on, bit-identical to their own scalar runs."""
        dt = 2.0 ** -10
        c = 2.0 ** -30
        g2 = 2.0 / R_EXACT            # Rs || Rl self-conductance, exact
        geq_trap = 2.0 * c / dt       # 2^-19, exact

        def make(gm):
            ckt = Circuit("trap-singular")
            ckt.voltage_source("Vin", "a", "0",
                               dc=dev.Pulse(0.5, 1.0, delay=2 * dt,
                                            rise=dt))
            ckt.resistor("Rs", "a", "n", R_EXACT)
            ckt.resistor("Rl", "n", "0", R_EXACT)
            ckt.vccs("Gx", "n", "0", "n", "0", gm)
            ckt.capacitor("Cl", "n", "0", c)
            return ckt

        singular_gm = -(g2 + geq_trap)
        circuits = [make(-g2 / 8.0), make(singular_gm),
                    make(-g2 / 4.0)]
        res = CircuitBatch(circuits).solve_transient(8 * dt, dt)
        with pytest.raises(ConvergenceError, match="halvings"):
            solve_transient(circuits[1], 8 * dt, dt)
        assert isinstance(res.errors[1], ConvergenceError)
        assert "halvings" in str(res.errors[1])
        assert not res.ok[1] and np.all(np.isnan(res._X[1]))
        for k in (0, 2):
            assert res.errors[k] is None
            scalar = solve_transient(circuits[k], 8 * dt, dt)
            assert np.array_equal(scalar._X, res._X[k])

    def test_method_validated(self):
        batch = CircuitBatch([_rlc(1e3, 1e-3, 1e-9)])
        with pytest.raises(ConvergenceError, match="integration method"):
            batch.solve_transient(1e-6, 1e-8, method="euler")


class TestActiveSubsets:
    def test_inactive_rows_stay_nan(self):
        circuits = [_mosfet_amp(1.1), _mosfet_amp(1.2),
                    _mosfet_amp(1.3)]
        batch = CircuitBatch(circuits)
        res = batch.solve_dc(active=[0, 2])
        assert res.ok[0] and not res.ok[1] and res.ok[2]
        assert np.all(np.isnan(res.x[1]))
        assert res.errors[1] is None
        for k in (0, 2):
            assert np.array_equal(solve_dc(circuits[k]).x, res.x[k])

    def test_boolean_mask_accepted(self):
        circuits = [_rlc(1e3, 1e-3, 1e-9), _rlc(2e3, 1e-3, 1e-9)]
        batch = CircuitBatch(circuits)
        res = batch.solve_dc(active=np.array([False, True]))
        assert not res.ok[0] and res.ok[1]
