"""Device-model unit tests: waveforms and MOSFET physics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.devices import (
    Dc, Diode, Mosfet, Pulse, Pwl, Sine, Waveform, _as_waveform,
)
from repro.errors import CircuitError


class TestWaveforms:
    def test_dc_constant(self):
        w = Dc(3.3)
        assert w.dc == 3.3
        assert w.at(0.0) == 3.3
        assert w.at(1e9) == 3.3

    def test_as_waveform_coerces_numbers(self):
        w = _as_waveform(5)
        assert isinstance(w, Waveform)
        assert w.at(1.0) == 5.0
        assert _as_waveform(w) is w

    def test_pulse_shape(self):
        p = Pulse(0.0, 1.0, delay=1e-6, rise=1e-7, fall=1e-7, width=1e-6)
        assert p.at(0.0) == 0.0
        assert p.at(1e-6) == 0.0
        assert p.at(1.05e-6) == pytest.approx(0.5)
        assert p.at(1.5e-6) == 1.0
        assert p.at(2.15e-6) == pytest.approx(0.5)
        assert p.at(5e-6) == 0.0

    def test_pulse_periodic(self):
        p = Pulse(0.0, 1.0, delay=0.0, rise=1e-9, fall=1e-9, width=0.5e-6,
                  period=1e-6)
        assert p.at(0.25e-6) == 1.0
        assert p.at(0.75e-6) == 0.0
        assert p.at(1.25e-6) == 1.0

    def test_pulse_rejects_zero_edges(self):
        with pytest.raises(CircuitError, match="positive"):
            Pulse(0, 1, rise=0.0)

    def test_sine_value_and_delay(self):
        s = Sine(1.0, 0.5, 1e3, delay=1e-3)
        assert s.at(0.5e-3) == 1.0  # before delay: offset
        assert s.at(1e-3 + 0.25e-3) == pytest.approx(1.5)

    def test_pwl_interpolation_and_validation(self):
        w = Pwl([0, 1, 2], [0.0, 10.0, 0.0])
        assert w.at(0.5) == pytest.approx(5.0)
        assert w.at(5.0) == 0.0  # clamps to last value
        with pytest.raises(CircuitError, match="increasing"):
            Pwl([0, 0, 1], [1, 2, 3])
        with pytest.raises(CircuitError):
            Pwl([0], [1])


def _x_for(m, vd, vg, vs):
    """Build a solution vector for a bound 3-node MOSFET."""
    x = np.zeros(3)
    d, g, s = m.nodes
    for idx, v in ((d, vd), (g, vg), (s, vs)):
        if idx >= 0:
            x[idx] = v
    return x


def _bound_mosfet(**kw):
    m = Mosfet("M", "d", "g", "s", **kw)
    m.bind((0, 1, 2), 3)
    return m


class TestMosfetModel:
    def test_cutoff_has_zero_current(self):
        m = _bound_mosfet(kind="n", vth=1.0)
        idd, gm, gds = m.evaluate(_x_for(m, 5.0, 0.5, 0.0))
        assert idd == 0.0
        assert gm == 0.0

    def test_saturation_square_law(self):
        m = _bound_mosfet(kind="n", w=10e-6, l=1e-6, kp=100e-6, vth=1.0,
                          lam=0.0)
        idd, gm, gds = m.evaluate(_x_for(m, 5.0, 2.0, 0.0))
        beta = 1e-3
        assert idd == pytest.approx(0.5 * beta * 1.0)
        assert gm == pytest.approx(beta * 1.0)

    def test_pmos_mirrors_nmos(self):
        mn = _bound_mosfet(kind="n", vth=1.0, lam=0.0)
        mp = _bound_mosfet(kind="p", vth=1.0, lam=0.0)
        id_n, gm_n, gds_n = mn.evaluate(_x_for(mn, 3.0, 2.0, 0.0))
        id_p, gm_p, gds_p = mp.evaluate(_x_for(mp, 2.0, 3.0, 5.0))
        assert id_p == pytest.approx(-id_n)
        assert gm_p == pytest.approx(gm_n)
        assert gds_p == pytest.approx(gds_n)

    def test_drain_source_symmetry(self):
        """Swapping drain and source negates the current."""
        m = _bound_mosfet(kind="n", vth=0.7, lam=0.05)
        id_fwd, _, _ = m.evaluate(_x_for(m, 2.0, 3.0, 1.0))
        id_rev, _, _ = m.evaluate(_x_for(m, 1.0, 3.0, 2.0))
        assert id_rev == pytest.approx(-id_fwd, rel=1e-9)

    @given(vg=st.floats(0.0, 5.0), vd=st.floats(0.0, 5.0),
           lam=st.floats(0.0, 0.2))
    @settings(max_examples=80, deadline=None)
    def test_derivatives_match_finite_differences(self, vg, vd, lam):
        """gm and gds agree with numerical differentiation of Id."""
        m = _bound_mosfet(kind="n", vth=0.8, lam=lam)
        x = _x_for(m, vd, vg, 0.0)
        idd, gm, gds = m.evaluate(x)
        h = 1e-7
        id_gp, _, _ = m.evaluate(_x_for(m, vd, vg + h, 0.0))
        id_dp, _, _ = m.evaluate(_x_for(m, vd + h, vg, 0.0))
        gm_fd = (id_gp - idd) / h
        gds_fd = (id_dp - idd) / h
        assert gm == pytest.approx(gm_fd, rel=1e-3, abs=1e-7)
        assert gds == pytest.approx(gds_fd, rel=1e-3, abs=1e-7)

    @given(vg=st.floats(0.0, 5.0), vd1=st.floats(0.0, 5.0),
           vd2=st.floats(0.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_current_monotone_in_vds(self, vg, vd1, vd2):
        """Drain current is non-decreasing in vds (NMOS, vs=0)."""
        m = _bound_mosfet(kind="n", vth=0.8, lam=0.05)
        lo, hi = sorted((vd1, vd2))
        id_lo, _, _ = m.evaluate(_x_for(m, lo, vg, 0.0))
        id_hi, _, _ = m.evaluate(_x_for(m, hi, vg, 0.0))
        assert id_hi >= id_lo - 1e-12

    def test_invalid_kind_rejected(self):
        with pytest.raises(CircuitError, match="kind"):
            Mosfet("M", "d", "g", "s", kind="x")

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(CircuitError, match="positive"):
            Mosfet("M", "d", "g", "s", w=-1e-6)


class TestDiodeModel:
    def test_current_positive_forward(self):
        d = Diode("D", "a", "0")
        d.bind((0, -1), 1)
        G = np.zeros((1, 1))
        b = np.zeros(1)
        d.stamp_nonlinear(G, b, np.array([0.6]))
        # Conductance stamped positive at (a, a).
        assert G[0, 0] > 0

    def test_limits_large_forward_voltage(self):
        """Voltage limiting prevents exp overflow."""
        d = Diode("D", "a", "0")
        d.bind((0, -1), 1)
        G = np.zeros((1, 1))
        b = np.zeros(1)
        d.stamp_nonlinear(G, b, np.array([100.0]))  # must not overflow
        assert np.isfinite(G[0, 0])
        assert np.isfinite(b[0])
