"""Op-amp specification-measurement tests (one real simulation)."""

import numpy as np
import pytest

from repro.opamp import (
    OPAMP_SPECIFICATIONS, OpAmpBench, OpAmpParameters, measure_opamp,
)


@pytest.fixture(scope="module")
def nominal_measurements():
    """Measure the nominal design once for the whole module (slow-ish)."""
    return measure_opamp()


class TestNominalMeasurements:
    def test_all_eleven_specs_measured(self, nominal_measurements):
        assert set(nominal_measurements) == set(OPAMP_SPECIFICATIONS.names)

    def test_nominal_design_passes_every_range(self, nominal_measurements):
        for spec in OPAMP_SPECIFICATIONS:
            value = nominal_measurements[spec.name]
            assert spec.contains(value), (
                "{} = {} outside [{}, {}]".format(
                    spec.name, value, spec.low, spec.high))

    def test_values_near_recorded_nominals(self, nominal_measurements):
        """Within 15 % of the nominals hard-coded in the spec table."""
        for spec in OPAMP_SPECIFICATIONS:
            if spec.name == "overshoot":
                continue  # near-zero nominal: relative check meaningless
            value = nominal_measurements[spec.name]
            assert value == pytest.approx(spec.nominal, rel=0.15)

    def test_gain_bandwidth_consistency(self, nominal_measurements):
        """UGF ~ gain x BW for a dominant-pole amplifier."""
        gbw = (nominal_measurements["gain"]
               * nominal_measurements["bw_3db"] / 1e6)
        assert gbw == pytest.approx(nominal_measurements["ugf"], rel=0.3)

    def test_rise_time_consistent_with_slew(self, nominal_measurements):
        """The 0.2 V small step is partially slew-limited; its 10-90 rise
        cannot be faster than the pure-slew bound."""
        sr = nominal_measurements["slew_rate"]  # V/us
        bound_ns = 0.8 * 0.2 / sr * 1e3
        assert nominal_measurements["rise_time"] >= 0.5 * bound_ns


class TestBenchProtocol:
    def test_sample_parameters_respects_spread(self):
        bench = OpAmpBench(relative_spread=0.05)
        rng = np.random.default_rng(0)
        p = bench.sample_parameters(rng)
        assert 0.95 <= p.w1 / OpAmpParameters().w1 <= 1.05

    def test_measure_vector_aligned_with_specs(self, nominal_measurements):
        bench = OpAmpBench()
        row = bench.measure(OpAmpParameters())
        assert row.shape == (len(OPAMP_SPECIFICATIONS),)
        for i, name in enumerate(bench.specifications.names):
            assert row[i] == pytest.approx(nominal_measurements[name],
                                           rel=1e-9)

    def test_small_dataset_generation(self):
        bench = OpAmpBench()
        ds = bench.generate_dataset(8, seed=123)
        assert len(ds) == 8
        assert ds.names == OPAMP_SPECIFICATIONS.names
        assert np.all(np.isfinite(ds.values))
