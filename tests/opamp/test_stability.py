"""Op-amp stability diagnostic tests."""

import pytest

from repro.opamp import OpAmpParameters, measure_stability
from dataclasses import replace


class TestStability:
    def test_nominal_phase_margin_healthy(self):
        diag = measure_stability()
        assert 50.0 < diag["phase_margin_deg"] < 90.0

    def test_gain_margin_positive(self):
        diag = measure_stability()
        assert diag["gain_margin_db"] > 0.0

    def test_smaller_compensation_reduces_phase_margin(self):
        """Shrinking Cc pushes the UGF toward the second pole."""
        nominal = measure_stability(OpAmpParameters())
        small_cc = measure_stability(
            replace(OpAmpParameters(), cc=OpAmpParameters().cc / 3))
        assert (small_cc["phase_margin_deg"]
                < nominal["phase_margin_deg"])

    def test_heavier_load_reduces_phase_margin(self):
        """More load capacitance lowers the output pole."""
        nominal = measure_stability(OpAmpParameters())
        heavy = measure_stability(
            replace(OpAmpParameters(), cl=OpAmpParameters().cl * 4))
        assert heavy["phase_margin_deg"] < nominal["phase_margin_deg"]
