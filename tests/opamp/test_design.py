"""Op-amp design / parameter tests."""

import numpy as np
import pytest

from repro.circuit import Circuit, solve_dc
from repro.errors import CircuitError
from repro.opamp import OpAmpParameters, build_opamp


class TestParameters:
    def test_defaults_validate(self):
        OpAmpParameters().validate()

    def test_negative_value_rejected(self):
        params = OpAmpParameters(cc=-1e-12)
        with pytest.raises(CircuitError, match="positive"):
            params.validate()

    def test_perturbed_within_spread(self):
        nominal = OpAmpParameters()
        rng = np.random.default_rng(0)
        for _ in range(10):
            p = nominal.perturbed(rng, relative_spread=0.1)
            for name in OpAmpParameters.VARIED:
                ratio = getattr(p, name) / getattr(nominal, name)
                assert 0.9 <= ratio <= 1.1
            # Testbench parameters are not varied.
            assert p.vdd == nominal.vdd
            assert p.cl == nominal.cl

    def test_perturbed_deterministic_per_seed(self):
        nominal = OpAmpParameters()
        a = nominal.perturbed(np.random.default_rng(5))
        b = nominal.perturbed(np.random.default_rng(5))
        assert a == b

    def test_as_dict_roundtrip(self):
        params = OpAmpParameters()
        d = params.as_dict()
        assert d["w1"] == params.w1
        assert OpAmpParameters(**d) == params


class TestNetlist:
    def test_build_adds_expected_devices(self):
        ckt = Circuit()
        ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
        ckt.voltage_source("Vin", "inp", "0", dc=2.5)
        build_opamp(ckt, OpAmpParameters(), "inp", "out", "out", "vdd")
        for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8",
                     "Rbias", "Rz", "Cc"):
            assert name in ckt

    def test_prefix_allows_two_amplifiers(self):
        ckt = Circuit()
        ckt.voltage_source("Vdd", "vdd", "0", dc=5.0)
        params = OpAmpParameters()
        build_opamp(ckt, params, "a_in", "a_out", "a_out", "vdd",
                    prefix="a_")
        build_opamp(ckt, params, "b_in", "b_out", "b_out", "vdd",
                    prefix="b_")
        assert "a_M1" in ckt and "b_M1" in ckt

    def test_unity_gain_bias_point_all_saturated(self):
        """In unity feedback every transistor sits in saturation."""
        ckt = Circuit()
        params = OpAmpParameters()
        ckt.voltage_source("Vdd", "vdd", "0", dc=params.vdd)
        ckt.voltage_source("Vin", "inp", "0", dc=2.5)
        build_opamp(ckt, params, "inp", "out", "out", "vdd")
        op = solve_dc(ckt)
        for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"):
            assert ckt.device(name).operating_region(op.x) == "saturation"
        # The follower output tracks the input closely.
        assert op.v("out") == pytest.approx(2.5, abs=0.01)
