"""High-level pipeline facade tests."""

import pytest

from repro.core.pipeline import CompactionPipeline, \
    compact_specification_tests
from repro.errors import CompactionError
from repro.learn import SVC

from tests.synthetic import SyntheticDut, make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


class TestCompactionPipeline:
    def test_run_matches_direct_compactor(self, synthetic_train,
                                          synthetic_test):
        pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.05,
                                      model_factory=_fixed_factory)
        result = pipeline.run(synthetic_train, synthetic_test)
        direct = compact_specification_tests(
            synthetic_train, synthetic_test, tolerance=0.02,
            guard_band=0.05, model_factory=_fixed_factory)
        assert result.eliminated == direct.eliminated
        assert result.kept == direct.kept

    def test_grid_resolution_configures_compactor(self, synthetic_train,
                                                  synthetic_test):
        pipeline = CompactionPipeline(tolerance=0.05, guard_band=0.05,
                                      grid_resolution=6,
                                      model_factory=_fixed_factory)
        assert pipeline.compactor.grid_compactor is not None
        assert pipeline.compactor.grid_compactor.resolution == 6
        result = pipeline.run(synthetic_train, synthetic_test)
        assert result.final_report.error_rate <= 0.05 + 1e-9

    def test_evaluate_elimination_passthrough(self, synthetic_train,
                                              synthetic_test):
        pipeline = CompactionPipeline(guard_band=0.05,
                                      model_factory=_fixed_factory)
        model, report = pipeline.evaluate_elimination(
            synthetic_train, synthetic_test, ["s5"])
        assert "s5" not in model.feature_names
        assert report.n_total == len(synthetic_test)

    def test_run_simulated_end_to_end(self):
        """Fig. 1 end to end: populations simulated, then compacted —
        identical at any sim_jobs (the generation engine's contract)."""
        dut = SyntheticDut()
        pipeline = CompactionPipeline(tolerance=0.05, guard_band=0.05,
                                      model_factory=_fixed_factory)
        serial = pipeline.run_simulated(dut, 120, 80, seed=4)
        parallel = pipeline.run_simulated(dut, 120, 80, seed=4,
                                          sim_jobs=2)
        assert serial.eliminated == parallel.eliminated
        assert serial.final_report == parallel.final_report


class TestFunctionEntryPoint:
    def test_empty_datasets_rejected(self, synthetic_train):
        empty = make_synthetic_dataset(n=1).subset([])
        with pytest.raises(CompactionError, match="non-empty"):
            compact_specification_tests(empty, synthetic_train)
        with pytest.raises(CompactionError, match="non-empty"):
            compact_specification_tests(synthetic_train, empty)

    def test_result_is_self_consistent(self, synthetic_train,
                                       synthetic_test):
        result = compact_specification_tests(
            synthetic_train, synthetic_test, tolerance=0.02,
            model_factory=_fixed_factory)
        assert result.tolerance == 0.02
        assert result.model.feature_names == result.kept
        assert set(result.model.eliminated_names) == set(result.eliminated)
