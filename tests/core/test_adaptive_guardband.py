"""Distribution-based guard band tests (paper future work)."""

import numpy as np
import pytest

from repro.core.guardband import (
    GuardBandedClassifier, distribution_guard_deltas,
)
from repro.core.metrics import GUARD
from repro.errors import CompactionError
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


class TestDistributionGuardDeltas:
    def test_returns_delta_per_spec(self, synthetic_train):
        deltas = distribution_guard_deltas(synthetic_train,
                                           target_fraction=0.05)
        assert set(deltas) == set(synthetic_train.names)
        assert all(0.0 < d <= 0.2 for d in deltas.values())

    def test_wider_target_wider_bands(self, synthetic_train):
        narrow = distribution_guard_deltas(synthetic_train, 0.02)
        wide = distribution_guard_deltas(synthetic_train, 0.20)
        for name in synthetic_train.names:
            assert wide[name] >= narrow[name]

    def test_bands_cover_target_fraction(self, synthetic_train):
        """Each per-spec band contains roughly the target share."""
        target = 0.10
        deltas = distribution_guard_deltas(
            synthetic_train, target, min_delta=0.0, max_delta=1.0)
        Z = synthetic_train.normalized_values()
        for j, name in enumerate(synthetic_train.names):
            d = np.minimum(np.abs(Z[:, j]), np.abs(Z[:, j] - 1.0))
            covered = np.mean(d <= deltas[name])
            assert covered == pytest.approx(target, abs=0.05)

    def test_spec_far_from_boundary_gets_min_delta(self):
        """A spec whose population never approaches its limits clamps."""
        ds = make_synthetic_dataset(n=300, range_width=50.0)
        deltas = distribution_guard_deltas(ds, 0.05, min_delta=0.01)
        # Huge ranges: everything sits mid-range, so the quantile is
        # large and the clamp at max_delta applies instead; verify the
        # clamping bounds hold either way.
        assert all(0.01 <= d <= 0.2 for d in deltas.values())

    def test_validation(self, synthetic_train):
        with pytest.raises(CompactionError):
            distribution_guard_deltas(synthetic_train, 0.0)
        with pytest.raises(CompactionError):
            distribution_guard_deltas(synthetic_train, 1.0)


class TestPerSpecGuardBand:
    def test_dict_delta_accepted_and_used(self, synthetic_train):
        deltas = {name: 0.05 for name in synthetic_train.names}
        model = GuardBandedClassifier(
            synthetic_train.names[:4], delta=deltas,
            model_factory=_fixed_factory)
        model.fit(synthetic_train)
        pred = model.predict_dataset(synthetic_train)
        assert set(np.unique(pred)) <= {-1, 0, 1}

    def test_dict_matches_equivalent_scalar(self, synthetic_train):
        scalar = GuardBandedClassifier(
            synthetic_train.names[:4], delta=0.05,
            model_factory=_fixed_factory).fit(synthetic_train)
        uniform = GuardBandedClassifier(
            synthetic_train.names[:4],
            delta={n: 0.05 for n in synthetic_train.names},
            model_factory=_fixed_factory).fit(synthetic_train)
        a = scalar.predict_dataset(synthetic_train)
        b = uniform.predict_dataset(synthetic_train)
        assert np.array_equal(a, b)

    def test_zero_dict_never_guards(self, synthetic_train):
        model = GuardBandedClassifier(
            synthetic_train.names[:4],
            delta={n: 0.0 for n in synthetic_train.names},
            model_factory=_fixed_factory).fit(synthetic_train)
        assert GUARD not in model.predict_dataset(synthetic_train)

    def test_missing_spec_in_dict_rejected(self, synthetic_train):
        model = GuardBandedClassifier(
            synthetic_train.names[:4], delta={"s0": 0.05},
            model_factory=_fixed_factory)
        with pytest.raises(CompactionError, match="no guard-band delta"):
            model.fit(synthetic_train)

    def test_negative_dict_delta_rejected(self):
        with pytest.raises(CompactionError):
            GuardBandedClassifier(["s0"], delta={"s0": -0.1})

    def test_distribution_deltas_plug_into_classifier(self,
                                                      synthetic_train):
        deltas = distribution_guard_deltas(synthetic_train, 0.05)
        model = GuardBandedClassifier(
            synthetic_train.names[:5], delta=deltas,
            model_factory=_fixed_factory).fit(synthetic_train)
        pred = model.predict_dataset(synthetic_train)
        confident = pred != GUARD
        # Confident predictions stay nearly error free.
        errors = np.mean(pred[confident] != synthetic_train.labels[confident])
        assert errors < 0.05
