"""Grid training-data compaction tests (paper Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grid import GridCompactor
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError


def _clustered_data(seed=0, n=300):
    """Two well-separated clusters -> mostly pure cells."""
    rng = np.random.default_rng(seed)
    X_good = rng.uniform(0.1, 0.4, (n // 2, 2))
    X_bad = rng.uniform(0.6, 0.9, (n // 2, 2))
    X = np.vstack([X_good, X_bad])
    y = np.r_[np.full(n // 2, GOOD), np.full(n // 2, BAD)]
    return X, y


class TestGridCompactor:
    def test_pure_cells_merge_to_centers(self):
        X, y = _clustered_data()
        Xc, yc, info = GridCompactor(resolution=4).compact(X, y)
        assert Xc.shape[0] < X.shape[0]
        assert info["compression"] < 0.5
        assert info["n_mixed_cells"] + info["n_pure_cells"] == info["n_cells"]

    def test_mixed_cells_keep_raw_instances(self):
        # Everything in one cell, both classes present.
        X = np.array([[0.1, 0.1], [0.2, 0.2], [0.15, 0.12]])
        y = np.array([GOOD, BAD, GOOD])
        Xc, yc, info = GridCompactor(resolution=1).compact(X, y)
        assert Xc.shape[0] == 3
        assert info["n_mixed_cells"] == 1

    def test_single_pure_cell_becomes_one_center(self):
        X = np.array([[0.1, 0.1], [0.2, 0.2]])
        y = np.array([GOOD, GOOD])
        Xc, yc, _ = GridCompactor(resolution=1).compact(X, y)
        assert Xc.shape[0] == 1
        assert yc[0] == GOOD
        assert np.allclose(Xc[0], [0.5, 0.5])  # cell center

    def test_out_of_range_values_handled(self):
        X = np.array([[-0.5, 0.5], [1.5, 0.5]])
        y = np.array([BAD, BAD])
        Xc, yc, info = GridCompactor(resolution=4).compact(X, y)
        assert Xc.shape[0] == 2  # two distinct outer cells, both pure
        assert np.all(yc == BAD)

    @given(seed=st.integers(0, 50), res=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_compaction_invariants(self, seed, res):
        """Output never exceeds input; labels stay in {-1, +1};
        class presence is preserved."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        X = rng.uniform(-0.2, 1.2, (n, 3))
        y = rng.choice([GOOD, BAD], n)
        Xc, yc, info = GridCompactor(resolution=res).compact(X, y)
        assert Xc.shape[0] <= n
        assert set(np.unique(yc)) <= {GOOD, BAD}
        # Classes present in the input remain present in the output.
        for cls in np.unique(y):
            assert cls in yc
        assert 0.0 < info["compression"] <= 1.0

    @given(seed=st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_compacted_labels_consistent_per_cell(self, seed):
        """A center instance label equals the label of its source cell."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, (60, 2))
        y = np.where(X[:, 0] < 0.5, GOOD, BAD)  # axis-aligned split
        grid = GridCompactor(resolution=2)
        Xc, yc, info = grid.compact(X, y)
        # resolution 2 aligns with the split: every cell is pure.
        assert info["n_mixed_cells"] == 0
        assert np.array_equal(yc, np.where(Xc[:, 0] < 0.5, GOOD, BAD))

    def test_cell_indices_and_centers_inverse(self):
        grid = GridCompactor(resolution=8)
        cells = grid.cell_indices(np.array([[0.0, 0.99], [0.5, 0.5]]))
        assert cells[0].tolist() == [0, 7]
        center = grid.cell_center(np.array([0, 7]))
        assert grid.cell_indices(center[None, :])[0].tolist() == [0, 7]

    def test_validation(self):
        with pytest.raises(CompactionError):
            GridCompactor(0)
        grid = GridCompactor(4)
        with pytest.raises(CompactionError):
            grid.compact(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(CompactionError):
            grid.compact(np.zeros((3, 2)), np.array([1, 1]))
        with pytest.raises(CompactionError):
            grid.compact(np.zeros((2, 2)), np.array([0, 1]))
