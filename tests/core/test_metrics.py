"""Yield-loss / defect-escape metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import GUARD, evaluate_predictions
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError


class TestEvaluatePredictions:
    def test_perfect_prediction(self):
        y = np.array([GOOD, BAD, GOOD])
        rep = evaluate_predictions(y, y)
        assert rep.error_rate == 0.0
        assert rep.yield_loss_rate == 0.0
        assert rep.defect_escape_rate == 0.0
        assert rep.guard_rate == 0.0
        assert rep.accuracy == 1.0

    def test_counts(self):
        y = np.array([GOOD, GOOD, BAD, BAD, GOOD, BAD])
        p = np.array([BAD, GOOD, GOOD, BAD, GUARD, GUARD])
        rep = evaluate_predictions(y, p)
        assert rep.n_total == 6
        assert rep.n_yield_loss == 1      # good predicted bad
        assert rep.n_defect_escape == 1   # bad predicted good
        assert rep.n_guard == 2
        assert rep.n_guard_good == 1
        assert rep.n_guard_bad == 1
        assert rep.yield_loss_rate == pytest.approx(1 / 6)
        assert rep.error_rate == pytest.approx(2 / 6)

    def test_guard_devices_not_errors(self):
        y = np.array([GOOD, BAD])
        p = np.array([GUARD, GUARD])
        rep = evaluate_predictions(y, p)
        assert rep.error_rate == 0.0
        assert rep.guard_rate == 1.0
        assert rep.accuracy == 1.0  # no confident predictions, no errors

    @given(n=st.integers(1, 200), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_identities_hold(self, n, seed):
        """YL + DE = error; YL <= good fraction; DE <= bad fraction."""
        rng = np.random.default_rng(seed)
        y = rng.choice([GOOD, BAD], n)
        p = rng.choice([GOOD, BAD, GUARD], n)
        rep = evaluate_predictions(y, p)
        assert rep.error_rate == pytest.approx(
            rep.yield_loss_rate + rep.defect_escape_rate)
        assert rep.n_yield_loss <= rep.n_good
        assert rep.n_defect_escape <= rep.n_bad
        assert rep.n_guard_good + rep.n_guard_bad == rep.n_guard
        assert rep.n_good + rep.n_bad == rep.n_total
        assert 0.0 <= rep.accuracy <= 1.0

    def test_summary_format(self):
        y = np.array([GOOD, BAD])
        rep = evaluate_predictions(y, np.array([GOOD, GOOD]))
        text = rep.summary()
        assert "yield loss" in text and "defect escape" in text

    def test_validation(self):
        with pytest.raises(CompactionError):
            evaluate_predictions(np.array([1]), np.array([1, 1]))
        with pytest.raises(CompactionError):
            evaluate_predictions(np.array([]), np.array([]))
        with pytest.raises(CompactionError):
            evaluate_predictions(np.array([2]), np.array([1]))
        with pytest.raises(CompactionError):
            evaluate_predictions(np.array([1]), np.array([5]))
