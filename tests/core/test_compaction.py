"""Greedy test-set compaction loop tests (paper Fig. 2)."""

import numpy as np
import pytest

from repro.core.compaction import TestCompactor as Compactor
from repro.core.grid import GridCompactor
from repro.core.metrics import GUARD
from repro.core.ordering import RandomOrder
from repro.errors import CompactionError
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


def _compactor(**kw):
    kw.setdefault("model_factory", _fixed_factory)
    kw.setdefault("tolerance", 0.02)
    kw.setdefault("guard_band", 0.05)
    return Compactor(**kw)


class TestGreedyLoop:
    def test_redundant_specs_eliminated(self, synthetic_train,
                                        synthetic_test):
        """6 specs from 3 latent dims: at least one is redundant."""
        result = _compactor().run(synthetic_train, synthetic_test)
        assert len(result.eliminated) >= 1
        assert set(result.kept) | set(result.eliminated) == \
            set(synthetic_train.names)
        assert set(result.kept) & set(result.eliminated) == set()

    def test_final_error_within_tolerance(self, synthetic_train,
                                          synthetic_test):
        result = _compactor().run(synthetic_train, synthetic_test)
        assert result.final_report.error_rate <= 0.02 + 1e-9

    def test_zero_tolerance_demands_perfection(self, noisy_train,
                                               noisy_test):
        """Noisy redundancy + zero tolerance: very little elimination."""
        strict = _compactor(tolerance=0.0).run(noisy_train, noisy_test)
        loose = _compactor(tolerance=0.10).run(noisy_train, noisy_test)
        assert len(strict.eliminated) <= len(loose.eliminated)

    def test_steps_recorded_for_every_examined_test(self, synthetic_train,
                                                    synthetic_test):
        result = _compactor().run(synthetic_train, synthetic_test)
        examined = [s.test_name for s in result.steps]
        assert examined == list(result.order)[:len(examined)]
        for step in result.steps:
            assert step.report.n_total == len(synthetic_test)
            if step.eliminated:
                assert step.test_name in step.eliminated_so_far

    def test_rejected_test_restored(self, noisy_train, noisy_test):
        result = _compactor(tolerance=0.005).run(noisy_train, noisy_test)
        for step in result.steps:
            if not step.eliminated:
                assert step.test_name in result.kept

    def test_order_strategy_used(self, synthetic_train, synthetic_test):
        order = RandomOrder(seed=3)
        result = _compactor(order=order).run(synthetic_train,
                                             synthetic_test)
        assert result.order == order.order(synthetic_train)

    def test_explicit_order_list(self, synthetic_train, synthetic_test):
        names = list(reversed(synthetic_train.names))
        result = _compactor(order=names).run(synthetic_train,
                                             synthetic_test)
        assert result.order == tuple(names)

    def test_min_kept_respected(self, synthetic_train, synthetic_test):
        result = _compactor(tolerance=1.0, min_kept=4).run(
            synthetic_train, synthetic_test)
        assert len(result.kept) >= 4

    def test_full_tolerance_eliminates_down_to_min(self, synthetic_train,
                                                   synthetic_test):
        result = _compactor(tolerance=1.0, min_kept=1).run(
            synthetic_train, synthetic_test)
        assert len(result.kept) == 1

    def test_grid_compaction_variant_still_works(self, synthetic_train,
                                                 synthetic_test):
        result = _compactor(grid_compactor=GridCompactor(6)).run(
            synthetic_train, synthetic_test)
        assert result.final_report.error_rate <= 0.05

    def test_count_guard_as_error_is_stricter(self, synthetic_train,
                                              synthetic_test):
        plain = _compactor(tolerance=0.02).run(synthetic_train,
                                               synthetic_test)
        strict = _compactor(tolerance=0.02, count_guard_as_error=True).run(
            synthetic_train, synthetic_test)
        assert len(strict.eliminated) <= len(plain.eliminated)

    def test_history_table_shape(self, synthetic_train, synthetic_test):
        result = _compactor().run(synthetic_train, synthetic_test)
        rows = result.history_table()
        assert len(rows) == len(result.steps)
        for row in rows:
            assert 0.0 <= row["yield_loss_pct"] <= 100.0
            assert 0.0 <= row["guard_pct"] <= 100.0

    def test_summary_mentions_counts(self, synthetic_train,
                                     synthetic_test):
        result = _compactor().run(synthetic_train, synthetic_test)
        text = result.summary()
        assert "eliminated" in text and "kept" in text
        assert 0.0 <= result.compaction_ratio <= 1.0


class TestEvaluateSubset:
    def test_empty_elimination_is_error_free(self, synthetic_train,
                                             synthetic_test):
        model, report = _compactor().evaluate_subset(
            synthetic_train, synthetic_test, [])
        assert report.error_rate == 0.0

    def test_block_elimination(self, synthetic_train, synthetic_test):
        model, report = _compactor().evaluate_subset(
            synthetic_train, synthetic_test, ["s4", "s5"])
        assert model.feature_names == ("s0", "s1", "s2", "s3")
        assert report.n_total == len(synthetic_test)

    def test_cannot_eliminate_everything(self, synthetic_train,
                                         synthetic_test):
        with pytest.raises(CompactionError):
            _compactor().evaluate_subset(
                synthetic_train, synthetic_test, list(synthetic_train.names))


class TestValidation:
    def test_mismatched_specs_rejected(self, synthetic_train):
        other = make_synthetic_dataset(n=50, n_specs=5)
        with pytest.raises(CompactionError, match="share"):
            _compactor().run(synthetic_train, other)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(CompactionError):
            Compactor(tolerance=-0.1)

    def test_min_kept_validated(self):
        with pytest.raises(CompactionError):
            Compactor(min_kept=0)
