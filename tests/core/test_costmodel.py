"""Test-cost model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costmodel import TestCostModel as CostModel
from repro.errors import CompactionError


class TestTestCostModel:
    def test_uniform_costs(self):
        model = CostModel.uniform(["a", "b", "c"], cost=2.0)
        assert model.full_cost() == pytest.approx(6.0)
        assert model.cost(["a"]) == pytest.approx(2.0)
        assert model.reduction(["a"]) == pytest.approx(2 / 3)

    def test_group_fixture_cost_paid_once(self):
        model = CostModel(
            {"a1": 1.0, "a2": 1.0, "b1": 1.0},
            groups={"a1": "hot", "a2": "hot", "b1": "room"},
            group_costs={"hot": 10.0, "room": 1.0})
        # Applying both hot tests pays the hot soak once.
        assert model.cost(["a1", "a2"]) == pytest.approx(12.0)
        assert model.cost(["a1"]) == pytest.approx(11.0)
        assert model.cost(["b1"]) == pytest.approx(2.0)

    def test_dropping_a_group_saves_its_fixture(self):
        model = CostModel(
            {"h": 1.0, "c": 1.0, "r": 1.0},
            groups={"h": "hot", "c": "cold", "r": "room"},
            group_costs={"hot": 20.0, "cold": 20.0, "room": 1.0})
        assert model.full_cost() == pytest.approx(44.0)
        # Eliminating hot and cold: only room remains.
        assert model.reduction(["r"]) == pytest.approx(1.0 - 2.0 / 44.0)
        assert model.reduction(["r"]) > 0.5  # the paper's headline claim

    def test_empty_applied_set_costs_nothing(self):
        model = CostModel.uniform(["a", "b"])
        assert model.cost([]) == 0.0
        assert model.reduction([]) == pytest.approx(1.0)

    @given(kept=st.sets(st.sampled_from(["a", "b", "c", "d"])))
    @settings(max_examples=30, deadline=None)
    def test_reduction_bounds(self, kept):
        model = CostModel.uniform(["a", "b", "c", "d"])
        r = model.reduction(sorted(kept))
        assert 0.0 <= r <= 1.0

    def test_monotonicity(self):
        """Adding a test to the applied set never lowers the cost."""
        model = CostModel(
            {"a": 1.0, "b": 2.0, "c": 3.0},
            groups={"a": "g"}, group_costs={"g": 5.0})
        assert model.cost(["b"]) <= model.cost(["a", "b"])
        assert model.cost(["a", "b"]) <= model.cost(["a", "b", "c"])

    def test_validation(self):
        with pytest.raises(CompactionError):
            CostModel({})
        with pytest.raises(CompactionError, match="negative"):
            CostModel({"a": -1.0})
        with pytest.raises(CompactionError, match="negative cost for group"):
            CostModel({"a": 1.0}, groups={"a": "g"},
                      group_costs={"g": -5.0})
        # Even unreferenced group entries must be sane.
        with pytest.raises(CompactionError, match="negative cost for group"):
            CostModel({"a": 1.0}, group_costs={"unused": -0.5})
        # Zero costs are legitimate (free tests / free fixtures).
        CostModel({"a": 0.0}, groups={"a": "g"}, group_costs={"g": 0.0})
        with pytest.raises(CompactionError, match="unknown tests"):
            CostModel({"a": 1.0}, groups={"b": "g"},
                          group_costs={"g": 1.0})
        with pytest.raises(CompactionError, match="no cost entry"):
            CostModel({"a": 1.0}, groups={"a": "g"}, group_costs={})
        model = CostModel.uniform(["a"])
        with pytest.raises(CompactionError, match="unknown test"):
            model.cost(["zz"])
