"""Test package marker (keeps same-named test modules distinct)."""
