"""Single-model margin-guard classifier tests (ablation device)."""

import numpy as np
import pytest

from repro.core.guardband import GuardBandedClassifier, \
    MarginGuardClassifier
from repro.core.metrics import GUARD
from repro.errors import CompactionError
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


class TestMarginGuardClassifier:
    def test_requires_exactly_one_margin_spec(self):
        with pytest.raises(CompactionError, match="exactly one"):
            MarginGuardClassifier(["s0"])
        with pytest.raises(CompactionError, match="exactly one"):
            MarginGuardClassifier(["s0"], margin=0.1,
                                  target_guard_fraction=0.1)

    def test_zero_margin_zero_delta_never_guards(self, synthetic_train):
        model = MarginGuardClassifier(
            synthetic_train.names[:4], delta=0.0, margin=0.0,
            model_factory=_fixed_factory).fit(synthetic_train)
        pred = model.predict_dataset(synthetic_train)
        assert GUARD not in pred

    def test_wider_margin_more_guards(self, synthetic_train):
        rates = []
        for margin in (0.0, 0.5, 2.0):
            model = MarginGuardClassifier(
                synthetic_train.names[:4], delta=0.0, margin=margin,
                model_factory=_fixed_factory).fit(synthetic_train)
            pred = model.predict_dataset(synthetic_train)
            rates.append(np.mean(pred == GUARD))
        assert rates == sorted(rates)

    def test_target_fraction_calibrates_margin(self, synthetic_train):
        model = MarginGuardClassifier(
            synthetic_train.names[:4], delta=0.0,
            target_guard_fraction=0.2,
            model_factory=_fixed_factory).fit(synthetic_train)
        pred = model.predict_dataset(synthetic_train)
        guard_rate = np.mean(pred == GUARD)
        # Roughly the target on the training population itself.
        assert guard_rate == pytest.approx(0.2, abs=0.1)

    def test_confident_predictions_mostly_correct(self, synthetic_train,
                                                  synthetic_test):
        model = MarginGuardClassifier(
            synthetic_train.names[:5], delta=0.03,
            target_guard_fraction=0.1,
            model_factory=_fixed_factory).fit(synthetic_train)
        pred = model.predict_dataset(synthetic_test)
        confident = pred != GUARD
        errors = np.mean(pred[confident] != synthetic_test.labels[confident])
        assert errors < 0.05

    def test_no_elimination_degenerates_to_box(self, synthetic_train):
        model = MarginGuardClassifier(
            synthetic_train.names, delta=0.0, margin=0.0,
            model_factory=_fixed_factory).fit(synthetic_train)
        pred = model.predict_dataset(synthetic_train)
        assert np.array_equal(pred, synthetic_train.labels)

    def test_unfitted_raises(self):
        model = MarginGuardClassifier(["s0"], margin=0.1)
        with pytest.raises(CompactionError, match="not fitted"):
            model.predict_features(np.zeros((1, 1)))

    def test_comparable_to_two_model_scheme(self, synthetic_train,
                                            synthetic_test):
        """At a matched guard budget both schemes control errors."""
        two = GuardBandedClassifier(
            synthetic_train.names[:5], delta=0.05,
            model_factory=_fixed_factory).fit(synthetic_train)
        two_pred = two.predict_dataset(synthetic_test)
        budget = float(np.mean(two_pred == GUARD))
        if budget <= 0.0 or budget >= 1.0:
            pytest.skip("degenerate guard budget")
        one = MarginGuardClassifier(
            synthetic_train.names[:5], delta=0.0,
            target_guard_fraction=budget,
            model_factory=_fixed_factory).fit(synthetic_train)
        one_pred = one.predict_dataset(synthetic_test)
        for pred in (two_pred, one_pred):
            confident = pred != GUARD
            errors = np.mean(
                pred[confident] != synthetic_test.labels[confident])
            assert errors < 0.06
