"""Test-ordering strategy tests (paper Section 3.2)."""

import numpy as np
import pytest

from repro.core.ordering import (
    ClassificationPowerOrder,
    ClusterOrder,
    FunctionalOrder,
    RandomOrder,
)
from repro.core.specs import Specification, SpecificationSet
from repro.errors import CompactionError
from repro.process.dataset import SpecDataset

from tests.synthetic import make_synthetic_dataset


class TestFunctionalOrder:
    def test_passes_through_user_order(self, synthetic_train):
        names = list(reversed(synthetic_train.names))
        order = FunctionalOrder(names).order(synthetic_train)
        assert order == tuple(names)

    def test_rejects_non_permutation(self, synthetic_train):
        with pytest.raises(CompactionError, match="permutation"):
            FunctionalOrder(["s0", "s1"]).order(synthetic_train)
        bad = list(synthetic_train.names[:-1]) + ["s0"]
        with pytest.raises(CompactionError, match="permutation"):
            FunctionalOrder(bad).order(synthetic_train)


class TestRandomOrder:
    def test_is_permutation_and_deterministic(self, synthetic_train):
        a = RandomOrder(seed=5).order(synthetic_train)
        b = RandomOrder(seed=5).order(synthetic_train)
        c = RandomOrder(seed=6).order(synthetic_train)
        assert a == b
        assert sorted(a) == sorted(synthetic_train.names)
        assert a != c or len(a) <= 2  # different seed, different order


class TestClassificationPowerOrder:
    def _dataset(self):
        """Spec 'only' uniquely rejects 10 devices; 'never' rejects none."""
        specs = SpecificationSet([
            Specification("never", "u", 0.0, -100.0, 100.0),
            Specification("only", "u", 0.0, -1.0, 1.0),
        ])
        rng = np.random.default_rng(0)
        values = np.zeros((50, 2))
        values[:, 0] = rng.normal(0, 1.0, 50)     # always in range
        values[:, 1] = rng.normal(0, 1.0, 50)     # sometimes out
        return SpecDataset(specs, values)

    def test_weak_spec_examined_first(self):
        ds = self._dataset()
        order = ClassificationPowerOrder().order(ds)
        assert order[0] == "never"
        assert order[-1] == "only"

    def test_always_returns_permutation(self, synthetic_train):
        order = ClassificationPowerOrder().order(synthetic_train)
        assert sorted(order) == sorted(synthetic_train.names)


class TestClusterOrder:
    def _correlated_dataset(self):
        """s0 and s1 duplicate each other; s2 independent."""
        specs = SpecificationSet([
            Specification("s0", "u", 0.0, -2.0, 2.0),
            Specification("s1", "u", 0.0, -4.0, 4.0),
            Specification("s2", "u", 0.0, -2.0, 2.0),
        ])
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 200)
        b = rng.normal(0, 1, 200)
        values = np.column_stack([a, 2.0 * a, b])
        return SpecDataset(specs, values)

    def test_cluster_members_before_representatives(self):
        ds = self._correlated_dataset()
        order = ClusterOrder(threshold=0.9).order(ds)
        # One of the correlated pair comes first; the independent spec
        # and the pair's representative come last.
        assert order[0] in ("s0", "s1")
        assert set(order[-2:]) == {"s2"} | ({"s0", "s1"} - {order[0]})

    def test_no_correlation_all_representatives(self, synthetic_train):
        order = ClusterOrder(threshold=0.999).order(synthetic_train)
        assert sorted(order) == sorted(synthetic_train.names)

    def test_threshold_validation(self):
        with pytest.raises(CompactionError):
            ClusterOrder(threshold=0.0)
        with pytest.raises(CompactionError):
            ClusterOrder(threshold=1.5)
