"""Guard-banded classifier tests (paper Sections 3.3 / 4.2)."""

import numpy as np
import pytest

from repro.core.guardband import AutoTunedSVCFactory, GuardBandedClassifier
from repro.core.metrics import GUARD
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


class TestGuardBandedClassifier:
    def test_no_elimination_is_exact_box_check(self):
        """With every test kept, prediction = direct range analysis."""
        ds = make_synthetic_dataset(n=200, seed=5)
        model = GuardBandedClassifier(ds.names, delta=0.0,
                                      model_factory=_fixed_factory)
        model.fit(ds)
        pred = model.predict_dataset(ds)
        assert np.array_equal(pred, ds.labels)

    def test_no_elimination_with_guard_has_zero_error(self):
        ds = make_synthetic_dataset(n=200, seed=5)
        model = GuardBandedClassifier(ds.names, delta=0.05,
                                      model_factory=_fixed_factory)
        model.fit(ds)
        pred = model.predict_dataset(ds)
        confident = pred != GUARD
        assert np.array_equal(pred[confident], ds.labels[confident])

    def test_eliminated_spec_predicted_from_redundancy(self):
        """With 3 latent dims and 6 specs, dropping one is recoverable."""
        train = make_synthetic_dataset(n=500, seed=1)
        test = make_synthetic_dataset(n=300, seed=2)
        kept = list(train.names[:-1])
        model = GuardBandedClassifier(kept, delta=0.05,
                                      model_factory=_fixed_factory)
        model.fit(train)
        pred = model.predict_dataset(test)
        confident = pred != GUARD
        errors = np.mean(pred[confident] != test.labels[confident])
        assert errors < 0.03

    def test_guard_band_devices_near_boundaries(self):
        """Devices flagged guard-band lie near a range boundary more
        often than confidently classified ones."""
        train = make_synthetic_dataset(n=500, seed=1)
        model = GuardBandedClassifier(train.names, delta=0.08,
                                      model_factory=_fixed_factory)
        model.fit(train)
        pred = model.predict_dataset(train)
        Z = train.normalized_values()
        dist_to_boundary = np.minimum(np.abs(Z), np.abs(Z - 1.0)).min(axis=1)
        guard = pred == GUARD
        if guard.any() and (~guard).any():
            assert dist_to_boundary[guard].mean() < \
                dist_to_boundary[~guard].mean()

    def test_delta_zero_never_guards(self):
        train = make_synthetic_dataset(n=300, seed=3)
        model = GuardBandedClassifier(train.names[:4], delta=0.0,
                                      model_factory=_fixed_factory)
        model.fit(train)
        pred = model.predict_dataset(train)
        assert GUARD not in pred

    def test_wider_guard_band_flags_more_devices(self):
        train = make_synthetic_dataset(n=400, seed=4)
        rates = []
        for delta in (0.02, 0.08):
            model = GuardBandedClassifier(train.names[:5], delta=delta,
                                          model_factory=_fixed_factory)
            model.fit(train)
            rates.append(np.mean(model.predict_dataset(train) == GUARD))
        assert rates[0] <= rates[1]

    def test_predict_measurements_matches_dataset_path(self):
        train = make_synthetic_dataset(n=300, seed=6)
        kept = list(train.names[:4])
        model = GuardBandedClassifier(kept, delta=0.05,
                                      model_factory=_fixed_factory)
        model.fit(train)
        a = model.predict_dataset(train)
        b = model.predict_measurements(train.project(kept).values)
        assert np.array_equal(a, b)

    def test_confident_fraction(self):
        train = make_synthetic_dataset(n=300, seed=6)
        model = GuardBandedClassifier(train.names, delta=0.05,
                                      model_factory=_fixed_factory)
        model.fit(train)
        frac = model.confident_fraction(train)
        pred = model.predict_dataset(train)
        assert frac == pytest.approx(np.mean(pred != GUARD))

    def test_validation(self):
        ds = make_synthetic_dataset(n=50)
        with pytest.raises(CompactionError):
            GuardBandedClassifier([], delta=0.05)
        with pytest.raises(CompactionError):
            GuardBandedClassifier(["s0"], delta=-0.1)
        model = GuardBandedClassifier(["nope"], delta=0.05)
        with pytest.raises(CompactionError, match="lacks"):
            model.fit(ds)
        unfit = GuardBandedClassifier(["s0"])
        with pytest.raises(CompactionError, match="not fitted"):
            unfit.predict_features(np.zeros((1, 1)))


class TestAutoTunedFactory:
    def test_tunes_then_builds_with_best_params(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (150, 2))
        y = np.where(X[:, 0] ** 2 + X[:, 1] ** 2 < 0.5, 1, -1)
        factory = AutoTunedSVCFactory(
            param_grid={"C": [10.0], "gamma": [0.5, 8.0]})
        factory.tune(X, y.astype(float))
        assert factory.best_params_["C"] == 10.0
        model = factory()
        assert model.C == 10.0

    def test_single_class_skips_tuning(self):
        factory = AutoTunedSVCFactory()
        factory.tune(np.zeros((30, 2)), np.ones(30))
        assert factory.best_params_ == {}
        assert isinstance(factory(), SVC)

    def test_subsampling_applies(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 2))
        y = np.where(X[:, 0] > 0, 1.0, -1.0)
        factory = AutoTunedSVCFactory(
            param_grid={"C": [10.0], "gamma": [1.0]}, max_tune_samples=50)
        factory.tune(X, y)
        assert factory.best_params_ is not None
