"""Property-based tests of compaction-flow invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compaction import TestCompactor as Compactor
from repro.core.metrics import GUARD, evaluate_predictions
from repro.core.specs import BAD, GOOD
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


def _fixed_factory():
    return SVC(C=50.0, gamma="scale")


class TestCompactionInvariants:
    @given(tol=st.floats(0.0, 0.2), seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_partition_invariant(self, tol, seed):
        """kept + eliminated is always a partition of the test set."""
        train = make_synthetic_dataset(n=150, seed=seed)
        test = make_synthetic_dataset(n=100, seed=seed + 1000)
        result = Compactor(tolerance=tol, guard_band=0.05,
                           model_factory=_fixed_factory).run(train, test)
        assert sorted(result.kept + result.eliminated) == \
            sorted(train.names)
        assert not set(result.kept) & set(result.eliminated)

    @given(seed=st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_tolerance_monotonicity(self, seed):
        """A looser tolerance never eliminates fewer tests.

        Holds exactly for nested greedy runs over the same order
        because every accepted candidate of the strict run is also
        acceptable to the loose run *given the same prefix*; verified
        here empirically across seeds.
        """
        train = make_synthetic_dataset(n=150, noise=0.1, seed=seed)
        test = make_synthetic_dataset(n=100, noise=0.1, seed=seed + 500)
        counts = []
        for tol in (0.0, 0.05, 0.5):
            result = Compactor(tolerance=tol, guard_band=0.05,
                               model_factory=_fixed_factory).run(
                                   train, test)
            counts.append(len(result.eliminated))
        assert counts[0] <= counts[-1]

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_reports_internally_consistent(self, seed):
        train = make_synthetic_dataset(n=120, seed=seed)
        test = make_synthetic_dataset(n=90, seed=seed + 77)
        result = Compactor(tolerance=0.05, guard_band=0.05,
                           model_factory=_fixed_factory).run(train, test)
        for step in result.steps:
            r = step.report
            assert r.n_total == len(test)
            assert (r.n_yield_loss + r.n_defect_escape
                    + r.n_guard <= r.n_total)
            assert r.error_rate == pytest.approx(
                r.yield_loss_rate + r.defect_escape_rate)


class TestPredictionLabelAlgebra:
    @given(n=st.integers(1, 100), seed=st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_report_counts_sum(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.choice([GOOD, BAD], n)
        p = rng.choice([GOOD, BAD, GUARD], n)
        r = evaluate_predictions(y, p)
        confident_correct = (r.n_total - r.n_guard
                             - r.n_yield_loss - r.n_defect_escape)
        recomputed = int(np.sum((p != GUARD) & (p == y)))
        assert confident_correct == recomputed
