"""Specification / SpecificationSet tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.specs import BAD, GOOD, Specification, SpecificationSet
from repro.errors import CompactionError


def _spec(name="s", low=0.0, high=10.0):
    return Specification(name, "u", (low + high) / 2, low, high)


class TestSpecification:
    def test_contains_scalar_and_array(self):
        s = _spec()
        assert s.contains(5.0) is True
        assert s.contains(-1.0) is False
        out = s.contains(np.array([0.0, 10.0, 10.1]))
        assert out.tolist() == [True, True, False]

    def test_bounds_inclusive(self):
        s = _spec(low=1.0, high=2.0)
        assert s.contains(1.0) and s.contains(2.0)

    @given(v=st.floats(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_normalize_denormalize_roundtrip(self, v):
        s = _spec(low=-3.0, high=7.0)
        assert s.denormalize(s.normalize(v)) == pytest.approx(v, abs=1e-9)

    @given(v=st.floats(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_normalized_pass_iff_in_unit_interval(self, v):
        s = _spec(low=-3.0, high=7.0)
        z = s.normalize(v)
        assert bool(s.contains(v)) == bool(0.0 <= z <= 1.0)

    def test_shifted_shrinks_symmetrically(self):
        s = _spec(low=0.0, high=10.0).shifted(0.1)
        assert s.low == pytest.approx(1.0)
        assert s.high == pytest.approx(9.0)

    def test_shifted_negative_widens(self):
        s = _spec(low=0.0, high=10.0).shifted(-0.1)
        assert s.low == pytest.approx(-1.0)
        assert s.high == pytest.approx(11.0)

    def test_shifted_collapse_rejected(self):
        with pytest.raises(CompactionError, match="collapses"):
            _spec().shifted(0.5)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CompactionError):
            Specification("x", "u", 0.0, 1.0, 1.0)
        with pytest.raises(CompactionError):
            Specification("", "u", 0.0, 0.0, 1.0)


class TestSpecificationSet:
    def _set(self):
        return SpecificationSet([
            _spec("a", 0.0, 1.0), _spec("b", -5.0, 5.0),
            _spec("c", 100.0, 200.0)])

    def test_container_protocol(self):
        specs = self._set()
        assert len(specs) == 3
        assert specs.names == ("a", "b", "c")
        assert "b" in specs
        assert specs["b"].low == -5.0
        assert specs[0].name == "a"
        assert specs.index("c") == 2

    def test_unknown_name_raises(self):
        specs = self._set()
        with pytest.raises(CompactionError, match="unknown"):
            specs["zz"]
        with pytest.raises(CompactionError, match="unknown"):
            specs.index("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(CompactionError, match="duplicate"):
            SpecificationSet([_spec("a"), _spec("a")])

    def test_empty_rejected(self):
        with pytest.raises(CompactionError):
            SpecificationSet([])

    def test_subset_and_without(self):
        specs = self._set()
        sub = specs.subset(["c", "a"])
        assert sub.names == ("c", "a")
        rest = specs.without(["b"])
        assert rest.names == ("a", "c")
        with pytest.raises(CompactionError):
            specs.without(["a", "b", "c"])
        with pytest.raises(CompactionError, match="unknown"):
            specs.without(["zz"])

    def test_labels_good_iff_every_spec_passes(self):
        specs = self._set()
        values = np.array([
            [0.5, 0.0, 150.0],     # all pass
            [2.0, 0.0, 150.0],     # fails a
            [0.5, 0.0, 250.0],     # fails c
        ])
        assert specs.labels(values).tolist() == [GOOD, BAD, BAD]
        assert specs.yield_fraction(values) == pytest.approx(1 / 3)

    @given(values=st.lists(
        st.tuples(st.floats(-2, 3), st.floats(-10, 10),
                  st.floats(0, 300)),
        min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_labels_match_normalized_box(self, values):
        """Label is +1 exactly when all normalized values lie in [0,1]."""
        specs = self._set()
        V = np.array(values, dtype=float)
        labels = specs.labels(V)
        Z = specs.normalize(V)
        in_box = np.all((Z >= 0.0) & (Z <= 1.0), axis=1)
        assert np.array_equal(labels == GOOD, in_box)

    def test_normalize_denormalize_matrix(self):
        specs = self._set()
        V = np.array([[0.5, 0.0, 150.0], [1.0, 5.0, 200.0]])
        assert np.allclose(specs.denormalize(specs.normalize(V)), V)

    def test_shape_validation(self):
        specs = self._set()
        with pytest.raises(CompactionError, match="columns"):
            specs.labels(np.zeros((2, 2)))

    def test_shifted_applies_to_all(self):
        specs = self._set().shifted(0.1)
        assert specs["a"].low == pytest.approx(0.1)
        assert specs["c"].high == pytest.approx(190.0)

    def test_describe_contains_all_names(self):
        text = self._set().describe()
        for name in ("a", "b", "c"):
            assert name in text
