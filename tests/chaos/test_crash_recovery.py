"""kill -9 the whole serving stack mid-traffic; nothing acked is lost.

The flagship chaos scenario from the durability issue: a supervisor
SIGKILLed after two hot-swaps, with a load run in flight, restarted
from ``--state-dir`` -- and every decision the clients ever see is
bit-identical to the offline floor of the journal's newest-active
artifact.  Plus the seeded in-process variant: worker SIGKILLs on a
:meth:`FaultPlan.kill_schedule` with wire faults on the router, once
per chaos seed.
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.service import (
    ClusterService,
    HttpClient,
    StateJournal,
    TrafficPlan,
    offline_reference,
    run_load,
    wait_healthy,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _request(port, method, path, payload=None, headers=None):
    async def go():
        client = HttpClient("127.0.0.1", port)
        try:
            return await client.request(method, path, payload,
                                        headers=headers)
        finally:
            await client.close()

    return asyncio.run(go())


@pytest.mark.slow
class TestKillNineRecovery:
    def _serve(self, cmd, log_path):
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        log = open(log_path, "ab")
        return subprocess.Popen(cmd, env=env, stdout=log, stderr=log)

    def test_supervisor_kill9_mid_traffic_replays_bit_identical(
            self, tmp_path, saved, lookup_pair):
        lookup_dut, lookup_artifact = lookup_pair
        state_dir = tmp_path / "state"
        port = _free_port()
        cmd = [sys.executable, "-m", "repro.cli", "serve",
               "--artifact", "synthA=1={}".format(saved["lookup"]),
               "--workers", "2", "--port", str(port),
               "--state-dir", str(state_dir),
               "--health-interval", "0.2"]
        log_path = tmp_path / "serve.log"
        proc = self._serve(cmd, log_path)
        restarted = None
        try:
            asyncio.run(wait_healthy("127.0.0.1", port, timeout=120))

            # Two acked hot-swaps: synthA's newest-active version is
            # now 3, which serves the *lookup* program again -- replay
            # must reproduce exactly this order, or the restarted
            # cluster would disposition with version 2's guard band.
            for version, path in (("2", saved["swap"]),
                                  ("3", saved["lookup"])):
                status, _ = _request(
                    port, "POST", "/artifacts",
                    {"device": "synthA", "version": version, "path": path})
                assert status == 201

            # The supervisor's own pid plus the worker pids from
            # /health: SIGKILLing the parent orphans daemonized
            # children, so a faithful whole-stack crash kills them
            # all.
            health = _request(port, "GET", "/health")[1]
            pids = [w["pid"] for w in health["workers"].values()]
            assert all(isinstance(pid, int) for pid in pids)
            baseline = health["n_http_requests"]

            traffic = TrafficPlan(
                "synthA", lookup_dut, 2400, seed=9,
                reference=offline_reference(lookup_artifact))
            result = {}

            def drive():
                async def go():
                    return await run_load(
                        "127.0.0.1", port, [traffic],
                        n_clients=2, max_chunk=4, seed=9)

                result["report"] = asyncio.run(go())

            loader = threading.Thread(target=drive)
            loader.start()

            # Kill only once traffic is demonstrably in flight.
            poll_deadline = time.time() + 60
            while (_request(port, "GET", "/health")[1]["n_http_requests"]
                   < baseline + 20):
                assert time.time() < poll_deadline
                time.sleep(0.02)

            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

            # Restart from the journal.  The command line still names
            # synthA=1; the CLI must skip it in favour of the replayed
            # history rather than un-swap the artifact.
            restarted = self._serve(cmd, log_path)
            asyncio.run(wait_healthy("127.0.0.1", port, timeout=120))

            loader.join(timeout=240)
            assert not loader.is_alive()
            report = result["report"]
            # The crash window cost retries, and every one of the 2400
            # decisions -- served before the kill or after the replay
            # -- matches the offline floor of newest-active version 3.
            assert report.n_retried > 0
            assert report.plans[0].n_devices == 2400
            assert report.equivalent

            # Journal-replay equivalence, end to end: the journal's
            # manifest view, and what the restarted cluster actually
            # serves, agree on the full hot-swap history.
            journal = StateJournal(str(state_dir))
            manifest = StateJournal.manifest_from_ops(journal.replay())
            journal.close()
            assert [(m["device"], m["version"], m["retired"])
                    for m in manifest] == [
                ("synthA", "1", False),
                ("synthA", "2", False),
                ("synthA", "3", False)]
            listing = _request(port, "GET", "/artifacts")[1]
            assert listing["consistent"] is True
            assert [(row["device"], row["version"])
                    for row in listing["artifacts"]] == [
                ("synthA", "1"), ("synthA", "2"), ("synthA", "3")]
        finally:
            for p in (proc, restarted):
                if p is None or p.poll() is not None:
                    continue
                p.terminate()
                try:
                    p.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    p.kill()
                    p.wait(timeout=30)


@pytest.mark.slow
class TestSeededClusterChaos:
    """Seeded worker SIGKILLs + wire faults; served == offline."""

    def test_kill_schedule_and_wire_faults_stay_equivalent(
            self, chaos_seed, saved, lookup_pair):
        dut, artifact = lookup_pair
        plan = FaultPlan(chaos_seed, rate=0.08, max_faults=5)
        kills = plan.kill_schedule(n_workers=2, n_kills=2, span_s=1.0)
        traffic = TrafficPlan("synthA", dut, 600, seed=chaos_seed,
                              reference=offline_reference(artifact))

        async def main():
            cluster = ClusterService(
                registrations=[("synthA", "1", saved["lookup"])],
                n_workers=2, health_interval=0.2)
            await cluster.start("127.0.0.1", 0)
            try:
                load = asyncio.ensure_future(run_load(
                    "127.0.0.1", cluster.port, [traffic],
                    n_clients=2, max_chunk=8, seed=chaos_seed))
                started = time.monotonic()
                for at_s, victim in kills:
                    await asyncio.sleep(
                        max(0.0, at_s - (time.monotonic() - started)))
                    cluster.kill_worker(victim)
                report = await load
                # Self-healing closes the loop: the health probe must
                # notice at least the first SIGKILL (the flags alone
                # can race the probe interval, so wait on the respawn
                # counter) and every worker must be back.
                heal_deadline = time.monotonic() + 60
                while True:
                    workers = cluster.health()["workers"].values()
                    if (sum(w["respawns"] for w in workers) >= 1
                            and all(w["healthy"] for w in workers)):
                        break
                    assert time.monotonic() < heal_deadline
                    await asyncio.sleep(0.1)
                return report, cluster.health()
            finally:
                await cluster.stop()

        with FaultInjector(plan, sites=("cluster.response",)) as injector:
            report, health = asyncio.run(asyncio.wait_for(main(), 300))

        assert report.plans[0].n_devices == 600
        assert report.equivalent
        # The injected-fault ledger matches the plan's own record, and
        # at least one SIGKILL forced a respawn the router absorbed.
        assert injector.n_fired() == len(
            plan.schedules["cluster.response"].fired)
        assert sum(w["respawns"]
                   for w in health["workers"].values()) >= 1
