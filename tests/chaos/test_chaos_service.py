"""Seeded fault schedules against a live service: never a wrong bin.

Each test runs once per chaos seed (see ``conftest.py``).  The
invariant under every injected fault class is the repo's
non-negotiable: a fault ends in a *typed error* or a *retried
bit-identical success* -- served decisions equal the offline floor,
journaled state replays to exactly the acked history, torn shard
bytes are rejected rather than loaded.
"""

import asyncio
import json
import os

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.data import ShardedSpecDataset, generate_shards
from repro.data.manifest import shard_file_name
from repro.data.shard import open_shard_values
from repro.errors import DatasetError, JournalError
from repro.service import (
    ArtifactRegistry,
    FloorService,
    JournalWarning,
    StateJournal,
    TrafficPlan,
    offline_reference,
    run_load,
)

from tests.synthetic import SyntheticDut


def _registry(saved):
    registry = ArtifactRegistry()
    registry.register("synthA", "1", saved["lookup"])
    return registry


def _drive(saved, plan, traffic, n_clients=2):
    """run_load against a live FloorService under ``plan``'s faults."""

    async def main():
        service = FloorService(_registry(saved))
        await service.start("127.0.0.1", 0)
        try:
            return await run_load(
                "127.0.0.1", service.port, [traffic],
                n_clients=n_clients, max_chunk=4, seed=traffic.seed)
        finally:
            await service.stop()

    with FaultInjector(plan, sites=("service.response",)) as injector:
        report = asyncio.run(asyncio.wait_for(main(), 120))
    return report, injector


class TestResponseFaults:
    """Delay/drop/reset on the wire; decisions stay bit-identical."""

    def test_served_equals_offline_under_faults(self, chaos_seed, saved,
                                                lookup_pair):
        dut, artifact = lookup_pair
        traffic = TrafficPlan("synthA", dut, 64, seed=chaos_seed,
                              reference=offline_reference(artifact))
        plan = FaultPlan(chaos_seed, rate=0.4, max_faults=6)
        report, injector = _drive(saved, plan, traffic)

        # Faults actually fired (the schedule is dense enough that a
        # zero-fault run would mean the hook was never consulted) ...
        assert injector.n_fired("service.response") > 0
        # ... the injector's ledger matches the plan's own record ...
        assert (injector.n_fired("service.response")
                == len(plan.schedules["service.response"].fired))
        # ... and every one of the 64 devices still got the exact
        # offline decision, through whatever retries that took.
        assert report.plans[0].n_devices == 64
        assert report.equivalent

    def test_single_client_chaos_run_replays_exactly(self, chaos_seed,
                                                     saved, lookup_pair):
        # With one client the consultation order is deterministic, so
        # the *entire run* -- which requests got faulted, with which
        # kinds, and every served decision -- replays from the seed.
        dut, artifact = lookup_pair
        runs = []
        for _ in range(2):
            traffic = TrafficPlan("synthA", dut, 32, seed=chaos_seed,
                                  reference=offline_reference(artifact))
            plan = FaultPlan(chaos_seed, rate=0.4, max_faults=4)
            report, _ = _drive(saved, plan, traffic, n_clients=1)
            runs.append((plan.describe()["sites"]["service.response"],
                         [int(d) for d in report.plans[0].decisions],
                         report.equivalent))
        assert runs[0] == runs[1]
        assert runs[0][2] is True


class TestJournalFaults:
    """Disk-full / torn appends: 507, rollback, acked-only replay."""

    def test_faulted_register_is_507_then_replays_acked_state(
            self, chaos_seed, tmp_path, saved):
        state_dir = tmp_path / "state"
        service = FloorService(ArtifactRegistry(),
                               state_dir=str(state_dir))
        # One clean, acked registration before the chaos window.
        service.register_artifact("synthA", "1", saved["lookup"])

        plan = FaultPlan(chaos_seed, rate=1.0, max_faults=1)
        body = json.dumps({"device": "synthA", "version": "2",
                           "path": saved["swap"]}).encode()

        async def attempt():
            return await service._route("POST", "/artifacts", {}, body,
                                        ("127.0.0.1", 1))

        with FaultInjector(plan, sites=("journal.append",)):
            status, reply = asyncio.run(attempt())
        service.journal.close()

        # The un-durable register surfaced as a typed 507 and was
        # rolled back (the fresh key is retired in place): the
        # registry never *serves* what the journal would forget.
        assert status == 507
        assert "not durable" in reply["error"]
        flags = {(e["device"], e["version"]): e["retired"]
                 for e in service.registry.describe()}
        assert flags[("synthA", "2")] is True
        assert flags[("synthA", "1")] is False
        [(_, kind)] = plan.schedules["journal.append"].fired

        # A restart reconstructs exactly the acked history.  A torn
        # append left half a record the recovery scan must truncate
        # (with a warning); disk-full left no bytes at all.
        if kind == "torn":
            with pytest.warns(JournalWarning, match="torn trailing"):
                restarted = FloorService(ArtifactRegistry(),
                                         state_dir=str(state_dir))
        else:
            assert kind == "disk_full"
            restarted = FloorService(ArtifactRegistry(),
                                     state_dir=str(state_dir))
        listing = [(e["device"], e["version"])
                   for e in restarted.registry.describe()]
        assert listing == [("synthA", "1")]

        # And the journal is writable again: the retried hot-swap
        # succeeds and takes the next sequence slot.
        entry = restarted.register_artifact("synthA", "2", saved["swap"])
        assert entry.version == "2"
        assert len(restarted.journal) == 2
        restarted.journal.close()

    def test_poisoned_journal_refuses_further_ops_until_restart(
            self, tmp_path, saved):
        # Not seed-parametrized: this pins the torn arm specifically.
        state_dir = tmp_path / "state"
        service = FloorService(ArtifactRegistry(),
                               state_dir=str(state_dir))
        service.register_artifact("synthA", "1", saved["lookup"])

        from repro.service import durability as durability_module
        durability_module.JOURNAL_FAULT_HOOK = lambda record: "torn"
        try:
            with pytest.raises(JournalError, match="not durable"):
                service.register_artifact("synthA", "2", saved["swap"])
        finally:
            durability_module.JOURNAL_FAULT_HOOK = None
        # Until a restart recovers the file, every control-plane op is
        # a typed refusal -- never a write after garbage.
        with pytest.raises(JournalError, match="restart"):
            service.retire_artifact("synthA", "1")
        service.journal.close()


class TestTornShardWrite:
    """A torn shard publish is a typed error; the bytes never load."""

    def test_reader_rejects_the_torn_file(self, chaos_seed, tmp_path):
        plan = FaultPlan(chaos_seed, rate=1.0, max_faults=1)
        root = tmp_path / "store"
        with FaultInjector(plan, sites=("shard.write",)) as injector:
            with pytest.raises(OSError):
                generate_shards(root, SyntheticDut(), 48, seed=5,
                                shard_rows=16)
        assert injector.n_fired("shard.write") == 1

        # The fault left a deliberately truncated file at the
        # *destination* (a crash on a filesystem without atomic
        # replace); the shard reader must refuse it as typed
        # corruption, never hand back short data.
        torn = os.path.join(str(root), shard_file_name(0))
        assert os.path.exists(torn)
        with pytest.raises(DatasetError):
            open_shard_values(torn)

    def test_regeneration_after_the_fault_window_heals(self, tmp_path):
        # The same seed tree that made repair possible makes chaos
        # recovery trivial: rerun generation without the injector and
        # the store verifies clean with the canonical hashes.
        root = tmp_path / "store"
        plan = FaultPlan(7, rate=1.0, max_faults=1)
        with FaultInjector(plan, sites=("shard.write",)):
            with pytest.raises(OSError):
                generate_shards(root, SyntheticDut(), 48, seed=5,
                                shard_rows=16)
        import shutil

        shutil.rmtree(root)
        store = generate_shards(root, SyntheticDut(), 48, seed=5,
                                shard_rows=16)
        assert store.verify() == 3
        reference = generate_shards(tmp_path / "ref", SyntheticDut(), 48,
                                    seed=5, shard_rows=16)
        assert store.shard_hashes() == reference.shard_hashes()


class TestJournalReplayEquivalence:
    """manifest_from_ops(journal) == the registry a restart serves."""

    def test_hot_swap_history_survives_restart_bit_exact(self, chaos_seed,
                                                         tmp_path, saved):
        state_dir = tmp_path / "state"
        service = FloorService(ArtifactRegistry(),
                               state_dir=str(state_dir))
        # A seeded shuffle of control-plane traffic: registers and a
        # retire, different per chaos seed, all acked.
        import numpy as np

        rng = np.random.default_rng(chaos_seed)
        versions = [str(v) for v in rng.permutation([1, 2, 3])]
        for version in versions:
            path = saved["swap"] if int(version) % 2 else saved["lookup"]
            service.register_artifact("synthA", version, path)
        service.retire_artifact("synthA", versions[0])
        before = service.registry.describe()
        service.journal.close()

        restarted = FloorService(ArtifactRegistry(),
                                 state_dir=str(state_dir))
        after = restarted.registry.describe()
        assert [(e["device"], e["version"], e["retired"], e["checksum"])
                for e in after] == [
            (e["device"], e["version"], e["retired"], e["checksum"])
            for e in before]

        # The journal's own manifest view agrees with both.
        journal = StateJournal(str(state_dir))
        manifest = StateJournal.manifest_from_ops(journal.replay())
        assert [(m["device"], m["version"], m["retired"])
                for m in manifest] == [
            (e["device"], e["version"], e["retired"]) for e in after]
        journal.close()
        restarted.journal.close()
