"""FaultPlan determinism: every chaos run replays from one integer.

The whole chaos harness rests on the plan being a pure function of its
seed -- the same discipline the data plane uses for simulation.  These
tests pin that down at the unit level: identical seeds produce
identical fault schedules and kill schedules, sites draw from
independent streams, the injector installs and restores the production
hooks exactly, and the startup-fault env protocol fires once per
worker index.
"""

import pytest

from repro.chaos import FaultInjector, FaultPlan, corrupt_file
from repro.chaos.inject import (
    SITE_KINDS,
    SITES,
    STARTUP_ENV,
    worker_startup_fault,
)
from repro.errors import ServiceError


def _consume(plan, site, n):
    return [plan.schedule(site).draw() for _ in range(n)]


class TestSiteSchedule:
    def test_same_seed_replays_every_site(self):
        first = FaultPlan(31, rate=0.3, max_faults=16)
        second = FaultPlan(31, rate=0.3, max_faults=16)
        for site in SITES:
            assert _consume(first, site, 50) == _consume(second, site, 50)
            assert (first.schedules[site].fired
                    == second.schedules[site].fired)

    def test_sites_draw_from_independent_streams(self):
        # Consuming one site's stream must not perturb another's: the
        # journal schedule is identical whether or not the response
        # schedule was consulted first.
        undisturbed = FaultPlan(7, rate=0.5, max_faults=64)
        disturbed = FaultPlan(7, rate=0.5, max_faults=64)
        _consume(disturbed, "cluster.response", 100)
        assert (_consume(disturbed, "journal.append", 40)
                == _consume(undisturbed, "journal.append", 40))

    def test_max_faults_caps_without_shifting_the_stream(self):
        # The capped schedule fires exactly the first K of the
        # uncapped schedule's faults, at the same consultation
        # indices with the same kinds: hit/kind draws burn whether or
        # not the cap lets them fire.
        capped = FaultPlan(11, rate=0.6, max_faults=3)
        uncapped = FaultPlan(11, rate=0.6, max_faults=1000)
        _consume(capped, "service.response", 60)
        _consume(uncapped, "service.response", 60)
        full = uncapped.schedules["service.response"].fired
        assert len(full) > 3
        assert capped.schedules["service.response"].fired == full[:3]

    def test_delay_bounds_and_kind_domain(self):
        plan = FaultPlan(5, rate=1.0, max_faults=1000)
        for site in SITES:
            for decision in _consume(plan, site, 30):
                kind, delay_s = decision
                assert kind in SITE_KINDS[site]
                assert 0.01 <= delay_s < 0.05

    def test_unknown_site_is_typed(self):
        with pytest.raises(ServiceError, match="unknown chaos site"):
            FaultPlan(1).schedule("floor.response")


class TestKillSchedule:
    def test_same_seed_same_kills(self):
        assert (FaultPlan(23).kill_schedule(4, 6, span_s=3.0)
                == FaultPlan(23).kill_schedule(4, 6, span_s=3.0))

    def test_kills_are_sorted_in_range_victims_valid(self):
        kills = FaultPlan(9).kill_schedule(3, 8, span_s=2.5)
        times = [at_s for at_s, _ in kills]
        assert times == sorted(times)
        assert all(0.1 <= at_s <= 2.5 for at_s in times)
        assert all(0 <= victim < 3 for _, victim in kills)

    def test_kill_stream_is_independent_of_site_consumption(self):
        consumed = FaultPlan(13, rate=0.5)
        for site in SITES:
            _consume(consumed, site, 25)
        assert (consumed.kill_schedule(2, 4)
                == FaultPlan(13).kill_schedule(2, 4))


class TestFaultInjector:
    def test_unknown_site_subset_is_typed(self):
        with pytest.raises(ServiceError, match="unknown chaos site"):
            FaultInjector(FaultPlan(1), sites=("service.response", "nope"))

    def test_hooks_install_and_restore_exactly(self):
        from repro.data import shard as shard_module
        from repro.service import cluster as cluster_module
        from repro.service import durability as durability_module
        from repro.service import server as server_module

        sentinel = object()
        server_module.RESPONSE_FAULT_HOOK = sentinel
        try:
            injector = FaultInjector(FaultPlan(3))
            with injector:
                # Bound methods compare equal (not identical) per
                # attribute access.
                assert (server_module.RESPONSE_FAULT_HOOK
                        == injector._response_hook)
                assert (cluster_module.RESPONSE_FAULT_HOOK
                        == injector._response_hook)
                assert (durability_module.JOURNAL_FAULT_HOOK
                        == injector._journal_hook)
                assert (shard_module.SHARD_FAULT_HOOK
                        == injector._shard_hook)
            # Whatever was installed before is back -- including a
            # pre-existing non-None hook, not a hardcoded None.
            assert server_module.RESPONSE_FAULT_HOOK is sentinel
        finally:
            server_module.RESPONSE_FAULT_HOOK = None
        assert cluster_module.RESPONSE_FAULT_HOOK is None
        assert durability_module.JOURNAL_FAULT_HOOK is None
        assert shard_module.SHARD_FAULT_HOOK is None

    def test_response_hook_only_perturbs_dispositions(self):
        with FaultInjector(FaultPlan(2, rate=1.0)) as injector:
            assert injector._response_hook("service", "/health") is None
            assert injector._response_hook("service", "/metrics") is None
            decision = injector._response_hook("service", "/disposition")
        assert decision is not None
        assert injector.n_fired("service.response") == 1

    def test_site_subset_silences_other_sites(self):
        plan = FaultPlan(2, rate=1.0)
        with FaultInjector(plan, sites=("journal.append",)) as injector:
            assert injector._response_hook("cluster", "/disposition") is None
            assert injector._shard_hook("x.npz") is None
            assert injector._journal_hook({}) in SITE_KINDS["journal.append"]
        # Silenced sites never consumed their streams.
        assert plan.schedules["cluster.response"].n_consulted == 0
        assert plan.schedules["shard.write"].n_consulted == 0
        assert injector.n_fired() == 1

    def test_fired_ledger_matches_plan_describe(self):
        plan = FaultPlan(17, rate=0.8, max_faults=32)
        with FaultInjector(plan) as injector:
            for _ in range(20):
                injector._response_hook("service", "/disposition")
                injector._journal_hook({})
        described = plan.describe()["sites"]
        for site in ("service.response", "journal.append"):
            assert described[site]["n_consulted"] == 20
            assert (injector.n_fired(site)
                    == len(described[site]["fired"]))


class TestWorkerStartupFault:
    def test_unset_env_is_the_production_path(self, monkeypatch):
        monkeypatch.delenv(STARTUP_ENV, raising=False)
        assert worker_startup_fault(0) is None

    def test_malformed_spec_is_typed(self, monkeypatch):
        for bad in ("handshake_death", "/tmp/x:explode", ":bind_fail"):
            monkeypatch.setenv(STARTUP_ENV, bad)
            with pytest.raises(ServiceError, match=STARTUP_ENV):
                worker_startup_fault(0)

    def test_fires_once_per_worker_index(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            STARTUP_ENV, "{}:handshake_death".format(tmp_path))
        # First spawn of each index faults; respawns of the same index
        # come up clean -- the supervisor's retry must succeed.
        assert worker_startup_fault(0) == "handshake_death"
        assert worker_startup_fault(0) is None
        assert worker_startup_fault(1) == "handshake_death"
        assert worker_startup_fault(1) is None
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "worker-0.fired", "worker-1.fired"]


class TestCorruptFile:
    def test_tiny_file_is_refused(self, tmp_path):
        target = tmp_path / "tiny.bin"
        target.write_bytes(b"x" * 31)
        with pytest.raises(ServiceError, match="too small"):
            corrupt_file(target, seed=1)

    def test_flips_interior_bytes_deterministically(self, tmp_path):
        blob = bytes(range(256))
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(blob)
        b.write_bytes(blob)
        offsets = corrupt_file(a, seed=4, n_bytes=8)
        assert corrupt_file(b, seed=4, n_bytes=8) == offsets
        assert a.read_bytes() == b.read_bytes() != blob
        # Container magics survive: the first 16 bytes are never hit.
        assert min(offsets) >= 16
        assert a.read_bytes()[:16] == blob[:16]
