"""Chaos-suite fixtures: seeded fault schedules over real artifacts.

Every test that takes a ``chaos_seed`` argument runs once per seed in
the schedule set -- three seeds by default, overridable for CI sweeps
with ``REPRO_CHAOS_SEED=7,8,9`` (comma- or space-separated).  Each
seed fully determines a :class:`repro.chaos.FaultPlan`, so a failing
parametrization names the one integer needed to replay it.

The artifact fixtures mirror ``tests/service/conftest.py`` (same
builder, package-scoped for the same compaction-cost reason): a
lookup-table artifact whose decisions are exactly replayable offline,
plus a second program over the same device universe for hot-swap
traffic.
"""

import os

import pytest

from tests.service.conftest import build_artifact

#: Default seeded fault schedules (the CI chaos-smoke set).
CHAOS_SEEDS = (101, 202, 303)


def _chaos_seeds():
    raw = os.environ.get("REPRO_CHAOS_SEED")
    if not raw:
        return list(CHAOS_SEEDS)
    return [int(token) for token in raw.replace(",", " ").split()]


def pytest_generate_tests(metafunc):
    if "chaos_seed" in metafunc.fixturenames:
        metafunc.parametrize("chaos_seed", _chaos_seeds())


@pytest.fixture(scope="package")
def lookup_pair():
    """(dut, artifact) with a lookup table -- exact batch invariance."""
    return build_artifact(n_specs=6, dut_seed=99, lookup_resolution=17)


@pytest.fixture(scope="package")
def swap_pair():
    """Same device universe, different program (hot-swap traffic)."""
    return build_artifact(n_specs=6, dut_seed=99, lookup_resolution=13,
                          guard_band=0.12)


@pytest.fixture
def saved(tmp_path, lookup_pair, swap_pair):
    """Artifact files on disk: name -> path (fresh per test)."""
    paths = {}
    for name, (_, artifact) in (("lookup", lookup_pair),
                                ("swap", swap_pair)):
        path = tmp_path / "{}.rtp".format(name)
        artifact.save(path)
        paths[name] = str(path)
    return paths
