"""Multi-bin disposition on the floor: grades, banks, drift charts.

The binary conformance suite (``test_conformance.py``) pins that the
binning layer changes nothing on legacy programs; this file covers the
other direction -- a *graded* program actually bins.  The grade bank's
statistical accuracy is deliberately not asserted (it is a model);
what is asserted is the plumbing around it: bin/decision consistency,
batch invariance, report aggregation, the boundary-retest routing
(via a constant-margin stub bank) and the per-bin drift charts.
"""

import copy
import os

import numpy as np
import pytest

from repro.core.metrics import GUARD
from repro.core.specs import GOOD
from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.floor.monitor import DriftMonitor
from repro.process.dataset import SpecDataset
from repro.rules import ToleranceProfile, ToleranceRule
from repro.runtime.simulation import generate_instance_batches

from tests.synthetic import SyntheticDut, make_synthetic_dataset

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")
V1_PATH = os.path.join(FIXTURE_DIR, "v1_artifact.rtp")

GRADE_ORDER = ("FAST", "TYP", "SLOW", "REJECT")


def speed_profile():
    return ToleranceProfile(
        "speed-grades",
        [ToleranceRule("FAST", {"s0": (0.5, 1.0)}),
         ToleranceRule("TYP", {"s0": (-0.5, 0.5)}),
         ToleranceRule("SLOW", {"s0": (-1.0, -0.5)})],
        default_bin="REJECT")


def graded(train_bank):
    artifact = copy.copy(Artifact.load(V1_PATH))
    return artifact.with_profile(
        speed_profile(), train=make_synthetic_dataset(n=300, seed=71),
        train_bank=train_bank)


@pytest.fixture(scope="module")
def banked_artifact():
    return graded(train_bank=True)


@pytest.fixture(scope="module")
def profile_only_artifact():
    return graded(train_bank=False)


@pytest.fixture(scope="module")
def stream_rows():
    dut = SyntheticDut()
    return np.vstack(list(generate_instance_batches(
        dut, 200, 777, batch_size=64)))


class ConstantBank:
    """Every shipped device: same class, same top-2 margin."""

    def __init__(self, classes, index, margin):
        self.classes = tuple(classes)
        self._index = int(index)
        self._margin = float(margin)

    def predict_index(self, X):
        return np.full(X.shape[0], self._index)

    def margins(self, X):
        return np.full(X.shape[0], self._margin)


class TestGradedFloor:
    def test_bins_partition_the_population(self, profile_only_artifact,
                                           stream_rows):
        floor = Floor(profile_only_artifact)
        report = floor.run_stream([stream_rows], keep_decisions=True)
        assert report.bin_names == GRADE_ORDER
        assert sum(report.bin_counts.values()) == report.n_devices
        assert report.bin_counts["REJECT"] == report.n_scrapped
        grades = sum(report.bin_counts[g] for g in ("FAST", "TYP", "SLOW"))
        assert grades == report.n_shipped
        assert report.n_bin_retested == 0     # no bank -> no grade retests

    def test_bins_are_batch_invariant(self, banked_artifact, stream_rows):
        a = Floor(banked_artifact).run_stream(
            [stream_rows], batch_size=16, keep_decisions=True)
        b = Floor(banked_artifact).run_stream(
            [stream_rows], batch_size=101, keep_decisions=True)
        assert (a.decisions == b.decisions).all()
        assert (a.bins == b.bins).all()
        assert a.bin_counts == b.bin_counts

    def test_shipped_bins_match_truth_without_bank(
            self, profile_only_artifact, stream_rows):
        """Without a bank the floor grades from the full measurements."""
        floor = Floor(profile_only_artifact)
        outcome = floor.dispose(stream_rows)
        shipped = outcome.decisions == GOOD
        assert (outcome.bins[shipped]
                == outcome.truth_bins[shipped]).all()

    def test_floor_and_program_agree_on_bins(self, banked_artifact,
                                             stream_rows):
        floor_report = Floor(banked_artifact).run_stream(
            [stream_rows], keep_decisions=True)
        dataset = SpecDataset(banked_artifact.specifications, stream_rows)
        program_outcome = banked_artifact.program().run(dataset)
        assert (floor_report.decisions
                == program_outcome.decisions).all()
        assert (floor_report.bins == program_outcome.bins).all()

    def test_run_lots_aggregates_bin_counts(self, profile_only_artifact):
        floor = Floor(profile_only_artifact)
        report = floor.run_lots(SyntheticDut(), [(60, 1), (40, 2)])
        assert report.n_devices == 100
        per_lot = [lot.bin_counts for lot in report.lots]
        for name in GRADE_ORDER:
            assert report.bin_counts[name] == sum(
                counts[name] for counts in per_lot)
        assert report.n_bin_retested == sum(
            lot.n_bin_retested for lot in report.lots)

    def test_binary_report_has_no_bin_histogram_gaps(self,
                                                     profile_only_artifact):
        """Names sum even when a whole lot misses a grade entirely."""
        floor = Floor(profile_only_artifact)
        report = floor.run_lots(SyntheticDut(), [(5, 3)])
        assert set(report.bin_counts) == set(GRADE_ORDER)


class TestBoundaryRetestRouting:
    def stub_floor(self, profile_only_artifact, margin, boundary):
        artifact = copy.copy(profile_only_artifact)
        artifact.bank = ConstantBank(("FAST", "TYP", "SLOW"),
                                     index=2, margin=margin)
        return Floor(artifact, bin_boundary_margin=boundary)

    def test_confident_bank_grades_every_shipped_device(
            self, profile_only_artifact, stream_rows):
        floor = self.stub_floor(profile_only_artifact,
                                margin=10.0, boundary=0.5)
        outcome = floor.dispose(stream_rows)
        assert outcome.n_bin_retested == 0
        shipped = outcome.decisions == GOOD
        names = np.asarray(outcome.bin_names, dtype=object)[outcome.bins]
        assert (names[shipped] == "SLOW").all()

    def test_low_margin_routes_every_shipped_device_to_retest(
            self, profile_only_artifact, stream_rows):
        floor = self.stub_floor(profile_only_artifact,
                                margin=0.1, boundary=0.5)
        outcome = floor.dispose(stream_rows)
        shipped = outcome.decisions == GOOD
        assert outcome.n_bin_retested == int(np.sum(shipped))
        # ...and the retested devices carry their full-measurement grade
        assert (outcome.bins[shipped]
                == outcome.truth_bins[shipped]).all()

    def test_zero_boundary_margin_disables_retests(
            self, profile_only_artifact, stream_rows):
        floor = self.stub_floor(profile_only_artifact,
                                margin=0.0, boundary=0.0)
        outcome = floor.dispose(stream_rows)
        assert outcome.n_bin_retested == 0


class TestBinDriftCharts:
    def in_control_batch(self, baseline, n):
        kept = np.tile(np.asarray(baseline.mean), (n, 1))
        first = np.full(n, GOOD)
        return kept, first

    def test_bin_rate_excursion_fires_bin_alarm(self, banked_artifact):
        baseline = banked_artifact.baseline
        assert baseline.bin_rates         # with_profile populated them
        monitor = DriftMonitor(baseline, min_devices=50)
        kept, first = self.in_control_batch(baseline, 200)
        # Every device lands in FAST: far above its training rate.
        bins = np.full(200, GRADE_ORDER.index("FAST"))
        alarms = monitor.update(kept, first, bins=bins,
                                bin_names=GRADE_ORDER)
        kinds = {a.kind for a in alarms}
        assert "bin-rate" in kinds
        subjects = {a.subject for a in alarms if a.kind == "bin-rate"}
        assert any("FAST" in s for s in subjects)

    def test_training_mix_raises_no_bin_alarm(self, banked_artifact):
        baseline = banked_artifact.baseline
        monitor = DriftMonitor(baseline, min_devices=50)
        n = 400
        kept, first = self.in_control_batch(baseline, n)
        # Reproduce the training bin mix as closely as counts allow.
        bins = np.concatenate([
            np.full(int(round(baseline.bin_rates[name] * n)),
                    GRADE_ORDER.index(name))
            for name in GRADE_ORDER])[:n]
        alarms = monitor.update(kept[:len(bins)], first[:len(bins)],
                                bins=bins, bin_names=GRADE_ORDER)
        assert not [a for a in alarms if a.kind == "bin-rate"]

    def test_legacy_baseline_charts_nothing_per_bin(self,
                                                    profile_only_artifact):
        """A baseline without bin rates never raises bin alarms."""
        baseline = copy.copy(profile_only_artifact.baseline)
        baseline = type(baseline)(
            names=baseline.names, mean=baseline.mean, std=baseline.std,
            guard_rate=baseline.guard_rate, n_train=baseline.n_train,
            bin_rates=None)
        monitor = DriftMonitor(baseline, min_devices=10)
        kept = np.tile(np.asarray(baseline.mean), (100, 1))
        alarms = monitor.update(kept, np.full(100, GUARD),
                                bins=np.zeros(100, dtype=int),
                                bin_names=("PASS", "FAIL"))
        assert all(a.kind != "bin-rate" for a in alarms)
        # The window still tracks the observed mix for operators.
        assert monitor.bin_rates_window() == {"PASS": 1.0, "FAIL": 0.0}
