"""Artifact schema compatibility across the binning upgrade.

Schema v2 added the tolerance profile and grade bank to the artifact
file.  These tests pin the compatibility contract from the ISSUE: a
committed v1 file keeps loading (as the degenerate 2-bin program), a
v2 file round-trips its profile and bank, and corrupt payloads --
overlapping profiles, garbage profile documents, unknown schema
versions, a bank without its profile -- are rejected at *load* time
with a clean :class:`~repro.errors.ReproError` subclass, never
surfacing later on the floor.

The tamper tests rewrite the pickled payload directly: ``save()``
trusts its in-memory objects, so a hostile or bit-rotted file can hold
states no code path would construct -- exactly what ``loads()`` must
refuse.
"""

import copy
import io
import os
import pickle

import numpy as np
import pytest

from repro.errors import ArtifactError, ReproError, RuleError
from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.rules import ToleranceProfile, ToleranceRule

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")
V1_PATH = os.path.join(FIXTURE_DIR, "v1_artifact.rtp")


def speed_profile():
    """A 3-grade speed profile over the synthetic s0..s5 universe."""
    return ToleranceProfile(
        "speed-grades",
        [ToleranceRule("FAST", {"s0": (0.5, 1.0)}),
         ToleranceRule("TYP", {"s0": (-0.5, 0.5)}),
         ToleranceRule("SLOW", {"s0": (-1.0, -0.5)})],
        default_bin="REJECT")


@pytest.fixture(scope="module")
def v2_blob(tmp_path_factory):
    """Bytes of a saved v2 artifact carrying a profile and a bank.

    Built from the committed v1 file so the tamper tests do not depend
    on the (slower) package compaction fixtures.
    """
    artifact = copy.copy(Artifact.load(V1_PATH))
    from tests.synthetic import make_synthetic_dataset

    artifact.with_profile(speed_profile(),
                          train=make_synthetic_dataset(n=300, seed=71))
    path = tmp_path_factory.mktemp("compat") / "v2.rtp"
    artifact.save(path)
    return path.read_bytes()


def tampered(blob, mutate):
    """Re-serialize ``blob`` after ``mutate(payload)`` edits it."""
    payload = pickle.load(io.BytesIO(blob))
    mutate(payload)
    return pickle.dumps(payload, protocol=4)


class TestV1Compatibility:
    def test_v1_file_loads_without_profile(self):
        artifact = Artifact.load(V1_PATH)
        assert artifact.profile is None
        assert artifact.bank is None
        assert "degenerate 2-bin" in artifact.describe()

    def test_v1_file_runs_as_degenerate_two_bin_floor(self):
        floor = Floor(Artifact.load(V1_PATH))
        assert floor.bin_names == ("PASS", "FAIL")
        rng = np.random.default_rng(4)
        dut_rows = rng.uniform(-1.0, 1.0, (30, 6))
        outcome = floor.dispose(dut_rows)
        assert outcome.n_bin_retested == 0
        assert outcome.bin_counts() == {
            "PASS": int(np.sum(outcome.decisions == 1)),
            "FAIL": int(np.sum(outcome.decisions == -1)),
        }

    def test_v1_payload_carries_no_binning_keys(self):
        payload = pickle.load(io.BytesIO(open(V1_PATH, "rb").read()))
        assert payload["schema_version"] == 1
        assert "profile" not in payload["state"]
        assert "bank" not in payload["state"]


class TestV2RoundTrip:
    def test_profile_and_bank_survive_save_load(self, v2_blob):
        artifact = Artifact.loads(v2_blob)
        assert artifact.profile is not None
        assert artifact.profile.to_dict() == speed_profile().to_dict()
        assert artifact.bank is not None
        assert set(artifact.bank.classes) == {"FAST", "TYP", "SLOW"}

    def test_profile_stored_as_reviewable_plain_dict(self, v2_blob):
        """The file holds the JSON document, not pickled rule objects."""
        payload = pickle.load(io.BytesIO(v2_blob))
        profile = payload["state"]["profile"]
        assert isinstance(profile, dict)
        assert profile["name"] == "speed-grades"

    def test_loaded_bank_grades_like_the_saved_one(self, v2_blob):
        saved = Artifact.loads(v2_blob)
        reloaded = Artifact.loads(v2_blob)
        X = np.random.default_rng(7).normal(
            0.0, 0.5, (25, saved.bank.n_features_))
        assert (saved.bank.predict_index(X)
                == reloaded.bank.predict_index(X)).all()


class TestCorruptPayloadRejection:
    def test_overlapping_profile_rejected_with_rule_error(self, v2_blob):
        def overlap(payload):
            rules = payload["state"]["profile"]["rules"]
            slow = next(r for r in rules if r["bin"] == "SLOW")
            slow["conditions"]["s0"] = [-1.0, 0.6]   # bites into TYP

        blob = tampered(v2_blob, overlap)
        with pytest.raises(RuleError, match="overlap"):
            Artifact.loads(blob)

    def test_garbage_profile_document_rejected(self, v2_blob):
        blob = tampered(
            v2_blob,
            lambda p: p["state"].__setitem__("profile", {"bogus": 1}))
        with pytest.raises(RuleError):
            Artifact.loads(blob)

    def test_profile_naming_unknown_spec_rejected(self, v2_blob):
        def rename(payload):
            rules = payload["state"]["profile"]["rules"]
            for rule in rules:
                rule["conditions"] = {
                    "ghost": v for v in rule["conditions"].values()}

        blob = tampered(v2_blob, rename)
        with pytest.raises(RuleError):
            Artifact.loads(blob)

    def test_bank_without_profile_rejected(self, v2_blob):
        blob = tampered(
            v2_blob, lambda p: p["state"].__setitem__("profile", None))
        with pytest.raises(ArtifactError, match="without a tolerance"):
            Artifact.loads(blob)

    def test_unknown_schema_version_rejected(self, v2_blob):
        blob = tampered(
            v2_blob, lambda p: p.__setitem__("schema_version", 99))
        with pytest.raises(ArtifactError, match="schema version 99"):
            Artifact.loads(blob)

    def test_wrong_magic_rejected(self, v2_blob):
        blob = tampered(
            v2_blob, lambda p: p.__setitem__("magic", "not/anything"))
        with pytest.raises(ArtifactError, match="not a repro"):
            Artifact.loads(blob)

    def test_missing_required_state_rejected(self, v2_blob):
        blob = tampered(
            v2_blob, lambda p: p["state"].pop("specifications"))
        with pytest.raises(ArtifactError, match="missing required state"):
            Artifact.loads(blob)

    def test_truncated_file_rejected(self, v2_blob):
        with pytest.raises(ArtifactError, match="cannot read"):
            Artifact.loads(v2_blob[:100])

    def test_rejections_are_repro_errors(self, v2_blob):
        """Every load failure is catchable as the library root error."""
        for exc in (ArtifactError, RuleError):
            assert issubclass(exc, ReproError)
