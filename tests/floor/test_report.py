"""Lot / floor report accounting tests."""

import pytest

from repro.floor import FloorReport, LotReport


def _lot(lot="lot0", n=100, shipped=90, scrapped=10, retested=5,
         guard=5, yl=1, de=2, cost=300.0, full=600.0, wall=0.5):
    return LotReport(
        lot=lot, n_devices=n, n_shipped=shipped, n_scrapped=scrapped,
        n_retested=retested, n_guard=guard, n_yield_loss=yl,
        n_defect_escape=de, total_cost=cost, full_cost=full,
        wall_seconds=wall)


class TestLotReport:
    def test_rates(self):
        lot = _lot()
        assert lot.yield_loss_rate == pytest.approx(0.01)
        assert lot.defect_escape_rate == pytest.approx(0.02)
        assert lot.guard_rate == pytest.approx(0.05)
        assert lot.cost_per_device == pytest.approx(3.0)
        assert lot.cost_reduction == pytest.approx(0.5)
        assert lot.devices_per_minute == pytest.approx(12000.0)

    def test_empty_lot_has_zero_rates(self):
        lot = _lot(n=0, shipped=0, scrapped=0, retested=0, guard=0,
                   yl=0, de=0, cost=0.0, full=0.0)
        assert lot.yield_loss_rate == 0.0
        assert lot.cost_per_device == 0.0
        assert lot.cost_reduction == 0.0

    def test_summary_mentions_key_numbers(self):
        text = _lot().summary()
        for token in ("lot0", "shipped", "retested", "devices/min",
                      "alarm"):
            assert token in text
        assert str(_lot()) == _lot().summary()


class TestFloorReport:
    def test_aggregates_over_lots(self):
        report = FloorReport([
            _lot("a", n=100, cost=300.0, full=600.0, yl=1, de=2),
            _lot("b", n=300, shipped=280, scrapped=20, cost=900.0,
                 full=1800.0, yl=3, de=0, wall=1.5),
        ])
        assert report.n_devices == 400
        assert report.n_shipped == 370
        assert report.yield_loss_rate == pytest.approx(4 / 400)
        assert report.defect_escape_rate == pytest.approx(2 / 400)
        assert report.total_cost == pytest.approx(1200.0)
        assert report.cost_reduction == pytest.approx(0.5)
        assert report.wall_seconds == pytest.approx(2.0)
        assert report.devices_per_minute == pytest.approx(12000.0)

    def test_rows_one_per_lot(self):
        report = FloorReport([_lot("a"), _lot("b")])
        rows = report.rows()
        assert len(rows) == 2
        assert rows[0][0] == "a"

    def test_summary_has_total_line(self):
        report = FloorReport([_lot("a"), _lot("b")])
        lines = report.summary().splitlines()
        assert len(lines) == 3
        assert lines[-1].startswith("total:")

    def test_empty_report(self):
        report = FloorReport()
        assert report.n_devices == 0
        assert report.yield_loss_rate == 0.0
        assert report.alarms == ()
