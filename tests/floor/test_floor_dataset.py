"""Shard stores on the production floor: replay ≡ direct simulation."""

import numpy as np
import pytest

from repro.data import ensure_dataset, generate_shards
from repro.errors import CompactionError
from repro.floor import TestFloor

from tests.synthetic import SyntheticDut

N, SEED = 70, 21


@pytest.fixture(scope="module")
def dut():
    return SyntheticDut()


@pytest.fixture(scope="module")
def store(dut, tmp_path_factory):
    root = tmp_path_factory.mktemp("floor-store") / "s"
    return generate_shards(root, dut, N, SEED, shard_rows=16)


def _decisions(report):
    return np.asarray(report.decisions)


class TestRunSharded:
    def test_replay_equals_direct_simulation(self, artifact, dut, store):
        floor = TestFloor(artifact)
        direct = floor.run_simulated(dut, N, SEED, keep_decisions=True)
        replay = floor.run_sharded(store, keep_decisions=True)
        assert np.array_equal(_decisions(direct), _decisions(replay))
        assert direct.n_shipped == replay.n_shipped
        assert direct.n_scrapped == replay.n_scrapped
        assert direct.n_retested == replay.n_retested

    def test_prefix_replay_equals_smaller_run(self, artifact, dut, store):
        floor = TestFloor(artifact)
        direct = floor.run_simulated(dut, 30, SEED, keep_decisions=True)
        replay = floor.run_sharded(store, n_devices=30,
                                   keep_decisions=True)
        assert np.array_equal(_decisions(direct), _decisions(replay))

    def test_batch_size_is_invisible(self, artifact, store):
        floor = TestFloor(artifact)
        a = floor.run_sharded(store, keep_decisions=True, batch_size=7)
        b = floor.run_sharded(store, keep_decisions=True, batch_size=64)
        assert np.array_equal(_decisions(a), _decisions(b))

    def test_overdraw_rejected(self, artifact, store):
        floor = TestFloor(artifact)
        with pytest.raises(CompactionError):
            floor.run_sharded(store, n_devices=N + 1)

    def test_run_simulated_rejects_seed_mismatch(self, artifact, dut,
                                                 store):
        floor = TestFloor(artifact)
        with pytest.raises(CompactionError):
            floor.run_simulated(dut, N, SEED + 1, dataset=store)


class TestRunLots:
    def test_dataset_root_reports_match_direct(self, artifact, dut,
                                               tmp_path):
        lots = [(24, 5), (40, 6)]
        direct = TestFloor(artifact).run_lots(dut, lots)
        cached = TestFloor(artifact).run_lots(
            dut, lots, dataset_root=tmp_path)
        for a, b in zip(direct.lots, cached.lots):
            assert (a.n_devices, a.n_shipped, a.n_scrapped,
                    a.n_retested) == \
                   (b.n_devices, b.n_shipped, b.n_scrapped,
                    b.n_retested)

    def test_repeat_schedule_reuses_stores(self, artifact, dut,
                                           tmp_path):
        lots = [(16, 5)]
        TestFloor(artifact).run_lots(dut, lots, dataset_root=tmp_path)
        store = ensure_dataset(tmp_path, dut, 16, 5)
        hashes = store.shard_hashes()
        TestFloor(artifact).run_lots(dut, lots, dataset_root=tmp_path)
        assert ensure_dataset(tmp_path, dut, 16, 5).shard_hashes() \
            == hashes
