"""Test-program artifact persistence, validation and security."""

import pickle

import numpy as np
import pytest

from repro.core.guardband import GuardBandedClassifier
from repro.core.specs import Specification, SpecificationSet
from repro.errors import ArtifactError
from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.floor.artifact import MAGIC, SCHEMA_VERSION
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


class TestRoundTrip:
    def test_save_load_preserves_program(self, tmp_path, artifact,
                                         populations):
        _, test = populations
        path = tmp_path / "program.rtp"
        artifact.save(path)
        loaded = Artifact.load(path)

        assert loaded.kept == artifact.kept
        assert loaded.eliminated == artifact.eliminated
        assert loaded.specifications == artifact.specifications
        assert loaded.baseline == artifact.baseline
        assert loaded.train_metrics == artifact.train_metrics
        assert (loaded.cost_model.test_costs
                == artifact.cost_model.test_costs)

    def test_reloaded_decisions_bit_identical(self, tmp_path, artifact,
                                              populations):
        _, test = populations
        path = tmp_path / "program.rtp"
        artifact.save(path)
        loaded = Artifact.load(path)
        before = Floor(artifact).run_dataset(
            test, keep_decisions=True)
        after = Floor(loaded).run_dataset(test, keep_decisions=True)
        assert np.array_equal(before.decisions, after.decisions)
        assert before.total_cost == after.total_cost

    def test_provenance_header(self, artifact):
        prov = artifact.provenance
        assert prov["device"] == "synthetic"
        assert prov["train_seed"] == 1
        assert prov["generation"] == "per-instance"
        assert prov["n_train"] == 400
        assert prov["repro_version"]
        assert prov["kept"] == artifact.kept

    def test_lookup_survives_round_trip(self, tmp_path, artifact,
                                        populations):
        _, test = populations
        art = Artifact(
            artifact.model, artifact.specifications,
            cost_model=artifact.cost_model,
            baseline=artifact.baseline,
            provenance=artifact.provenance).with_lookup(resolution=21)
        path = tmp_path / "lut.rtp"
        art.save(path)
        loaded = Artifact.load(path)
        assert loaded.lookup is not None
        assert np.array_equal(loaded.lookup.table, art.lookup.table)
        values = test.project(art.kept).values
        assert np.array_equal(loaded.lookup.classify(values),
                              art.lookup.classify(values))

    def test_unpicklable_model_factory_is_dropped_on_save(self, tmp_path):
        train = make_synthetic_dataset(n=120, seed=5)
        model = GuardBandedClassifier(
            train.names[:3], delta=0.05,
            model_factory=lambda: SVC(C=20.0)).fit(train)
        art = Artifact(model, train.specifications)
        path = tmp_path / "lambda.rtp"
        art.save(path)                       # lambda must not be pickled
        loaded = Artifact.load(path)
        assert loaded.model.model_factory is None
        # The in-memory model keeps its factory (save must not mutate).
        assert art.model.model_factory is not None
        X = train.values[:7]
        assert np.array_equal(loaded.model.predict_measurements(X[:, :3]),
                              model.predict_measurements(X[:, :3]))


class TestValidation:
    def test_junk_file_rejected(self, tmp_path):
        path = tmp_path / "junk.rtp"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(ArtifactError, match="cannot read"):
            Artifact.load(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "magic.rtp"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(ArtifactError, match="not a repro"):
            Artifact.load(path)

    def test_future_schema_version_rejected(self, tmp_path, artifact):
        path = tmp_path / "future.rtp"
        artifact.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ArtifactError, match="schema version"):
            Artifact.load(path)

    def test_missing_state_rejected(self, tmp_path):
        path = tmp_path / "empty.rtp"
        path.write_bytes(pickle.dumps(
            {"magic": MAGIC, "schema_version": SCHEMA_VERSION,
             "state": {"provenance": {}}}))
        with pytest.raises(ArtifactError, match="missing required"):
            Artifact.load(path)

    def test_malicious_global_rejected(self, tmp_path):
        """The restricted unpickler must refuse non-repro callables."""
        class Evil:
            def __reduce__(self):
                import os

                return (os.system, ("echo pwned > /tmp/pwned",))

        path = tmp_path / "evil.rtp"
        path.write_bytes(pickle.dumps(
            {"magic": MAGIC, "schema_version": SCHEMA_VERSION,
             "state": Evil()}))
        with pytest.raises(ArtifactError, match="disallowed global"):
            Artifact.load(path)

    def test_numpy_exec_gadget_rejected(self, tmp_path):
        """A blanket numpy allowance would resolve exec gadgets such
        as numpy.testing's runstring; only the three array
        reconstruction globals may load."""
        import numpy.testing

        runstring = numpy.testing._private.utils.runstring

        class Gadget:
            def __reduce__(self):
                return (runstring, ("import os\nos.system('true')", {}))

        path = tmp_path / "gadget.rtp"
        path.write_bytes(pickle.dumps(
            {"magic": MAGIC, "schema_version": SCHEMA_VERSION,
             "state": Gadget()}))
        with pytest.raises(ArtifactError, match="disallowed global"):
            Artifact.load(path)

    def test_spec_name_mismatch_rejected(self, artifact):
        other = SpecificationSet([
            Specification("x{}".format(i), "u", 0.0, -1.0, 1.0)
            for i in range(len(artifact.specifications))])
        with pytest.raises(ArtifactError, match="names differ"):
            artifact.validate_specifications(other)

    def test_range_mismatch_rejected(self, artifact):
        specs = list(artifact.specifications)
        s0 = specs[0]
        specs[0] = Specification(s0.name, s0.unit, s0.nominal,
                                 s0.low, s0.high * 2.0)
        with pytest.raises(ArtifactError, match="range"):
            artifact.validate_specifications(SpecificationSet(specs))

    def test_matching_bench_accepted(self, artifact, populations):
        train, _ = populations
        assert artifact.validate_specifications(
            train.specifications) is artifact

    def test_model_features_must_be_in_specs(self, populations,
                                             compaction):
        train, _ = populations
        with pytest.raises(ArtifactError, match="missing"):
            Artifact(
                compaction.model,
                train.specifications.subset(train.names[:1]))


class TestDescribe:
    def test_describe_mentions_key_facts(self, artifact):
        text = artifact.describe()
        assert "schema v{}".format(SCHEMA_VERSION) in text
        assert "synthetic" in text
        assert "kept" in text and "eliminated" in text
