"""Shared fixtures for the floor tests.

One synthetic compaction run feeds the whole package: the fixtures are
package-scoped because the floor tests only *read* the artifact (the
engine never mutates it), and recompacting per test would dominate the
suite's runtime.
"""

import pytest

from repro.core.costmodel import TestCostModel
from repro.core.pipeline import CompactionPipeline
from repro.floor import TestProgramArtifact
from repro.learn import SVC

from tests.synthetic import make_synthetic_dataset


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (fast: no per-fit tuning)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


@pytest.fixture(scope="package")
def populations():
    train = make_synthetic_dataset(n=400, seed=1)
    test = make_synthetic_dataset(n=250, seed=2)
    return train, test


@pytest.fixture(scope="package")
def compaction(populations):
    train, test = populations
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    return pipeline.run(train, test)


@pytest.fixture(scope="package")
def artifact(populations, compaction):
    train, _ = populations
    return TestProgramArtifact.from_result(
        compaction, train,
        cost_model=TestCostModel.uniform(train.names),
        device="synthetic", train_seed=1)
