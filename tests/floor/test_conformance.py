"""Binary-parity conformance: the binning layer changes *nothing*.

``tests/floor/fixtures/binary_parity.json`` pins the decisions, counts
and costs a pre-binning revision produced for a deterministic traffic
pattern.  Every test here replays that traffic through today's code --
the floor at every (engine, batch_size, n_jobs) combination, the bare
``TestProgram.run`` path, the per-request dispose-slice view and the
live HTTP service -- and asserts bit-identical output.  On top of the
legacy surface, the degenerate 2-bin structure the fixtures' v1
artifact must induce is checked explicitly: ``PASS`` count equals
shipped, ``FAIL`` equals scrapped, zero grade retests.

These tests are the refactor-safety contract named in the ISSUE: any
change that shifts a single binary decision fails loudly here.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.floor.engine import disposition_counts
from repro.process.dataset import SpecDataset
from repro.runtime.simulation import generate_instance_batches
from repro.service import (
    ArtifactRegistry,
    FloorService,
    TrafficPlan,
    offline_reference,
    run_load,
)

from tests.synthetic import SyntheticDut

FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")

#: Replay geometry -- must match tests/floor/fixtures/make_fixtures.py.
STREAM_N = 257
STREAM_SEED = 12345
ENGINES = ("scalar", "batched")
BATCH_SIZES = (32, 101)
N_JOBS = (None, 2)

COUNT_KEYS = ("n_devices", "n_shipped", "n_scrapped", "n_retested",
              "n_guard", "n_yield_loss", "n_defect_escape")


@pytest.fixture(scope="module")
def fixture_data():
    with open(os.path.join(FIXTURE_DIR, "binary_parity.json")) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def legacy_artifact():
    """The committed schema-v1 artifact the fixtures were built with."""
    return Artifact.load(
        os.path.join(FIXTURE_DIR, "v1_artifact.rtp"))


def assert_counts_match(report, expected):
    for key in COUNT_KEYS:
        assert getattr(report, key) == expected[key], key


class TestFloorParity:
    """run_simulated reproduces the pinned decisions at every config."""

    @pytest.mark.parametrize("n_jobs", N_JOBS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_bit_identical_to_fixture(self, fixture_data, legacy_artifact,
                                      engine, batch_size, n_jobs):
        key = "{}|b{}|j{}".format(engine, batch_size, n_jobs or 1)
        expected = fixture_data["runs"][key]
        floor = Floor(legacy_artifact, batch_size=batch_size)
        report = floor.run_simulated(
            SyntheticDut(), STREAM_N, STREAM_SEED, n_jobs=n_jobs,
            engine=engine, keep_decisions=True)

        assert [int(d) for d in report.decisions] == expected["decisions"]
        assert_counts_match(report, expected["counts"])
        assert report.total_cost == expected["total_cost"]
        assert report.full_cost == expected["full_cost"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_degenerate_bins_relabel_the_binary_decision(
            self, fixture_data, legacy_artifact, engine):
        """A v1 artifact bins as PASS/FAIL -- nothing more."""
        expected = fixture_data["runs"]["{}|b32|j1".format(engine)]
        floor = Floor(legacy_artifact, batch_size=32)
        report = floor.run_simulated(
            SyntheticDut(), STREAM_N, STREAM_SEED, engine=engine,
            keep_decisions=True)

        assert report.bin_names == ("PASS", "FAIL")
        assert report.n_bin_retested == 0
        assert report.bin_counts == {
            "PASS": expected["counts"]["n_shipped"],
            "FAIL": expected["counts"]["n_scrapped"],
        }
        names = np.asarray(report.bin_names, dtype=object)[report.bins]
        shipped = np.asarray(report.decisions) == 1
        assert (names[shipped] == "PASS").all()
        assert (names[~shipped] == "FAIL").all()


class TestProgramParity:
    """The bare tester path agrees with the pinned floor decisions."""

    def test_program_run_matches_fixture(self, fixture_data,
                                         legacy_artifact):
        expected = fixture_data["runs"]["scalar|b32|j1"]
        dut = SyntheticDut()
        rows = np.vstack(list(generate_instance_batches(
            dut, STREAM_N, STREAM_SEED, batch_size=32)))
        dataset = SpecDataset(dut.specifications, rows)

        outcome = legacy_artifact.program().run(dataset)

        assert [int(d) for d in outcome.decisions] == expected["decisions"]
        assert outcome.total_cost == expected["total_cost"]
        assert outcome.full_cost == expected["full_cost"]
        assert outcome.n_retested == expected["counts"]["n_retested"]
        # A v1 artifact carries no profile, and the bare tester -- unlike
        # the floor -- only bins when one is attached.
        assert outcome.bins is None
        assert outcome.n_bin_retested == 0

        # Attaching the degenerate profile relabels without moving
        # a single decision, cost or count.
        from repro.rules import ToleranceProfile
        from repro.tester.program import TestProgram

        program = legacy_artifact.program()
        binned = TestProgram(
            program.classifier, cost_model=program.cost_model,
            profile=ToleranceProfile.binary_default(
                dataset.specifications)).run(dataset)
        assert (binned.decisions == outcome.decisions).all()
        assert binned.total_cost == outcome.total_cost
        assert binned.n_bin_retested == 0
        assert binned.bin_counts() == {
            "PASS": expected["counts"]["n_shipped"],
            "FAIL": expected["counts"]["n_scrapped"],
        }


class TestServiceSliceParity:
    """dispose() slicing -- the micro-batcher's result view -- is pinned."""

    def test_slice_counts_match_fixture(self, fixture_data,
                                        legacy_artifact):
        expected = fixture_data["service"]
        floor = Floor(legacy_artifact, batch_size=64)
        dut = SyntheticDut()
        rng = np.random.default_rng(9)
        chunk = np.vstack([dut.measure(dut.sample_parameters(rng))
                           for _ in range(40)])
        outcome = floor.dispose(chunk)

        assert [int(d) for d in outcome.decisions] == expected["decisions"]
        for name, (start, stop) in (("counts_first20", (0, 20)),
                                    ("counts_rest", (20, 40))):
            got = disposition_counts(outcome.decisions[start:stop],
                                     outcome.first_pass[start:stop],
                                     outcome.truth[start:stop])
            assert {k: int(v) for k, v in got.items()} == expected[name]


class TestHttpServiceParity:
    """The served decisions for the fixture traffic are pinned too."""

    @pytest.mark.parametrize("coalescing", [
        dict(max_batch_size=256, max_latency=0.02),
        dict(max_batch_size=8, max_latency=0.0005),
    ])
    def test_served_decisions_match_fixture(self, tmp_path, fixture_data,
                                            legacy_artifact, coalescing):
        path = str(tmp_path / "legacy.rtp")
        legacy_artifact.save(path)
        registry = ArtifactRegistry()
        registry.register("legacy", "1", path)
        plan = TrafficPlan("legacy", SyntheticDut(), STREAM_N,
                           seed=STREAM_SEED,
                           reference=offline_reference(legacy_artifact))

        async def main():
            service = FloorService(registry, **coalescing)
            await service.start("127.0.0.1", 0)
            try:
                return await run_load("127.0.0.1", service.port, [plan],
                                      n_clients=4, max_chunk=9, seed=3)
            finally:
                await service.stop()

        report = asyncio.run(asyncio.wait_for(main(), 60))
        assert report.equivalent
        (outcome,) = report.plans
        assert outcome.equivalent is True
        # Not just self-consistent: pinned against the committed fixture.
        expected = fixture_data["runs"]["scalar|b32|j1"]["decisions"]
        assert [int(d) for d in outcome.decisions] == expected
        assert outcome.bins is not None
        shipped = outcome.decisions == 1
        assert (np.asarray(outcome.bins, dtype=object)[shipped]
                == "PASS").all()
