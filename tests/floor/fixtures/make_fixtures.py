"""Regenerate the binary-parity conformance fixtures.

Run from the repo root against a known-good revision::

    PYTHONPATH=src:. python tests/floor/fixtures/make_fixtures.py

Produces, in this directory:

``v1_artifact.rtp``
    A schema-v1 test-program artifact saved by the pre-binning code
    (committed once; newer schema versions must keep loading it as the
    degenerate 2-bin program).
``binary_parity.json``
    The exact floor decisions, lot-report counts and service-level
    count dicts for a deterministic synthetic traffic pattern, at
    every (engine, batch_size, n_jobs) combination the conformance
    suite replays.  The suite asserts today's code reproduces these
    *bit-identically* -- the refactor-safety contract for the binary
    disposition path.

The fixtures are committed, not rebuilt in CI: their whole point is to
pin the behaviour of a past revision.  Regenerate only when the
contract itself is deliberately changed, and say so in the PR.
"""

import json
import os
import sys

import numpy as np

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(FIXTURE_DIR, "..", "..", ".."))

from repro.core.costmodel import TestCostModel  # noqa: E402
from repro.core.pipeline import CompactionPipeline  # noqa: E402
from repro.floor import TestFloor, TestProgramArtifact  # noqa: E402
from repro.learn import SVC  # noqa: E402

from tests.synthetic import SyntheticDut, make_synthetic_dataset  # noqa: E402

#: The traffic/deploy geometry the conformance suite replays.
TRAIN_N = 300
TEST_N = 200
STREAM_N = 257  # deliberately not a multiple of any batch size
STREAM_SEED = 12345
ENGINES = ("scalar", "batched")
BATCH_SIZES = (32, 101)
N_JOBS = (None, 2)


class FixedSVCFactory:
    """Picklable fixed-hyperparameter factory (deterministic, fast)."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def build_artifact():
    train = make_synthetic_dataset(n=TRAIN_N, seed=71)
    test = make_synthetic_dataset(n=TEST_N, seed=72)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=0.06,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=TestCostModel.uniform(train.names),
        device="synthetic", train_seed=71)
    return artifact


def main():
    artifact = build_artifact()
    artifact.save(os.path.join(FIXTURE_DIR, "v1_artifact.rtp"))

    dut = SyntheticDut()
    runs = {}
    for engine in ENGINES:
        for batch_size in BATCH_SIZES:
            for n_jobs in N_JOBS:
                floor = TestFloor(artifact, batch_size=batch_size)
                report = floor.run_simulated(
                    dut, STREAM_N, STREAM_SEED, n_jobs=n_jobs,
                    engine=engine, keep_decisions=True)
                key = "{}|b{}|j{}".format(engine, batch_size,
                                          n_jobs or 1)
                runs[key] = {
                    "decisions": [int(d) for d in report.decisions],
                    "counts": {
                        "n_devices": report.n_devices,
                        "n_shipped": report.n_shipped,
                        "n_scrapped": report.n_scrapped,
                        "n_retested": report.n_retested,
                        "n_guard": report.n_guard,
                        "n_yield_loss": report.n_yield_loss,
                        "n_defect_escape": report.n_defect_escape,
                    },
                    "total_cost": report.total_cost,
                    "full_cost": report.full_cost,
                }

    # The per-request service view: dispose() slices for two chunks.
    floor = TestFloor(artifact, batch_size=64)
    rng = np.random.default_rng(9)
    chunk = np.vstack([dut.measure(dut.sample_parameters(rng))
                       for _ in range(40)])
    outcome = floor.dispose(chunk)
    service = {
        "decisions": [int(d) for d in outcome.decisions],
        "counts_first20": {
            k: int(v) for k, v in _counts(outcome, 0, 20).items()},
        "counts_rest": {
            k: int(v) for k, v in _counts(outcome, 20, 40).items()},
    }

    payload = {
        "stream": {"n": STREAM_N, "seed": STREAM_SEED},
        "runs": runs,
        "service": service,
    }
    out = os.path.join(FIXTURE_DIR, "binary_parity.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print("wrote", out)
    first = next(iter(runs.values()))
    if any(run != first for run in runs.values()):
        raise SystemExit("fixture runs disagree across engine/batch/jobs")
    print("all {} runs identical; counts: {}".format(
        len(runs), first["counts"]))


def _counts(outcome, start, stop):
    from repro.floor.engine import disposition_counts

    return disposition_counts(outcome.decisions[start:stop],
                              outcome.first_pass[start:stop],
                              outcome.truth[start:stop])


if __name__ == "__main__":
    main()
