"""Streaming test-floor engine tests.

The load-bearing property is the determinism contract: identical
decisions at any batch size, any stream framing, any worker count and
across a save/load into a fresh process.
"""

import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ArtifactError, CompactionError
from repro.floor import TestFloor as Floor
from repro.floor import TestProgramArtifact as Artifact
from repro.tester import RETEST_ACCEPT, RETEST_FULL, RETEST_REJECT
from repro.tester import TestProgram as Program

from tests.synthetic import SyntheticDut

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestAgainstTestProgram:
    """The floor must disposition exactly like the batch TestProgram."""

    @pytest.mark.parametrize(
        "policy", [RETEST_FULL, RETEST_ACCEPT, RETEST_REJECT])
    def test_decisions_and_cost_match(self, artifact, populations,
                                      policy):
        _, test = populations
        program = Program(artifact.model,
                              cost_model=artifact.cost_model,
                              retest_policy=policy)
        outcome = program.run(test)
        floor = Floor(artifact, retest_policy=policy)
        report = floor.run_dataset(test, keep_decisions=True)

        assert np.array_equal(report.decisions, outcome.decisions)
        assert report.n_retested == outcome.n_retested
        assert report.total_cost == pytest.approx(outcome.total_cost)
        assert report.full_cost == pytest.approx(outcome.full_cost)
        assert report.n_yield_loss == outcome.report.n_yield_loss
        assert report.n_defect_escape == outcome.report.n_defect_escape
        # LotReport.n_guard counts *first-pass* guard devices; the
        # TestOutcome report evaluates decisions after retest.
        assert report.n_guard == int(np.sum(outcome.first_pass == 0))

    def test_report_counts_are_consistent(self, artifact, populations):
        _, test = populations
        report = Floor(artifact).run_dataset(test)
        assert report.n_devices == len(test)
        assert report.n_shipped + report.n_scrapped == report.n_devices
        assert report.wall_seconds > 0
        assert report.devices_per_minute > 0


class TestBatchInvariance:
    def test_decisions_identical_at_any_batch_size(self, artifact,
                                                   populations):
        _, test = populations
        floor = Floor(artifact)
        reference = floor.run_dataset(test, keep_decisions=True)
        for batch_size in (7, 64, 100000):
            report = floor.run_dataset(test, batch_size=batch_size,
                                       keep_decisions=True)
            assert np.array_equal(report.decisions, reference.decisions)
            assert report.total_cost == reference.total_cost
            assert report.n_guard == reference.n_guard

    def test_stream_framing_is_irrelevant(self, artifact, populations):
        """Row-by-row, chunked and whole-array streams agree."""
        _, test = populations
        floor = Floor(artifact)
        whole = floor.run_stream([test.values], batch_size=32,
                                 keep_decisions=True)
        by_row = floor.run_stream(iter(test.values), batch_size=32,
                                  keep_decisions=True)
        ragged = floor.run_stream(
            [test.values[:10], test.values[10:11], test.values[11:200],
             test.values[200:]],
            batch_size=32, keep_decisions=True)
        assert np.array_equal(whole.decisions, by_row.decisions)
        assert np.array_equal(whole.decisions, ragged.decisions)

    def test_lookup_floor_matches_lookup_program(self, artifact,
                                                 populations):
        _, test = populations
        art = Artifact(
            artifact.model, artifact.specifications,
            cost_model=artifact.cost_model,
            provenance=artifact.provenance).with_lookup(resolution=21)
        floor = Floor(art)           # lookup auto-selected
        program = Program(art.lookup, cost_model=art.cost_model)
        report = floor.run_dataset(test, keep_decisions=True)
        outcome = program.run(test)
        assert np.array_equal(report.decisions, outcome.decisions)

    def test_empty_stream_yields_empty_report(self, artifact):
        report = Floor(artifact).run_stream([], keep_decisions=True)
        assert report.n_devices == 0
        assert report.decisions.size == 0
        assert report.cost_per_device == 0.0


class TestSimulatedTraffic:
    def test_worker_count_is_irrelevant(self, artifact):
        floor = Floor(artifact, monitor=False)
        serial = floor.run_simulated(SyntheticDut(), 300, seed=11,
                                     keep_decisions=True)
        parallel = floor.run_simulated(SyntheticDut(), 300, seed=11,
                                       n_jobs=2, keep_decisions=True)
        assert np.array_equal(serial.decisions, parallel.decisions)
        assert serial.total_cost == parallel.total_cost

    def test_batch_size_is_irrelevant_for_simulated(self, artifact):
        floor = Floor(artifact, monitor=False)
        a = floor.run_simulated(SyntheticDut(), 200, seed=3,
                                batch_size=17, keep_decisions=True)
        b = floor.run_simulated(SyntheticDut(), 200, seed=3,
                                batch_size=101, keep_decisions=True)
        assert np.array_equal(a.decisions, b.decisions)

    def test_matches_materialized_dataset(self, artifact):
        """Streamed simulation equals generate_dataset + run_dataset."""
        from repro.process.montecarlo import generate_dataset

        dut = SyntheticDut()
        floor = Floor(artifact, monitor=False)
        streamed = floor.run_simulated(dut, 150, seed=21,
                                       keep_decisions=True)
        dataset = generate_dataset(dut, 150, seed=21)
        materialized = floor.run_dataset(dataset, keep_decisions=True)
        assert np.array_equal(streamed.decisions,
                              materialized.decisions)

    def test_run_lots_schedule(self, artifact):
        floor = Floor(artifact, monitor=False)
        report = floor.run_lots(SyntheticDut(), [(120, 5), (80, 6)])
        assert len(report.lots) == 2
        assert report.lots[0].lot == "lot0(seed=5)"
        assert report.n_devices == 200
        assert report.n_devices == sum(
            lot.n_devices for lot in report.lots)
        assert len(report.rows()) == 2

    def test_fresh_process_reload_identical_decisions(self, tmp_path,
                                                      artifact):
        """The acceptance-criteria round trip: deploy, reload in a new
        interpreter, disposition the same simulated stream."""
        path = tmp_path / "program.rtp"
        artifact.save(path)
        floor = Floor(artifact, monitor=False)
        local = floor.run_simulated(SyntheticDut(), 250, seed=17,
                                    batch_size=64, keep_decisions=True)

        out = tmp_path / "decisions.npy"
        script = (
            "import sys\n"
            "sys.path[:0] = [{root!r}, {src!r}]\n"
            "import numpy as np\n"
            "from repro.floor import TestFloor\n"
            "from tests.synthetic import SyntheticDut\n"
            "floor = TestFloor({path!r}, monitor=False)\n"
            "report = floor.run_simulated(SyntheticDut(), 250, seed=17,\n"
            "                             batch_size=101,\n"
            "                             keep_decisions=True)\n"
            "np.save({out!r}, report.decisions)\n"
        ).format(root=str(REPO_ROOT), src=str(REPO_ROOT / "src"),
                 path=str(path), out=str(out))
        subprocess.run([sys.executable, "-c", script], check=True,
                       timeout=300)
        fresh = np.load(out)
        assert np.array_equal(local.decisions, fresh)


class TestLotEndAlarms:
    def test_transient_drift_rolls_out_of_the_report(self, artifact,
                                                     populations):
        """A mid-lot excursion that has left the rolling window must
        not be reported as active at lot end."""
        from repro.floor import DriftMonitor

        _, test = populations
        drifted = test.values.copy()
        kept_idx = [test.specifications.index(n)
                    for n in artifact.kept]
        drifted[:, kept_idx] += 5.0      # far off the baseline
        monitor = DriftMonitor(artifact.baseline, window_batches=3,
                               min_devices=50)
        floor = Floor(artifact, monitor=monitor)

        # Drift only, never recovered: alarms at lot end.
        report = floor.run_stream([drifted], batch_size=50)
        assert any(a.kind == "spec-mean" for a in report.alarms)

        # Drifted head, healthy tail long enough to roll the window:
        # lot ends in control, so no active alarms.
        mixed = np.vstack([drifted[:100], test.values, test.values])
        report = floor.run_stream([mixed], batch_size=50)
        assert report.alarms == ()


class TestConfiguration:
    def test_unknown_policy_rejected(self, artifact):
        with pytest.raises(CompactionError, match="policy"):
            Floor(artifact, retest_policy="coin_flip")

    def test_bad_batch_size_rejected(self, artifact):
        with pytest.raises(CompactionError, match="batch_size"):
            Floor(artifact, batch_size=0)

    def test_lookup_required_but_absent(self, artifact):
        assert artifact.lookup is None
        with pytest.raises(ArtifactError, match="no lookup"):
            Floor(artifact, use_lookup=True)

    def test_wrong_row_width_rejected(self, artifact):
        floor = Floor(artifact)
        with pytest.raises(CompactionError, match="measurements"):
            floor.run_stream([np.zeros((4, 2))])

    def test_incompatible_dut_rejected(self, artifact):
        dut = SyntheticDut(n_specs=4)
        floor = Floor(artifact)
        with pytest.raises(ArtifactError):
            floor.run_simulated(dut, 10, seed=0)

    def test_repr_mentions_mode(self, artifact):
        text = repr(Floor(artifact))
        assert "live model" in text and "full_retest" in text


class TestThroughputAccounting:
    def test_wall_time_excludes_stream_generation(self, artifact,
                                                  populations):
        """devices_per_minute measures the floor, not the traffic source.

        Regression test: wall_seconds used to clock the whole stream
        loop, so a slow generator (circuit simulation, network
        transport) deflated the reported disposition throughput.  The
        stub below sleeps 150ms across three chunks while the actual
        disposition work is a few milliseconds; the report must see
        only the latter.
        """
        train, _ = populations
        rows = train.values[:120]

        def slow_stream():
            for start in (0, 40, 80):
                time.sleep(0.05)
                yield rows[start:start + 40]

        report = Floor(artifact).run_stream(slow_stream(), batch_size=40)
        assert report.n_devices == 120
        assert 0.0 < report.wall_seconds < 0.10
        assert report.devices_per_minute > 120 * 60.0 / 0.10
