"""Drift-monitor control-chart tests."""

import numpy as np
import pytest

from repro.core.metrics import GUARD
from repro.core.specs import GOOD
from repro.errors import CompactionError
from repro.floor import DriftBaseline, DriftMonitor

from tests.synthetic import make_synthetic_dataset


def _baseline(guard_rate=0.05, n_train=400, seed=1):
    train = make_synthetic_dataset(n=n_train, seed=seed)
    return DriftBaseline.from_dataset(train, train.names[:3],
                                      guard_rate=guard_rate), train


def _stream(rng, baseline, n, shift=0.0):
    """In-distribution batch shifted by ``shift`` training sigmas."""
    mean = np.asarray(baseline.mean)
    std = np.asarray(baseline.std)
    return rng.normal(mean + shift * std, std, (n, len(baseline.names)))


class TestBaseline:
    def test_from_dataset_statistics(self):
        baseline, train = _baseline()
        kept = train.project(train.names[:3]).values
        assert baseline.names == train.names[:3]
        assert np.allclose(baseline.mean, kept.mean(axis=0))
        assert np.allclose(baseline.std, kept.std(axis=0, ddof=1))
        assert baseline.n_train == len(train)

    def test_needs_two_devices(self):
        train = make_synthetic_dataset(n=1, seed=0)
        with pytest.raises(CompactionError, match="two"):
            DriftBaseline.from_dataset(train, train.names[:2], 0.0)


class TestCharts:
    def test_in_distribution_stream_stays_quiet(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline)
        rng = np.random.default_rng(7)
        for _ in range(20):
            batch = _stream(rng, baseline, 100)
            first = np.full(100, GOOD)
            first[:5] = GUARD          # ~ the 5% baseline guard rate
            alarms = monitor.update(batch, first)
        assert alarms == ()

    def test_mean_shift_fires_the_spec_chart(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline)
        rng = np.random.default_rng(8)
        alarms = ()
        for _ in range(10):
            batch = _stream(rng, baseline, 200, shift=1.0)
            alarms = monitor.update(batch, np.full(200, GOOD))
        kinds = {a.kind for a in alarms}
        assert "spec-mean" in kinds
        spec_alarm = next(a for a in alarms if a.kind == "spec-mean")
        assert spec_alarm.subject in baseline.names
        assert abs(spec_alarm.z_score) > spec_alarm.threshold
        assert "recalibrate" in spec_alarm.recommendation
        assert "DRIFT" in str(spec_alarm)

    def test_guard_rate_spike_fires_the_guard_chart(self):
        baseline, _ = _baseline(guard_rate=0.02)
        monitor = DriftMonitor(baseline)
        rng = np.random.default_rng(9)
        alarms = ()
        for _ in range(10):
            batch = _stream(rng, baseline, 200)
            first = np.full(200, GOOD)
            first[:80] = GUARD         # 40% guard vs 2% expected
            alarms = monitor.update(batch, first)
        assert any(a.kind == "guard-rate" for a in alarms)
        guard_alarm = next(a for a in alarms if a.kind == "guard-rate")
        assert guard_alarm.observed > guard_alarm.expected

    def test_quiet_below_min_devices(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline, min_devices=1000)
        rng = np.random.default_rng(10)
        batch = _stream(rng, baseline, 500, shift=5.0)
        assert monitor.update(batch, np.full(500, GOOD)) == ()

    def test_window_is_bounded_and_rolls(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline, window_batches=4,
                               min_devices=100)
        rng = np.random.default_rng(11)
        # Four drifted batches fire the chart...
        for _ in range(4):
            alarms = monitor.update(_stream(rng, baseline, 100, 2.0),
                                    np.full(100, GOOD))
        assert any(a.kind == "spec-mean" for a in alarms)
        # ...and four healthy batches roll the drift out of the window.
        for _ in range(4):
            alarms = monitor.update(_stream(rng, baseline, 100),
                                    np.full(100, GOOD))
        assert not any(a.kind == "spec-mean" for a in alarms)
        assert len(monitor._window) == 4

    def test_reset_clears_the_window(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline, min_devices=100)
        rng = np.random.default_rng(12)
        monitor.update(_stream(rng, baseline, 400, 3.0),
                       np.full(400, GOOD))
        assert monitor.alarms() != ()
        monitor.reset()
        assert monitor.n_seen == 0
        assert monitor.alarms() == ()

    def test_zero_variance_baseline_stays_finite(self):
        baseline = DriftBaseline(names=("flat",), mean=(1.0,),
                                 std=(0.0,), guard_rate=0.0,
                                 n_train=100)
        monitor = DriftMonitor(baseline, min_devices=10)
        alarms = monitor.update(np.full((50, 1), 1.0 + 1e-6),
                                np.full(50, GOOD))
        assert all(np.isfinite(a.z_score) for a in alarms)
        assert any(a.kind == "spec-mean" for a in alarms)

    def test_batch_width_mismatch_rejected(self):
        baseline, _ = _baseline()
        monitor = DriftMonitor(baseline)
        with pytest.raises(CompactionError, match="measured specs"):
            monitor.update(np.zeros((5, 7)), np.full(5, GOOD))

    def test_invalid_configuration_rejected(self):
        baseline, _ = _baseline()
        with pytest.raises(CompactionError, match="threshold"):
            DriftMonitor(baseline, z_threshold=0.0)
        with pytest.raises(CompactionError, match="window"):
            DriftMonitor(baseline, window_batches=0)
