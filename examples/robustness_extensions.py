"""Future-work extensions: adaptive guard bands and defect screening.

The paper's conclusion sketches three extensions; this example
exercises the two statistical ones on the MEMS accelerometer:

1. **Distribution-based guard bands** -- instead of a fixed percentage
   of every acceptability range, size each specification's guard band
   from the device distribution so every band traps a comparable share
   of the population.
2. **Defect-laden test instances** -- inject catastrophic defects into
   a production lot and verify that the test set compacted on *clean*
   parametric data still screens them.

Run:
    python examples/robustness_extensions.py
"""

import numpy as np

from repro.core.compaction import TestCompactor
from repro.core.guardband import distribution_guard_deltas
from repro.core.metrics import evaluate_predictions
from repro.mems import AccelerometerBench, tests_at_temperature
from repro.process.defects import DefectInjector
from repro.process.montecarlo import generate_dataset


def main():
    bench = AccelerometerBench()
    print("Simulating clean training/test populations...")
    train = bench.generate_dataset(800, seed=7)
    test = bench.generate_dataset(600, seed=8)
    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)

    # --- 1. fixed vs distribution-based guard bands -------------------
    print("\n[1] Guard-band sizing")
    adaptive = distribution_guard_deltas(train, target_fraction=0.05)
    widest = max(adaptive, key=adaptive.get)
    narrowest = min(adaptive, key=adaptive.get)
    print("    distribution-based deltas span {:.3f} ({}) to {:.3f} "
          "({})".format(adaptive[narrowest], narrowest,
                        adaptive[widest], widest))
    for label, delta in (("fixed 3 %", 0.03),
                         ("distribution-based", adaptive)):
        compactor = TestCompactor(guard_band=delta)
        model, report = compactor.evaluate_subset(train, test, eliminated)
        print("    {:<20} YL {:.2f} %  DE {:.2f} %  guard {:.2f} %".format(
            label, 100 * report.yield_loss_rate,
            100 * report.defect_escape_rate, 100 * report.guard_rate))

    # --- 2. defect screening -------------------------------------------
    print("\n[2] Defect screening (10 % catastrophic defects)")
    compactor = TestCompactor(guard_band=0.03)
    model, _ = compactor.evaluate_subset(train, test, eliminated)
    injector = DefectInjector(AccelerometerBench(), defect_rate=0.10,
                              severity=4.0)
    lot = generate_dataset(injector, 600, seed=99)
    report = evaluate_predictions(lot.labels, model.predict_dataset(lot))
    print("    lot yield {:.1f} %  (defects injected: {})".format(
        100 * lot.yield_fraction, injector.n_injected))
    print("    defect escape {:.2f} %  yield loss {:.2f} %  guard "
          "{:.2f} %".format(100 * report.defect_escape_rate,
                            100 * report.yield_loss_rate,
                            100 * report.guard_rate))
    print("\nA test set compacted on clean data still screens gross "
          "defects:\nthe kept room-temperature tests and the model "
          "detect out-of-family parts.")


if __name__ == "__main__":
    main()
