"""MEMS accelerometer: eliminate the hot and cold temperature tests.

Reproduces the scenario of paper Section 5.2 / Table 3: a MEMS
accelerometer is tested against four specifications at -40 C, 27 C and
80 C.  The temperature insertions are expensive (the die must soak to
a steady-state temperature), so the question is whether the hot and
cold outcomes can be predicted from the room-temperature measurements.

The script eliminates each temperature block and reports defect
escape, yield loss and guard-band population, then quantifies the test
cost saving with a soak-cost-aware cost model.

Run:
    python examples/mems_temperature_compaction.py [n_train] [n_test]
"""

import sys

from repro.core.compaction import TestCompactor
from repro.core.costmodel import TestCostModel
from repro.mems import (
    TEMPERATURES, AccelerometerBench, tests_at_temperature,
)


def build_cost_model():
    """Per-test cost 1 unit; temperature soak 25 units, room 2 units."""
    costs, groups = {}, {}
    for temp in TEMPERATURES:
        for name in tests_at_temperature(temp):
            costs[name] = 1.0
            groups[name] = "{:g}C".format(temp)
    group_costs = {"-40C": 25.0, "27C": 2.0, "80C": 25.0}
    return TestCostModel(costs, groups, group_costs)


def main():
    n_train = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    n_test = int(sys.argv[2]) if len(sys.argv) > 2 else 1000

    bench = AccelerometerBench()
    print("Simulating {} + {} accelerometer instances at three "
          "temperatures...".format(n_train, n_test))
    train = bench.generate_dataset(n_train, seed=7)
    test = bench.generate_dataset(n_test, seed=8)
    print("  training yield: {:.1%}   test yield: {:.1%}".format(
        train.yield_fraction, test.yield_fraction))

    compactor = TestCompactor(guard_band=0.03)
    cost_model = build_cost_model()
    full_cost = cost_model.full_cost()

    cold = tests_at_temperature(-40)
    hot = tests_at_temperature(80)
    cases = [
        ("-40 (cold)", cold),
        ("80 (hot)", hot),
        ("both", cold + hot),
    ]

    print("\n{:<12} {:>10} {:>10} {:>12} {:>14}".format(
        "eliminated", "DE %", "YL %", "guard %", "cost saved %"))
    for label, eliminated in cases:
        _, report = compactor.evaluate_subset(train, test, eliminated)
        kept = [n for n in train.names if n not in set(eliminated)]
        saving = cost_model.reduction(kept)
        print("{:<12} {:>10.2f} {:>10.2f} {:>12.2f} {:>14.1f}".format(
            label,
            100 * report.defect_escape_rate,
            100 * report.yield_loss_rate,
            100 * report.guard_rate,
            100 * saving))

    print("\nFull test-set cost per device: {:.0f} units".format(full_cost))
    print("Paper headline: eliminating hot+cold cuts cost by more "
          "than half at ~0.2 % defect escape.")


if __name__ == "__main__":
    main()
