"""Compare test-examination orders for the greedy compaction loop.

Paper Section 3.2 notes that the greedy procedure's outcome depends on
the order in which tests are examined and sketches several strategies.
This example pits them against each other on the op-amp, plus the
ad-hoc baseline the paper argues against: dropping a fixed subset of
tests chosen by "experience" *without* any statistical model, which
produces uncontrolled defect escape.

Run:
    python examples/ordering_strategies.py [n_train] [n_test]
"""

import sys

import numpy as np

from repro.core.compaction import TestCompactor
from repro.core.metrics import evaluate_predictions
from repro.core.ordering import (
    ClassificationPowerOrder, ClusterOrder, RandomOrder,
)
from repro.opamp import OpAmpBench


def adhoc_baseline(train, test, dropped):
    """Ad-hoc compaction: drop tests outright, keep the plain ranges.

    No model covers the dropped specifications, so any device that
    fails *only* a dropped test escapes -- this is the uncontrolled
    defect escape the paper's method is designed to avoid.
    """
    kept = [n for n in train.names if n not in set(dropped)]
    kept_specs = test.specifications.subset(kept)
    passes = kept_specs.passes(test.project(kept).values).all(axis=1)
    predictions = np.where(passes, 1, -1)
    return evaluate_predictions(test.labels, predictions)


def main():
    n_train = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    n_test = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    bench = OpAmpBench()
    print("Simulating {} + {} op-amp instances...".format(n_train, n_test))
    train = bench.generate_dataset(n_train, seed=31)
    test = bench.generate_dataset(n_test, seed=32)

    strategies = [
        ("functional (paper)", None),
        ("classification-power", ClassificationPowerOrder()),
        ("correlation-cluster", ClusterOrder(threshold=0.8)),
        ("random", RandomOrder(seed=0)),
    ]
    print("\n{:<22} {:>12} {:>8} {:>8} {:>8}".format(
        "order", "eliminated", "YL %", "DE %", "guard %"))
    results = {}
    for label, order in strategies:
        compactor = TestCompactor(tolerance=0.01, guard_band=0.05,
                                  order=order)
        result = compactor.run(train, test)
        results[label] = result
        print("{:<22} {:>12} {:>8.2f} {:>8.2f} {:>8.2f}".format(
            label, len(result.eliminated),
            100 * result.final_report.yield_loss_rate,
            100 * result.final_report.defect_escape_rate,
            100 * result.final_report.guard_rate))

    # Ad-hoc baseline: drop the same tests the best strategy found, but
    # with no statistical model standing in for them.
    best = max(results.values(), key=lambda r: len(r.eliminated))
    if best.eliminated:
        report = adhoc_baseline(train, test, best.eliminated)
        print("\nAd-hoc baseline (drop {} with no model):".format(
            ", ".join(best.eliminated)))
        print("  defect escape {:.2f} %  (uncontrolled -- the paper's "
              "motivation)".format(100 * report.defect_escape_rate))


if __name__ == "__main__":
    main()
