"""Bring your own device: compaction for a user-defined DUT.

The compaction flow is device agnostic -- anything implementing the
three-member DUT protocol (``specifications``, ``sample_parameters``,
``measure``) can be compacted.  This example defines a small active RC
band-pass filter from scratch with the :mod:`repro.circuit` simulator,
measures four specifications, and compacts its test set.

It also demonstrates the grid training-data compaction of paper
Section 4.3 and reports the training-set compression it achieves.

Run:
    python examples/custom_dut.py
"""

import numpy as np

from repro import compact_specification_tests
from repro.circuit import Circuit, solve_ac, solve_dc
from repro.circuit import analysis as ana
from repro.core.grid import GridCompactor
from repro.core.specs import Specification, SpecificationSet
from repro.process.montecarlo import generate_dataset

FREQS = np.logspace(1, 5, 121)


class BandPassFilter:
    """A two-stage RC band-pass filter with an ideal gain stage."""

    specifications = SpecificationSet([
        Specification("midband_gain", "V/V", 9.90, 9.10, 10.75,
                      "gain at the geometric band center"),
        Specification("f_low", "Hz", 156.0, 136.0, 179.0,
                      "lower -3 dB corner"),
        Specification("f_high", "Hz", 16220.0, 14100.0, 18900.0,
                      "upper -3 dB corner"),
        Specification("peak_gain", "V/V", 9.90, 9.10, 10.78,
                      "maximum in-band gain"),
    ])

    def sample_parameters(self, rng):
        """Uniform +/-10 % disturbances on the four passives + gain."""
        nominal = {"r1": 10e3, "c1": 100e-9, "r2": 10e3, "c2": 1e-9,
                   "gain": 10.0}
        return {k: v * (1 + rng.uniform(-0.1, 0.1))
                for k, v in nominal.items()}

    def measure(self, params):
        ckt = Circuit("bandpass")
        ckt.voltage_source("Vin", "in", "0", dc=0.0, ac=1.0)
        # High-pass section.
        ckt.capacitor("C1", "in", "a", params["c1"])
        ckt.resistor("R1", "a", "0", params["r1"])
        # Ideal gain stage.
        ckt.vcvs("E1", "b", "0", "a", "0", params["gain"])
        # Low-pass section.
        ckt.resistor("R2", "b", "out", params["r2"])
        ckt.capacitor("C2", "out", "0", params["c2"])
        op = solve_dc(ckt)
        h = np.abs(solve_ac(ckt, FREQS, op).v("out"))

        peak = float(h.max())
        k_peak = int(np.argmax(h))
        # Lower corner: interpolate on the rising (left) side.
        f_low = float(np.interp(peak / np.sqrt(2), h[:k_peak + 1],
                                FREQS[:k_peak + 1]))
        # Upper corner: only search the falling side right of the peak
        # (bandwidth_3db assumes a low-pass shape).
        f_high = ana.bandwidth_3db(FREQS[k_peak:], h[k_peak:],
                                   ref_gain=peak)
        mid = float(np.interp(np.sqrt(f_low * f_high), FREQS, h))
        return np.array([mid, f_low, f_high, peak])


def main():
    dut = BandPassFilter()
    print("Simulating 600 + 300 band-pass filter instances...")
    train = generate_dataset(dut, 600, seed=5)
    test = generate_dataset(dut, 300, seed=6)
    print("  training yield: {:.1%}".format(train.yield_fraction))

    result = compact_specification_tests(train, test, tolerance=0.02,
                                         guard_band=0.05)
    print()
    print(result.summary())

    # Show what grid compaction does to this training set.
    grid = GridCompactor(resolution=6)
    X = train.normalized_values()
    _, _, info = grid.compact(X, train.labels)
    print("\nGrid compaction at resolution 6: {} -> {:.0f} instances "
          "({:.0%} of the original), {} mixed / {} pure cells".format(
              len(train), info["compression"] * len(train),
              info["compression"], info["n_mixed_cells"],
              info["n_pure_cells"]))


if __name__ == "__main__":
    main()
