"""Compact many Monte-Carlo lots through the parallel runtime engine.

Production test development rarely compacts a single dataset: lots
arrive continuously, and tolerance sweeps re-run the flow at many
``e_T`` settings.  This example drives both bulk patterns through
:class:`repro.runtime.CompactionEngine`:

1. one compaction with speculative multi-process candidate evaluation
   (``n_jobs``), verified identical to the serial run;
2. a ``run_many`` batch over several independently simulated lots,
   reporting which tests are redundant in *every* lot -- the
   compaction a production program could actually commit to.

Run:
    python examples/parallel_batch_compaction.py [n_jobs]
"""

import sys
import time

from repro.learn.svm import SVC
from repro.opamp import OpAmpBench
from repro.runtime import CompactionEngine, cpu_count


def model_factory():
    """Fixed hyperparameters keep the example fast and deterministic."""
    return SVC(C=500.0, gamma=8.0)


def main(n_jobs):
    bench = OpAmpBench()
    print("Simulating 4 op-amp lots (300 + 150 instances each)...")
    lots = []
    for lot in range(4):
        lots.append((bench.generate_dataset(300, seed=100 + 2 * lot),
                     bench.generate_dataset(150, seed=101 + 2 * lot)))

    engine = CompactionEngine(tolerance=0.02, guard_band=0.05,
                              model_factory=model_factory, n_jobs=n_jobs)
    serial = CompactionEngine(tolerance=0.02, guard_band=0.05,
                              model_factory=model_factory, n_jobs=1)

    # -- one lot, speculative parallel loop ---------------------------
    train, test = lots[0]
    t0 = time.perf_counter()
    result = engine.run(train, test)
    t_par = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = serial.run(train, test)
    t_ser = time.perf_counter() - t0
    assert result.eliminated == reference.eliminated
    assert result.final_report == reference.final_report
    print("\nlot 0: eliminated {} of {} tests "
          "(parallel {:.1f}s vs serial {:.1f}s, identical result)".format(
              len(result.eliminated), len(train.names), t_par, t_ser))
    print("  speculation: {}".format(result.stats.get("speculation")))

    # -- all lots through one scheduler -------------------------------
    t0 = time.perf_counter()
    results = engine.run_many(lots)
    t_batch = time.perf_counter() - t0
    print("\nbatch of {} lots in {:.1f}s (n_jobs={}):".format(
        len(lots), t_batch, engine.n_jobs))
    for lot, r in enumerate(results):
        print("  lot {}: kept {:2d}  eliminated {:2d}  {}".format(
            lot, len(r.kept), len(r.eliminated), r.final_report.summary()))
    always = set.intersection(*(set(r.eliminated) for r in results))
    print("\nredundant in every lot: {}".format(
        ", ".join(sorted(always)) or "(none)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else cpu_count())
