"""Host two test programs in the asyncio floor service, end to end.

The paper's end product is a deployed test program; at scale a floor
serves *many* programs at once -- different device types, different
artifact versions -- under concurrent traffic.  This script walks the
whole serving flow in one process:

1. train and deploy two compacted programs with different
   specification universes (a fast synthetic stand-in for op-amp/MEMS
   benches, so the example runs in seconds);
2. register them in a versioned, checksum-pinned
   :class:`~repro.service.registry.ArtifactRegistry` and start a
   :class:`~repro.service.server.FloorService` on an ephemeral port;
3. replay deterministic mixed seed-tree traffic with the load
   generator and verify every served decision is bit-identical to an
   offline :class:`~repro.floor.engine.TestFloor` pass;
4. hot-swap a new artifact version mid-session and read the
   per-artifact ``/metrics``.

Run:
    python examples/floor_service.py
"""

import asyncio
import os
import sys
import tempfile

# The example borrows the test suite's fast synthetic DUT, so the repo
# root (and src/, for uninstalled runs) must be importable.
_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path[:0] = [_root, os.path.join(_root, "src")]

from repro.core.costmodel import TestCostModel
from repro.core.pipeline import CompactionPipeline
from repro.learn import SVC
from repro.service import (
    ArtifactRegistry,
    FloorService,
    HttpClient,
    TrafficPlan,
    offline_reference,
    run_load,
)

from tests.synthetic import SyntheticDut, make_synthetic_dataset


class FixedSVCFactory:
    """Picklable fixed-hyperparameter model factory."""

    def __call__(self):
        return SVC(C=50.0, gamma="scale")


def deploy_program(n_specs, dut_seed, lookup_resolution=None,
                   guard_band=0.06):
    """Train one synthetic program; returns (dut, artifact)."""
    dut = SyntheticDut(n_specs=n_specs, seed=dut_seed)
    train = make_synthetic_dataset(n=400, n_specs=n_specs, seed=1,
                                   dut_seed=dut_seed)
    test = make_synthetic_dataset(n=250, n_specs=n_specs, seed=2,
                                  dut_seed=dut_seed)
    pipeline = CompactionPipeline(tolerance=0.02, guard_band=guard_band,
                                  model_factory=FixedSVCFactory())
    _, artifact = pipeline.deploy(
        train, test, cost_model=TestCostModel.uniform(train.names),
        device="synthetic", train_seed=1,
        lookup_resolution=lookup_resolution)
    return dut, artifact


async def main():
    print("Training two compacted programs...")
    dut_a, artifact_a = deploy_program(6, dut_seed=99,
                                       lookup_resolution=17)
    dut_b, artifact_b = deploy_program(5, dut_seed=42)

    with tempfile.TemporaryDirectory() as tmp:
        # Ship program A through a file, exactly as a floor would
        # receive it; program B is registered from memory.
        path_a = os.path.join(tmp, "device-a.rtp")
        artifact_a.save(path_a)

        registry = ArtifactRegistry()
        registry.register("device-a", "1", path_a)
        registry.register("device-b", "1", artifact_b)

        service = FloorService(registry, max_batch_size=128,
                               max_latency=0.002)
        await service.start("127.0.0.1", 0)
        print("serving on http://127.0.0.1:{}\n".format(service.port))

        # Mixed traffic for both artifacts, replayed over concurrent
        # keep-alive connections; each plan carries an offline
        # reference floor the served decisions are checked against.
        plans = [
            TrafficPlan("device-a", dut_a, 600, seed=7,
                        reference=offline_reference(artifact_a)),
            TrafficPlan("device-b", dut_b, 400, seed=8,
                        reference=offline_reference(artifact_b)),
        ]
        report = await run_load("127.0.0.1", service.port, plans,
                                n_clients=6, max_chunk=10, seed=3)
        print(report.summary())
        assert report.equivalent, "served decisions must match offline"

        # Hot-swap: register a stricter guard band as version 2 of
        # device-a. Unpinned traffic reroutes on the next request;
        # version 1 stays available to pinned requests until retired.
        _, artifact_a2 = deploy_program(6, dut_seed=99,
                                        lookup_resolution=13,
                                        guard_band=0.12)
        path_a2 = os.path.join(tmp, "device-a-v2.rtp")
        artifact_a2.save(path_a2)
        client = HttpClient("127.0.0.1", service.port)
        status, _ = await client.request("POST", "/artifacts", {
            "device": "device-a", "version": "2", "path": path_a2})
        print("\nhot-swapped device-a to version 2 (HTTP {})".format(
            status))

        swapped = await run_load(
            "127.0.0.1", service.port,
            [TrafficPlan("device-a", dut_a, 200, seed=9,
                         reference=offline_reference(artifact_a2))],
            n_clients=3, max_chunk=10, seed=4)
        print(swapped.summary())
        assert swapped.equivalent

        _, metrics = await client.request("GET", "/metrics")
        print("\nper-artifact metrics:")
        for key, entry in sorted(metrics["artifacts"].items()):
            print("  {}: {} devices in {} batches "
                  "(~{:.1f} rows/batch), {} drift alarm(s)".format(
                      key, entry["n_devices"], entry["n_batches"],
                      entry["mean_batch_rows"],
                      entry["drift"]["n_alarms"]
                      if entry["drift"] else 0))
        await client.close()
        await service.stop()


if __name__ == "__main__":
    asyncio.run(main())
