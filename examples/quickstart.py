"""Quickstart: compact the op-amp specification test set.

Generates a small Monte-Carlo population of two-stage op-amps with the
built-in MNA circuit simulator, measures all eleven specifications of
each instance (paper Table 1), then runs the statistical-learning test
compaction of paper Fig. 2 and reports which specification tests are
redundant.

Run:
    python examples/quickstart.py [n_train] [n_test]

The default sizes keep the runtime around a minute; the paper-scale
experiment (5000/1000) lives in benchmarks/.
"""

import sys

from repro import compact_specification_tests
from repro.opamp import OpAmpBench


def main():
    n_train = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    n_test = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    bench = OpAmpBench()
    print("Simulating {} training + {} test op-amp instances "
          "(11 specification measurements each)...".format(n_train, n_test))
    train = bench.generate_dataset(n_train, seed=1)
    test = bench.generate_dataset(n_test, seed=2)
    print("  training yield: {:.1%}   test yield: {:.1%}".format(
        train.yield_fraction, test.yield_fraction))

    print("\nRunning greedy specification test compaction "
          "(tolerance e_T = 1%, guard band 5%)...")
    result = compact_specification_tests(
        train, test, tolerance=0.01, guard_band=0.05)

    print()
    print(result.summary())
    print("\nPer-test history (cumulative candidate-model metrics):")
    print("{:<16} {:>6} {:>8} {:>8} {:>8}".format(
        "test", "kept?", "YL %", "DE %", "guard %"))
    for row in result.history_table():
        print("{:<16} {:>6} {:>8.2f} {:>8.2f} {:>8.2f}".format(
            row["test"], "no" if row["eliminated"] else "yes",
            row["yield_loss_pct"], row["defect_escape_pct"],
            row["guard_pct"]))


if __name__ == "__main__":
    main()
