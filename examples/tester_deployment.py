"""Deploy a compacted test set on a (simulated) production tester.

Paper Section 3.3: the SVM-reshaped acceptance region is shipped to the
tester as a grid lookup table, and guard-band devices are retested with
the complete specification set (Section 4.2).  This script walks the
whole flow on the MEMS accelerometer:

1. Monte-Carlo-train a compaction model with the hot/cold tests
   eliminated;
2. build the grid lookup table and report its size and agreement with
   the live SVM pair;
3. run a production lot through the tester program under the three
   retest policies and compare shipped quality and cost.

Run:
    python examples/tester_deployment.py
"""

from repro.core.compaction import TestCompactor
from repro.core.costmodel import TestCostModel
from repro.mems import (
    TEMPERATURES, AccelerometerBench, tests_at_temperature,
)
from repro.tester import LookupTable, TestProgram


def build_cost_model():
    """Soak-aware cost model (same as the temperature example)."""
    costs, groups = {}, {}
    for temp in TEMPERATURES:
        for name in tests_at_temperature(temp):
            costs[name] = 1.0
            groups[name] = "{:g}C".format(temp)
    return TestCostModel(costs, groups,
                         {"-40C": 25.0, "27C": 2.0, "80C": 25.0})


def main():
    bench = AccelerometerBench()
    print("Simulating training population and production lot...")
    train = bench.generate_dataset(1000, seed=7)
    lot = bench.generate_dataset(1000, seed=21)

    eliminated = tests_at_temperature(-40) + tests_at_temperature(80)
    compactor = TestCompactor(guard_band=0.03)
    model, report = compactor.evaluate_subset(train, lot, eliminated)
    print("Compacted test set: {} of 12 tests kept".format(
        len(model.feature_names)))
    print("Live-model evaluation on the lot: {}".format(report.summary()))

    lut = LookupTable(model, max_cells=250_000)
    print("\nLookup table: {} cells at resolution {} "
          "({} kB on the tester)".format(
              lut.n_cells, lut.resolution, lut.memory_bytes() // 1024))
    print("Agreement with the live SVM pair: {:.1%}".format(
        lut.agreement_with_model(lot)))

    cost_model = build_cost_model()
    print("\n{:<14} {:>8} {:>8} {:>10} {:>12} {:>12}".format(
        "policy", "YL %", "DE %", "retested", "cost/device",
        "saved %"))
    for policy in ("full_retest", "accept", "reject"):
        outcome = TestProgram(lut, cost_model,
                              retest_policy=policy).run(lot)
        print("{:<14} {:>8.2f} {:>8.2f} {:>10d} {:>12.2f} {:>12.1f}".format(
            policy,
            100 * outcome.report.yield_loss_rate,
            100 * outcome.report.defect_escape_rate,
            outcome.n_retested,
            outcome.cost_per_device,
            100 * outcome.cost_reduction))


if __name__ == "__main__":
    main()
