"""Seeded fault plans and the hook installer.

Determinism model
-----------------

A :class:`FaultPlan` spawns one ``SeedSequence`` child per injection
*site* in a fixed order, so every site's schedule is an independent,
replayable stream -- injecting at one site never perturbs another
site's draws (the same spawning discipline the data plane uses for
per-instance simulation).  The sites:

``cluster.response`` / ``service.response``
    Consulted by the cluster router / single-process service just
    before a ``/disposition`` response is written: ``delay`` sleeps,
    ``drop`` closes the connection without a response, ``reset``
    aborts the transport (RST).  All three are *post-decision* faults:
    the disposition already ran, and because dispositions are pure
    per-device functions, the client's retry replays to an identical
    decision.
``journal.append``
    Consulted by :meth:`repro.service.durability.StateJournal.append`:
    ``disk_full`` raises ``OSError(ENOSPC)`` before any byte lands,
    ``torn`` writes half the record then raises -- the on-disk shape
    of a crash mid-append, which the next recovery scan must truncate.
``shard.write``
    Consulted by :func:`repro.data.shard.write_shard` before the
    atomic publish: ``torn`` leaves a deliberately truncated file at
    the destination and raises -- the shape of a crash on a
    filesystem without atomic replace, which the shard reader must
    reject as :class:`~repro.errors.DatasetError`.

Worker SIGKILL is not a hook: killing is driven *by the test* from
:meth:`FaultPlan.kill_schedule` (seeded times and victims), because
the supervisor's kill path (:meth:`ClusterService.kill_worker`) is
already a first-class test surface.

Worker *startup* faults cross a process boundary (spawned workers
cannot see the parent's hooks), so they travel via the
``REPRO_CHAOS_STARTUP`` environment variable read by
:func:`worker_startup_fault` inside the worker entry point: the first
spawn of each worker index fails in the requested way (dies before
the pipe handshake, or reports a bind failure), later spawns succeed
-- exercising the supervisor's spawn-retry path deterministically.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ServiceError
from repro.telemetry import get_telemetry

#: Injection sites, in SeedSequence spawn order.  Appending new sites
#: keeps existing seeds' schedules stable; reordering would not.
SITES = (
    "cluster.response",
    "service.response",
    "journal.append",
    "shard.write",
)

#: Fault kinds drawn at each site.
SITE_KINDS = {
    "cluster.response": ("delay", "drop", "reset"),
    "service.response": ("delay", "drop", "reset"),
    "journal.append": ("disk_full", "torn"),
    "shard.write": ("torn",),
}

#: Environment variable carrying worker-startup faults across the
#: process spawn boundary: ``<marker_dir>:<mode>`` with mode one of
#: ``handshake_death`` or ``bind_fail``.
STARTUP_ENV = "REPRO_CHAOS_STARTUP"

#: Startup fault modes (see :func:`worker_startup_fault`).
STARTUP_MODES = ("handshake_death", "bind_fail")


class SiteSchedule:
    """One site's deterministic fault stream.

    Each consultation draws from the site's own seeded generator:
    with probability ``rate`` (and while under ``max_faults``) it
    yields ``(kind, delay_s)``, else ``None``.  The draw sequence is a
    pure function of the site's SeedSequence child, so a chaos run
    replays exactly from the plan's one integer seed.
    """

    def __init__(self, site, seed_seq, rate, max_faults):
        self.site = site
        self.kinds = SITE_KINDS[site]
        self.rate = float(rate)
        self.max_faults = int(max_faults)
        self._rng = np.random.default_rng(seed_seq)
        self.n_consulted = 0
        #: Every fired fault as ``(consultation index, kind)``.
        self.fired: list[tuple[int, str]] = []

    def draw(self):
        index = self.n_consulted
        self.n_consulted += 1
        # Always burn exactly two draws per consultation so the
        # stream's alignment is independent of which branch fires.
        hit = self._rng.random() < self.rate
        kind = self.kinds[int(self._rng.integers(len(self.kinds)))]
        if not hit or len(self.fired) >= self.max_faults:
            return None
        self.fired.append((index, kind))
        delay_s = 0.01 + 0.04 * float(self._rng.random())
        return kind, delay_s


class FaultPlan:
    """Every fault schedule of one chaos run, from one integer seed.

    Parameters
    ----------
    seed:
        Master seed; ``SeedSequence(seed)`` spawns one child per site
        (in :data:`SITES` order) plus one for the kill schedule.
    rate:
        Per-consultation fault probability at each site.
    max_faults:
        Cap on fired faults per site (keeps a long load run from
        drowning in injected noise while still exercising every path).
    """

    def __init__(self, seed, rate=0.05, max_faults=8):
        self.seed = int(seed)
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(len(SITES) + 1)
        self.schedules = {
            site: SiteSchedule(site, child, rate, max_faults)
            for site, child in zip(SITES, children[: len(SITES)])
        }
        self._kill_seq = children[len(SITES)]

    def schedule(self, site) -> SiteSchedule:
        try:
            return self.schedules[site]
        except KeyError:
            raise ServiceError(
                "unknown chaos site {!r}; known: {}".format(
                    site, ", ".join(SITES)
                )
            ) from None

    def kill_schedule(self, n_workers, n_kills, span_s=2.0):
        """Seeded worker-SIGKILL schedule for a live chaos run.

        Returns ``[(at_seconds, worker_index), ...]`` sorted by time:
        ``n_kills`` kills spread over ``span_s`` seconds of load, each
        victim drawn uniformly.  Driven by the test (which owns the
        cluster handle); deterministic given the plan's seed.
        """
        rng = np.random.default_rng(self._kill_seq)
        times = np.sort(rng.uniform(0.1, span_s, size=int(n_kills)))
        victims = rng.integers(0, int(n_workers), size=int(n_kills))
        return [
            (float(t), int(v)) for t, v in zip(times, victims)
        ]

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "sites": {
                site: {
                    "n_consulted": sched.n_consulted,
                    "fired": [
                        {"at": index, "kind": kind}
                        for index, kind in sched.fired
                    ],
                }
                for site, sched in self.schedules.items()
            },
        }


class FaultInjector:
    """Install a :class:`FaultPlan` into the production fault hooks.

    A context manager: entering replaces the module-level hooks in
    :mod:`repro.service.server`, :mod:`repro.service.cluster`,
    :mod:`repro.service.durability` and :mod:`repro.data.shard` with
    closures over the plan's schedules; exiting restores whatever was
    there before.  ``sites`` restricts injection to a subset.

    Fired faults are counted per ``(site, kind)`` both on the
    injector (:attr:`fired`) and as the telemetry counter
    ``repro_chaos_faults_total`` -- a chaos run's injected-fault
    ledger is part of its observable record.
    """

    def __init__(self, plan: FaultPlan, sites=None):
        self.plan = plan
        self.sites = tuple(sites) if sites is not None else SITES
        unknown = [s for s in self.sites if s not in SITES]
        if unknown:
            raise ServiceError(
                "unknown chaos site(s): {}".format(", ".join(unknown))
            )
        self.fired: dict[tuple[str, str], int] = {}
        self._saved: dict[str, object] = {}

    def _record(self, site, kind):
        key = (site, kind)
        self.fired[key] = self.fired.get(key, 0) + 1
        get_telemetry().counter(
            "repro_chaos_faults_total", 1, site=site, kind=kind
        )

    def n_fired(self, site=None) -> int:
        return sum(
            count
            for (s, _), count in self.fired.items()
            if site is None or s == site
        )

    # -- the hook closures -------------------------------------------------
    def _response_hook(self, tier, path):
        """``tier`` is ``"cluster"`` or ``"service"``; only the
        data plane (``/disposition``) is perturbed -- faulting health
        probes would just race the supervisor's own respawn logic."""
        site = tier + ".response"
        if site not in self.sites or path != "/disposition":
            return None
        decision = self.plan.schedule(site).draw()
        if decision is not None:
            self._record(site, decision[0])
        return decision

    def _journal_hook(self, record):
        if "journal.append" not in self.sites:
            return None
        decision = self.plan.schedule("journal.append").draw()
        if decision is None:
            return None
        self._record("journal.append", decision[0])
        return decision[0]

    def _shard_hook(self, path):
        if "shard.write" not in self.sites:
            return None
        decision = self.plan.schedule("shard.write").draw()
        if decision is None:
            return None
        self._record("shard.write", decision[0])
        return decision[0]

    # -- install/restore ---------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        from repro.data import shard as shard_module
        from repro.service import cluster as cluster_module
        from repro.service import durability as durability_module
        from repro.service import server as server_module

        self._saved = {
            "server": server_module.RESPONSE_FAULT_HOOK,
            "cluster": cluster_module.RESPONSE_FAULT_HOOK,
            "journal": durability_module.JOURNAL_FAULT_HOOK,
            "shard": shard_module.SHARD_FAULT_HOOK,
        }
        server_module.RESPONSE_FAULT_HOOK = self._response_hook
        cluster_module.RESPONSE_FAULT_HOOK = self._response_hook
        durability_module.JOURNAL_FAULT_HOOK = self._journal_hook
        shard_module.SHARD_FAULT_HOOK = self._shard_hook
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.data import shard as shard_module
        from repro.service import cluster as cluster_module
        from repro.service import durability as durability_module
        from repro.service import server as server_module

        server_module.RESPONSE_FAULT_HOOK = self._saved["server"]
        cluster_module.RESPONSE_FAULT_HOOK = self._saved["cluster"]
        durability_module.JOURNAL_FAULT_HOOK = self._saved["journal"]
        shard_module.SHARD_FAULT_HOOK = self._saved["shard"]
        self._saved = {}


def worker_startup_fault(index) -> str | None:
    """The startup fault (if any) this worker spawn must exhibit.

    Reads ``REPRO_CHAOS_STARTUP=<marker_dir>:<mode>``; the first spawn
    of each worker index claims a marker file in ``marker_dir`` and
    returns ``mode`` (``handshake_death`` -- exit before the pipe
    handshake -- or ``bind_fail`` -- report a bind failure through the
    pipe).  Every later spawn of that index finds the marker and
    returns ``None``, so the supervisor's retry succeeds.  Returns
    ``None`` (zero overhead) when the variable is unset -- the
    production path.
    """
    spec = os.environ.get(STARTUP_ENV)
    if not spec:
        return None
    marker_dir, _, mode = spec.rpartition(":")
    if mode not in STARTUP_MODES or not marker_dir:
        raise ServiceError(
            "malformed {}={!r}; expected <marker_dir>:<mode> with mode "
            "in {}".format(STARTUP_ENV, spec, "/".join(STARTUP_MODES))
        )
    marker = os.path.join(marker_dir, "worker-{}.fired".format(int(index)))
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    os.close(fd)
    return mode


def corrupt_file(path, seed, n_bytes=8) -> list[int]:
    """Deterministically flip ``n_bytes`` bytes of a file in place.

    The corrupted-artifact / corrupted-shard fault: offsets are drawn
    from ``default_rng(seed)`` over the file's interior (skipping the
    first 16 bytes so container magics survive and the corruption
    reaches content validation, not just format sniffing).  Returns
    the flipped offsets so a test can report exactly what it broke.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size < 32:
        raise ServiceError(
            "file {} is too small ({} bytes) to corrupt "
            "meaningfully".format(path, size)
        )
    rng = np.random.default_rng(seed)
    offsets = sorted(
        int(o) for o in rng.integers(16, size, size=int(n_bytes))
    )
    with open(path, "r+b") as handle:
        for offset in offsets:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return offsets
