"""repro.chaos -- deterministic, seed-tree-driven fault injection.

The durability and degradation guarantees of the serving stack (WAL
journal replay, 503 respawn windows, rollback fan-out, deadline 504s)
are only as real as the faults they were tested against.  This package
turns fault injection into the same kind of object the rest of the
repo is built on: a *pure function of a seed*.

:class:`~repro.chaos.inject.FaultPlan`
    One integer seed -> per-site fault schedules via
    ``numpy.random.SeedSequence`` spawning, exactly like the data
    plane's per-instance seed tree.  Every chaos run -- which request
    gets a delayed/dropped/reset response, which journal append hits
    a full disk, which shard write tears, when each worker is
    SIGKILLed -- is replayable from that one integer.
:class:`~repro.chaos.inject.FaultInjector`
    Context manager that installs the plan into the test-only hooks
    exported by the production modules
    (``server.RESPONSE_FAULT_HOOK``, ``cluster.RESPONSE_FAULT_HOOK``,
    ``durability.JOURNAL_FAULT_HOOK``, ``shard.SHARD_FAULT_HOOK``)
    and restores them on exit, recording every fired fault.

The hooks are inert ``None`` module globals in production; nothing in
this package is imported by the serving stack.  The chaos suite
(``tests/chaos/``) drives the load generator against clusters under
these plans and asserts the repo's one non-negotiable: every injected
fault ends in a typed error or a retried bit-identical success --
never a silently wrong disposition.
"""

from repro.chaos.inject import (
    FaultInjector,
    FaultPlan,
    SiteSchedule,
    corrupt_file,
    worker_startup_fault,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "SiteSchedule",
    "corrupt_file",
    "worker_startup_fault",
]
