"""repro -- reproduction of "Specification Test Compaction for Analog
Circuits and MEMS" (Biswas, Li, Blanton, Pileggi -- DATE 2005).

The package is organized as a set of substrates plus the paper's core
contribution:

``repro.circuit``
    A from-scratch modified-nodal-analysis (MNA) analog circuit simulator
    (DC, AC, transient) standing in for Cadence Spectre.
``repro.opamp``
    A two-stage CMOS operational amplifier DUT and its eleven
    specification measurements (paper Table 1).
``repro.mems``
    A folded-flexure MEMS accelerometer DUT measured at three
    temperatures (paper Table 2).
``repro.process``
    Monte-Carlo process-variation modeling and training-data generation
    (paper Fig. 1).
``repro.learn``
    A from-scratch support-vector-machine classifier (SMO solver),
    model-selection and normalization utilities.
``repro.core``
    The paper's contribution: statistical-learning-based specification
    test compaction with guard banding, grid data compaction, test
    ordering and cost modeling (paper Fig. 2, Sections 3-4).
``repro.tester``
    Deployment of a compacted test set on a tester via grid lookup
    tables, including the guard-band retest flow (paper Section 3.3).
``repro.runtime``
    The production runtime: deterministic multi-process Monte-Carlo
    generation (per-instance seed streams, bit-identical at any worker
    count), subset-keyed kernel/Gram caching, SMO warm starts,
    speculative multi-process candidate evaluation and batch
    scheduling over dataset lots -- identical results to the serial
    flow, much less wall clock.
``repro.floor``
    The production test floor: deployable test-program artifacts
    (save a trained program to one versioned file, load it on any
    floor), the streaming :class:`~repro.floor.engine.TestFloor`
    disposition engine with pluggable retest policies, online
    distribution-drift monitoring and per-lot yield/escape/cost/
    throughput reporting.

Quickstart::

    from repro import compact_specification_tests
    from repro.opamp import OpAmpBench

    bench = OpAmpBench()
    result = compact_specification_tests(
        bench.generate_dataset(n_instances=300, seed=1),
        bench.generate_dataset(n_instances=150, seed=2),
        tolerance=0.02,
    )
    print(result.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "CompactionEngine",
    "CompactionPipeline",
    "compact_specification_tests",
    "Specification",
    "SpecificationSet",
    "SpecDataset",
    "TestFloor",
    "TestProgramArtifact",
    "__version__",
]

_LAZY_EXPORTS = {
    "CompactionEngine": ("repro.runtime.engine", "CompactionEngine"),
    "CompactionPipeline": ("repro.core.pipeline", "CompactionPipeline"),
    "compact_specification_tests": (
        "repro.core.pipeline", "compact_specification_tests"),
    "Specification": ("repro.core.specs", "Specification"),
    "SpecificationSet": ("repro.core.specs", "SpecificationSet"),
    "SpecDataset": ("repro.process.dataset", "SpecDataset"),
    "TestFloor": ("repro.floor.engine", "TestFloor"),
    "TestProgramArtifact": ("repro.floor.artifact", "TestProgramArtifact"),
}


def __getattr__(name):
    """Lazily resolve the public API (keeps subpackages independent)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name))
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
