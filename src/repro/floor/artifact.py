"""Deployable test-program artifacts: train once, disposition forever.

A :class:`~repro.core.compaction.CompactionResult` is ephemeral -- it
lives in the process that ran the greedy loop.  The artifact layer
turns it into a *deployable unit*: one versioned file holding
everything the production floor needs to disposition devices --

* the kept specification test set and the full specification universe
  it was compacted from (names **and** acceptability ranges; a program
  is only valid against the exact ranges it was trained for);
* the trained guard-banded SVM pair, with an optional pre-built
  :class:`~repro.tester.lookup.LookupTable` (paper Section 3.3 --
  "negligible cost" on the tester);
* the guard-band parameters and the insertion-aware
  :class:`~repro.core.costmodel.TestCostModel` (Section 6);
* the :class:`~repro.floor.monitor.DriftBaseline` -- training-time
  per-spec statistics the floor monitors the live stream against;
* a provenance header: repro version, schema version, device name,
  generation scheme, training seed and the held-out metrics the
  program was accepted with.

Loading validates the file's magic and schema version and can validate
specification compatibility against a target bench before any device
is dispositioned (:meth:`TestProgramArtifact.validate_specifications`).

The payload is a pickle, but loading goes through a **restricted
unpickler** with an explicit allowlist: :mod:`repro` classes, the
handful of numpy array-reconstruction globals an artifact actually
serializes, ``collections.OrderedDict`` and a few safe builtins.
Everything else -- including the rest of numpy, whose ``testing``
helpers contain exec gadgets -- is refused, so an artifact file cannot
smuggle in arbitrary callables.
"""

import copy
import dataclasses
import io
import pickle
import time

from repro.core.specs import SpecificationSet
from repro.errors import ArtifactError
from repro.floor.monitor import DriftBaseline
from repro.rules.engine import ToleranceProfile
from repro.tester.lookup import LookupTable
from repro.tester.program import RETEST_FULL, TestProgram

#: File-format identifier stored in every artifact.
MAGIC = "repro/test-program"
#: Current artifact schema version.  Bump on any incompatible change
#: to the saved state; :meth:`TestProgramArtifact.load` refuses files
#: from other versions with an actionable message.
#:
#: v2 adds the optional multi-bin state: a tolerance profile (stored
#: as its plain JSON dict, never pickled objects) and a one-vs-rest
#: grade bank.  v1 files keep loading -- they simply carry neither,
#: which the floor treats as the degenerate 2-bin (pass/fail) case.
SCHEMA_VERSION = 2

#: Schema versions :meth:`TestProgramArtifact.loads` accepts.
COMPATIBLE_VERSIONS = (1, 2)

#: Builtin names the restricted unpickler will resolve.
_SAFE_BUILTINS = frozenset({
    "complex", "frozenset", "set", "bytearray", "range", "slice",
})

#: The exact numpy globals an artifact payload references (array and
#: scalar reconstruction; ``numpy.core`` is the pre-2.0 module path).
#: Nothing else from numpy resolves -- a blanket ``numpy.*`` allowance
#: would expose exec gadgets such as ``numpy.testing``'s helpers.
_SAFE_NUMPY_GLOBALS = frozenset({
    ("numpy", "ndarray"),
    ("numpy", "dtype"),
    ("numpy.core.multiarray", "_reconstruct"),
    ("numpy._core.multiarray", "_reconstruct"),
    ("numpy.core.multiarray", "scalar"),
    ("numpy._core.multiarray", "scalar"),
})


class _ArtifactUnpickler(pickle.Unpickler):
    """Unpickler restricted to the allowlist documented above."""

    def find_class(self, module, name):
        allowed = (
            module == "repro" or module.startswith("repro.")
            or (module, name) in _SAFE_NUMPY_GLOBALS
            or (module == "collections" and name == "OrderedDict")
            or (module == "builtins" and name in _SAFE_BUILTINS)
        )
        if allowed:
            return super().find_class(module, name)
        raise ArtifactError(
            "artifact references disallowed global {}.{}; the file is "
            "not a trustworthy repro test-program artifact".format(
                module, name))


def _sanitized_model(model):
    """A prediction-only shallow copy safe to pickle.

    A deployed program never refits, so the training-time model
    factory -- which may be an unpicklable closure -- is dropped.
    (Runtime Gram caches never reach the file: the classifier's and
    SVC's ``__getstate__`` already exclude them.)
    """
    model = copy.copy(model)
    model.model_factory = None
    return model


class TestProgramArtifact:
    """A compacted test program packaged for deployment.

    Build one with :meth:`from_result`, persist with :meth:`save`,
    rehydrate on the floor with :meth:`load`, and hand it to
    :class:`repro.floor.engine.TestFloor` to disposition streams.

    Parameters
    ----------
    model:
        Fitted :class:`~repro.core.guardband.GuardBandedClassifier`.
    specifications:
        The *complete* :class:`~repro.core.specs.SpecificationSet` the
        program was compacted from (kept and eliminated tests).
    cost_model:
        Optional :class:`~repro.core.costmodel.TestCostModel` covering
        every specification test.
    lookup:
        Optional pre-built :class:`~repro.tester.lookup.LookupTable`
        (see :meth:`with_lookup`).
    baseline:
        Optional :class:`~repro.floor.monitor.DriftBaseline`.
    train_metrics:
        The :class:`~repro.core.metrics.ClassificationReport` the
        program was accepted with (held-out evaluation at train time).
    provenance:
        Free-form dict of training provenance; :meth:`from_result`
        fills the standard keys.
    profile:
        Optional :class:`~repro.rules.engine.ToleranceProfile` (or its
        :meth:`~repro.rules.engine.ToleranceProfile.to_dict` payload)
        for multi-bin disposition.  Validated -- including overlap and
        coverage checks -- against the specification set immediately,
        so a corrupt or overlapping profile is rejected at
        construction/load time, never on the floor.
    bank:
        Optional fitted :class:`~repro.learn.ovr.OneVsRestSVCBank`
        grading shipped devices (see :meth:`with_profile`).
    """

    def __init__(self, model, specifications, cost_model=None,
                 lookup=None, baseline=None, train_metrics=None,
                 provenance=None, profile=None, bank=None):
        if not isinstance(specifications, SpecificationSet):
            specifications = SpecificationSet(specifications)
        missing = set(model.feature_names) - set(specifications.names)
        if missing:
            raise ArtifactError(
                "model feature(s) missing from the specification set: "
                "{}".format(sorted(missing)))
        if profile is not None:
            if not isinstance(profile, ToleranceProfile):
                profile = ToleranceProfile.from_dict(profile)
            profile.validate(specifications)
        if bank is not None and profile is None:
            raise ArtifactError(
                "a grade bank without a tolerance profile is "
                "meaningless; attach the profile too")
        self.model = model
        self.specifications = specifications
        self.cost_model = cost_model
        self.lookup = lookup
        self.baseline = baseline
        self.train_metrics = train_metrics
        self.provenance = dict(provenance or {})
        self.profile = profile
        self.bank = bank

    # -- construction ------------------------------------------------------
    @classmethod
    def from_result(cls, result, train, cost_model=None, device=None,
                    train_seed=None, generation="per-instance",
                    lookup_resolution=None, extra_provenance=None):
        """Package a compaction run for deployment.

        Parameters
        ----------
        result:
            The :class:`~repro.core.compaction.CompactionResult`.
        train:
            The training :class:`~repro.process.dataset.SpecDataset`
            the run used -- supplies the full specification set and
            the drift baseline statistics.
        cost_model:
            Optional cost model to ship with the program.
        device, train_seed, generation:
            Provenance: DUT name (e.g. ``OpAmpBench.name``), the
            Monte-Carlo seed of the training population, and the
            generation scheme (``seed_mode``).
        lookup_resolution:
            When given (an int, or ``"auto"`` for the default sizing),
            a lookup table is built immediately.
        extra_provenance:
            Additional provenance entries merged into the header.
        """
        provenance = {
            "repro_version": _repro_version(),
            "created_unix": time.time(),
            "device": device,
            "train_seed": train_seed,
            "generation": generation,
            "n_train": len(train),
            "tolerance": result.tolerance,
            "order": tuple(result.order),
            "kept": tuple(result.kept),
            "eliminated": tuple(result.eliminated),
            "train_metrics_summary": result.final_report.summary(),
        }
        provenance.update(dict(extra_provenance or {}))
        baseline = DriftBaseline.from_dataset(
            train, result.model.feature_names,
            guard_rate=result.final_report.guard_rate)
        artifact = cls(
            model=result.model,
            specifications=train.specifications,
            cost_model=cost_model,
            baseline=baseline,
            train_metrics=result.final_report,
            provenance=provenance,
        )
        if lookup_resolution is not None:
            artifact.with_lookup(
                resolution=(None if lookup_resolution == "auto"
                            else int(lookup_resolution)))
        return artifact

    def with_lookup(self, resolution=None, max_cells=None):
        """Attach a grid lookup table built from the model; returns self."""
        kwargs = {} if max_cells is None else {"max_cells": max_cells}
        self.lookup = LookupTable(self.model, resolution=resolution,
                                  **kwargs)
        return self

    def with_profile(self, profile, train=None, model_factory=None,
                     train_bank=True):
        """Attach a tolerance profile (and optionally train its bank).

        Parameters
        ----------
        profile:
            A :class:`~repro.rules.engine.ToleranceProfile` (or its
            dict form); validated against the artifact's
            specifications -- overlap, coverage, unknown specs.
        train:
            Optional training
            :class:`~repro.process.dataset.SpecDataset`.  When given,
            the drift baseline gains per-bin training rates (so the
            floor can chart per-bin drift), and -- with ``train_bank``
            and at least two grade bins -- a one-vs-rest grade bank is
            fitted on the *passing* training devices' normalized kept
            measurements, sharing one Gram matrix and SMO warm starts
            across the member fits.
        model_factory:
            Zero-argument callable building each bank member
            (default ``SVC(C=50.0, gamma="scale")``).

        Returns ``self``.
        """
        if not isinstance(profile, ToleranceProfile):
            profile = ToleranceProfile.from_dict(profile)
        profile.validate(self.specifications)
        self.profile = profile
        self.bank = None
        if train is None:
            return self
        import numpy as np

        from repro.rules.binning import bin_histogram, grade_indices

        bound = profile.bind(train.specifications)
        truth_bins = bound.assign(train.values)
        counts = bin_histogram(truth_bins, bound.bins)
        if self.baseline is not None:
            self.baseline = dataclasses.replace(
                self.baseline,
                bin_rates={name: counts[name] / len(train)
                           for name in bound.bins})
        grades = grade_indices(bound)
        default = profile.bin_index(profile.default_bin)
        passing = truth_bins != default
        if train_bank and len(grades) >= 2 and int(passing.sum()) >= 2:
            from repro.learn.ovr import OneVsRestSVCBank
            from repro.runtime.kernel_cache import GramCache

            X = train.normalized_values(self.kept)[passing]
            y = np.asarray(bound.bins, dtype=object)[truth_bins[passing]]
            cache = GramCache(X, self.kept)
            bank = OneVsRestSVCBank(
                tuple(bound.bins[g] for g in grades),
                model_factory=model_factory,
                gram_view=cache.view(self.kept))
            bank.fit(X, y)
            bank.set_train_gram_view(None)
            self.bank = bank
        return self

    # -- views -------------------------------------------------------------
    @property
    def kept(self):
        """Names of the tests the floor must still apply."""
        return tuple(self.model.feature_names)

    @property
    def eliminated(self):
        """Names of the tests the model replaces."""
        return tuple(
            n for n in self.specifications.names
            if n not in set(self.model.feature_names))

    def program(self, retest_policy=RETEST_FULL, use_lookup=None,
                boundary_margin=0.0):
        """A :class:`~repro.tester.program.TestProgram` over this artifact.

        ``use_lookup=None`` uses the lookup table when one is attached;
        pass ``False`` to force the live model or ``True`` to require
        the table (raises when absent).  The artifact's tolerance
        profile and grade bank (when present) ride along, so the
        program bins as the floor would.
        """
        if use_lookup is None:
            use_lookup = self.lookup is not None
        if use_lookup and self.lookup is None:
            raise ArtifactError(
                "artifact has no lookup table; build one with "
                "with_lookup() before deploying in lookup mode")
        classifier = self.lookup if use_lookup else self.model
        return TestProgram(classifier, cost_model=self.cost_model,
                           retest_policy=retest_policy,
                           profile=self.profile, bank=self.bank,
                           boundary_margin=boundary_margin)

    def validate_specifications(self, specifications):
        """Check the artifact matches a target bench's specifications.

        Names must match exactly (same tests, same column order) and
        every acceptability range must be identical -- a program is a
        decision rule over *these* ranges; running it against different
        ones silently changes every disposition.  Raises
        :class:`~repro.errors.ArtifactError` on any mismatch.
        """
        if not isinstance(specifications, SpecificationSet):
            specifications = getattr(specifications, "specifications",
                                     specifications)
        if not isinstance(specifications, SpecificationSet):
            specifications = SpecificationSet(specifications)
        if specifications.names != self.specifications.names:
            raise ArtifactError(
                "specification names differ from the artifact's: bench "
                "has {}, artifact was trained on {}".format(
                    list(specifications.names),
                    list(self.specifications.names)))
        for mine, theirs in zip(self.specifications, specifications):
            if (mine.low, mine.high) != (theirs.low, theirs.high):
                raise ArtifactError(
                    "acceptability range of {!r} differs from the "
                    "artifact's: bench [{:g}, {:g}] vs artifact "
                    "[{:g}, {:g}]".format(
                        mine.name, theirs.low, theirs.high,
                        mine.low, mine.high))
        return self

    # -- persistence -------------------------------------------------------
    def save(self, path):
        """Write the artifact to ``path`` as one versioned file."""
        model = _sanitized_model(self.model)
        lookup = self.lookup
        if lookup is not None:
            lookup = copy.copy(lookup)
            lookup._model = _sanitized_model(lookup._model)
        payload = {
            "magic": MAGIC,
            "schema_version": SCHEMA_VERSION,
            "state": {
                "model": model,
                "specifications": self.specifications,
                "cost_model": self.cost_model,
                "lookup": lookup,
                "baseline": self.baseline,
                "train_metrics": self.train_metrics,
                "provenance": self.provenance,
                # The profile travels as its plain JSON dict -- bin
                # contracts stay reviewable in the file and the
                # restricted unpickler never has to trust rule code.
                "profile": (None if self.profile is None
                            else self.profile.to_dict()),
                "bank": self.bank,
            },
        }
        blob = pickle.dumps(payload, protocol=4)
        with open(path, "wb") as handle:
            handle.write(blob)
        return self

    @classmethod
    def load(cls, path):
        """Load and validate an artifact written by :meth:`save`."""
        with open(path, "rb") as handle:
            blob = handle.read()
        return cls.loads(blob, source=str(path))

    @classmethod
    def loads(cls, blob, source="<bytes>"):
        """Validate and build an artifact from :meth:`save` bytes.

        ``source`` only labels error messages.  Callers that must pin
        a checksum to the exact bytes served (the service registry)
        read the file once and hash the same buffer they pass here.
        """
        try:
            payload = _ArtifactUnpickler(io.BytesIO(blob)).load()
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactError(
                "cannot read test-program artifact {!r}: {}".format(
                    source, exc)) from exc
        if (not isinstance(payload, dict)
                or payload.get("magic") != MAGIC):
            raise ArtifactError(
                "{!r} is not a repro test-program artifact".format(
                    source))
        version = payload.get("schema_version")
        if version not in COMPATIBLE_VERSIONS:
            raise ArtifactError(
                "artifact {!r} has schema version {!r}; this repro "
                "build reads versions {} -- re-deploy the program "
                "with a matching version".format(
                    source, version, list(COMPATIBLE_VERSIONS)))
        state = payload.get("state")
        required = ("model", "specifications", "provenance")
        if (not isinstance(state, dict)
                or any(key not in state for key in required)):
            raise ArtifactError(
                "artifact {!r} is missing required state".format(
                    source))
        # v1 files predate the binning layer: they carry no profile or
        # bank, and the floor runs them as the degenerate 2-bin case.
        # The constructor re-validates any v2 profile against the
        # specifications, so a corrupt/overlapping profile in the file
        # is rejected here with a clean RuleError.
        return cls(
            model=state["model"],
            specifications=state["specifications"],
            cost_model=state.get("cost_model"),
            lookup=state.get("lookup"),
            baseline=state.get("baseline"),
            train_metrics=state.get("train_metrics"),
            provenance=state["provenance"],
            profile=state.get("profile"),
            bank=state.get("bank"),
        )

    def describe(self):
        """Multi-line human-readable artifact summary."""
        prov = self.provenance
        lines = [
            "TestProgramArtifact (schema v{})".format(SCHEMA_VERSION),
            "  device: {}  repro: {}  generation: {}  seed: {}".format(
                prov.get("device", "?"),
                prov.get("repro_version", "?"),
                prov.get("generation", "?"),
                prov.get("train_seed", "?")),
            "  kept ({}): {}".format(len(self.kept),
                                     ", ".join(self.kept)),
            "  eliminated ({}): {}".format(
                len(self.eliminated),
                ", ".join(self.eliminated) or "-"),
            "  lookup: {}".format(self.lookup or "none"),
            "  cost model: {}".format(self.cost_model or "none"),
            "  profile: {}".format(
                "{} ({} bins, bank {})".format(
                    self.profile.name, self.profile.n_bins,
                    "fitted" if self.bank is not None else "none")
                if self.profile is not None
                else "none (degenerate 2-bin)"),
        ]
        if self.train_metrics is not None:
            lines.append(
                "  accepted with: {}".format(self.train_metrics.summary()))
        return "\n".join(lines)

    def __repr__(self):
        return ("TestProgramArtifact({} kept, {} eliminated, "
                "device={!r})".format(
                    len(self.kept), len(self.eliminated),
                    self.provenance.get("device")))


def _repro_version():
    import repro

    return repro.__version__
