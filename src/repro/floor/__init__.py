"""repro.floor -- the deployable production test floor.

The paper's end product is not a trained model but a *deployed test
program*: a compacted specification test set that dispositions every
manufactured device on the tester, with guard-band retest (Section
4.2) and insertion-aware cost accounting (Section 6).  This package is
the layer between training and production:

``repro.floor.artifact``
    :class:`TestProgramArtifact` -- one versioned file holding the
    kept test set, the trained guard-banded model (plus optional
    lookup table), guard-band and cost parameters, drift baseline and
    a provenance header; save at train time, load on any floor.
``repro.floor.engine``
    :class:`TestFloor` -- streams devices through the program in
    vectorized batches with pluggable retest policies; simulated
    traffic rides the deterministic seed tree of
    :mod:`repro.runtime.simulation`, so results are identical at any
    batch size and worker count.
``repro.floor.monitor``
    :class:`DriftMonitor` -- rolling per-spec mean and
    guard-band-rate control charts that flag when the incoming
    population departs from the training distribution and recommend
    recalibration.
``repro.floor.report``
    :class:`LotReport` / :class:`FloorReport` -- per-lot yield,
    escape, cost and throughput accounting.

CLI surface: ``repro deploy`` (train + save artifact) and ``repro
floor`` (load artifact, stream devices, report lots).
"""

from repro.floor.artifact import SCHEMA_VERSION, TestProgramArtifact
from repro.floor.engine import (
    DEFAULT_BATCH_SIZE,
    BatchDisposition,
    TestFloor,
)
from repro.floor.monitor import DriftAlarm, DriftBaseline, DriftMonitor
from repro.floor.report import FloorReport, LotReport

__all__ = [
    "BatchDisposition",
    "DEFAULT_BATCH_SIZE",
    "DriftAlarm",
    "DriftBaseline",
    "DriftMonitor",
    "FloorReport",
    "LotReport",
    "SCHEMA_VERSION",
    "TestFloor",
    "TestProgramArtifact",
]
