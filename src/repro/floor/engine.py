"""The streaming production test-floor engine.

:class:`TestFloor` is the serving layer of the reproduction: it loads
a deployed :class:`~repro.floor.artifact.TestProgramArtifact` and
dispositions an unbounded device stream through the compacted program
in vectorized batches -- first-pass classification (grid lookup table
or live guard-banded SVM pair), the paper's Section 4.2 retest
policies, Section 6 cost accounting, and online drift monitoring --
at a fixed memory footprint.

Determinism contract
--------------------

Every disposition is a pure per-device function of the artifact and
the device's measurements: batches only choose *how many* devices go
through each vectorized step.  Streaming the same devices therefore
produces identical decisions at any ``batch_size``, and simulated
traffic (:meth:`TestFloor.run_simulated`) rides the per-instance seed
tree of :mod:`repro.runtime.simulation`, so the streamed population --
and hence every decision, count and cost -- is identical at any
worker count as well.  One fine print: in lookup-table mode the
batch-size invariance is exact by construction (integer cell
indexing); in live-model mode the SVM *scores* can differ in the last
ulp across batch shapes (BLAS accumulation order), so a device lying
exactly on a decision surface could in principle flip -- the
equivalence tests and the throughput benchmark assert decision
equality empirically in both modes.

Throughput
----------

The hot path is one batched
:meth:`~repro.learn.svm.SVC.decision_function` (or one vectorized
table lookup) per batch; on synthetic streams the floor sustains well
over 100k devices/min on a single core
(``benchmarks/bench_floor_throughput.py`` measures it).
"""

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import GUARD
from repro.core.specs import BAD, GOOD
from repro.errors import ArtifactError, CompactionError
from repro.floor.artifact import TestProgramArtifact
from repro.floor.monitor import DriftMonitor
from repro.floor.report import FloorReport, LotReport
from repro.rules.binning import assign_bins, bin_histogram
from repro.rules.engine import ToleranceProfile
from repro.telemetry import get_telemetry
from repro.tester.program import (
    RETEST_FULL,
    apply_retest_policy,
    check_retest_policy,
    policy_cost,
)

#: Default devices per vectorized disposition batch.
DEFAULT_BATCH_SIZE = 8192


def disposition_counts(decisions, first_pass, truth):
    """The quality count fields for a set of dispositioned devices.

    The single source of the ship/scrap/guard/yield-loss/escape
    arithmetic: :meth:`BatchDisposition.counts` uses it for whole
    batches and the service micro-batcher for per-request slices, so
    lot reports and HTTP replies can never disagree on a definition.
    (``n_retested`` is policy-flow state, not derivable from the
    per-device arrays -- callers account for it separately.)
    """
    good = truth == GOOD
    return dict(
        n_devices=int(decisions.shape[0]),
        n_shipped=int(np.sum(decisions == GOOD)),
        n_scrapped=int(np.sum(decisions == BAD)),
        n_guard=int(np.sum(first_pass == GUARD)),
        n_yield_loss=int(np.sum(good & (decisions == BAD))),
        n_defect_escape=int(np.sum(~good & (decisions == GOOD))),
    )


@dataclass(frozen=True)
class BatchDisposition:
    """Outcome of dispositioning one in-memory batch.

    The per-device arrays are kept (they are computed anyway), so a
    caller coalescing several client requests into one batch -- the
    service micro-batcher -- can slice per-request decisions and counts
    back out without re-running anything.
    """

    #: Final per-device dispositions (+1 ship / -1 scrap).
    decisions: np.ndarray
    #: First-pass classifications (+1/-1/0) before the retest policy.
    first_pass: np.ndarray
    #: Ground-truth labels derived from the full measurements.
    truth: np.ndarray
    #: Devices sent through the retest flow.
    n_retested: int
    #: Population cost under the compacted program + retest policy.
    cost: float
    #: Cost of full-specification testing of the same batch.
    full_cost: float
    #: Per-device bin indices into ``bin_names`` (always populated by
    #: :meth:`TestFloor.dispose`; binary programs get the degenerate
    #: PASS/FAIL pair).
    bins: object = None
    #: Profile truth-bin assignment of the full measurements.
    truth_bins: object = None
    #: Bin names, in profile order.
    bin_names: tuple = ()
    #: Shipped devices routed through the grade (bin) retest flow.
    n_bin_retested: int = 0

    @property
    def n_devices(self):
        return int(self.decisions.shape[0])

    def counts(self):
        """The legacy :class:`LotReport` count fields for this batch.

        Deliberately excludes the bin fields: these exact keys are the
        binary-parity surface (service replies, lot reports) that must
        stay bit-identical to pre-binning builds.  Bin histograms come
        from :meth:`bin_counts`.
        """
        out = disposition_counts(self.decisions, self.first_pass,
                                 self.truth)
        out["n_retested"] = int(self.n_retested)
        return out

    def bin_counts(self):
        """``{bin_name: count}`` histogram (``None`` without bins)."""
        if self.bins is None:
            return None
        return bin_histogram(self.bins, self.bin_names)


class TestFloor:
    """Disposition device streams through a deployed test program.

    Parameters
    ----------
    artifact:
        A :class:`~repro.floor.artifact.TestProgramArtifact`, or a
        path to one saved with
        :meth:`~repro.floor.artifact.TestProgramArtifact.save`.
    retest_policy:
        ``"full_retest"`` (default), ``"accept"`` or ``"reject"`` --
        the paper Section 4.2 guard-band handling, pluggable exactly
        as in :class:`~repro.tester.program.TestProgram`.
    batch_size:
        Devices per vectorized disposition batch (memory/throughput
        knob; never affects any decision).
    use_lookup:
        ``None`` (default) uses the artifact's lookup table when one
        is attached; ``True`` requires it; ``False`` forces the live
        guard-banded model.
    monitor:
        ``None`` (default) builds a
        :class:`~repro.floor.monitor.DriftMonitor` from the artifact's
        baseline when present; ``False`` disables monitoring; or pass
        a pre-configured monitor.
    bin_boundary_margin:
        Grade-bank top-2 margin below which a shipped device's bin is
        taken from the full measurements (the grade-retest flow); only
        meaningful on artifacts carrying a bank.  Never affects the
        binary ship/scrap decision.
    """

    def __init__(self, artifact, retest_policy=RETEST_FULL,
                 batch_size=DEFAULT_BATCH_SIZE, use_lookup=None,
                 monitor=None, bin_boundary_margin=0.0):
        if isinstance(artifact, (str, os.PathLike)):
            artifact = TestProgramArtifact.load(artifact)
        check_retest_policy(retest_policy)
        batch_size = int(batch_size)
        if batch_size < 1:
            raise CompactionError("batch_size must be positive")
        if use_lookup is None:
            use_lookup = artifact.lookup is not None
        if use_lookup and artifact.lookup is None:
            raise ArtifactError(
                "artifact has no lookup table; build one with "
                "with_lookup() or pass use_lookup=False")
        if monitor is None:
            monitor = (DriftMonitor(artifact.baseline)
                       if artifact.baseline is not None else None)
        elif monitor is False:
            monitor = None
        self.artifact = artifact
        self.retest_policy = retest_policy
        self.batch_size = batch_size
        self.monitor = monitor
        self._use_lookup = bool(use_lookup)
        self._specs = artifact.specifications
        self._kept = artifact.kept
        self._kept_idx = np.array(
            [self._specs.index(name) for name in self._kept])
        # Binning layer: every disposition also carries a bin.  Binary
        # artifacts (no profile) get the degenerate PASS/FAIL profile,
        # which relabels the decisions exactly -- the parity guarantee.
        profile = getattr(artifact, "profile", None)
        if profile is None:
            profile = ToleranceProfile.binary_default(self._specs)
        self._bound = profile.bind(self._specs)
        self._bank = getattr(artifact, "bank", None)
        self.bin_boundary_margin = float(bin_boundary_margin)
        #: Bin names, in profile order (default bin last).
        self.bin_names = self._bound.bins
        self._kept_specs = self._specs.subset(self._kept)

    @classmethod
    def from_file(cls, path, **kwargs):
        """Load an artifact file and build a floor over it."""
        return cls(TestProgramArtifact.load(path), **kwargs)

    # -- the batched hot path ---------------------------------------------
    def _first_pass(self, kept_values):
        """Vectorized +1/-1/0 classification of one batch."""
        if self._use_lookup:
            return np.asarray(self.artifact.lookup.classify(kept_values))
        return self.artifact.model.predict_measurements(kept_values)

    def dispose(self, batch):
        """Disposition one in-memory batch of full-specification rows.

        This is the single-batch primitive everything else rides --
        :meth:`run_stream` loops it over rebatched traffic, and the
        service micro-batcher (:mod:`repro.service.batcher`) feeds it
        coalesced client requests.  A disposition is a pure per-device
        function of the artifact and the device's measurements, so
        coalescing or splitting batches never changes a decision.

        Unlike :meth:`run_stream` this does **not** reset the drift
        monitor: the monitor window keeps rolling across calls, which
        is exactly what a long-lived service wants.

        Returns a :class:`BatchDisposition`.
        """
        # Telemetry observes the batch but never steers it: timings
        # and counts only, taken outside the decision arithmetic.
        tel = get_telemetry()
        t0 = time.perf_counter() if tel.enabled else 0.0
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2:
            raise CompactionError(
                "batch must be a 1-D device row or a 2-D chunk; got "
                "ndim={}".format(batch.ndim))
        if batch.shape[1] != len(self._specs):
            raise CompactionError(
                "stream rows have {} measurements; the program "
                "was trained on {} specifications".format(
                    batch.shape[1], len(self._specs)))
        kept_values = batch[:, self._kept_idx]
        first = self._first_pass(kept_values)
        truth = self._specs.labels(batch)
        decisions, n_retested = apply_retest_policy(
            first, truth, self.retest_policy)
        n_guard = int(np.sum(first == GUARD))
        cost, full_cost = policy_cost(
            self.artifact.cost_model, self._kept, batch.shape[0],
            n_guard, self.retest_policy)
        truth_bins = self._bound.assign(batch)
        kept_norm = (self._kept_specs.normalize(kept_values)
                     if self._bank is not None else None)
        bins, n_bin_retested = assign_bins(
            self._bound, decisions, truth_bins, kept_norm=kept_norm,
            bank=self._bank,
            boundary_margin=self.bin_boundary_margin)
        if self.monitor is not None:
            self.monitor.update(kept_values, first, bins=bins,
                                bin_names=self.bin_names)
        outcome = BatchDisposition(
            decisions=decisions, first_pass=first, truth=truth,
            n_retested=n_retested, cost=cost, full_cost=full_cost,
            bins=bins, truth_bins=truth_bins,
            bin_names=self.bin_names,
            n_bin_retested=n_bin_retested)
        if tel.enabled:
            self._record_disposition(tel, outcome,
                                     time.perf_counter() - t0)
        return outcome

    def _record_disposition(self, tel, outcome, seconds):
        """Fold one batch's outcome into the telemetry registry."""
        tel.observe("repro_floor_batch_seconds", seconds)
        tel.counter("repro_floor_batches_total", 1)
        tel.counter("repro_floor_devices_total", outcome.n_devices)
        tel.counter("repro_floor_shipped_total",
                    int(np.sum(outcome.decisions == GOOD)))
        tel.counter("repro_floor_scrapped_total",
                    int(np.sum(outcome.decisions == BAD)))
        tel.counter("repro_floor_guard_total",
                    int(np.sum(outcome.first_pass == GUARD)))
        tel.counter("repro_floor_retests_total", outcome.n_retested)
        tel.counter("repro_floor_bin_retests_total",
                    outcome.n_bin_retested)
        bin_counts = outcome.bin_counts()
        if bin_counts:
            for name, count in bin_counts.items():
                if count:
                    tel.counter("repro_floor_bin_total", count,
                                bin=name)

    @staticmethod
    def _rebatch(stream, batch_size):
        """Regroup incoming rows/chunks into exact-size batches.

        The floor controls its own batch geometry, so callers may feed
        single devices, arbitrary chunks or whole arrays -- vectorized
        throughput (and the drift monitor's window geometry) stays
        independent of how the transport happened to frame the stream.
        """
        pending = []
        n_pending = 0
        for item in stream:
            rows = np.asarray(item, dtype=float)
            if rows.ndim == 1:
                rows = rows[None, :]
            if rows.ndim != 2:
                raise CompactionError(
                    "stream items must be 1-D device rows or 2-D "
                    "chunks; got ndim={}".format(rows.ndim))
            start = 0
            while rows.shape[0] - start >= batch_size - n_pending:
                take = batch_size - n_pending
                pending.append(rows[start:start + take])
                start += take
                yield (pending[0] if len(pending) == 1
                       else np.vstack(pending))
                pending, n_pending = [], 0
            if start < rows.shape[0]:
                pending.append(rows[start:])
                n_pending += rows.shape[0] - start
        if pending:
            yield pending[0] if len(pending) == 1 else np.vstack(pending)

    def run_stream(self, stream, batch_size=None, lot="stream",
                   keep_decisions=False):
        """Disposition a stream of full-specification measurement rows.

        Parameters
        ----------
        stream:
            Iterable of 1-D device rows or 2-D row chunks, in
            specification order (the simulated-traffic view: ground
            truth derives from the full measurements, so yield loss
            and escape in the report are exact).
        batch_size:
            Override the floor's configured batch size for this run.
        lot:
            Label for the returned :class:`LotReport`.
        keep_decisions:
            When True the report carries the concatenated final
            dispositions (used by equivalence tests; costs memory on
            very long streams).

        Returns
        -------
        LotReport
        """
        tel = get_telemetry()
        with tel.span("floor.lot", lot=str(lot)) as span:
            report = self._run_stream(stream, batch_size, lot,
                                      keep_decisions)
            span.set(devices=report.n_devices,
                     alarms=len(report.alarms))
            if tel.enabled:
                if report.alarms:
                    tel.counter("repro_floor_alarms_total",
                                len(report.alarms))
                if self.monitor is not None:
                    self.monitor.export_gauges(tel)
        return report

    def _run_stream(self, stream, batch_size, lot, keep_decisions):
        batch_size = (self.batch_size if batch_size is None
                      else int(batch_size))
        if batch_size < 1:
            raise CompactionError("batch_size must be positive")
        if self.monitor is not None:
            self.monitor.reset()
        counts = dict(n_devices=0, n_shipped=0, n_scrapped=0,
                      n_retested=0, n_guard=0, n_yield_loss=0,
                      n_defect_escape=0)
        total_cost = 0.0
        full_cost = 0.0
        n_bin_retested = 0
        bin_totals = {name: 0 for name in self.bin_names}
        decision_parts = [] if keep_decisions else None
        bin_parts = [] if keep_decisions else None

        # Wall time covers only disposition work: the stream iterator
        # (traffic generation, simulation, transport) runs outside the
        # timed region, so throughput figures measure the floor, not
        # the test harness feeding it.
        wall = 0.0
        for batch in self._rebatch(stream, batch_size):
            t0 = time.perf_counter()
            outcome = self.dispose(batch)
            wall += time.perf_counter() - t0
            for key, value in outcome.counts().items():
                counts[key] += value
            total_cost += outcome.cost
            full_cost += outcome.full_cost
            n_bin_retested += outcome.n_bin_retested
            for name, value in outcome.bin_counts().items():
                bin_totals[name] += value
            if keep_decisions:
                decision_parts.append(outcome.decisions)
                bin_parts.append(outcome.bins)

        # The report carries the charts' *lot-end* state: the rolling
        # window is exactly the most recent traffic, so a transient
        # excursion that has since rolled out is not re-reported as an
        # active alarm.
        alarms = (self.monitor.alarms()
                  if self.monitor is not None else ())
        decisions_out = None
        bins_out = None
        if keep_decisions:
            decisions_out = (np.concatenate(decision_parts)
                             if decision_parts
                             else np.empty(0, dtype=int))
            bins_out = (np.concatenate(bin_parts) if bin_parts
                        else np.empty(0, dtype=int))
        return LotReport(
            lot=lot,
            total_cost=total_cost,
            full_cost=full_cost,
            wall_seconds=wall,
            alarms=alarms,
            decisions=decisions_out,
            n_bin_retested=n_bin_retested,
            bin_counts=dict(bin_totals),
            bin_names=self.bin_names,
            bins=bins_out,
            **counts)

    def run_dataset(self, dataset, lot="dataset", batch_size=None,
                    keep_decisions=False):
        """Disposition an in-memory :class:`SpecDataset` population."""
        self.artifact.validate_specifications(dataset.specifications)
        return self.run_stream([dataset.values], batch_size=batch_size,
                               lot=lot, keep_decisions=keep_decisions)

    def run_sharded(self, dataset, n_devices=None, lot=None,
                    batch_size=None, keep_decisions=False):
        """Disposition a shard-store population, streaming shard by shard.

        ``dataset`` is a :class:`~repro.data.store.ShardedSpecDataset`;
        its memory-mapped shards are fed straight into
        :meth:`run_stream` (the rebatcher regroups them to the floor's
        batch geometry), so the population is never materialized.
        ``n_devices`` takes only the first rows of the store (it must
        hold at least that many).  Decisions are identical to
        :meth:`run_simulated` with the store's ``(dut, seed)`` -- the
        shards *are* that simulation, row for row.
        """
        self.artifact.validate_specifications(dataset.specifications)
        n_devices = (dataset.n_rows if n_devices is None
                     else int(n_devices))
        if not 0 < n_devices <= dataset.n_rows:
            raise CompactionError(
                "store {!r} holds {} rows; cannot stream {}".format(
                    dataset.root, dataset.n_rows, n_devices))

        def stream():
            remaining = n_devices
            for batch in dataset.iter_batches():
                if remaining <= 0:
                    return
                yield batch[:remaining] if remaining < len(batch) else batch
                remaining -= min(remaining, len(batch))

        return self.run_stream(
            stream(), batch_size=batch_size,
            lot=("dataset(seed={})".format(dataset.seed)
                 if lot is None else lot),
            keep_decisions=keep_decisions)

    # -- simulated traffic -------------------------------------------------
    def run_simulated(self, dut, n_devices, seed, n_jobs=None,
                      batch_size=None, lot=None, max_failures=None,
                      keep_decisions=False, engine="scalar",
                      dataset=None):
        """Stream a simulated Monte-Carlo population through the floor.

        Devices come from the deterministic per-instance seed tree
        (:func:`repro.runtime.simulation.generate_instance_batches`):
        the population -- and therefore every decision and count in
        the report -- is identical at any ``n_jobs``, any
        ``batch_size`` and either simulation ``engine``
        (``"batched"`` vectorizes the device simulations through the
        stacked MNA kernel), and is never materialized in full.

        ``dataset`` optionally replays the population from a
        pre-generated :class:`~repro.data.store.ShardedSpecDataset`
        instead of simulating: the store must match the requested
        ``seed`` and hold at least ``n_devices`` rows (a prefix of a
        larger store is the smaller run, by the seed-tree construction,
        so the decisions are identical either way).
        """
        from repro.runtime.simulation import generate_instance_batches

        self.artifact.validate_specifications(dut.specifications)
        if dataset is not None:
            if dataset.seed != int(seed):
                raise CompactionError(
                    "store {!r} was generated with seed {}, not {}; "
                    "replaying it would stream a different "
                    "population".format(dataset.root, dataset.seed,
                                        seed))
            return self.run_sharded(
                dataset, n_devices=n_devices, batch_size=batch_size,
                lot=("seed={}".format(seed) if lot is None else lot),
                keep_decisions=keep_decisions)
        batch_size = (self.batch_size if batch_size is None
                      else int(batch_size))
        stream = generate_instance_batches(
            dut, n_devices, seed, batch_size=batch_size,
            n_jobs=n_jobs, max_failures=max_failures, engine=engine)
        return self.run_stream(
            stream, batch_size=batch_size,
            lot=("seed={}".format(seed) if lot is None else lot),
            keep_decisions=keep_decisions)

    def run_lots(self, dut, lots, n_jobs=None, batch_size=None,
                 keep_decisions=False, engine="scalar",
                 dataset_root=None):
        """Run a lot schedule; returns a :class:`FloorReport`.

        ``lots`` is a sequence of ``(n_devices, seed)`` pairs, one per
        production lot.  Lots stream in order; within a lot the
        simulation fans out across ``n_jobs`` workers (and/or through
        the batched kernel with ``engine="batched"``).

        ``dataset_root`` sources every lot from a manifested shard
        store under that directory (:func:`repro.data.ensure_dataset`
        keyed by ``(device, seed)``): already-generated rows are
        memory-mapped and replayed, missing rows are generated once and
        persisted -- repeated schedules never re-simulate, and the
        reports are identical to direct simulation.
        """
        if dataset_root is not None:
            from repro.data import ensure_dataset
        reports = []
        for index, (n_devices, seed) in enumerate(lots):
            dataset = None
            if dataset_root is not None:
                dataset = ensure_dataset(dataset_root, dut, n_devices,
                                         seed, n_jobs=n_jobs,
                                         engine=engine)
            reports.append(self.run_simulated(
                dut, n_devices, seed, n_jobs=n_jobs,
                batch_size=batch_size,
                lot="lot{}(seed={})".format(index, seed),
                keep_decisions=keep_decisions, engine=engine,
                dataset=dataset))
        return FloorReport(tuple(reports))

    def __repr__(self):
        return ("TestFloor({} kept, policy={!r}, batch_size={}, "
                "{}, monitor={})".format(
                    len(self._kept), self.retest_policy,
                    self.batch_size,
                    "lookup" if self._use_lookup else "live model",
                    "on" if self.monitor is not None else "off"))
