"""Per-lot and per-run reporting for the streaming test floor.

A production floor dispositions devices in *lots* (one wafer batch,
one day of traffic, one simulated seed); each lot yields a
:class:`LotReport` with the paper's quality metrics (yield loss,
defect escape, guard-band rate -- Section 5.1), the insertion-aware
cost accounting of Section 6, the drift alarms active at lot end and
the measured throughput.  :class:`FloorReport` aggregates a run of
lots.

All counts are exact: the floor streams ground-truth-labeled simulated
devices, so escapes and yield loss are known, not estimated.
"""

from dataclasses import dataclass, field


def _rate(count, total):
    return count / total if total else 0.0


@dataclass(frozen=True)
class LotReport:
    """Outcome of streaming one lot through the test floor."""

    #: Human-readable lot label (e.g. ``"lot0(seed=7)"``).
    lot: str
    #: Devices dispositioned.
    n_devices: int
    #: Final ship decisions (+1).
    n_shipped: int
    #: Final scrap decisions (-1).
    n_scrapped: int
    #: Devices sent through the retest flow (``full_retest`` only).
    n_retested: int
    #: First-pass guard-band devices (before the retest policy).
    n_guard: int
    #: Good devices scrapped (ground truth known on the floor sim).
    n_yield_loss: int
    #: Bad devices shipped.
    n_defect_escape: int
    #: Population cost under the compacted program + retest policy.
    total_cost: float
    #: Cost of full-specification testing of the same population.
    full_cost: float
    #: Wall-clock seconds spent dispositioning the lot.
    wall_seconds: float
    #: Drift alarms active when the lot finished (lot-end state of the
    #: rolling control charts).
    alarms: tuple = ()
    #: Final per-device dispositions, kept only when the caller asked
    #: for them (``keep_decisions=True``); ``None`` otherwise.
    decisions: object = None
    #: Shipped devices routed through the grade (bin) retest flow.
    n_bin_retested: int = 0
    #: ``{bin_name: count}`` lot histogram (``None`` on reports built
    #: before the binning layer).
    bin_counts: object = None
    #: Bin names, in profile order (default bin last).
    bin_names: tuple = ()
    #: Per-device bin indices (``keep_decisions=True`` only).
    bins: object = None

    @property
    def yield_loss_rate(self):
        """Good devices scrapped, over all devices."""
        return _rate(self.n_yield_loss, self.n_devices)

    @property
    def defect_escape_rate(self):
        """Bad devices shipped, over all devices."""
        return _rate(self.n_defect_escape, self.n_devices)

    @property
    def guard_rate(self):
        """First-pass guard-band devices, over all devices."""
        return _rate(self.n_guard, self.n_devices)

    @property
    def cost_per_device(self):
        """Average per-device cost under the compacted program."""
        return _rate(self.total_cost, self.n_devices)

    @property
    def cost_reduction(self):
        """Fractional saving vs full-specification testing."""
        if self.full_cost <= 0:
            return 0.0
        return 1.0 - self.total_cost / self.full_cost

    @property
    def devices_per_minute(self):
        """Measured disposition throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_devices * 60.0 / self.wall_seconds

    def summary(self):
        """One-line outcome summary."""
        return ("{}: {} devices  shipped {}  scrapped {}  retested {}  "
                "YL {:.2%}  DE {:.2%}  guard {:.2%}  "
                "cost/device {:.3g} ({:.1%} saved)  "
                "{:,.0f} devices/min  {} drift alarm(s)").format(
                    self.lot, self.n_devices, self.n_shipped,
                    self.n_scrapped, self.n_retested,
                    self.yield_loss_rate, self.defect_escape_rate,
                    self.guard_rate, self.cost_per_device,
                    self.cost_reduction, self.devices_per_minute,
                    len(self.alarms))

    def __str__(self):
        return self.summary()


@dataclass(frozen=True)
class FloorReport:
    """Aggregate of one floor run (a schedule of lots)."""

    lots: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "lots", tuple(self.lots))

    @property
    def n_devices(self):
        return sum(lot.n_devices for lot in self.lots)

    @property
    def n_shipped(self):
        return sum(lot.n_shipped for lot in self.lots)

    @property
    def n_retested(self):
        return sum(lot.n_retested for lot in self.lots)

    @property
    def total_cost(self):
        return sum(lot.total_cost for lot in self.lots)

    @property
    def full_cost(self):
        return sum(lot.full_cost for lot in self.lots)

    @property
    def wall_seconds(self):
        return sum(lot.wall_seconds for lot in self.lots)

    @property
    def yield_loss_rate(self):
        return _rate(sum(lot.n_yield_loss for lot in self.lots),
                     self.n_devices)

    @property
    def defect_escape_rate(self):
        return _rate(sum(lot.n_defect_escape for lot in self.lots),
                     self.n_devices)

    @property
    def guard_rate(self):
        return _rate(sum(lot.n_guard for lot in self.lots),
                     self.n_devices)

    @property
    def cost_reduction(self):
        if self.full_cost <= 0:
            return 0.0
        return 1.0 - self.total_cost / self.full_cost

    @property
    def devices_per_minute(self):
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_devices * 60.0 / self.wall_seconds

    @property
    def n_bin_retested(self):
        return sum(getattr(lot, "n_bin_retested", 0)
                   for lot in self.lots)

    @property
    def bin_counts(self):
        """Merged ``{bin_name: count}`` across lots (``None`` when no
        lot carries bin histograms)."""
        totals = None
        for lot in self.lots:
            counts = getattr(lot, "bin_counts", None)
            if not counts:
                continue
            if totals is None:
                totals = {}
            for name, count in counts.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    @property
    def alarms(self):
        """All lots' alarms, in lot order."""
        return tuple(alarm for lot in self.lots for alarm in lot.alarms)

    def rows(self):
        """Table rows (one per lot) for CLI / benchmark printers."""
        return [(lot.lot, lot.n_devices,
                 100.0 * lot.yield_loss_rate,
                 100.0 * lot.defect_escape_rate,
                 100.0 * lot.guard_rate,
                 lot.cost_per_device,
                 lot.devices_per_minute,
                 len(lot.alarms))
                for lot in self.lots]

    def summary(self):
        """Multi-line run summary (one line per lot + totals)."""
        lines = [lot.summary() for lot in self.lots]
        lines.append(
            "total: {} devices in {} lot(s)  YL {:.2%}  DE {:.2%}  "
            "{:.1%} cost saved  {:,.0f} devices/min  {} alarm(s)".format(
                self.n_devices, len(self.lots), self.yield_loss_rate,
                self.defect_escape_rate, self.cost_reduction,
                self.devices_per_minute, len(self.alarms)))
        return "\n".join(lines)

    def __str__(self):
        return self.summary()
