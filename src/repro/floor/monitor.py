"""Online distribution-drift monitoring for a deployed test floor.

A compacted test program is a *statistical* decision rule: its yield
loss, defect escape and guard-band rates were validated on a training
population, and they are only trustworthy while the incoming devices
keep coming from that population (the convergence literature around
loopy belief propagation makes the same point for deployed inference:
a fixed-point decision rule holds only inside the regime it was
derived for).  The floor therefore watches the stream itself:

* **per-spec control charts** -- the rolling mean of every *measured*
  (kept) specification against its training mean, in standard errors
  (``z = (mean_window - mean_train) / (std_train / sqrt(n_window))``);
* **guard-band-rate chart** -- the rolling fraction of first-pass
  guard-band devices against the train-time rate, with binomial
  control limits.  A drifting population typically piles up near the
  acceptance boundary first, so the guard rate is the most sensitive
  early-warning statistic the tester gets for free.

Alarms recommend recalibration (retrain and redeploy the artifact on
fresh data) rather than attempting any automatic correction: silently
adapting the decision rule on the floor would invalidate the escape
and yield-loss guarantees the program was signed off with.

Everything here is deterministic: statistics depend only on the stream
contents and the configured window, never on timing or worker count.
"""

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import GUARD
from repro.errors import CompactionError


@dataclass(frozen=True)
class DriftBaseline:
    """Training-time reference statistics of the measured specifications.

    Captured when the artifact is built (see
    :meth:`repro.floor.artifact.TestProgramArtifact.from_result`) and
    shipped inside it, so any floor loading the artifact monitors
    against the exact population the program was trained on.
    """

    #: Names of the kept (measured) specifications, in order.
    names: tuple
    #: Per-spec training mean of the raw measurements.
    mean: tuple
    #: Per-spec training standard deviation (ddof=1).
    std: tuple
    #: First-pass guard-band rate observed at train time.
    guard_rate: float
    #: Training-population size the statistics were computed from.
    n_train: int
    #: Optional ``{bin_name: training rate}`` of the tolerance
    #: profile's truth-bin assignment (set by
    #: :meth:`repro.floor.artifact.TestProgramArtifact.with_profile`);
    #: ``None`` on binary programs and on baselines saved before the
    #: binning layer existed.
    bin_rates: object = None

    @classmethod
    def from_dataset(cls, dataset, kept_names, guard_rate):
        """Compute the baseline from a training dataset.

        ``guard_rate`` is supplied by the caller (the artifact builder
        uses the held-out guard rate of the final compaction report --
        the same estimate the program was accepted with).
        """
        kept_names = tuple(kept_names)
        values = dataset.project(kept_names).values
        if len(dataset) < 2:
            raise CompactionError(
                "drift baseline needs at least two training devices")
        return cls(
            names=kept_names,
            mean=tuple(float(m) for m in values.mean(axis=0)),
            std=tuple(float(s) for s in values.std(axis=0, ddof=1)),
            guard_rate=float(guard_rate),
            n_train=len(dataset),
        )


@dataclass(frozen=True)
class DriftAlarm:
    """One control-chart violation observed on the stream."""

    #: ``"spec-mean"`` or ``"guard-rate"``.
    kind: str
    #: Specification name, or ``"guard-band rate"``.
    subject: str
    #: Windowed statistic that violated the chart.
    observed: float
    #: Training-time expectation of that statistic.
    expected: float
    #: Signed distance from expectation in control-limit sigmas.
    z_score: float
    #: Configured alarm threshold (sigmas).
    threshold: float
    #: Devices in the window the statistic was computed over.
    window_devices: int

    @property
    def recommendation(self):
        """What the floor operator should do about this alarm."""
        return ("incoming population departs from the training "
                "distribution ({}); recalibrate: retrain and redeploy "
                "the test-program artifact on fresh devices".format(
                    self.subject))

    def __str__(self):
        return ("DRIFT[{}] {}: observed {:.6g} vs expected {:.6g} "
                "(z={:+.1f}, threshold {:.1f}, window {} devices)"
                .format(self.kind, self.subject, self.observed,
                        self.expected, self.z_score, self.threshold,
                        self.window_devices))


class DriftMonitor:
    """Rolling control charts over a disposition stream.

    Parameters
    ----------
    baseline:
        The :class:`DriftBaseline` captured at train time.
    z_threshold:
        Per-spec mean-chart alarm threshold in standard errors.  The
        default is deliberately wide: at floor-scale windows the
        standard error is tiny, so a tight threshold would page on
        physically irrelevant drifts.
    guard_z_threshold:
        Guard-rate chart threshold in binomial sigmas.
    window_batches:
        Number of most recent batches the rolling window spans.
    min_devices:
        No chart is evaluated until the window holds at least this
        many devices (early small-sample windows are pure noise).
    """

    def __init__(self, baseline, z_threshold=6.0, guard_z_threshold=5.0,
                 window_batches=64, min_devices=256):
        if z_threshold <= 0 or guard_z_threshold <= 0:
            raise CompactionError("alarm thresholds must be positive")
        if window_batches < 1:
            raise CompactionError("window_batches must be at least 1")
        self.baseline = baseline
        self.z_threshold = float(z_threshold)
        self.guard_z_threshold = float(guard_z_threshold)
        self.min_devices = int(min_devices)
        self._mu0 = np.asarray(baseline.mean, dtype=float)
        # Zero-variance training columns would make any change an
        # infinite-z alarm; floor the scale at a tiny epsilon so the
        # chart stays finite (and still fires on any real movement).
        self._sigma0 = np.maximum(
            np.asarray(baseline.std, dtype=float), 1e-12)
        # Guard-rate control limits need 0 < p0 < 1; clamp by half a
        # training count so a zero observed rate keeps a finite chart.
        half = 0.5 / max(baseline.n_train, 1)
        self._p0 = min(max(baseline.guard_rate, half), 1.0 - half)
        # Per-bin rate charts; old pickled baselines predate the
        # attribute, so read it defensively.
        bin_rates = getattr(baseline, "bin_rates", None)
        if bin_rates:
            self._bin_names = tuple(bin_rates)
            self._bin_p0 = {
                name: min(max(float(rate), half), 1.0 - half)
                for name, rate in bin_rates.items()}
        else:
            self._bin_names = ()
            self._bin_p0 = {}
        self._window = deque(maxlen=int(window_batches))
        #: Total devices observed since construction / last reset.
        self.n_seen = 0
        # Alarm subjects active at the last gauge export -- the state
        # the transition counters in export_gauges() diff against.
        self._exported_alarms = set()

    def reset(self):
        """Clear the rolling window (e.g. between lots)."""
        self._window.clear()
        self.n_seen = 0

    def update(self, kept_values, first_pass, bins=None, bin_names=()):
        """Feed one disposition batch; returns the current alarms.

        Parameters
        ----------
        kept_values:
            ``(n, len(baseline.names))`` raw measurements of the kept
            specifications for this batch.
        first_pass:
            The batch's first-pass predictions (+1/-1/0); only the
            guard count is used.
        bins, bin_names:
            Optional per-device bin indices and the bin-name order
            they index into.  Charted against the baseline's per-bin
            training rates when those are available; otherwise the
            counts are still windowed (see :meth:`bin_rates_window`)
            but raise no alarms.

        Returns
        -------
        tuple of DriftAlarm
            Alarms active for the *current* window (empty when the
            window is still below ``min_devices`` or in control).
        """
        kept_values = np.asarray(kept_values, dtype=float)
        if kept_values.ndim == 1:
            kept_values = kept_values[None, :]
        if kept_values.shape[1] != len(self.baseline.names):
            raise CompactionError(
                "batch has {} measured specs; baseline covers {}".format(
                    kept_values.shape[1], len(self.baseline.names)))
        first_pass = np.asarray(first_pass)
        bin_counts = None
        if bins is not None:
            bins = np.asarray(bins)
            bin_counts = {name: int(np.sum(bins == i))
                          for i, name in enumerate(bin_names)}
        self._window.append((
            kept_values.shape[0],
            kept_values.sum(axis=0),
            int(np.sum(first_pass == GUARD)),
            bin_counts,
        ))
        self.n_seen += kept_values.shape[0]
        return self.alarms()

    def bin_rates_window(self):
        """``{bin_name: rate}`` over the current window (``{}`` when
        the stream carries no bins)."""
        totals = {}
        n_window = 0
        for n, _, _, bin_counts in self._window:
            n_window += n
            if bin_counts:
                for name, count in bin_counts.items():
                    totals[name] = totals.get(name, 0) + count
        if not totals or n_window == 0:
            return {}
        return {name: count / n_window for name, count in totals.items()}

    def alarms(self):
        """Evaluate the control charts over the current window."""
        n_window = sum(n for n, _, _, _ in self._window)
        if n_window < self.min_devices:
            return ()
        total = np.sum([s for _, s, _, _ in self._window], axis=0)
        mean_window = total / n_window
        stderr = self._sigma0 / np.sqrt(n_window)
        z_specs = (mean_window - self._mu0) / stderr

        out = []
        for i, name in enumerate(self.baseline.names):
            if abs(z_specs[i]) > self.z_threshold:
                out.append(DriftAlarm(
                    kind="spec-mean", subject=name,
                    observed=float(mean_window[i]),
                    expected=float(self._mu0[i]),
                    z_score=float(z_specs[i]),
                    threshold=self.z_threshold,
                    window_devices=n_window))

        n_guard = sum(g for _, _, g, _ in self._window)
        p_window = n_guard / n_window
        sigma_p = np.sqrt(self._p0 * (1.0 - self._p0) / n_window)
        z_guard = (p_window - self._p0) / sigma_p
        if abs(z_guard) > self.guard_z_threshold:
            out.append(DriftAlarm(
                kind="guard-rate", subject="guard-band rate",
                observed=float(p_window),
                expected=float(self.baseline.guard_rate),
                z_score=float(z_guard),
                threshold=self.guard_z_threshold,
                window_devices=n_window))

        # Per-bin rate charts: same binomial construction as the guard
        # chart, one per bin the baseline carries a training rate for.
        if self._bin_p0:
            observed = self.bin_rates_window()
            bin_rates = getattr(self.baseline, "bin_rates", {}) or {}
            for name in self._bin_names:
                if name not in observed:
                    continue
                p0 = self._bin_p0[name]
                sigma = np.sqrt(p0 * (1.0 - p0) / n_window)
                z = (observed[name] - p0) / sigma
                if abs(z) > self.guard_z_threshold:
                    out.append(DriftAlarm(
                        kind="bin-rate",
                        subject="bin {!r} rate".format(name),
                        observed=float(observed[name]),
                        expected=float(bin_rates.get(name, p0)),
                        z_score=float(z),
                        threshold=self.guard_z_threshold,
                        window_devices=n_window))
        return tuple(out)

    def chart_state(self):
        """The charts' current state, alarmed or not.

        Returns a dict with the windowed per-spec means and z-scores,
        the guard-band rate chart, the per-bin window rates, the
        active alarms, and the window size -- the full picture an
        operator dashboard needs, where :meth:`alarms` reports only
        violations.  Below ``min_devices`` the statistics are still
        reported (they are what the window holds) but ``alarms`` is
        empty, matching :meth:`alarms`.
        """
        n_window = sum(n for n, _, _, _ in self._window)
        state = {
            "window_devices": int(n_window),
            "devices_seen": int(self.n_seen),
            "specs": {},
            "guard": None,
            "bins": self.bin_rates_window(),
            "alarms": self.alarms(),
        }
        if n_window == 0:
            return state
        total = np.sum([s for _, s, _, _ in self._window], axis=0)
        mean_window = total / n_window
        stderr = self._sigma0 / np.sqrt(n_window)
        z_specs = (mean_window - self._mu0) / stderr
        for i, name in enumerate(self.baseline.names):
            state["specs"][name] = {
                "mean": float(mean_window[i]),
                "z": float(z_specs[i]),
            }
        n_guard = sum(g for _, _, g, _ in self._window)
        p_window = n_guard / n_window
        sigma_p = np.sqrt(self._p0 * (1.0 - self._p0) / n_window)
        state["guard"] = {
            "rate": float(p_window),
            "z": float((p_window - self._p0) / sigma_p),
        }
        return state

    def export_gauges(self, telemetry):
        """Publish the chart state as gauges on ``telemetry``.

        Gauge names follow the ``repro_floor_drift_*`` family, so a
        ``/metrics?format=prometheus`` scrape carries the drift
        signals, not just counts.  Alarm *transitions* since the last
        export are counted into
        ``repro_floor_drift_raised_total`` /
        ``repro_floor_drift_cleared_total``; the per-chart alarm flags
        themselves are 0/1 gauges.  Returns the exported chart state.
        """
        state = self.chart_state()
        telemetry.gauge("repro_floor_drift_window_devices",
                        state["window_devices"])
        telemetry.gauge("repro_floor_drift_devices_seen",
                        state["devices_seen"])
        alarmed = {alarm.subject for alarm in state["alarms"]}
        for name, chart in state["specs"].items():
            telemetry.gauge("repro_floor_drift_spec_mean",
                            chart["mean"], spec=name)
            telemetry.gauge("repro_floor_drift_spec_z",
                            chart["z"], spec=name)
            telemetry.gauge("repro_floor_drift_spec_alarm",
                            1.0 if name in alarmed else 0.0, spec=name)
        if state["guard"] is not None:
            telemetry.gauge("repro_floor_drift_guard_rate",
                            state["guard"]["rate"])
            telemetry.gauge("repro_floor_drift_guard_z",
                            state["guard"]["z"])
            telemetry.gauge(
                "repro_floor_drift_guard_alarm",
                1.0 if "guard-band rate" in alarmed else 0.0)
        for name, rate in state["bins"].items():
            telemetry.gauge("repro_floor_drift_bin_rate", rate,
                            bin=name)
        telemetry.gauge("repro_floor_drift_alarms",
                        len(state["alarms"]))
        previous = getattr(self, "_exported_alarms", set())
        raised = alarmed - previous
        cleared = previous - alarmed
        if raised:
            telemetry.counter("repro_floor_drift_raised_total",
                              len(raised))
        if cleared:
            telemetry.counter("repro_floor_drift_cleared_total",
                              len(cleared))
        self._exported_alarms = alarmed
        return state

    def __repr__(self):
        return ("DriftMonitor({} specs, z>{:g}, guard z>{:g}, "
                "{} devices seen)".format(
                    len(self.baseline.names), self.z_threshold,
                    self.guard_z_threshold, self.n_seen))
