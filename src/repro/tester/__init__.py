"""Deployment of a compacted test set on the production tester.

Paper Section 3.3: after compaction the acceptability ranges of the
kept tests are no longer sufficient -- the acceptance region is
reshaped by the statistical model (Fig. 3).  Shipping the raw SVM to
the tester "may require a significant amount of additional tester
resources", so the paper proposes dividing the compacted-specification
space into a grid and storing a good/bad attribute per cell: a lookup
table the tester program consults at negligible cost.

* :mod:`repro.tester.lookup` -- the grid lookup table;
* :mod:`repro.tester.program` -- a production test-program simulation
  including the guard-band retest flow and cost accounting.
"""

from repro.tester.lookup import LookupTable
from repro.tester.program import TestOutcome, TestProgram

__all__ = ["LookupTable", "TestProgram", "TestOutcome"]
