"""Deployment of a compacted test set on the production tester.

Paper Section 3.3: after compaction the acceptability ranges of the
kept tests are no longer sufficient -- the acceptance region is
reshaped by the statistical model (Fig. 3).  Shipping the raw SVM to
the tester "may require a significant amount of additional tester
resources", so the paper proposes dividing the compacted-specification
space into a grid and storing a good/bad attribute per cell: a lookup
table the tester program consults at negligible cost.

* :mod:`repro.tester.lookup` -- the grid lookup table;
* :mod:`repro.tester.program` -- a production test-program simulation
  including the guard-band retest flow and cost accounting.

:class:`~repro.core.metrics.ClassificationReport` is re-exported here
because every :class:`TestOutcome` carries one.
"""

from repro.core.metrics import ClassificationReport
from repro.tester.lookup import LookupTable
from repro.tester.program import (
    RETEST_ACCEPT,
    RETEST_FULL,
    RETEST_REJECT,
    TestOutcome,
    TestProgram,
    apply_retest_policy,
    check_retest_policy,
    policy_cost,
)

__all__ = [
    "ClassificationReport",
    "LookupTable",
    "RETEST_ACCEPT",
    "RETEST_FULL",
    "RETEST_REJECT",
    "TestOutcome",
    "TestProgram",
    "apply_retest_policy",
    "check_retest_policy",
    "policy_cost",
]
