"""Grid lookup table replacing the SVM on the tester (Section 3.3).

The table divides the normalized space of the *kept* specifications
into a regular grid, queries the guard-banded classifier once per cell
center offline, and stores the three-valued attribute (+1 good,
-1 bad, 0 guard band) in a dense integer array.  At test time a device
measurement indexes the table in O(d) -- no kernel evaluations on the
tester.
"""

import numpy as np

from repro.errors import CompactionError

#: Default ceiling on the table size (cells).
DEFAULT_MAX_CELLS = 250_000
#: The normalized-space window covered by the grid.  One normalized
#: unit is the acceptability range; the margin covers the out-of-range
#: neighbourhood so marginal-bad devices index real cells.
GRID_LO = -0.3
GRID_HI = 1.3


class LookupTable:
    """A dense good/bad/guard lookup table over the kept-spec space.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.guardband.GuardBandedClassifier`.
    resolution:
        Cells per dimension; ``None`` picks the largest resolution
        whose total cell count stays below ``max_cells``.
    max_cells:
        Memory guard for the dense table.
    """

    def __init__(self, model, resolution=None, max_cells=DEFAULT_MAX_CELLS):
        self.feature_names = model.feature_names
        d = len(self.feature_names)
        if resolution is None:
            resolution = int(np.floor(max_cells ** (1.0 / d)))
            resolution = max(resolution, 3)
        resolution = int(resolution)
        if resolution < 2:
            raise CompactionError("lookup resolution must be >= 2")
        if resolution ** d > max_cells:
            raise CompactionError(
                "lookup table would need {} cells (> {}); lower the "
                "resolution or keep fewer tests".format(
                    resolution ** d, max_cells))
        self.resolution = resolution
        self._model = model
        self._feature_specs = model._feature_specs
        self._edges = np.linspace(GRID_LO, GRID_HI, resolution + 1)
        self._build()

    def _centers_1d(self):
        return 0.5 * (self._edges[:-1] + self._edges[1:])

    def _build(self):
        d = len(self.feature_names)
        centers = self._centers_1d()
        mesh = np.meshgrid(*([centers] * d), indexing="ij")
        points = np.stack([m.ravel() for m in mesh], axis=1)
        attributes = self._model.predict_features(points)
        self.table = attributes.astype(np.int8).reshape(
            (self.resolution,) * d)

    @property
    def n_cells(self):
        """Total number of grid cells."""
        return int(self.table.size)

    def cell_of(self, values):
        """Grid coordinates for raw measurements of the kept specs.

        Out-of-window values clip to the boundary cells, whose centers
        lie far outside every guard band and therefore carry the bad
        attribute.
        """
        values = np.asarray(values, dtype=float)
        one_dim = values.ndim == 1
        if one_dim:
            values = values[None, :]
        normalized = self._feature_specs.normalize(values)
        span = GRID_HI - GRID_LO
        idx = np.floor(
            (normalized - GRID_LO) / span * self.resolution).astype(int)
        np.clip(idx, 0, self.resolution - 1, out=idx)
        return idx[0] if one_dim else idx

    def classify(self, values):
        """Three-valued attribute for raw kept-spec measurements."""
        idx = self.cell_of(values)
        if idx.ndim == 1:
            return int(self.table[tuple(idx)])
        return self.table[tuple(idx.T)]

    def agreement_with_model(self, dataset):
        """Fraction of instances where table and live model agree.

        Quantifies the quantization loss of replacing the SVM pair by
        the grid (paper: "little additional cost").
        """
        values = dataset.project(self.feature_names).values
        table_pred = self.classify(values)
        model_pred = self._model.predict_measurements(values)
        return float(np.mean(table_pred == model_pred))

    def memory_bytes(self):
        """Size of the attribute array in bytes (int8 storage)."""
        return int(self.table.nbytes)

    def __repr__(self):
        return "LookupTable({} specs, resolution={}, {} cells)".format(
            len(self.feature_names), self.resolution, self.n_cells)
