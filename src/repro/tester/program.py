"""Production test-program simulation with guard-band retest.

Models how a compacted test set actually runs on automatic test
equipment:

1. the tester applies only the *kept* specification tests;
2. the measurements index the :class:`~repro.tester.lookup.LookupTable`
   (or query the live model);
3. devices with the guard-band attribute are handled per the retest
   policy (paper Section 4.2: "devices can be further tested to answer
   the question", or binned good/bad/lower-grade outright);
4. per-device cost is accounted with a
   :class:`~repro.core.costmodel.TestCostModel`.

The simulation consumes a ground-truth-labeled
:class:`~repro.process.dataset.SpecDataset`, so the resulting yield
loss and defect escape are exact.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import GUARD, ClassificationReport, evaluate_predictions
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError

#: Guard-band devices get the complete specification test set applied.
RETEST_FULL = "full_retest"
#: Guard-band devices are shipped without retest (cheapest, most escapes).
RETEST_ACCEPT = "accept"
#: Guard-band devices are scrapped without retest (no escapes from guard).
RETEST_REJECT = "reject"

_POLICIES = (RETEST_FULL, RETEST_ACCEPT, RETEST_REJECT)


def check_retest_policy(policy):
    """Validate a retest-policy name; returns it unchanged."""
    if policy not in _POLICIES:
        raise CompactionError(
            "retest policy must be one of {}".format(_POLICIES))
    return policy


def apply_retest_policy(first_pass, true_labels, policy):
    """Resolve guard-band devices into final dispositions.

    Vectorized core of the retest flow, shared by :class:`TestProgram`
    and the streaming :class:`repro.floor.engine.TestFloor`.  With
    ``full_retest`` the guard devices receive the complete test set, so
    their disposition equals the ground truth; ``accept``/``reject``
    bin them good/bad outright.

    Returns ``(decisions, n_retested)``.
    """
    check_retest_policy(policy)
    first_pass = np.asarray(first_pass)
    decisions = first_pass.copy()
    guard_mask = first_pass == GUARD
    n_guard = int(np.sum(guard_mask))
    if policy == RETEST_FULL:
        decisions[guard_mask] = np.asarray(true_labels)[guard_mask]
    elif policy == RETEST_ACCEPT:
        decisions[guard_mask] = GOOD
    else:
        decisions[guard_mask] = BAD
    return decisions, (n_guard if policy == RETEST_FULL else 0)


def policy_cost(cost_model, kept, n_devices, n_guard, policy):
    """Population test cost under a retest policy.

    Every device pays the compacted set; with ``full_retest`` each
    guard-band device additionally pays the complete test set.  Returns
    ``(total_cost, full_cost)`` — the second being the cost of testing
    the same population with the full specification set (the paper's
    baseline).  ``cost_model=None`` yields ``(0.0, 0.0)``.
    """
    if cost_model is None:
        return 0.0, 0.0
    per_device = cost_model.cost(kept)
    full_per_device = cost_model.full_cost()
    total = per_device * n_devices
    if policy == RETEST_FULL:
        total += full_per_device * n_guard
    return total, full_per_device * n_devices


@dataclass
class TestOutcome:
    """Result of running a test program over a device population."""

    #: Final dispositions after retest (+1 ship, -1 scrap).
    decisions: np.ndarray
    #: First-pass predictions (+1/-1/0) before the retest policy.
    first_pass: np.ndarray
    #: Final-classification report (after retest resolution).
    report: ClassificationReport
    #: Number of devices sent through the retest flow.
    n_retested: int
    #: Total test cost for the population (cost-model units).
    total_cost: float
    #: Cost of testing the same population with the full test set.
    full_cost: float
    #: Per-device bin indices into ``bin_names`` (``None`` when the
    #: program carries no tolerance profile).
    bins: object = None
    #: Profile bin assignment of the full measurements (no
    #: disposition override; ``None`` without a profile).
    truth_bins: object = None
    #: Bin names, in profile order (empty without a profile).
    bin_names: tuple = ()
    #: Shipped devices routed through the grade (bin) retest flow.
    n_bin_retested: int = 0

    def bin_counts(self):
        """``{bin_name: count}`` histogram (``None`` without a profile)."""
        if self.bins is None:
            return None
        from repro.rules.binning import bin_histogram

        return bin_histogram(self.bins, self.bin_names)

    @property
    def cost_per_device(self):
        """Average cost per device under the compacted program."""
        return self.total_cost / len(self.decisions)

    @property
    def cost_reduction(self):
        """Fractional saving vs applying the complete test set."""
        if self.full_cost <= 0:
            return 0.0
        return 1.0 - self.total_cost / self.full_cost

    def summary(self):
        """One-line outcome summary."""
        return ("shipped {}  scrapped {}  retested {}  "
                "YL {:.2%}  DE {:.2%}  cost/device {:.3g} "
                "({:.1%} saved)").format(
                    int(np.sum(self.decisions == GOOD)),
                    int(np.sum(self.decisions == BAD)),
                    self.n_retested,
                    self.report.yield_loss_rate,
                    self.report.defect_escape_rate,
                    self.cost_per_device,
                    self.cost_reduction)


class TestProgram:
    """A deployable compacted test program.

    Parameters
    ----------
    classifier:
        Either a fitted
        :class:`~repro.core.guardband.GuardBandedClassifier` or a
        :class:`~repro.tester.lookup.LookupTable`.
    cost_model:
        A :class:`~repro.core.costmodel.TestCostModel` covering every
        specification test (kept and eliminated).
    retest_policy:
        ``"full_retest"`` (default), ``"accept"`` or ``"reject"``.
    profile:
        Optional :class:`~repro.rules.engine.ToleranceProfile`; when
        given, :meth:`run` additionally assigns every device a bin.
        Binning *refines* the binary disposition -- it never changes a
        ship/scrap decision (see :mod:`repro.rules.binning`).
    bank:
        Optional fitted :class:`~repro.learn.ovr.OneVsRestSVCBank`
        grading shipped devices from the kept measurements (classes
        must be grade bin names of ``profile``).
    boundary_margin:
        Bank top-2 margin below which a shipped device is routed
        through the grade retest (full-measurement grade); counted in
        :attr:`TestOutcome.n_bin_retested`.
    """

    def __init__(self, classifier, cost_model=None,
                 retest_policy=RETEST_FULL, profile=None, bank=None,
                 boundary_margin=0.0):
        check_retest_policy(retest_policy)
        self.classifier = classifier
        self.cost_model = cost_model
        self.retest_policy = retest_policy
        self.profile = profile
        self.bank = bank
        self.boundary_margin = float(boundary_margin)
        self.kept = tuple(classifier.feature_names)

    def _first_pass(self, dataset):
        values = dataset.project(self.kept).values
        if hasattr(self.classifier, "classify"):       # LookupTable
            return np.asarray(self.classifier.classify(values))
        return self.classifier.predict_measurements(values)

    def run(self, dataset):
        """Run the program over a ground-truth-labeled population.

        Returns a :class:`TestOutcome`.  With the ``full_retest``
        policy, guard-band devices receive the complete specification
        test set, so their final disposition equals the ground truth
        (and their cost is the full test-set cost on top of the
        compacted pass).
        """
        first = self._first_pass(dataset)
        n_guard = int(np.sum(first == GUARD))
        decisions, n_retested = apply_retest_policy(
            first, dataset.labels, self.retest_policy)
        report = evaluate_predictions(dataset.labels, decisions)
        total_cost, full_cost = policy_cost(
            self.cost_model, self.kept, len(dataset), n_guard,
            self.retest_policy)

        bins = truth_bins = None
        bin_names = ()
        n_bin_retested = 0
        if self.profile is not None:
            from repro.rules.binning import assign_bins

            bound = self.profile.bind(dataset.specifications)
            truth_bins = bound.assign(dataset.values)
            bins, n_bin_retested = assign_bins(
                bound, decisions, truth_bins,
                kept_norm=dataset.normalized_values(self.kept),
                bank=self.bank, boundary_margin=self.boundary_margin)
            bin_names = bound.bins

        return TestOutcome(
            decisions=decisions,
            first_pass=first,
            report=report,
            n_retested=n_retested,
            total_cost=total_cost,
            full_cost=full_cost,
            bins=bins,
            truth_bins=truth_bins,
            bin_names=bin_names,
            n_bin_retested=n_bin_retested,
        )
