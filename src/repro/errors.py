"""Exception hierarchy shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """Malformed circuit description (unknown node, duplicate name, ...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton-Raphson iterations attempted before giving up.
    residual:
        The final residual norm (``nan`` when unknown).
    """

    def __init__(self, message, iterations=0, residual=float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(ReproError):
    """A measurement could not be extracted from simulation results."""


class LearningError(ReproError):
    """Statistical-learning failure (SMO not converging, bad shapes, ...)."""


class CompactionError(ReproError):
    """Invalid input to the test-compaction procedure."""


class DatasetError(ReproError):
    """Inconsistent specification dataset (shape or label mismatch)."""


class ArtifactError(ReproError):
    """Unreadable or incompatible test-program artifact file."""


class RuleError(ReproError):
    """Invalid tolerance rule or bin profile (overlap, coverage gap, ...)."""


class ServiceError(ReproError):
    """Invalid request to the test-floor service layer."""


class ServiceOverloadError(ServiceError):
    """The service queue is full; the caller should back off and retry.

    Maps to HTTP 429 on the service front end.
    """


class UnknownArtifactError(ServiceError):
    """No active registration can serve the requested artifact key.

    Maps to HTTP 404 on the service front end.
    """


class JournalError(ServiceError):
    """The control-plane write-ahead journal is unreadable or cannot
    accept an append (mid-file corruption, sequence gap, disk full).

    A *torn trailing record* -- the shape a crash mid-append leaves
    behind -- is not an error: replay truncates it with a warning.
    Anything earlier in the file failing its checksum means the
    journal was edited or the disk corrupted it, and replay must stop
    loudly rather than reconstruct a wrong manifest.

    Maps to HTTP 507 on the control-plane endpoints: the op was rolled
    back everywhere and is *not* durable.
    """


class DeadlineExceededError(ServiceError):
    """The caller's deadline budget (``X-Repro-Deadline-Ms``) expired
    before the floor ran the request.

    Maps to HTTP 504: the decision was never computed, so there is
    nothing a retry of the *same* expired budget could recover --
    callers should re-issue with a fresh deadline.
    """


class ClusterDegradedError(ServiceError):
    """A cluster shard is down (worker respawning) or the control plane
    cannot reach every worker.

    Maps to HTTP 503 + ``Retry-After`` on the cluster router: the
    request was *not* misrouted to another shard, the caller should
    retry the same request after the respawn window.
    """
