"""Exception hierarchy shared across the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """Malformed circuit description (unknown node, duplicate name, ...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton-Raphson iterations attempted before giving up.
    residual:
        The final residual norm (``nan`` when unknown).
    """

    def __init__(self, message, iterations=0, residual=float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class AnalysisError(ReproError):
    """A measurement could not be extracted from simulation results."""


class LearningError(ReproError):
    """Statistical-learning failure (SMO not converging, bad shapes, ...)."""


class CompactionError(ReproError):
    """Invalid input to the test-compaction procedure."""


class DatasetError(ReproError):
    """Inconsistent specification dataset (shape or label mismatch)."""


class ArtifactError(ReproError):
    """Unreadable or incompatible test-program artifact file."""


class RuleError(ReproError):
    """Invalid tolerance rule or bin profile (overlap, coverage gap, ...)."""


class ServiceError(ReproError):
    """Invalid request to the test-floor service layer."""


class ServiceOverloadError(ServiceError):
    """The service queue is full; the caller should back off and retry.

    Maps to HTTP 429 on the service front end.
    """


class UnknownArtifactError(ServiceError):
    """No active registration can serve the requested artifact key.

    Maps to HTTP 404 on the service front end.
    """


class ClusterDegradedError(ServiceError):
    """A cluster shard is down (worker respawning) or the control plane
    cannot reach every worker.

    Maps to HTTP 503 + ``Retry-After`` on the cluster router: the
    request was *not* misrouted to another shard, the caller should
    retry the same request after the respawn window.
    """
