"""Test cost modeling (paper Section 6 "future work", implemented).

Quantifies the production-test cost of a (compacted) specification
test set.  Two cost components are modeled:

* a **per-test cost** for applying each specification test (setup,
  stimulus, measurement);
* a **per-group fixture cost** incurred once whenever *any* test of a
  group is applied -- the natural model for the MEMS temperature
  tests, where heating or cooling the chip to steady state dominates
  and is paid once per temperature insertion, regardless of how many
  specifications are then measured at that temperature.

With a realistic soak-to-measurement cost ratio, eliminating the hot
and cold insertions reduces accelerometer test cost by more than half,
reproducing the paper's headline claim.
"""

from repro.errors import CompactionError


class TestCostModel:
    """Cost accounting for specification test sets.

    Parameters
    ----------
    test_costs:
        Mapping from test name to its per-application cost.
    groups:
        Optional mapping from test name to a group key (e.g. the test
        temperature).  Tests without a group incur no fixture cost.
    group_costs:
        Mapping from group key to the fixture cost paid once whenever
        at least one member test is applied.
    """

    def __init__(self, test_costs, groups=None, group_costs=None):
        self.test_costs = dict(test_costs)
        if not self.test_costs:
            raise CompactionError("test_costs must not be empty")
        for name, cost in self.test_costs.items():
            if cost < 0:
                raise CompactionError(
                    "negative cost for test {!r}".format(name))
        self.groups = dict(groups or {})
        self.group_costs = dict(group_costs or {})
        for group, cost in self.group_costs.items():
            if cost < 0:
                raise CompactionError(
                    "negative cost for group {!r}".format(group))
        unknown = set(self.groups) - set(self.test_costs)
        if unknown:
            raise CompactionError(
                "groups reference unknown tests: {}".format(sorted(unknown)))
        for group in set(self.groups.values()):
            if group not in self.group_costs:
                raise CompactionError(
                    "group {!r} has no cost entry".format(group))

    @classmethod
    def uniform(cls, names, cost=1.0):
        """Equal cost for every test, no fixture groups."""
        return cls({name: cost for name in names})

    def cost(self, applied_tests):
        """Total cost of applying exactly ``applied_tests``."""
        applied = list(applied_tests)
        unknown = set(applied) - set(self.test_costs)
        if unknown:
            raise CompactionError(
                "unknown test(s): {}".format(sorted(unknown)))
        total = sum(self.test_costs[name] for name in applied)
        active_groups = {self.groups[name] for name in applied
                         if name in self.groups}
        total += sum(self.group_costs[g] for g in active_groups)
        return total

    def full_cost(self):
        """Cost of the complete specification test set."""
        return self.cost(self.test_costs.keys())

    def reduction(self, kept_tests):
        """Fractional cost saving of a compacted set vs the full set.

        0.55 means the compacted test set costs 55 % less.
        """
        full = self.full_cost()
        if full <= 0:
            raise CompactionError("full test set has non-positive cost")
        return 1.0 - self.cost(kept_tests) / full

    def __repr__(self):
        return "TestCostModel({} tests, {} groups)".format(
            len(self.test_costs), len(set(self.groups.values())))
