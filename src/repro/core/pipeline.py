"""High-level one-call API for specification test compaction.

:class:`CompactionPipeline` bundles the configuration of the greedy
compactor, and :func:`compact_specification_tests` is the single entry
point used by the quickstart example::

    from repro import compact_specification_tests
    result = compact_specification_tests(train, test, tolerance=0.01)
    print(result.summary())
"""

from repro.core.compaction import TestCompactor
from repro.core.grid import GridCompactor
from repro.errors import CompactionError


class CompactionPipeline:
    """Configuration facade over :class:`~repro.core.compaction.TestCompactor`.

    Parameters mirror :class:`TestCompactor`, plus:

    grid_resolution:
        When set, training data is grid-compacted at this resolution
        before every model fit (paper Section 4.3).
    n_jobs:
        When set (any non-``None`` value), the pipeline runs on the
        :class:`repro.runtime.engine.CompactionEngine` -- Gram caching,
        SMO warm starts and, for values other than 1, speculative
        multi-process candidate evaluation.  ``None`` (the default)
        keeps the plain serial compactor, byte-for-byte compatible
        with earlier releases.
    """

    def __init__(self, tolerance=0.01, guard_band=0.05, order=None,
                 model_factory=None, grid_resolution=None,
                 count_guard_as_error=False, min_kept=1, n_jobs=None):
        grid = (GridCompactor(grid_resolution)
                if grid_resolution is not None else None)
        common = dict(
            tolerance=tolerance,
            guard_band=guard_band,
            order=order,
            model_factory=model_factory,
            grid_compactor=grid,
            count_guard_as_error=count_guard_as_error,
            min_kept=min_kept,
        )
        if n_jobs is None:
            self.compactor = TestCompactor(**common)
        else:
            from repro.runtime import CompactionEngine

            self.compactor = CompactionEngine(n_jobs=n_jobs, **common)

    def run(self, train, test):
        """Run the greedy compaction; returns a ``CompactionResult``.

        ``train`` / ``test`` may be in-RAM
        :class:`~repro.process.dataset.SpecDataset` objects or sharded
        :class:`~repro.data.store.ShardedSpecDataset` stores; sharded
        inputs are materialized through ``to_dataset()``, which is
        bit-identical to the in-RAM generation of the same rows (the
        compaction search re-slices the training set per candidate, so
        it runs on the materialized form).
        """
        if hasattr(train, "to_dataset"):
            train = train.to_dataset()
        if hasattr(test, "to_dataset"):
            test = test.to_dataset()
        return self.compactor.run(train, test)

    def run_simulated(self, dut, n_train, n_test, seed=0, sim_jobs=None,
                      seed_mode="per-instance", dataset_root=None):
        """Paper Fig. 1 end to end: simulate the populations, then run.

        The training population is generated with ``seed`` and the
        held-out population with ``seed + 1``, both through the
        deterministic generation engine
        (:func:`repro.process.montecarlo.generate_many`) so the two
        simulations share one worker pool when ``sim_jobs`` is set --
        the result is identical at any ``sim_jobs``.

        ``dataset_root`` sources both populations from manifested
        shard stores under that directory instead
        (:func:`repro.data.ensure_dataset`): existing rows are
        memory-mapped and only the shortfall is simulated, and the
        rows are bit-identical to the direct generation (requires the
        default ``seed_mode="per-instance"``).
        """
        if dataset_root is not None:
            if seed_mode != "per-instance":
                raise CompactionError(
                    "shard stores record per-instance seed trees; "
                    "seed_mode={!r} cannot be cached".format(seed_mode))
            from repro.data import ensure_dataset

            train = ensure_dataset(dataset_root, dut, n_train, seed,
                                   n_jobs=sim_jobs).head(n_train)
            test = ensure_dataset(dataset_root, dut, n_test, seed + 1,
                                  n_jobs=sim_jobs).head(n_test)
            return self.run(train, test)
        from repro.process.montecarlo import generate_many

        train, test = generate_many(
            [(dut, n_train, seed), (dut, n_test, seed + 1)],
            n_jobs=sim_jobs, seed_mode=seed_mode)
        return self.run(train, test)

    def deploy(self, train, test, cost_model=None, device=None,
               train_seed=None, generation="per-instance",
               lookup_resolution=None, extra_provenance=None):
        """Compact and package for the production floor.

        Runs :meth:`run` and wraps the result in a
        :class:`~repro.floor.artifact.TestProgramArtifact` (drift
        baseline from ``train``, provenance header, optional lookup
        table and cost model).  Returns ``(result, artifact)``; call
        ``artifact.save(path)`` to ship it and
        :class:`repro.floor.engine.TestFloor` to serve it.
        """
        from repro.floor.artifact import TestProgramArtifact

        result = self.run(train, test)
        artifact = TestProgramArtifact.from_result(
            result, train, cost_model=cost_model, device=device,
            train_seed=train_seed, generation=generation,
            lookup_resolution=lookup_resolution,
            extra_provenance=extra_provenance)
        return result, artifact

    def run_many(self, pairs):
        """Batch-compact ``(train, test)`` pairs (requires ``n_jobs``).

        Delegates to :meth:`repro.runtime.engine.CompactionEngine.
        run_many`; results come back in input order.
        """
        if not hasattr(self.compactor, "run_many"):
            raise CompactionError(
                "run_many needs the runtime engine; construct the "
                "pipeline with n_jobs set (n_jobs=1 for serial)")
        return self.compactor.run_many(pairs)

    def evaluate_elimination(self, train, test, eliminated):
        """Evaluate one fixed eliminated set (no greedy search).

        Returns ``(model, report)``; used for block experiments such
        as the MEMS hot/cold elimination of paper Table 3.
        """
        return self.compactor.evaluate_subset(train, test, eliminated)


def compact_specification_tests(train, test, tolerance=0.01,
                                guard_band=0.05, order=None,
                                model_factory=None, grid_resolution=None,
                                count_guard_as_error=False, n_jobs=None):
    """Compact a specification test set with statistical learning.

    Parameters
    ----------
    train, test:
        :class:`~repro.process.dataset.SpecDataset` pairs measured
        against the complete specification set (training data builds
        the models; test data estimates their prediction error).
    tolerance:
        User error tolerance ``e_T`` (fraction of all devices).
    guard_band:
        Guard-band half-width as a fraction of each acceptability
        range.
    order:
        Examination order (strategy object, name sequence or ``None``).
    model_factory:
        Override the underlying classifier.
    grid_resolution:
        Optional training-data grid compaction resolution.
    count_guard_as_error:
        Count guard-band devices toward the acceptance error.
    n_jobs:
        Run on the parallel cache-aware runtime engine (see
        :class:`CompactionPipeline`); ``None`` keeps the plain serial
        compactor.

    Returns
    -------
    CompactionResult
    """
    if len(train) == 0 or len(test) == 0:
        raise CompactionError("train and test datasets must be non-empty")
    pipeline = CompactionPipeline(
        tolerance=tolerance, guard_band=guard_band, order=order,
        model_factory=model_factory, grid_resolution=grid_resolution,
        count_guard_as_error=count_guard_as_error, n_jobs=n_jobs)
    return pipeline.run(train, test)
