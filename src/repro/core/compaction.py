"""The greedy specification-test-set pruning loop (paper Fig. 2).

Starting from the complete specification-based test set (hence zero
initial yield loss / defect escape), each test ``t_r`` is examined in
turn:

1. remove ``t_r``'s measurement from the feature set;
2. train a guard-banded SVM pair that predicts the device's overall
   pass/fail from the remaining measurements;
3. evaluate the prediction error ``e_p`` (yield loss + defect escape)
   on held-out test data;
4. if ``e_p <= e_T`` (the user tolerance), the test is *redundant* and
   stays eliminated; otherwise it is moved back into the compacted set.

The output is the compacted test set plus the statistical model that
replaces the eliminated tests during production test.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.guardband import AutoTunedSVCFactory, GuardBandedClassifier
from repro.core.metrics import ClassificationReport, evaluate_predictions
from repro.core.ordering import FunctionalOrder, OrderingStrategy
from repro.errors import CompactionError


@dataclass(frozen=True)
class CompactionStep:
    """The outcome of examining one candidate test."""

    #: Name of the test examined for elimination.
    test_name: str
    #: True when the test was found redundant and permanently removed.
    eliminated: bool
    #: Evaluation of the candidate model on the held-out data.
    report: ClassificationReport
    #: Tests eliminated so far (including this one when ``eliminated``).
    eliminated_so_far: tuple

    @property
    def error_rate(self):
        """Candidate prediction error e_p."""
        return self.report.error_rate


@dataclass
class CompactionResult:
    """Everything the compaction run produced."""

    #: Names of the tests that must still be applied.
    kept: tuple
    #: Names of the eliminated (redundant) tests.
    eliminated: tuple
    #: Final guard-banded model predicting pass/fail from ``kept``.
    model: GuardBandedClassifier
    #: Final model's evaluation on the held-out data.
    final_report: ClassificationReport
    #: Per-candidate history in examination order.
    steps: list = field(default_factory=list)
    #: The examination order used.
    order: tuple = ()
    #: Tolerance e_T the run was configured with.
    tolerance: float = 0.0
    #: Optional runtime counters (cache hits, speculation efficiency,
    #: worker count) -- populated by :mod:`repro.runtime`, empty for
    #: the plain compactor.
    stats: dict = field(default_factory=dict)

    @property
    def compaction_ratio(self):
        """Fraction of tests eliminated."""
        total = len(self.kept) + len(self.eliminated)
        return len(self.eliminated) / total

    def summary(self):
        """Multi-line human-readable summary."""
        lines = [
            "Specification test compaction (tolerance e_T = {:.2%})".format(
                self.tolerance),
            "  eliminated ({}): {}".format(
                len(self.eliminated), ", ".join(self.eliminated) or "-"),
            "  kept       ({}): {}".format(
                len(self.kept), ", ".join(self.kept)),
            "  final: {}".format(self.final_report.summary()),
        ]
        return "\n".join(lines)

    def history_table(self):
        """Fig. 5 style rows: per examined test, the candidate metrics.

        Returns a list of dicts with keys ``test``, ``eliminated``,
        ``yield_loss_pct``, ``defect_escape_pct``, ``guard_pct``
        (cumulative model metrics at that step).
        """
        rows = []
        for step in self.steps:
            rows.append({
                "test": step.test_name,
                "eliminated": step.eliminated,
                "yield_loss_pct": 100.0 * step.report.yield_loss_rate,
                "defect_escape_pct": 100.0 * step.report.defect_escape_rate,
                "guard_pct": 100.0 * step.report.guard_rate,
            })
        return rows


class GridCompactedModel:
    """Fits a base model on a grid-compacted training set."""

    def __init__(self, base_model, grid):
        self._model = base_model
        self._grid = grid

    def fit(self, X, y):
        Xc, yc, _ = self._grid.compact(X, y)
        self._model.fit(Xc, yc)
        return self

    def predict(self, X):
        return self._model.predict(X)


class GridCompactedFactory:
    """Factory wrapper inserting grid compaction before every fit.

    A plain module-level class (rather than a closure) so configured
    compactors can cross process boundaries in :mod:`repro.runtime`.
    """

    def __init__(self, base, grid):
        self._base = base
        self._grid = grid

    def tune(self, X, y):
        if hasattr(self._base, "tune"):
            Xc, yc, _ = self._grid.compact(X, y)
            self._base.tune(Xc, yc)
        return self

    def __call__(self):
        return GridCompactedModel(self._base(), self._grid)


class TestCompactor:
    """Configurable greedy test-set compactor.

    Parameters
    ----------
    tolerance:
        Error tolerance ``e_T`` as a fraction of all test devices
        (paper: "until the prediction error exceeds a user-defined
        tolerance").
    guard_band:
        Guard-band half-width as a fraction of each acceptability
        range (paper Section 4.2; 5 % for the op-amp example).
    order:
        An :class:`~repro.core.ordering.OrderingStrategy`, an explicit
        sequence of test names, or ``None`` for the dataset's natural
        (functional) order.
    model_factory:
        Zero-argument callable building the underlying classifier
        (default: the RBF :class:`~repro.learn.svm.SVC` used throughout
        the reproduction).
    grid_compactor:
        Optional :class:`~repro.core.grid.GridCompactor` applied to the
        training features before each model fit (paper Section 4.3).
    count_guard_as_error:
        When True, guard-band devices count toward ``e_p`` (a stricter
        acceptance criterion than the paper's, which retests them).
    min_kept:
        Never eliminate below this many measured tests (default 1; the
        model needs at least one feature).
    kernel_cache:
        Optional :class:`repro.runtime.kernel_cache.GramCache` over the
        training dataset, shared by every candidate fit (see
        :class:`~repro.core.guardband.GuardBandedClassifier`).  Ignored
        when a grid compactor is configured -- grid compaction rewrites
        the training rows, so the cached Gram no longer applies.
    warm_start:
        Warm-start the loose guard-band model from the strict one's
        dual solution on every fit.
    """

    def __init__(self, tolerance=0.01, guard_band=0.05, order=None,
                 model_factory=None, grid_compactor=None,
                 count_guard_as_error=False, min_kept=1,
                 kernel_cache=None, warm_start=False):
        if tolerance < 0:
            raise CompactionError("tolerance must be non-negative")
        if min_kept < 1:
            raise CompactionError("min_kept must be at least 1")
        self.tolerance = float(tolerance)
        # Scalar fraction, or a per-spec dict as produced by
        # repro.core.guardband.distribution_guard_deltas.
        self.guard_band = (dict(guard_band) if isinstance(guard_band, dict)
                           else float(guard_band))
        self.order = order
        # None selects a fresh cross-validated AutoTunedSVCFactory per
        # model fit (hyperparameters re-tuned as the feature set shrinks).
        self.model_factory = model_factory
        self.grid_compactor = grid_compactor
        self.count_guard_as_error = bool(count_guard_as_error)
        self.min_kept = int(min_kept)
        self.kernel_cache = kernel_cache
        self.warm_start = bool(warm_start)

    # -- internals -------------------------------------------------------
    def _resolve_order(self, dataset):
        if self.order is None:
            return tuple(dataset.names)
        if isinstance(self.order, OrderingStrategy):
            return self.order.order(dataset)
        return FunctionalOrder(self.order).order(dataset)

    def _fit_model(self, train, feature_names):
        base = self.model_factory or AutoTunedSVCFactory()
        cache = None if self.grid_compactor is not None else self.kernel_cache
        model = GuardBandedClassifier(
            feature_names, delta=self.guard_band,
            model_factory=self._wrapped_factory(base),
            kernel_cache=cache, warm_start=self.warm_start)
        model.fit(train)
        return model

    def _wrapped_factory(self, base):
        """Insert optional grid compaction in front of every model fit."""
        if self.grid_compactor is None:
            return base
        return GridCompactedFactory(base, self.grid_compactor)

    def _candidate_error(self, report):
        error = report.error_rate
        if self.count_guard_as_error:
            error += report.guard_rate
        return error

    def evaluate_subset(self, train, test, eliminated):
        """Fit and evaluate a model for one fixed eliminated set.

        Returns ``(model, report)``.  This is the building block used
        both by the greedy loop and by block eliminations such as the
        MEMS temperature experiment (paper Table 3).
        """
        eliminated = tuple(eliminated)
        kept = [n for n in train.names if n not in set(eliminated)]
        if len(kept) < self.min_kept:
            raise CompactionError(
                "elimination of {} would leave fewer than {} tests".format(
                    eliminated, self.min_kept))
        model = self._fit_model(train, kept)
        predictions = model.predict_dataset(test)
        report = evaluate_predictions(test.labels, predictions)
        return model, report

    # -- the greedy loop ----------------------------------------------------
    def _greedy_loop(self, train, test, order):
        """Examine each test in ``order``; eliminate while tolerable.

        Returns ``(eliminated, steps, last_fit)`` where ``last_fit``
        is ``(candidate, model, report)`` of the most recent accepted
        candidate (``None`` when nothing was eliminated) -- the
        runtime engine reuses it as the final refit.
        """
        eliminated = ()
        steps = []
        last_fit = None
        for test_name in order:
            if len(train.names) - len(eliminated) <= self.min_kept:
                break
            candidate = eliminated + (test_name,)
            model, report = self.evaluate_subset(train, test, candidate)
            accept = self._candidate_error(report) <= self.tolerance
            if accept:
                eliminated = candidate
                last_fit = (candidate, model, report)
            steps.append(CompactionStep(
                test_name=test_name,
                eliminated=accept,
                report=report,
                eliminated_so_far=tuple(eliminated)))
        return eliminated, steps, last_fit

    def run(self, train, test):
        """Execute the paper's Fig. 2 flow.

        Parameters
        ----------
        train:
            Training :class:`~repro.process.dataset.SpecDataset` (full
            specification measurements).
        test:
            Held-out dataset used to estimate the prediction error of
            each candidate model.

        Returns
        -------
        CompactionResult
        """
        if train.specifications != test.specifications:
            raise CompactionError(
                "train and test datasets must share specifications")
        order = self._resolve_order(train)
        eliminated, steps, _ = self._greedy_loop(train, test, order)
        kept = tuple(n for n in train.names if n not in set(eliminated))
        model, final_report = self.evaluate_subset(train, test, eliminated)
        return CompactionResult(
            kept=kept,
            eliminated=tuple(eliminated),
            model=model,
            final_report=final_report,
            steps=steps,
            order=order,
            tolerance=self.tolerance,
        )
