"""Two-model guard-banded classification (paper Sections 3.3 and 4.2).

After compaction the tester still *measures* the kept specifications,
so those are checked directly against their acceptability ranges.  The
eliminated specifications are covered by a statistical model that
predicts, from the kept measurements, whether they would have passed.
Paper Fig. 3: the new acceptance region is the intersection of the
kept-range box with the model-derived region.  Starting from the
complete test set therefore has *zero* initial yield loss and defect
escape -- the model only enters once tests are eliminated.

Pass/fail analysis has a hard discontinuity at the range boundary, so
a tiny model error near the boundary causes misclassification
(Section 4.2).  The remedy is a **guard band**: both the direct range
check and the model are instantiated twice, against ranges perturbed
*inward* (strict) and *outward* (loose) by a preset fraction ``delta``
of each range.  Devices on which the two instances agree are accepted
or rejected with high confidence; disagreement places the device in
the guard-band region, where it can be retested (see
:mod:`repro.tester.program`) or binned by application quality needs.
"""

import numpy as np

from repro.core.metrics import GUARD
from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError
from repro.learn.svm import SVC


def default_model_factory():
    """A reasonable fixed SVC configuration (no per-problem tuning)."""
    return SVC(C=50.0, kernel="rbf", gamma="scale")


#: Hyperparameter grid explored by the auto-tuned factory.  The RBF
#: width needed to resolve the pass/fail boundary depends strongly on
#: how many tests remain in the feature set, so a per-fit search beats
#: any fixed setting.
AUTO_TUNE_GRID = {
    "C": [50.0, 500.0],
    "gamma": ["scale", 2.0, 8.0, 32.0],
}


class AutoTunedSVCFactory:
    """Callable factory that cross-validates an SVC grid before fitting.

    The grid search runs once, on the labels of the first ``tune`` call
    (the compaction flow tunes on the strict guard-band labels); both
    guard-band models then share the winning hyperparameters, keeping
    the pair consistent.
    """

    def __init__(self, param_grid=None, n_splits=3, seed=0,
                 max_tune_samples=1500, n_jobs=1):
        self.param_grid = dict(param_grid or AUTO_TUNE_GRID)
        self.n_splits = int(n_splits)
        self.seed = seed
        self.max_tune_samples = int(max_tune_samples)
        #: Worker processes for the grid search (the dominant cost of
        #: a compaction run); results are identical at any value.
        #: Leave at 1 inside an already-parallel engine run -- nesting
        #: pools oversubscribes the machine.
        self.n_jobs = int(n_jobs)
        self.best_params_ = None

    def tune(self, X, y):
        """Pick hyperparameters by k-fold accuracy on ``(X, y)``.

        Tuning runs on a random subsample of at most
        ``max_tune_samples`` rows -- hyperparameter selection needs far
        fewer points than the final fit, and the subsample keeps the
        grid search fast on paper-scale (5000-instance) training sets.
        """
        from repro.learn.model_selection import grid_search

        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if np.unique(y).size < 2 or len(y) < 3 * self.n_splits:
            self.best_params_ = {}
            return self
        if len(y) > self.max_tune_samples:
            rng = np.random.default_rng(self.seed)
            idx = rng.choice(len(y), self.max_tune_samples, replace=False)
            X, y = X[idx], y[idx]
            if np.unique(y).size < 2:
                self.best_params_ = {}
                return self
        self.best_params_, _, _ = grid_search(
            SVC, self.param_grid, X, y, n_splits=self.n_splits,
            seed=self.seed, n_jobs=self.n_jobs)
        return self

    def __call__(self):
        params = self.best_params_ or {}
        return SVC(kernel="rbf", **params)


class _ConstantGood:
    """Degenerate model used when no specification is eliminated."""

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.ones(np.asarray(X).shape[0], dtype=int)


class GuardBandedClassifier:
    """Pass/fail predictor for a compacted specification test set.

    Parameters
    ----------
    feature_names:
        The specifications still *measured* (the compacted test set);
        their normalized values are both directly range-checked and
        fed to the model.
    delta:
        Guard-band half-width as a fraction of each acceptability
        range (paper: a few percent).  ``delta=0`` collapses the guard
        band: every device gets a confident good/bad prediction.
    model_factory:
        Zero-argument callable producing an unfitted classifier with
        ``fit``/``predict`` (defaults to :func:`default_model_factory`).
    kernel_cache:
        Optional :class:`repro.runtime.kernel_cache.GramCache` built
        from the *same* training dataset; the strict/loose model pair
        then shares one precomputed Gram matrix per fit instead of
        evaluating the kernel twice.  Models that do not understand
        Gram views (no ``set_train_gram_view``) are unaffected.
    warm_start:
        When True, the loose model's SMO run is seeded from the strict
        model's dual solution.  The two label vectors differ only on
        guard-band devices, so the seed is near-optimal and the second
        fit converges in a fraction of the iterations.
    column_budget:
        Optional byte budget for out-of-core fits.  When set, the
        strict/loose pair shares one bounded
        :class:`~repro.learn.columns.KernelColumnCache` over the
        training features instead of materializing quadratic Gram
        matrices -- the fit path for shard-store populations far above
        the SMO precompute limit.  Fits are bit-identical with or
        without a budget; only the working set changes.

    The classifier is trained from a *full*
    :class:`~repro.process.dataset.SpecDataset` (all specifications
    measured) because the model's training labels are the pass/fail of
    the *eliminated* specifications; prediction then uses only the
    ``feature_names`` columns, as on the real tester.  A sharded
    :class:`~repro.data.store.ShardedSpecDataset` works as well: its
    label computations stream shard by shard (the ``shifted_labels``
    protocol below), so only the thin ``(n, len(feature_names))``
    feature matrix is ever materialized.
    """

    def __init__(self, feature_names, delta=0.05, model_factory=None,
                 kernel_cache=None, warm_start=False,
                 column_budget=None):
        self.feature_names = tuple(feature_names)
        if not self.feature_names:
            raise CompactionError(
                "guard-banded classifier needs at least one feature")
        if isinstance(delta, dict):
            if any(d < 0 for d in delta.values()):
                raise CompactionError(
                    "guard-band deltas must be non-negative")
            self.delta = dict(delta)
        else:
            if delta < 0:
                raise CompactionError(
                    "guard-band delta must be non-negative")
            self.delta = float(delta)
        # Default: cross-validated hyperparameter selection per fit.
        self.model_factory = model_factory or AutoTunedSVCFactory()
        self.kernel_cache = kernel_cache
        self.warm_start = bool(warm_start)
        self.column_budget = (None if column_budget is None
                              else int(column_budget))
        self._column_cache = None

    def _delta_for(self, names):
        """Per-spec delta array for the given specification names."""
        if isinstance(self.delta, dict):
            missing = set(names) - set(self.delta)
            if missing:
                raise CompactionError(
                    "no guard-band delta for spec(s): {}".format(
                        sorted(missing)))
            return np.array([self.delta[n] for n in names])
        return np.full(len(names), self.delta)

    # -- training ---------------------------------------------------------
    def fit(self, train_dataset):
        """Train the strict/loose model pair from a full dataset."""
        missing = set(self.feature_names) - set(train_dataset.names)
        if missing:
            raise CompactionError(
                "training dataset lacks feature(s): {}".format(
                    sorted(missing)))
        specs = train_dataset.specifications
        self._feature_specs = specs.subset(self.feature_names)
        self.eliminated_names = tuple(
            n for n in specs.names if n not in set(self.feature_names))

        X = train_dataset.normalized_values(self.feature_names)
        self._feature_deltas = self._delta_for(self.feature_names)
        self._no_guard = not np.any(self._feature_deltas)
        if not self.eliminated_names:
            self._strict = _ConstantGood()
            self._loose = self._strict
            return self

        if self.column_budget is not None:
            from repro.learn.columns import KernelColumnCache

            self._column_cache = KernelColumnCache(
                X, max_bytes=self.column_budget)
        elim_specs = specs.subset(self.eliminated_names)
        elim_deltas = self._delta_for(self.eliminated_names)
        # Sharded datasets compute shifted labels shard by shard (the
        # element-wise comparisons are chunk-invariant, so the labels
        # are bitwise those of the materialized computation); in-RAM
        # datasets materialize the eliminated columns once.
        streamed = hasattr(train_dataset, "shifted_labels")
        if not streamed:
            elim_values = train_dataset.project(
                self.eliminated_names).values

        def shifted(deltas):
            if streamed:
                return train_dataset.shifted_labels(
                    self.eliminated_names, deltas)
            if deltas is None:
                return elim_specs.labels(elim_values)
            return elim_specs.shifted(deltas).labels(elim_values)

        self._no_guard = self._no_guard and not np.any(elim_deltas)
        if self._no_guard:
            y = shifted(None)
            if hasattr(self.model_factory, "tune"):
                self.model_factory.tune(X, y)
            self._strict = self._new_model().fit(X, y)
            self._loose = self._strict
        else:
            # Strict model: eliminated ranges shrunk inward, so
            # boundary devices are labeled bad.
            y_strict = shifted(elim_deltas)
            # Loose model: eliminated ranges widened outward.
            y_loose = shifted(-elim_deltas)
            if hasattr(self.model_factory, "tune"):
                self.model_factory.tune(X, y_strict)
            self._strict = self._new_model().fit(X, y_strict)
            self._loose = self._fit_loose(X, y_loose)
        return self

    def _new_model(self):
        """Build one model, attached to the shared Gram view if possible."""
        model = self.model_factory()
        if (self.kernel_cache is not None
                and hasattr(model, "set_train_gram_view")):
            model.set_train_gram_view(
                self.kernel_cache.view(self.feature_names))
        cache = getattr(self, "_column_cache", None)
        if cache is not None and hasattr(model, "set_train_columns"):
            model.set_train_columns(cache)
        return model

    def _fit_loose(self, X, y_loose):
        """Fit the loose model, warm-started from the strict solution."""
        model = self._new_model()
        alpha0 = getattr(self._strict, "alpha_", None)
        if self.warm_start and alpha0 is not None:
            try:
                return model.fit(X, y_loose, alpha_init=alpha0)
            except TypeError:
                pass  # model's fit() has no warm-start support
        return model.fit(X, y_loose)

    def _check_fitted(self):
        if not hasattr(self, "_strict"):
            raise CompactionError("GuardBandedClassifier is not fitted")

    def release_kernel_cache(self):
        """Drop cache references (prediction never needs them).

        A fitted classifier otherwise pins the whole per-run
        :class:`~repro.runtime.kernel_cache.GramCache` (hundreds of
        MB at paper scale) through ``kernel_cache`` and the models'
        Gram views.  The runtime engine calls this on every model it
        hands back.
        """
        self.kernel_cache = None
        self._column_cache = None
        for model in (getattr(self, "_strict", None),
                      getattr(self, "_loose", None)):
            if model is not None and hasattr(model, "set_train_gram_view"):
                model.set_train_gram_view(None)
            if model is not None and hasattr(model, "set_train_columns"):
                model.set_train_columns(None)
        return self

    # The cache must never ride along on pickles either -- a model
    # crossing a process boundary would otherwise serialize every
    # cached (n, n) matrix of its worker.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["kernel_cache"] = None
        state["_column_cache"] = None
        return state

    # -- prediction ---------------------------------------------------------
    def _box_pass(self, X_normalized, deltas):
        """Direct range check of the kept specifications.

        In normalized coordinates the acceptability window is [0, 1];
        a guard shift of ``deltas`` (per-column array) moves the bounds
        to ``[delta, 1 - delta]`` (strict) or ``[-delta, 1 + delta]``
        (loose, by passing negated deltas).
        """
        return np.all((X_normalized >= deltas)
                      & (X_normalized <= 1.0 - deltas), axis=1)

    def predict_features(self, X_normalized):
        """Predict from already-normalized feature rows.

        Returns an array over {+1 good, -1 bad, 0 guard band}.  A
        device is confidently good only when both the strict and loose
        instances accept it (kept ranges *and* model); confidently bad
        when both reject; in the guard band otherwise.
        """
        self._check_fitted()
        X_normalized = np.asarray(X_normalized, dtype=float)
        if X_normalized.ndim == 1:
            X_normalized = X_normalized[None, :]
        strict_good = (self._box_pass(X_normalized, self._feature_deltas)
                       & (self._strict.predict(X_normalized) == GOOD))
        if self._loose is self._strict and self._no_guard:
            return np.where(strict_good, GOOD, BAD)
        loose_good = (self._box_pass(X_normalized, -self._feature_deltas)
                      & (self._loose.predict(X_normalized) == GOOD))
        out = np.full(X_normalized.shape[0], GUARD, dtype=int)
        out[strict_good & loose_good] = GOOD
        out[~strict_good & ~loose_good] = BAD
        return out

    def predict_dataset(self, dataset):
        """Predict for a dataset that contains the feature columns."""
        X = dataset.normalized_values(self.feature_names)
        return self.predict_features(X)

    def predict_measurements(self, values):
        """Predict from raw (unnormalized) measurements of the features.

        ``values`` is ``(n, len(feature_names))`` in specification
        units and ordered like ``feature_names`` -- the view a tester
        has after applying the compacted test set.
        """
        self._check_fitted()
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[None, :]
        X = self._feature_specs.normalize(values)
        return self.predict_features(X)

    def confident_fraction(self, dataset):
        """Share of instances not falling in the guard band."""
        pred = self.predict_dataset(dataset)
        return float(np.mean(pred != GUARD))

    def __repr__(self):
        delta = (self.delta if not isinstance(self.delta, dict)
                 else "per-spec")
        return ("GuardBandedClassifier({} features, {} eliminated, "
                "delta={})").format(
                    len(self.feature_names),
                    len(getattr(self, "eliminated_names", ())),
                    delta)


def distribution_guard_deltas(dataset, target_fraction=0.05,
                              min_delta=0.005, max_delta=0.2):
    """Distribution-based guard-band widths (paper future work).

    Instead of a fixed percentage of every acceptability range, choose
    each specification's guard half-width from the *device
    distribution*: ``delta_j`` is the ``target_fraction`` quantile of
    the population's normalized distance to the nearer range boundary
    of specification ``j``.  Each guard band then covers a comparable
    share of the population regardless of how tightly the distribution
    hugs that specification's limits.

    Parameters
    ----------
    dataset:
        Training :class:`~repro.process.dataset.SpecDataset`.
    target_fraction:
        Approximate fraction of devices each per-spec guard band should
        contain.
    min_delta, max_delta:
        Clamps keeping the widths usable (a spec nobody comes close to
        failing would otherwise get a degenerate zero-width band).

    Returns
    -------
    dict
        Specification name -> guard half-width (fraction of range),
        suitable for the ``delta`` argument of
        :class:`GuardBandedClassifier` /
        :class:`~repro.core.compaction.TestCompactor`.
    """
    if not 0.0 < target_fraction < 1.0:
        raise CompactionError("target_fraction must be inside (0, 1)")
    Z = dataset.normalized_values()
    distance = np.minimum(np.abs(Z), np.abs(Z - 1.0))
    deltas = np.quantile(distance, target_fraction, axis=0)
    deltas = np.clip(deltas, min_delta, max_delta)
    return {name: float(d) for name, d in zip(dataset.names, deltas)}


class MarginGuardClassifier:
    """Single-model guard band from the SVM decision margin (ablation).

    An alternative to the paper's two-model construction: train *one*
    classifier on the unshifted labels and flag as guard-band any
    device whose decision value lies within ``+/- margin`` of the
    separating surface (the kept specifications still get the same
    two-sided box guard as :class:`GuardBandedClassifier`).

    The margin can be given directly or calibrated so a target fraction
    of the training population lands in the model's guard zone --
    letting the ablation compare the two schemes at the same retest
    budget.  See ``benchmarks/bench_ablation_margin_guard.py``.
    """

    def __init__(self, feature_names, delta=0.05, margin=None,
                 target_guard_fraction=None, model_factory=None):
        self.feature_names = tuple(feature_names)
        if not self.feature_names:
            raise CompactionError(
                "margin-guard classifier needs at least one feature")
        if delta < 0:
            raise CompactionError("guard-band delta must be non-negative")
        if (margin is None) == (target_guard_fraction is None):
            raise CompactionError(
                "give exactly one of margin / target_guard_fraction")
        if margin is not None and margin < 0:
            raise CompactionError("margin must be non-negative")
        if target_guard_fraction is not None and not (
                0.0 < target_guard_fraction < 1.0):
            raise CompactionError(
                "target_guard_fraction must be inside (0, 1)")
        self.delta = float(delta)
        self.margin = margin
        self.target_guard_fraction = target_guard_fraction
        self.model_factory = model_factory or AutoTunedSVCFactory()

    def fit(self, train_dataset):
        """Train the single model and calibrate the margin."""
        specs = train_dataset.specifications
        missing = set(self.feature_names) - set(specs.names)
        if missing:
            raise CompactionError(
                "training dataset lacks feature(s): {}".format(
                    sorted(missing)))
        self._feature_specs = specs.subset(self.feature_names)
        self.eliminated_names = tuple(
            n for n in specs.names if n not in set(self.feature_names))
        X = train_dataset.normalized_values(self.feature_names)
        if not self.eliminated_names:
            self._model = _ConstantGood()
            self.margin_ = 0.0
            return self
        elim_specs = specs.subset(self.eliminated_names)
        y = elim_specs.labels(
            train_dataset.project(self.eliminated_names).values)
        if hasattr(self.model_factory, "tune"):
            self.model_factory.tune(X, y)
        self._model = self.model_factory().fit(X, y)
        if self.margin is not None:
            self.margin_ = float(self.margin)
        else:
            scores = np.abs(self._model.decision_function(X))
            scores = scores[np.isfinite(scores)]
            if scores.size == 0:
                self.margin_ = 0.0
            else:
                self.margin_ = float(
                    np.quantile(scores, self.target_guard_fraction))
        return self

    def predict_features(self, X_normalized):
        """Predict from normalized feature rows (+1 / -1 / 0 guard)."""
        if not hasattr(self, "_model"):
            raise CompactionError("MarginGuardClassifier is not fitted")
        X_normalized = np.asarray(X_normalized, dtype=float)
        if X_normalized.ndim == 1:
            X_normalized = X_normalized[None, :]
        d = self.delta
        box_strict = np.all((X_normalized >= d)
                            & (X_normalized <= 1.0 - d), axis=1)
        box_loose = np.all((X_normalized >= -d)
                           & (X_normalized <= 1.0 + d), axis=1)
        if isinstance(self._model, _ConstantGood):
            f = np.full(X_normalized.shape[0], np.inf)
        else:
            f = self._model.decision_function(X_normalized)
        strict_good = box_strict & (f >= self.margin_)
        loose_good = box_loose & (f >= -self.margin_)
        out = np.full(X_normalized.shape[0], GUARD, dtype=int)
        out[strict_good & loose_good] = GOOD
        out[~strict_good & ~loose_good] = BAD
        return out

    def predict_dataset(self, dataset):
        """Predict for a dataset containing the feature columns."""
        return self.predict_features(
            dataset.normalized_values(self.feature_names))

    def __repr__(self):
        return ("MarginGuardClassifier({} features, delta={:g}, "
                "margin={})").format(
                    len(self.feature_names), self.delta,
                    getattr(self, "margin_", self.margin))
