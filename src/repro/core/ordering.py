"""Test-ordering strategies for the greedy compaction loop.

The greedy pruning of paper Fig. 2 examines tests one at a time, so the
quality of the final compacted set depends on the examination order.
Section 3.2 sketches three approaches, all implemented here:

* :class:`FunctionalOrder` -- a fixed order from device-functionality
  analysis ("in our case, we analyze device functionality to decide the
  order of the tests") -- the user supplies the list;
* :class:`ClassificationPowerOrder` -- "assessing the number of
  training instances successfully classified by each specification":
  tests whose specification uniquely rejects few devices are examined
  (and thus likely eliminated) first;
* :class:`ClusterOrder` -- "clustering specifications based on an
  estimate of their mutual dependence": strongly correlated
  specifications are redundant, so non-representative members of each
  correlation cluster are examined first;
* :class:`RandomOrder` -- a seeded random baseline.
"""

import numpy as np

from repro.errors import CompactionError


class OrderingStrategy:
    """Base class: decide the order in which tests are examined."""

    def order(self, dataset):
        """Return a tuple of specification names (all of them, once)."""
        raise NotImplementedError

    @staticmethod
    def _validate(names, dataset):
        expected = set(dataset.names)
        got = list(names)
        if set(got) != expected or len(got) != len(expected):
            raise CompactionError(
                "ordering must be a permutation of the specification "
                "names; got {}".format(got))
        return tuple(got)


class FunctionalOrder(OrderingStrategy):
    """A fixed, user-supplied examination order (the paper's choice)."""

    def __init__(self, names):
        self._names = tuple(names)

    def order(self, dataset):
        return self._validate(self._names, dataset)


class RandomOrder(OrderingStrategy):
    """A seeded uniformly random permutation (baseline)."""

    def __init__(self, seed=0):
        self.seed = seed

    def order(self, dataset):
        rng = np.random.default_rng(self.seed)
        names = list(dataset.names)
        rng.shuffle(names)
        return tuple(names)


class ClassificationPowerOrder(OrderingStrategy):
    """Order by how many instances each specification uniquely rejects.

    For each specification, count the training instances that fail
    *only* that specification -- devices whose pass/fail outcome this
    single test uniquely decides.  Tests with a low unique-rejection
    count carry little exclusive information and are examined first.
    Ties break toward the test whose total rejection count is lower,
    then alphabetically for determinism.
    """

    def order(self, dataset):
        passes = dataset.specifications.passes(dataset.values)
        fails = ~passes
        n_failed_specs = fails.sum(axis=1)
        unique_fail = fails & (n_failed_specs == 1)[:, None]
        unique_counts = unique_fail.sum(axis=0)
        total_counts = fails.sum(axis=0)
        keyed = sorted(
            zip(unique_counts, total_counts, dataset.names),
            key=lambda item: (item[0], item[1], item[2]))
        return self._validate([name for _, _, name in keyed], dataset)


class ClusterOrder(OrderingStrategy):
    """Order from correlation clustering of the specifications.

    Specifications whose normalized measurements are strongly
    correlated (``|r| >= threshold``) are connected in a graph; its
    connected components form clusters of mutually dependent tests.
    Within each cluster the member with the highest mean absolute
    correlation to the rest is kept as the *representative*; all other
    members are examined (offered for elimination) first, largest
    clusters first, and the representatives last.
    """

    def __init__(self, threshold=0.8):
        if not 0.0 < threshold <= 1.0:
            raise CompactionError("correlation threshold must be in (0, 1]")
        self.threshold = threshold

    def _clusters(self, corr):
        """Connected components of the |corr| >= threshold graph."""
        import networkx as nx

        n = corr.shape[0]
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if abs(corr[i, j]) >= self.threshold:
                    graph.add_edge(i, j)
        return [sorted(component)
                for component in nx.connected_components(graph)]

    def order(self, dataset):
        X = dataset.normalized_values()
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(X, rowvar=False)
        corr = np.nan_to_num(corr)
        clusters = self._clusters(corr)
        clusters.sort(key=len, reverse=True)

        early = []
        representatives = []
        for members in clusters:
            if len(members) == 1:
                representatives.append(members[0])
                continue
            strengths = [
                (np.mean([abs(corr[i, j]) for j in members if j != i]), i)
                for i in members]
            _, rep = max(strengths)
            representatives.append(rep)
            early.extend(i for i in members if i != rep)
        ordered = early + representatives
        names = [dataset.names[i] for i in ordered]
        return self._validate(names, dataset)
