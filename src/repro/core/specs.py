"""Specifications, acceptability ranges and pass/fail analysis.

Paper Section 2.1: a *specification* is a performance parameter that
must be measured and verified; a device instance is *good* when every
measured specification value falls inside its acceptability range and
*bad* otherwise.  Labels follow the SVM convention: ``+1`` good,
``-1`` bad.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import CompactionError

#: Label assigned to passing (good) devices.
GOOD = 1
#: Label assigned to failing (bad) devices.
BAD = -1


@dataclass(frozen=True)
class Specification:
    """A single device specification with its acceptability range.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"gain"`` or ``"slew_rate"``.
    unit:
        Human-readable unit string (``"V/V"``, ``"Hz"``, ...).
    nominal:
        The value measured on the nominal (unperturbed) design.
    low, high:
        Acceptability range bounds; a measured value ``v`` passes when
        ``low <= v <= high``.
    description:
        Optional free-form text for documentation.
    """

    name: str
    unit: str
    nominal: float
    low: float
    high: float
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise CompactionError("specification name must be non-empty")
        if not self.low < self.high:
            raise CompactionError(
                "specification {!r}: low bound {} must be below high bound "
                "{}".format(self.name, self.low, self.high))

    @property
    def span(self):
        """Width of the acceptability range."""
        return self.high - self.low

    def contains(self, value):
        """Element-wise pass test; works on scalars and arrays."""
        value = np.asarray(value, dtype=float)
        result = (value >= self.low) & (value <= self.high)
        return bool(result) if result.ndim == 0 else result

    def normalize(self, value):
        """Map the acceptability range onto [0, 1] (paper Section 4.3).

        Good values land inside [0, 1]; out-of-range values fall
        outside, preserving the pass/fail geometry.
        """
        return (np.asarray(value, dtype=float) - self.low) / self.span

    def denormalize(self, value):
        """Inverse of :meth:`normalize`."""
        return np.asarray(value, dtype=float) * self.span + self.low

    def shifted(self, delta_fraction):
        """Return a copy with both bounds moved inward (or outward).

        Positive ``delta_fraction`` *shrinks* the range by that fraction
        of the span on each side (a stricter specification); negative
        values widen it.  Used to build the two guard-band models of
        paper Section 4.2.
        """
        delta = delta_fraction * self.span
        new_low = self.low + delta
        new_high = self.high - delta
        if not new_low < new_high:
            raise CompactionError(
                "guard-band shift {} collapses the range of {!r}".format(
                    delta_fraction, self.name))
        return Specification(self.name, self.unit, self.nominal,
                             new_low, new_high, self.description)


class SpecificationSet:
    """An ordered collection of :class:`Specification` objects.

    Provides vectorized pass/fail labeling of measurement matrices and
    the range-based normalization used throughout the compaction flow.
    """

    def __init__(self, specifications):
        specs = tuple(specifications)
        if not specs:
            raise CompactionError("a SpecificationSet cannot be empty")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise CompactionError(
                "duplicate specification names: {}".format(sorted(names)))
        self._specs = specs
        self._index = {s.name: i for i, s in enumerate(specs)}

    # -- container protocol -------------------------------------------------
    def __len__(self):
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __contains__(self, name):
        return name in self._index

    def __getitem__(self, key):
        if isinstance(key, str):
            try:
                return self._specs[self._index[key]]
            except KeyError:
                raise CompactionError(
                    "unknown specification {!r}".format(key)) from None
        return self._specs[key]

    def __eq__(self, other):
        return (isinstance(other, SpecificationSet)
                and self._specs == other._specs)

    def __repr__(self):
        return "SpecificationSet({})".format(", ".join(self.names))

    @property
    def names(self):
        """Tuple of specification names in order."""
        return tuple(s.name for s in self._specs)

    def index(self, name):
        """Column index of specification ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise CompactionError(
                "unknown specification {!r}".format(name)) from None

    def subset(self, names):
        """A new set restricted to ``names`` (order taken from ``names``)."""
        return SpecificationSet([self[name] for name in names])

    def without(self, names):
        """A new set excluding ``names`` (original order preserved)."""
        drop = set(names)
        unknown = drop - set(self.names)
        if unknown:
            raise CompactionError(
                "unknown specification(s): {}".format(sorted(unknown)))
        kept = [s for s in self._specs if s.name not in drop]
        if not kept:
            raise CompactionError("cannot drop every specification")
        return SpecificationSet(kept)

    # -- array views ---------------------------------------------------------
    @property
    def lows(self):
        """Array of lower bounds (in specification order)."""
        return np.array([s.low for s in self._specs])

    @property
    def highs(self):
        """Array of upper bounds (in specification order)."""
        return np.array([s.high for s in self._specs])

    @property
    def nominals(self):
        """Array of nominal values (in specification order)."""
        return np.array([s.nominal for s in self._specs])

    # -- pass/fail analysis ---------------------------------------------------
    def _check_matrix(self, values):
        values = np.asarray(values, dtype=float)
        if values.ndim == 1:
            values = values[None, :]
        if values.shape[1] != len(self._specs):
            raise CompactionError(
                "measurement matrix has {} columns; expected {}".format(
                    values.shape[1], len(self._specs)))
        return values

    def passes(self, values):
        """Boolean pass matrix (instances x specifications)."""
        values = self._check_matrix(values)
        return (values >= self.lows) & (values <= self.highs)

    def labels(self, values):
        """Per-instance labels: +1 when every specification passes."""
        all_pass = self.passes(values).all(axis=1)
        return np.where(all_pass, GOOD, BAD)

    def yield_fraction(self, values):
        """Fraction of instances passing every specification."""
        labels = self.labels(values)
        return float(np.mean(labels == GOOD))

    def normalize(self, values):
        """Map each column's acceptability range onto [0, 1]."""
        values = self._check_matrix(values)
        return (values - self.lows) / (self.highs - self.lows)

    def denormalize(self, values):
        """Inverse of :meth:`normalize`."""
        values = self._check_matrix(values)
        return values * (self.highs - self.lows) + self.lows

    def shifted(self, delta_fraction):
        """Apply :meth:`Specification.shifted` to every member.

        ``delta_fraction`` may be a scalar (the paper's fixed guard
        band) or a per-specification sequence (the distribution-based
        guard band of the paper's future-work section, implemented in
        :func:`repro.core.guardband.distribution_guard_deltas`).
        """
        deltas = np.broadcast_to(
            np.asarray(delta_fraction, dtype=float), (len(self._specs),))
        return SpecificationSet(
            [s.shifted(d) for s, d in zip(self._specs, deltas)])

    def describe(self):
        """Multi-line, Table-1-style textual summary."""
        header = "{:<18} {:>10} {:>14} {:>14} {:>14}".format(
            "specification", "unit", "nominal", "low", "high")
        lines = [header, "-" * len(header)]
        for s in self._specs:
            lines.append("{:<18} {:>10} {:>14.6g} {:>14.6g} {:>14.6g}".format(
                s.name, s.unit, s.nominal, s.low, s.high))
        return "\n".join(lines)
