"""Yield loss / defect escape / guard-band accounting.

The paper's error measures (Section 5.1):

* **yield loss** -- the number of good devices the model predicted to
  be bad, as a percentage of all tested devices;
* **defect escape** -- the number of bad devices the model predicted to
  be good, likewise as a percentage;
* **predictions in guard band** -- devices on which the two guard-band
  models disagree; these are retested rather than counted as errors.

Predictions use the three-valued convention ``+1`` good, ``-1`` bad,
``0`` guard band.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError

#: Prediction value meaning "device lies in the guard-band region".
GUARD = 0


@dataclass(frozen=True)
class ClassificationReport:
    """Counts and rates of one model evaluation.

    All ``*_rate`` values are fractions of the total device count
    (multiply by 100 for the paper's percentage scale).
    """

    n_total: int
    n_good: int
    n_bad: int
    n_yield_loss: int
    n_defect_escape: int
    n_guard: int
    n_guard_good: int
    n_guard_bad: int

    @property
    def yield_loss_rate(self):
        """Good devices predicted bad, over all devices."""
        return self.n_yield_loss / self.n_total

    @property
    def defect_escape_rate(self):
        """Bad devices predicted good, over all devices."""
        return self.n_defect_escape / self.n_total

    @property
    def guard_rate(self):
        """Devices in the guard band, over all devices."""
        return self.n_guard / self.n_total

    @property
    def error_rate(self):
        """Prediction error e_p = yield loss + defect escape."""
        return (self.n_yield_loss + self.n_defect_escape) / self.n_total

    @property
    def accuracy(self):
        """Correct confident predictions over confident predictions."""
        confident = self.n_total - self.n_guard
        if confident == 0:
            return 1.0
        wrong = self.n_yield_loss + self.n_defect_escape
        return (confident - wrong) / confident

    def summary(self):
        """One-line human-readable summary (paper percentage scale)."""
        return ("yield loss {:.2%}  defect escape {:.2%}  guard band {:.2%}"
                .format(self.yield_loss_rate, self.defect_escape_rate,
                        self.guard_rate))

    def __str__(self):
        return self.summary()


def evaluate_predictions(true_labels, predictions):
    """Build a :class:`ClassificationReport` from labels and predictions.

    Parameters
    ----------
    true_labels:
        Ground-truth labels in {+1, -1} from the *complete*
        specification set.
    predictions:
        Model predictions in {+1, -1, 0}; 0 marks the guard band.
    """
    true_labels = np.asarray(true_labels)
    predictions = np.asarray(predictions)
    if true_labels.shape != predictions.shape:
        raise CompactionError("labels/predictions shape mismatch")
    if true_labels.size == 0:
        raise CompactionError("cannot evaluate an empty set")
    if not np.all(np.isin(true_labels, (GOOD, BAD))):
        raise CompactionError("true labels must be +1/-1")
    if not np.all(np.isin(predictions, (GOOD, BAD, GUARD))):
        raise CompactionError("predictions must be +1/-1/0")

    good = true_labels == GOOD
    bad = ~good
    guard = predictions == GUARD
    return ClassificationReport(
        n_total=int(true_labels.size),
        n_good=int(np.sum(good)),
        n_bad=int(np.sum(bad)),
        n_yield_loss=int(np.sum(good & (predictions == BAD))),
        n_defect_escape=int(np.sum(bad & (predictions == GOOD))),
        n_guard=int(np.sum(guard)),
        n_guard_good=int(np.sum(guard & good)),
        n_guard_bad=int(np.sum(guard & bad)),
    )
