"""The paper's core contribution: specification test compaction.

Modules
-------

:mod:`repro.core.specs`
    Specifications, acceptability ranges and pass/fail analysis
    (paper Section 2.1).
:mod:`repro.core.compaction`
    The greedy statistical-learning test-set pruning loop
    (paper Section 3.2, Fig. 2).
:mod:`repro.core.guardband`
    Two-model guard-banded classification (paper Section 4.2).
:mod:`repro.core.grid`
    Grid-based training-data compaction (paper Section 4.3).
:mod:`repro.core.ordering`
    Test-ordering strategies for the greedy loop (paper Section 3.2).
:mod:`repro.core.metrics`
    Yield loss / defect escape / guard-band accounting.
:mod:`repro.core.costmodel`
    Test-cost model quantifying the savings of compaction.
:mod:`repro.core.pipeline`
    One-call high-level API tying everything together.
"""

from repro.core.specs import Specification, SpecificationSet
from repro.core.compaction import CompactionResult, CompactionStep, TestCompactor
from repro.core.guardband import (
    AutoTunedSVCFactory,
    GuardBandedClassifier,
    MarginGuardClassifier,
    distribution_guard_deltas,
)
from repro.core.grid import GridCompactor
from repro.core.metrics import GUARD, ClassificationReport, evaluate_predictions
from repro.core.ordering import (
    ClassificationPowerOrder,
    ClusterOrder,
    FunctionalOrder,
    RandomOrder,
)
from repro.core.costmodel import TestCostModel
from repro.core.pipeline import CompactionPipeline, compact_specification_tests

__all__ = [
    "Specification",
    "SpecificationSet",
    "TestCompactor",
    "CompactionResult",
    "CompactionStep",
    "GuardBandedClassifier",
    "AutoTunedSVCFactory",
    "distribution_guard_deltas",
    "MarginGuardClassifier",
    "GUARD",
    "GridCompactor",
    "ClassificationReport",
    "evaluate_predictions",
    "FunctionalOrder",
    "ClassificationPowerOrder",
    "ClusterOrder",
    "RandomOrder",
    "TestCostModel",
    "CompactionPipeline",
    "compact_specification_tests",
]
