"""Grid-based training-data compaction (paper Section 4.3).

Building a statistical model from a very large training set is slow.
The paper compresses the set by overlaying a grid on the (normalized)
specification space:

* grid cells containing **both** good and bad instances -- i.e. cells
  straddling the classification boundary -- keep all of their raw
  instances;
* *pure* cells (only good or only bad) are merged into a single
  instance at the cell's center point carrying the common label.

Classification only needs accurate coverage near the class boundary
(Section 4.1), so this preserves model quality while shrinking the
training set dramatically.
"""

import numpy as np

from repro.core.specs import BAD, GOOD
from repro.errors import CompactionError


class GridCompactor:
    """Compress a labeled training set on a regular grid.

    Parameters
    ----------
    resolution:
        Number of grid divisions per dimension across the normalized
        [0, 1] acceptability window.  Values outside [0, 1] fall into
        outer cells via floor indexing, so out-of-range (bad) devices
        are compacted too.
    """

    def __init__(self, resolution=8):
        resolution = int(resolution)
        if resolution < 1:
            raise CompactionError("grid resolution must be >= 1")
        self.resolution = resolution

    def cell_indices(self, X_normalized):
        """Integer grid coordinates of each (normalized) row."""
        X = np.asarray(X_normalized, dtype=float)
        if X.ndim != 2:
            raise CompactionError("expected a 2-D feature matrix")
        return np.floor(X * self.resolution).astype(np.int64)

    def cell_center(self, cell):
        """Normalized-space center point of an integer grid cell."""
        return (np.asarray(cell, dtype=float) + 0.5) / self.resolution

    def compact(self, X_normalized, labels):
        """Return ``(X_compact, labels_compact, info)``.

        ``info`` is a dict with ``n_cells``, ``n_mixed_cells``,
        ``n_pure_cells`` and ``compression`` (output/input size ratio).
        """
        X = np.asarray(X_normalized, dtype=float)
        labels = np.asarray(labels)
        if labels.shape != (X.shape[0],):
            raise CompactionError("labels shape mismatch")
        if not np.all(np.isin(labels, (GOOD, BAD))):
            raise CompactionError("labels must be +1/-1")
        if X.shape[0] == 0:
            raise CompactionError("cannot compact an empty training set")

        cells = self.cell_indices(X)
        # Group rows by cell via lexicographic sorting.
        order = np.lexsort(cells.T[::-1])
        sorted_cells = cells[order]
        boundaries = np.flatnonzero(
            np.any(np.diff(sorted_cells, axis=0) != 0, axis=1)) + 1
        groups = np.split(order, boundaries)

        keep_rows = []
        centers = []
        center_labels = []
        n_mixed = 0
        for group in groups:
            group_labels = labels[group]
            has_good = np.any(group_labels == GOOD)
            has_bad = np.any(group_labels == BAD)
            if has_good and has_bad:
                n_mixed += 1
                keep_rows.extend(group.tolist())
            else:
                centers.append(self.cell_center(cells[group[0]]))
                center_labels.append(GOOD if has_good else BAD)

        parts_X = []
        parts_y = []
        if keep_rows:
            keep_rows = np.asarray(keep_rows)
            parts_X.append(X[keep_rows])
            parts_y.append(labels[keep_rows])
        if centers:
            parts_X.append(np.asarray(centers))
            parts_y.append(np.asarray(center_labels))
        X_out = np.vstack(parts_X)
        y_out = np.concatenate(parts_y)
        info = {
            "n_cells": len(groups),
            "n_mixed_cells": n_mixed,
            "n_pure_cells": len(groups) - n_mixed,
            "compression": X_out.shape[0] / X.shape[0],
        }
        return X_out, y_out, info

    def __repr__(self):
        return "GridCompactor(resolution={})".format(self.resolution)
