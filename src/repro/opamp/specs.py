"""Measurement of the eleven op-amp specifications (paper Table 1).

Every specification is extracted from a first-principles simulation of
the amplifier with the :mod:`repro.circuit` MNA engine:

==================  ==========================================================
specification       testbench
==================  ==========================================================
gain                open-loop AC sweep via an L/C bias tee (DC unity feedback
                    through a huge inductor, AC drive through a huge capacitor)
bw_3db              same sweep, -3 dB corner of the open-loop response
ugf                 same sweep, 0 dB crossing
cm_gain             same netlist, both inputs driven in phase at 1 Hz
psrr_gain           same netlist, AC source on the supply at 1 Hz
iq                  DC operating point, current drawn from VDD
slew_rate           unity-gain transient, large (2.5 V) input step
rise_time           unity-gain transient, small (0.2 V) step, 10-90 %
overshoot           same small-step transient, fractional peak past final
settling_time       same small-step transient, 1 % band
isc                 DC with the output forced to mid-supply and the input
                    differentially overdriven (output-sourcing short current)
==================  ==========================================================

The acceptability ranges below were calibrated (see ``EXPERIMENTS.md``)
so Monte-Carlo yield lands in the paper's 75-85 % window.
"""

import numpy as np

from repro.circuit import analysis as ana
from repro.circuit.ac import solve_ac
from repro.circuit.batch import CircuitBatch
from repro.circuit.dc import solve_dc
from repro.circuit.devices import Pulse
from repro.circuit.netlist import Circuit
from repro.circuit.transient import solve_transient
from repro.core.specs import Specification, SpecificationSet
from repro.errors import AnalysisError, ReproError
from repro.opamp.design import OpAmpParameters, build_opamp

#: Input common-mode voltage used by every testbench (V).
VCM = 2.5
#: Bias-tee inductor (DC feedback, AC open) in henries.
BIAS_TEE_L = 1e6
#: Bias-tee capacitor (DC open, AC feed) in farads.
BIAS_TEE_C = 1.0
#: Open-loop AC sweep grid (Hz).
AC_FREQUENCIES = np.logspace(0.0, np.log10(3e7), 61)
#: Frequency for the scalar common-mode / supply-gain measurements (Hz).
LOW_FREQ = 1.0

#: Small-step transient settings: step size, output grid, total time.
STEP_AMPLITUDE = 0.2
STEP_DT = 8e-9
STEP_T = 3.0e-6
STEP_DELAY = 0.1e-6
#: Large-step (slew) transient settings.
SLEW_SWING = 2.5
SLEW_DT = 2.5e-8
SLEW_T = 5.0e-6
SLEW_DELAY = 0.2e-6

#: Table 1 analog: the eleven specifications with calibrated ranges.
#: Nominals were measured on the unperturbed design; ranges sit near the
#: 3 %/97 % Monte-Carlo quantiles (seed 42, 300 instances), which lands
#: the overall yield at ~75 % as in the paper (see EXPERIMENTS.md).
OPAMP_SPECIFICATIONS = SpecificationSet([
    Specification("gain", "V/V", 19400.0, 13700.0, 26800.0,
                  "open-loop DC differential gain"),
    Specification("bw_3db", "Hz", 140.0, 82.0, 248.0,
                  "open-loop -3 dB bandwidth"),
    Specification("ugf", "MHz", 2.51, 1.95, 3.35,
                  "unity-gain frequency"),
    Specification("slew_rate", "V/us", 1.06, 0.74, 1.59,
                  "large-signal slew rate, 20-80 % of a 2.5 V step"),
    Specification("rise_time", "ns", 179.0, 128.0, 251.0,
                  "10-90 % small-step rise time in unity gain"),
    Specification("overshoot", "%", 0.29, 0.0, 1.6,
                  "small-step overshoot in unity gain"),
    Specification("settling_time", "ns", 280.0, 200.0, 432.0,
                  "1 % settling time in unity gain"),
    Specification("iq", "uA", 104.0, 79.5, 135.5,
                  "quiescent supply current"),
    Specification("cm_gain", "V/V", 0.53, 0.0, 16.7,
                  "common-mode gain at 1 Hz (mismatch dominated)"),
    Specification("psrr_gain", "V/V", 0.84, 0.0, 30.2,
                  "power-supply-to-output gain at 1 Hz"),
    Specification("isc", "mA", 17.6, 13.9, 22.8,
                  "output-sourcing short-circuit current"),
])


def _ac_bench(params):
    """Open-loop bias-tee netlist shared by gain/BW/UGF/CM/PSRR."""
    ckt = Circuit("opamp-ac")
    ckt.voltage_source("Vdd", "vdd", "0", dc=params.vdd, ac=0.0)
    ckt.voltage_source("Vinp", "inp", "0", dc=VCM, ac=0.0)
    ckt.voltage_source("Vac2", "nac", "0", dc=0.0, ac=0.0)
    ckt.inductor("Lfb", "out", "inn", BIAS_TEE_L)
    ckt.capacitor("Cfb", "inn", "nac", BIAS_TEE_C)
    ckt.capacitor("CL", "out", "0", params.cl)
    build_opamp(ckt, params, "inp", "inn", "out", "vdd")
    return ckt


def _unity_bench(params, wave):
    """Unity-gain follower netlist for the transient measurements."""
    ckt = Circuit("opamp-tran")
    ckt.voltage_source("Vdd", "vdd", "0", dc=params.vdd)
    ckt.voltage_source("Vinp", "inp", "0", dc=wave)
    ckt.capacitor("CL", "out", "0", params.cl)
    build_opamp(ckt, params, "inp", "out", "out", "vdd")
    return ckt


def _short_bench(params):
    """Output forced to mid-supply with the input overdriven by +1 V."""
    ckt = Circuit("opamp-short")
    ckt.voltage_source("Vdd", "vdd", "0", dc=params.vdd)
    ckt.voltage_source("Vinp", "inp", "0", dc=VCM + 1.0)
    ckt.voltage_source("Vshort", "out", "0", dc=VCM)
    build_opamp(ckt, params, "inp", "out", "out", "vdd")
    return ckt


def _small_step_wave():
    """The shared small-step (rise/overshoot/settling) input pulse."""
    return Pulse(VCM - STEP_AMPLITUDE / 2, VCM + STEP_AMPLITUDE / 2,
                 delay=STEP_DELAY, rise=5e-9)


def _slew_wave():
    """The shared large-step (slew-rate) input pulse."""
    return Pulse(VCM - SLEW_SWING / 2, VCM + SLEW_SWING / 2,
                 delay=SLEW_DELAY, rise=2e-8)


def _open_loop_values(vout):
    """gain / bw_3db / ugf from the open-loop magnitude response."""
    values = {"gain": float(vout[0]),
              "bw_3db": ana.bandwidth_3db(AC_FREQUENCIES, vout)}
    try:
        values["ugf"] = ana.unity_gain_frequency(AC_FREQUENCIES, vout) / 1e6
    except AnalysisError:
        values["ugf"] = 0.0  # dead amplifier: guaranteed range failure
    return values


def _small_step_values(t, y):
    """rise_time / overshoot / settling_time from the step response."""
    y_start = float(np.interp(STEP_DELAY, t, y))
    y_end = float(np.mean(y[t > STEP_T - 5 * STEP_DT]))
    values = {
        "rise_time": ana.rise_time(t, y, y_start, y_end) * 1e9,
        "overshoot": ana.overshoot(
            y[t >= STEP_DELAY], y_start, y_end) * 100.0,
    }
    try:
        values["settling_time"] = ana.settling_time(
            t, y, y_end, band=0.01, t_step=STEP_DELAY) * 1e9
    except AnalysisError:
        # Never settled inside the window: clamp to the window length,
        # which is far outside the acceptability range.
        values["settling_time"] = (STEP_T - STEP_DELAY) * 1e9
    return values


def measure_opamp(params=None):
    """Measure all eleven specifications of one op-amp instance.

    Parameters
    ----------
    params:
        :class:`~repro.opamp.design.OpAmpParameters`; the nominal
        design when omitted.

    Returns
    -------
    dict
        Specification name -> measured value, in the units of
        :data:`OPAMP_SPECIFICATIONS`.
    """
    if params is None:
        params = OpAmpParameters()
    values = {}

    # ---- AC bench: gain, bandwidth, UGF, CM gain, PSRR gain, Iq --------
    ckt = _ac_bench(params)
    op = solve_dc(ckt)
    values["iq"] = -op.branch_current("Vdd") * 1e6  # uA drawn from VDD

    ckt.device("Vinp").ac = 0.5
    ckt.device("Vac2").ac = -0.5
    diff = solve_ac(ckt, AC_FREQUENCIES, op)
    values.update(_open_loop_values(np.abs(diff.v("out"))))

    ckt.device("Vinp").ac = 1.0
    ckt.device("Vac2").ac = 1.0
    cm = solve_ac(ckt, [LOW_FREQ], op)
    values["cm_gain"] = float(np.abs(cm.v("out"))[0])

    ckt.device("Vinp").ac = 0.0
    ckt.device("Vac2").ac = 0.0
    ckt.device("Vdd").ac = 1.0
    ps = solve_ac(ckt, [LOW_FREQ], op)
    values["psrr_gain"] = float(np.abs(ps.v("out"))[0])

    # ---- small-step transient: rise time, overshoot, settling ----------
    small = _unity_bench(params, _small_step_wave())
    tr = solve_transient(small, STEP_T, STEP_DT)
    values.update(_small_step_values(tr.t, tr.v("out")))

    # ---- large-step transient: slew rate --------------------------------
    big = _unity_bench(params, _slew_wave())
    tr2 = solve_transient(big, SLEW_T, SLEW_DT)
    values["slew_rate"] = ana.slew_rate(tr2.t, tr2.v("out")) / 1e6  # V/us

    # ---- short-circuit current ------------------------------------------
    sc = _short_bench(params)
    op_sc = solve_dc(sc)
    values["isc"] = abs(op_sc.branch_current("Vshort")) * 1e3  # mA

    return values


def measure_opamp_batch(params_list):
    """Measure many op-amp instances through the batched MNA kernel.

    Runs the same five analyses as :func:`measure_opamp` -- AC bench DC
    + three AC sweeps, small- and large-step transients, short-circuit
    DC -- but stacked across the whole population via
    :class:`repro.circuit.batch.CircuitBatch`, so each Newton
    iteration, frequency point and time step is one LAPACK call instead
    of ``len(params_list)`` Python loops.  Values are bit-identical to
    the scalar path per instance (the MOSFET-only netlists meet the
    kernel's exact-parity contract).

    Returns
    -------
    list
        Per instance (input order): the specification-value dict, or
        the :class:`~repro.errors.ReproError` that instance's scalar
        measurement would have raised.  Failures never propagate across
        instances.
    """
    from repro.process.montecarlo import BatchPopulation

    pop = BatchPopulation(len(params_list))

    # ---- AC bench: Iq, open-loop sweep, CM gain, PSRR gain -------------
    keys, circuits = pop.build(_ac_bench, params_list)
    if keys:
        batch = CircuitBatch(circuits)
        position = {k: pos for pos, k in enumerate(keys)}
        op = batch.solve_dc()
        alive = pop.absorb(keys, op.errors)
        iq = -op.branch_current("Vdd") * 1e6
        for k in alive:
            pop.values[k]["iq"] = float(iq[position[k]])

        def ac_pass(vinp, vac2, vdd, freqs, active_keys):
            """One batched AC configuration; returns surviving keys."""
            for circuit in circuits:
                circuit.device("Vinp").ac = vinp
                circuit.device("Vac2").ac = vac2
                circuit.device("Vdd").ac = vdd
            res = batch.solve_ac(
                freqs, op.x, active=[position[k] for k in active_keys])
            return res, pop.absorb(
                active_keys, [res.errors[position[k]]
                              for k in active_keys])

        diff, alive = ac_pass(0.5, -0.5, 0.0, AC_FREQUENCIES, alive)
        vout = np.abs(diff.v("out"))
        for k in alive:
            pop.extract(k, _open_loop_values, vout[position[k]])
        alive = [k for k in alive if pop.errors[k] is None]

        cm, alive = ac_pass(1.0, 1.0, 0.0, [LOW_FREQ], alive)
        cm_out = np.abs(cm.v("out"))
        for k in alive:
            pop.values[k]["cm_gain"] = float(cm_out[position[k], 0])

        ps, alive = ac_pass(0.0, 0.0, 1.0, [LOW_FREQ], alive)
        ps_out = np.abs(ps.v("out"))
        for k in alive:
            pop.values[k]["psrr_gain"] = float(ps_out[position[k], 0])

    # ---- small-step transient: rise time, overshoot, settling ----------
    keys, circuits = pop.build(
        lambda p: _unity_bench(p, _small_step_wave()), params_list)
    if keys:
        tr = CircuitBatch(circuits).solve_transient(STEP_T, STEP_DT)
        alive = pop.absorb(keys, tr.errors)
        y_all = tr.v("out")
        for pos, k in enumerate(keys):
            if k in alive:
                pop.extract(k, _small_step_values, tr.t, y_all[pos])

    # ---- large-step transient: slew rate --------------------------------
    keys, circuits = pop.build(
        lambda p: _unity_bench(p, _slew_wave()), params_list)
    if keys:
        tr2 = CircuitBatch(circuits).solve_transient(SLEW_T, SLEW_DT)
        alive = pop.absorb(keys, tr2.errors)
        y_all = tr2.v("out")
        for pos, k in enumerate(keys):
            if k in alive:
                pop.extract(
                    k, lambda t, y: {
                        "slew_rate": ana.slew_rate(t, y) / 1e6},
                    tr2.t, y_all[pos])

    # ---- short-circuit current ------------------------------------------
    keys, circuits = pop.build(_short_bench, params_list)
    if keys:
        op_sc = CircuitBatch(circuits).solve_dc()
        alive = pop.absorb(keys, op_sc.errors)
        isc = np.abs(op_sc.branch_current("Vshort")) * 1e3
        for pos, k in enumerate(keys):
            if k in alive:
                pop.values[k]["isc"] = float(isc[pos])

    out = []
    for k in range(len(params_list)):
        if pop.errors[k] is not None:
            out.append(pop.errors[k])
        else:
            out.append(pop.values[k])
    return out


class OpAmpBench:
    """The op-amp device-under-test for Monte-Carlo data generation.

    Implements the DUT protocol consumed by
    :func:`repro.process.montecarlo.generate_dataset`:
    :attr:`specifications`, :meth:`sample_parameters` and
    :meth:`measure`.

    Parameters
    ----------
    nominal:
        Base design; defaults to :class:`OpAmpParameters()`.
    relative_spread:
        Half-width of the uniform process disturbance applied to every
        varied parameter (paper: "randomly altering the MOSFET lengths
        and widths and capacitor values within <x> % of their nominal
        values").
    specifications:
        Override the acceptability ranges (defaults to the calibrated
        :data:`OPAMP_SPECIFICATIONS`).
    """

    name = "opamp"

    def __init__(self, nominal=None, relative_spread=0.15,
                 specifications=None):
        self.nominal = (nominal or OpAmpParameters()).validate()
        self.relative_spread = float(relative_spread)
        self.specifications = specifications or OPAMP_SPECIFICATIONS

    def sample_parameters(self, rng):
        """Draw one process-perturbed parameter set."""
        return self.nominal.perturbed(rng, self.relative_spread)

    def measure(self, params):
        """Measure the specification vector of one instance."""
        measured = measure_opamp(params)
        return np.array([measured[name]
                         for name in self.specifications.names])

    def measure_batch(self, params_list):
        """Measure many instances through the batched MNA kernel.

        Returns one specification row (or the instance's
        :class:`~repro.errors.ReproError`) per input, bit-identical to
        :meth:`measure` per instance; see :func:`measure_opamp_batch`.
        """
        names = self.specifications.names
        out = []
        for measured in measure_opamp_batch(params_list):
            if isinstance(measured, ReproError):
                out.append(measured)
            else:
                out.append(np.array([measured[name] for name in names]))
        return out

    def generate_dataset(self, n_instances, seed, on_error="resample",
                         n_jobs=None, seed_mode="per-instance",
                         max_failures=None, return_report=False,
                         engine="scalar"):
        """Convenience wrapper around the Monte-Carlo generator.

        ``n_jobs`` fans the instance simulations out across worker
        processes and ``engine="batched"`` routes whole slot batches
        through the vectorized MNA kernel (bit-identical dataset at any
        worker count and either engine); see
        :func:`repro.process.montecarlo.generate_dataset`.
        """
        from repro.process.montecarlo import generate_dataset

        return generate_dataset(self, n_instances, seed=seed,
                                on_error=on_error, n_jobs=n_jobs,
                                seed_mode=seed_mode,
                                max_failures=max_failures,
                                return_report=return_report,
                                engine=engine)


def measure_stability(params=None):
    """Open-loop stability diagnostics (beyond the paper's Table 1).

    Returns a dict with:

    ``phase_margin_deg``
        180 degrees plus the open-loop phase at the unity-gain
        frequency; healthy two-stage designs sit around 60-80 degrees.
    ``gain_margin_db``
        Loop attenuation (in dB below 0) at the -180 degree phase
        crossing, or ``inf`` when the phase never reaches -180 degrees
        inside the sweep.

    These are not specification tests in the paper, but they are the
    standard design-verification companions of the Table 1 AC specs
    and are exercised by the test suite to validate the simulator's
    phase behaviour.
    """
    if params is None:
        params = OpAmpParameters()
    ckt = _ac_bench(params)
    op = solve_dc(ckt)
    ckt.device("Vinp").ac = 0.5
    ckt.device("Vac2").ac = -0.5
    response = solve_ac(ckt, AC_FREQUENCIES, op).v("out")
    mags = np.abs(response)
    # The bias tee makes the DC response positive real (two inversions);
    # unwrap the phase from the low-frequency end.
    phase = np.unwrap(np.angle(response))
    phase_deg = np.degrees(phase - phase[0])

    ugf = ana.unity_gain_frequency(AC_FREQUENCIES, mags)
    phase_at_ugf = float(np.interp(np.log10(ugf),
                                   np.log10(AC_FREQUENCIES), phase_deg))
    phase_margin = 180.0 + phase_at_ugf

    crossings = np.flatnonzero((phase_deg[:-1] > -180.0)
                               & (phase_deg[1:] <= -180.0))
    if crossings.size:
        k = int(crossings[0])
        frac = (-180.0 - phase_deg[k]) / (phase_deg[k + 1] - phase_deg[k])
        log_f180 = (np.log10(AC_FREQUENCIES[k])
                    + frac * (np.log10(AC_FREQUENCIES[k + 1])
                              - np.log10(AC_FREQUENCIES[k])))
        mag_at_180 = float(np.interp(log_f180, np.log10(AC_FREQUENCIES),
                                     mags))
        gain_margin = -20.0 * np.log10(max(mag_at_180, 1e-300))
    else:
        gain_margin = float("inf")
    return {"phase_margin_deg": phase_margin,
            "gain_margin_db": gain_margin}
