"""Two-stage Miller-compensated CMOS op-amp design.

Topology (classic textbook two-stage amplifier):

* ``M1/M2``  -- NMOS input differential pair (gates = ``inp``/``inn``).
* ``M3/M4``  -- PMOS current-mirror load (``M3`` diode-connected).
* ``M5``     -- NMOS tail current source.
* ``M6``     -- PMOS common-source second stage (gate at the first-stage
  output ``o1``).
* ``M7``     -- NMOS current-source load of the second stage.
* ``M8``     -- diode-connected NMOS bias device fed by ``Rbias``.
* ``Cc/Rz``  -- Miller compensation capacitor with nulling resistor.

The nominal design targets the neighbourhood of the paper's Table 1:
open-loop gain in the ten-thousands, a 3-dB bandwidth of a few hundred
hertz, unity-gain frequency of a few megahertz, slew rate around
1 V/us and quiescent current near 100 uA.  Exact values are recorded by
the calibration run in ``EXPERIMENTS.md``; only the *shape* of the
compaction trends depends on them.
"""

from dataclasses import dataclass, fields, replace

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError

#: Process transconductance of NMOS devices (A/V^2).
KP_N = 100e-6
#: Process transconductance of PMOS devices (A/V^2).
KP_P = 40e-6
#: NMOS threshold voltage (V).
VTH_N = 0.7
#: PMOS threshold voltage magnitude (V).
VTH_P = 0.8
#: Channel-length modulation per micron of drawn length (1/V).
LAMBDA = 0.09


@dataclass
class OpAmpParameters:
    """Geometric and passive parameters of the two-stage op-amp.

    All widths and lengths are in meters; capacitances in farads;
    resistances in ohms.  These are the quantities the paper's
    Monte-Carlo process model randomly perturbs ("randomly altering the
    MOSFET lengths and widths and capacitor values").
    """

    w1: float = 50e-6     # input pair width (M1 = M2 nominally)
    l1: float = 1e-6
    w2: float = 50e-6
    l2: float = 1e-6
    w3: float = 15e-6     # PMOS mirror load
    l3: float = 1e-6
    w4: float = 15e-6
    l4: float = 1e-6
    w5: float = 68e-6     # tail current source (long for high ro)
    l5: float = 2e-6
    w6: float = 120e-6    # PMOS output device
    l6: float = 1e-6
    w7: float = 100e-6    # NMOS output current source
    l7: float = 1e-6
    w8: float = 25e-6     # bias diode
    l8: float = 1e-6
    cc: float = 20e-12    # Miller compensation capacitor
    rz: float = 1.4e3     # nulling resistor
    rbias: float = 280e3  # bias reference resistor
    vdd: float = 5.0      # supply voltage (testbench, not varied)
    cl: float = 25e-12    # load capacitance (testbench, not varied)

    #: Names of the fields subjected to Monte-Carlo process variation.
    VARIED = (
        "w1", "l1", "w2", "l2", "w3", "l3", "w4", "l4", "w5", "l5",
        "w6", "l6", "w7", "l7", "w8", "l8", "cc",
    )

    def validate(self):
        """Raise :class:`CircuitError` on non-physical parameter values."""
        for field in fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise CircuitError(
                    "op-amp parameter {!r} must be a positive number, "
                    "got {!r}".format(field.name, value))
        return self

    def perturbed(self, rng, relative_spread=0.15):
        """Return a copy with every varied field uniformly perturbed.

        Parameters
        ----------
        rng:
            A :class:`numpy.random.Generator`.
        relative_spread:
            Half-width of the uniform relative disturbance; 0.15 means
            each varied parameter lands in ``[0.85, 1.15] * nominal``.
        """
        updates = {
            name: getattr(self, name)
            * (1.0 + rng.uniform(-relative_spread, relative_spread))
            for name in self.VARIED
        }
        return replace(self, **updates)

    def as_dict(self):
        """Return all parameters as a plain ``dict`` (for serialization)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def build_opamp(circuit, params, inp, inn, out, vdd, vss="0", prefix=""):
    """Instantiate the op-amp devices into ``circuit``.

    Parameters
    ----------
    circuit:
        Target :class:`~repro.circuit.netlist.Circuit`.
    params:
        An :class:`OpAmpParameters` instance.
    inp, inn, out, vdd, vss:
        External node names (non-inverting input, inverting input,
        output, positive supply, negative supply/ground).
    prefix:
        Optional device/node name prefix so several amplifier copies
        can coexist in one netlist.

    Returns
    -------
    Circuit
        The same circuit, for chaining.
    """
    params.validate()
    p = prefix
    tail = p + "tail"
    d1 = p + "d1"
    o1 = p + "o1"
    nbias = p + "nbias"
    zmid = p + "zmid"

    lam = LAMBDA
    # Input differential pair (NMOS).  M1 sits on the diode side of the
    # mirror load, so its gate is the *inverting* input of the two-stage
    # amplifier (first stage non-inverting from M2's gate, second stage
    # inverting: two inversions from inp to out).
    circuit.mosfet(p + "M1", d1, inn, tail, kind="n", w=params.w1,
                   l=params.l1, kp=KP_N, vth=VTH_N, lam=lam)
    circuit.mosfet(p + "M2", o1, inp, tail, kind="n", w=params.w2,
                   l=params.l2, kp=KP_N, vth=VTH_N, lam=lam)
    # PMOS mirror load (M3 diode-connected).
    circuit.mosfet(p + "M3", d1, d1, vdd, kind="p", w=params.w3,
                   l=params.l3, kp=KP_P, vth=VTH_P, lam=lam)
    circuit.mosfet(p + "M4", o1, d1, vdd, kind="p", w=params.w4,
                   l=params.l4, kp=KP_P, vth=VTH_P, lam=lam)
    # Tail and bias network.
    circuit.mosfet(p + "M5", tail, nbias, vss, kind="n", w=params.w5,
                   l=params.l5, kp=KP_N, vth=VTH_N, lam=lam)
    circuit.mosfet(p + "M8", nbias, nbias, vss, kind="n", w=params.w8,
                   l=params.l8, kp=KP_N, vth=VTH_N, lam=lam)
    circuit.resistor(p + "Rbias", vdd, nbias, params.rbias)
    # Output stage.
    circuit.mosfet(p + "M6", out, o1, vdd, kind="p", w=params.w6,
                   l=params.l6, kp=KP_P, vth=VTH_P, lam=lam)
    circuit.mosfet(p + "M7", out, nbias, vss, kind="n", w=params.w7,
                   l=params.l7, kp=KP_N, vth=VTH_N, lam=lam)
    # Miller compensation with nulling resistor.
    circuit.resistor(p + "Rz", o1, zmid, params.rz)
    circuit.capacitor(p + "Cc", zmid, out, params.cc)
    return circuit
