"""Two-stage CMOS operational amplifier DUT (paper Section 5.1).

The paper's first example applies specification test compaction to an
(unfabricated) operational amplifier with eleven specification-based
tests.  This subpackage provides:

* :class:`~repro.opamp.design.OpAmpParameters` -- the full geometric /
  electrical parameter set of a two-stage Miller-compensated op-amp,
  the quantity perturbed by the Monte-Carlo process model;
* :func:`~repro.opamp.design.build_opamp` -- netlist builder;
* :class:`~repro.opamp.specs.OpAmpBench` -- testbench that measures all
  eleven specifications of paper Table 1 via the :mod:`repro.circuit`
  simulator, and generates labeled Monte-Carlo datasets.
"""

from repro.opamp.design import OpAmpParameters, build_opamp
from repro.opamp.specs import (
    OPAMP_SPECIFICATIONS,
    OpAmpBench,
    measure_opamp,
    measure_stability,
)

__all__ = [
    "OpAmpParameters",
    "build_opamp",
    "OpAmpBench",
    "OPAMP_SPECIFICATIONS",
    "measure_opamp",
    "measure_stability",
]
