"""Batched MNA simulation kernel: one netlist topology, many instances.

Monte-Carlo populations simulate the *same* circuit topology hundreds
of times with different device values.  The scalar analyses in
:mod:`repro.circuit.dc` / :mod:`~repro.circuit.ac` /
:mod:`~repro.circuit.transient` pay the Python stamping loop and a tiny
dense :func:`numpy.linalg.solve` once per instance per Newton iteration
(or per frequency, or per time step) -- interpreter overhead dominates.
This module removes it:

**Stamp plan.**  :class:`CircuitBatch` compiles the shared topology
once into per-device *stamp plans*: for every device position, the
fixed matrix slots it writes (``(row, col)`` index pairs, ground rows
dropped) plus the per-instance value vectors ((B,) arrays gathered from
the B device objects).  Assembly then stacks all instances' MNA systems
into one ``(B, n, n)`` / ``(B, n)`` pair with a handful of vectorized
adds, and one stacked :func:`numpy.linalg.solve` call factors the whole
population through LAPACK's ``gesv``.

**Masked Newton (DC).**  All instances iterate together; an instance
leaves the active set the moment its own node voltages converge, so its
solution is frozen exactly where the scalar iteration would have
stopped.  Instances whose matrix turns singular mid-iteration, or that
fail to converge within the iteration limit, are *demoted*: they re-run
through the scalar :func:`~repro.circuit.dc.solve_dc` (with its full
gmin/source-stepping homotopy arsenal) individually, so one hard
instance never stalls -- or fails -- the batch.

**Batched AC.**  The linearized base matrix is assembled per instance
once; the reactive stamps are hoisted to an omega-linear entry list
(exactly as in the scalar :func:`~repro.circuit.ac.solve_ac`) and the
instance x frequency systems are stacked into memory-bounded chunks,
each solved with a single stacked LAPACK call.

**Batched transient.**  Fixed-step integration with the companion
conductance stack assembled once per (step size, method) and a masked
batched Newton per time step, warm-started from the previous step.
An instance that fails a step is demoted to the scalar
:func:`~repro.circuit.transient.solve_transient` (with its local
step-halving retries) for the whole run.

Parity contract
---------------

For every built-in device except the diode, a batched analysis is
**bit-identical** to running the scalar analysis on each instance:
the vectorized stamp formulas perform the same IEEE operations in the
same order, per-entry accumulation replays the scalar stamping order,
and LAPACK's ``gesv`` factors a stacked system exactly as it factors
each matrix alone.  The diode's exponential goes through
:func:`numpy.exp` instead of :func:`math.exp`, which may differ in the
last ulp; diode circuits are therefore equivalent only to ~1e-15
relative.  The parity suite in ``tests/circuit/test_batch.py`` pins
both statements down.

Demotion preserves the contract trivially: a demoted instance *is* the
scalar path.  Per-instance failures come back in the result's
``errors`` list (aligned with the batch) instead of aborting the other
instances.
"""

import numpy as np

from repro.circuit import devices as dev
from repro.circuit import dc as _dc
from repro.circuit import transient as _tran
from repro.errors import AnalysisError, CircuitError, ConvergenceError
from repro.telemetry import get_telemetry

#: Upper bound on complex matrix entries per stacked AC solve chunk
#: (~32 MiB of workspace at 16 bytes per entry).
AC_CHUNK_ENTRIES = 1 << 21

#: Node-voltage clamp per transient Newton iteration (V), matching the
#: scalar ``transient._newton_step``.
TRAN_MAX_STEP = 0.5


def _vcol(x, i):
    """Column ``i`` of the solution stack (zeros for ground)."""
    if i >= 0:
        return x[:, i]
    return np.zeros(x.shape[0])


def _take(values, idx):
    """Slice a per-instance value vector (scalars pass through)."""
    if isinstance(values, np.ndarray):
        return values[idx]
    return values


def _pattern4(i, j, v):
    """The two-terminal conductance stamp pattern, ground-filtered."""
    entries = []
    if i >= 0:
        entries.append((i, i, v))
    if j >= 0:
        entries.append((j, j, v))
    if i >= 0 and j >= 0:
        entries.append((i, j, -v))
        entries.append((j, i, -v))
    return entries


def _aux_incidence(i, j, k):
    """The aux-branch incidence stamp pattern, ground-filtered.

    Shared by every device with a branch-current unknown (inductor,
    voltage source, VCVS); entry order matches the scalar stamps.
    """
    entries = []
    _entry(entries, i, k, 1.0)
    _entry(entries, j, k, -1.0)
    _entry(entries, k, i, 1.0)
    _entry(entries, k, j, -1.0)
    return entries


def _entry(entries, i, j, v):
    """Append one G entry unless a ground index drops it."""
    if i >= 0 and j >= 0:
        entries.append((i, j, v))


def _badd_b(b, i, vals):
    """Accumulate ``vals`` into column ``i`` of the RHS stack."""
    if i >= 0:
        b[:, i] += vals


# ---------------------------------------------------------------------------
# Per-device-position batch handlers
# ---------------------------------------------------------------------------

class _BatchDevice:
    """Vectorized stamp recipe for one device position across a batch.

    ``column`` holds the B per-instance device objects of this
    position.  Matrix-slot indices are shared (validated by the batch);
    values are (B,) vectors.  Entry *order* inside every hook replays
    the corresponding scalar ``stamp_*`` method exactly, so per-entry
    accumulation rounds identically.
    """

    nonlinear = False
    reactive = False

    def __init__(self, column):
        self.column = column
        proto = column[0]
        self.nodes = proto.nodes
        self.aux = proto.aux

    def _gather(self, attr):
        """(B,) array of one float attribute across the column."""
        return np.array([getattr(d, attr) for d in self.column],
                        dtype=float)

    # -- cached G-side entries (values fixed at compile time) ----------
    def static_entries(self):
        """``[(i, j, values)]`` mirroring ``stamp_static``."""
        return ()

    def reactive_entries(self):
        """``[(i, j, coef)]`` with ``G[i, j] += omega * coef`` per freq."""
        return ()

    def tran_G_entries(self, dt, trap):
        """``[(i, j, values)]`` mirroring ``stamp_tran_G``."""
        return ()

    # -- b-side rows (values read fresh per call) ----------------------
    def dc_b_rows(self, idx):
        """``[(row, values)]`` mirroring ``stamp_dc``."""
        return ()

    def ac_b_rows(self, idx):
        """``[(row, values)]`` mirroring the non-reactive ``stamp_ac``."""
        return ()

    def tran_b_rows(self, t, state, idx):
        """``[(row, values)]`` mirroring ``stamp_tran_b``."""
        return ()

    # -- state-dependent stamps ----------------------------------------
    def ac_linearized(self, G, x_op, idx):
        """Add the small-signal conductances at the operating point."""

    def stamp_nonlinear(self, G, b, x, idx):
        """Add the Newton companion stamps at candidate solution ``x``."""

    # -- reactive integration state ------------------------------------
    def init_state(self, x, idx):
        """Vectorized ``init_state`` over the (already sliced) batch."""
        return None

    def prepare_step(self, state, dt, trap, idx):
        """Vectorized ``prepare_step`` (companion history values)."""

    def update_state(self, state, x, dt, trap, idx):
        """Vectorized ``update_state`` after a converged step."""


class _BatchResistor(_BatchDevice):
    def __init__(self, column):
        super().__init__(column)
        self.g = 1.0 / self._gather("resistance")

    def static_entries(self):
        i, j = self.nodes
        return _pattern4(i, j, self.g)


class _BatchCapacitor(_BatchDevice):
    reactive = True

    def __init__(self, column):
        super().__init__(column)
        self.c = self._gather("capacitance")

    def _geq(self, dt, trap):
        factor = 2.0 if trap else 1.0
        return factor * self.c / dt

    def reactive_entries(self):
        i, j = self.nodes
        return _pattern4(i, j, 1j * self.c)

    def tran_G_entries(self, dt, trap):
        i, j = self.nodes
        return _pattern4(i, j, self._geq(dt, trap))

    def _voltage(self, x):
        i, j = self.nodes
        return _vcol(x, i) - _vcol(x, j)

    def init_state(self, x, idx):
        m = x.shape[0]
        return {"v": self._voltage(x), "i": np.zeros(m),
                "ieq": np.zeros(m)}

    def prepare_step(self, state, dt, trap, idx):
        g = self._geq(dt, trap)[idx]
        if trap:
            state["ieq"] = g * state["v"] + state["i"]
        else:
            state["ieq"] = g * state["v"]

    def tran_b_rows(self, t, state, idx):
        i, j = self.nodes
        rows = []
        if i >= 0:
            rows.append((i, state["ieq"]))
        if j >= 0:
            rows.append((j, -state["ieq"]))
        return rows

    def update_state(self, state, x, dt, trap, idx):
        v_new = self._voltage(x)
        g = self._geq(dt, trap)[idx]
        state["i"] = g * v_new - state["ieq"]
        state["v"] = v_new


class _BatchInductor(_BatchDevice):
    reactive = True

    def __init__(self, column):
        super().__init__(column)
        self.l = self._gather("inductance")

    def _req(self, dt, trap):
        factor = 2.0 if trap else 1.0
        return factor * self.l / dt

    def static_entries(self):
        i, j = self.nodes
        return _aux_incidence(i, j, self.aux)

    def reactive_entries(self):
        return [(self.aux, self.aux, -1j * self.l)]

    def tran_G_entries(self, dt, trap):
        return [(self.aux, self.aux, -self._req(dt, trap))]

    def _voltage(self, x):
        i, j = self.nodes
        return _vcol(x, i) - _vcol(x, j)

    def init_state(self, x, idx):
        m = x.shape[0]
        return {"i": x[:, self.aux].copy(), "v": self._voltage(x),
                "veq": np.zeros(m)}

    def prepare_step(self, state, dt, trap, idx):
        req = self._req(dt, trap)[idx]
        if trap:
            state["veq"] = req * state["i"] + state["v"]
        else:
            state["veq"] = req * state["i"]

    def tran_b_rows(self, t, state, idx):
        return [(self.aux, -state["veq"])]

    def update_state(self, state, x, dt, trap, idx):
        state["i"] = x[:, self.aux].copy()
        state["v"] = self._voltage(x)


class _BatchVoltageSource(_BatchDevice):
    def static_entries(self):
        i, j = self.nodes
        return _aux_incidence(i, j, self.aux)

    def dc_b_rows(self, idx):
        vals = np.array([self.column[k].wave.dc for k in idx])
        return [(self.aux, vals)]

    def ac_b_rows(self, idx):
        vals = np.array([self.column[k].ac for k in idx])
        return [(self.aux, vals)]

    def tran_b_rows(self, t, state, idx):
        vals = np.array([self.column[k].wave.at(t) for k in idx])
        return [(self.aux, vals)]


class _BatchCurrentSource(_BatchDevice):
    def _value_rows(self, vals):
        i, j = self.nodes
        rows = []
        if i >= 0:
            rows.append((i, -vals))
        if j >= 0:
            rows.append((j, vals))
        return rows

    def dc_b_rows(self, idx):
        return self._value_rows(
            np.array([self.column[k].wave.dc for k in idx]))

    def ac_b_rows(self, idx):
        # The scalar stamp skips ac == 0 sources; adding the signed
        # zeros unconditionally is numerically identical.
        return self._value_rows(
            np.array([self.column[k].ac for k in idx]))

    def tran_b_rows(self, t, state, idx):
        return self._value_rows(
            np.array([self.column[k].wave.at(t) for k in idx]))


class _BatchVcvs(_BatchDevice):
    def __init__(self, column):
        super().__init__(column)
        self.gain = self._gather("gain")

    def static_entries(self):
        i, j, ci, cj = self.nodes
        k = self.aux
        entries = _aux_incidence(i, j, k)
        _entry(entries, k, ci, -self.gain)
        _entry(entries, k, cj, self.gain)
        return entries


class _BatchVccs(_BatchDevice):
    def __init__(self, column):
        super().__init__(column)
        self.gm = self._gather("gm")

    def static_entries(self):
        i, j, ci, cj = self.nodes
        g = self.gm
        entries = []
        _entry(entries, i, ci, g)
        _entry(entries, i, cj, -g)
        _entry(entries, j, ci, -g)
        _entry(entries, j, cj, g)
        return entries


class _BatchDiode(_BatchDevice):
    nonlinear = True

    def __init__(self, column):
        super().__init__(column)
        self.isat = self._gather("isat")
        self.nvt = self._gather("nvt")
        self.vcrit = self._gather("vcrit")

    def _vd(self, x):
        i, j = self.nodes
        return _vcol(x, i) - _vcol(x, j)

    def _conductance(self, x, idx):
        isat = self.isat[idx]
        nvt = self.nvt[idx]
        vd = np.minimum(self._vd(x), self.vcrit[idx] + 5.0 * nvt)
        # np.exp may differ from math.exp in the last ulp: diode
        # batches are ~1e-15-relative to scalar, not bit-identical.
        e = np.exp(np.minimum(vd / nvt, 80.0))
        idd = isat * (e - 1.0)
        gd = isat * e / nvt + dev.GMIN
        return vd, idd, gd

    def _stamp_g(self, G, gd):
        i, j = self.nodes
        for (r, c, v) in _pattern4(i, j, gd):
            G[:, r, c] += v

    def stamp_nonlinear(self, G, b, x, idx):
        vd, idd, gd = self._conductance(x, idx)
        ieq = idd - gd * vd
        self._stamp_g(G, gd)
        i, j = self.nodes
        _badd_b(b, i, -ieq)
        _badd_b(b, j, ieq)

    def ac_linearized(self, G, x_op, idx):
        _, _, gd = self._conductance(x_op, idx)
        self._stamp_g(G, gd)


class _BatchMosfet(_BatchDevice):
    nonlinear = True

    def __init__(self, column):
        super().__init__(column)
        self.sign = np.array(
            [1.0 if d.kind == "n" else -1.0 for d in column])
        self.beta = self._gather("beta")
        self.vth = self._gather("vth")
        self.lam = self._gather("lam")

    def _terminal_voltages(self, x):
        d, g, s = self.nodes
        return _vcol(x, d), _vcol(x, g), _vcol(x, s)

    def evaluate(self, x, idx):
        """Vectorized :meth:`Mosfet.evaluate`, branch for branch.

        Every arithmetic expression keeps the scalar association order,
        and the region/polarity branches become masks, so each lane
        rounds exactly as the scalar device would.
        """
        sign = self.sign[idx]
        beta = self.beta[idx]
        vth = self.vth[idx]
        lam = self.lam[idx]
        vd, vg, vs = self._terminal_voltages(x)
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        swapped = vds < 0.0
        vgs = np.where(swapped, vgs - vds, vgs)
        vds = np.where(swapped, -vds, vds)
        vov = vgs - vth
        clm = 1.0 + lam * vds
        half = vov * vds - 0.5 * vds * vds
        idn_tri = beta * half * clm
        gm_tri = beta * vds * clm
        gds_tri = beta * (vov - vds) * clm + beta * half * lam
        idn_sat = 0.5 * beta * vov * vov * clm
        gm_sat = beta * vov * clm
        gds_sat = 0.5 * beta * vov * vov * lam
        triode = vds < vov
        idn = np.where(triode, idn_tri, idn_sat)
        gm = np.where(triode, gm_tri, gm_sat)
        gds = np.where(triode, gds_tri, gds_sat)
        cutoff = vov <= 0.0
        idn = np.where(cutoff, 0.0, idn)
        gm = np.where(cutoff, 0.0, gm)
        gds = np.where(cutoff, dev.GMIN, gds)
        idn = np.where(swapped, -idn, idn)
        gds = np.where(swapped, gds + gm, gds)
        gm = np.where(swapped, -gm, gm)
        return sign * idn, gm, gds + dev.GMIN

    def _stamp_g(self, G, gm, gds):
        d, g, s = self.nodes
        entries = []
        _entry(entries, d, g, gm)
        _entry(entries, d, d, gds)
        _entry(entries, d, s, -(gm + gds))
        _entry(entries, s, g, -gm)
        _entry(entries, s, d, -gds)
        _entry(entries, s, s, gm + gds)
        for (r, c, v) in entries:
            G[:, r, c] += v

    def stamp_nonlinear(self, G, b, x, idx):
        d, g, s = self.nodes
        vd, vg, vs = self._terminal_voltages(x)
        idd, gm, gds = self.evaluate(x, idx)
        vgs = vg - vs
        vds = vd - vs
        ieq = idd - gm * vgs - gds * vds
        self._stamp_g(G, gm, gds)
        _badd_b(b, d, -ieq)
        _badd_b(b, s, ieq)

    def ac_linearized(self, G, x_op, idx):
        _, gm, gds = self.evaluate(x_op, idx)
        self._stamp_g(G, gm, gds)


#: Exact-type handler registry.  Subclasses are rejected on purpose: a
#: subclass that overrides stamp behaviour would silently break the
#: scalar/batched parity contract.
_HANDLERS = {
    dev.Resistor: _BatchResistor,
    dev.Capacitor: _BatchCapacitor,
    dev.Inductor: _BatchInductor,
    dev.VoltageSource: _BatchVoltageSource,
    dev.CurrentSource: _BatchCurrentSource,
    dev.Vcvs: _BatchVcvs,
    dev.Vccs: _BatchVccs,
    dev.Diode: _BatchDiode,
    dev.Mosfet: _BatchMosfet,
}


# ---------------------------------------------------------------------------
# Batched analysis results
# ---------------------------------------------------------------------------

class _BatchResult:
    """Shared per-instance bookkeeping of a batched analysis.

    ``errors[k]`` carries the per-instance exception (``None`` on
    success or when the instance was outside the requested active set);
    ``ok`` is True exactly where a solution was produced.
    """

    def __init__(self, batch, errors, solved):
        self._batch = batch
        self.errors = errors
        self.ok = solved

    def _node_index(self, node):
        return self._batch.node_index(node)

    def _aux_index(self, device_name, kind):
        aux = self._batch.aux_index(device_name)
        if aux is None:
            raise kind(
                "device {!r} has no branch-current unknown".format(
                    device_name))
        return aux


class BatchDCResult(_BatchResult):
    """Stacked DC operating points: ``x`` is ``(B, n_unknowns)``.

    Rows of failed (or inactive) instances are NaN; per-instance
    failures are in :attr:`errors`.
    """

    def __init__(self, batch, x, iterations, errors, solved):
        super().__init__(batch, errors, solved)
        self.x = x
        self.iterations = iterations

    def v(self, node):
        """(B,) node voltages (zeros for ground)."""
        idx = self._node_index(node)
        if idx < 0:
            return np.zeros(self.x.shape[0])
        return self.x[:, idx]

    def branch_current(self, device_name):
        """(B,) branch currents of an aux-carrying device."""
        return self.x[:, self._aux_index(device_name, ConvergenceError)]

    def __repr__(self):
        return "BatchDCResult(B={}, n={}, solved={})".format(
            self.x.shape[0], self.x.shape[1], int(np.sum(self.ok)))


class BatchACResult(_BatchResult):
    """Stacked AC sweeps: complex ``(B, n_freqs, n_unknowns)``."""

    def __init__(self, batch, freqs, X, errors, solved):
        super().__init__(batch, errors, solved)
        self.freqs = freqs
        self._X = X

    def v(self, node):
        """(B, n_freqs) complex voltage phasors for ``node``."""
        idx = self._node_index(node)
        if idx < 0:
            return np.zeros(self._X.shape[:2], dtype=complex)
        return self._X[:, :, idx]

    def branch_current(self, device_name):
        """(B, n_freqs) complex branch-current phasors."""
        return self._X[:, :, self._aux_index(device_name, AnalysisError)]

    def __repr__(self):
        return "BatchACResult(B={}, {} frequencies)".format(
            self._X.shape[0], len(self.freqs))


class BatchTransientResult(_BatchResult):
    """Stacked transient waveforms: ``(B, n_points, n_unknowns)``."""

    def __init__(self, batch, t, X, errors, solved):
        super().__init__(batch, errors, solved)
        self.t = t
        self._X = X

    def v(self, node):
        """(B, n_points) waveforms of the voltage at ``node``."""
        idx = self._node_index(node)
        if idx < 0:
            return np.zeros(self._X.shape[:2])
        return self._X[:, :, idx]

    def branch_current(self, device_name):
        """(B, n_points) branch-current waveforms."""
        return self._X[:, :, self._aux_index(device_name,
                                             ConvergenceError)]

    def __repr__(self):
        return "BatchTransientResult(B={}, {} points)".format(
            self._X.shape[0], len(self.t))


# ---------------------------------------------------------------------------
# The batch itself
# ---------------------------------------------------------------------------

class CircuitBatch:
    """A population of identically-structured circuits, solved stacked.

    Parameters
    ----------
    circuits:
        Sequence of compiled-compatible
        :class:`~repro.circuit.netlist.Circuit` objects: same device
        count, and per position the same device *type*, name, node
        bindings and auxiliary index.  Device values may differ freely.

    Raises
    ------
    CircuitError
        On an empty batch, mismatched topology, or a device type the
        batched kernel has no vectorized stamp recipe for.
    """

    def __init__(self, circuits):
        self._circuits = list(circuits)
        if not self._circuits:
            raise CircuitError("CircuitBatch needs at least one circuit")
        for circuit in self._circuits:
            circuit.compile()
        proto = self._circuits[0]
        self._proto = proto
        self.n_unknowns = proto.n_unknowns
        self.n_nodes = proto.n_nodes
        self.size = len(self._circuits)
        self._validate_topology()
        self._handlers: list = []
        for position in range(len(proto.devices)):
            column = [c.devices[position] for c in self._circuits]
            handler_type = _HANDLERS.get(type(column[0]))
            if handler_type is None:
                raise CircuitError(
                    "batched simulation has no stamp recipe for "
                    "device type {!r} ({!r})".format(
                        type(column[0]).__name__, column[0].name))
            self._handlers.append(handler_type(column))
        self._nonlinear = [h for h in self._handlers if h.nonlinear]
        self._reactive = [h for h in self._handlers if h.reactive]
        # Reactive entry list (omega-linear coefficients), flattened in
        # the same order the scalar per-frequency loop stamps.
        self._reactive_entries: list = []
        for handler in self._reactive:
            self._reactive_entries.extend(handler.reactive_entries())

    def _validate_topology(self):
        proto = self._proto
        for circuit in self._circuits[1:]:
            if (circuit.n_unknowns != proto.n_unknowns
                    or len(circuit.devices) != len(proto.devices)):
                raise CircuitError(
                    "circuit {!r} does not share the batch topology of "
                    "{!r}".format(circuit.title, proto.title))
            for mine, theirs in zip(proto.devices, circuit.devices):
                if (type(mine) is not type(theirs)
                        or mine.name != theirs.name
                        or mine.nodes != theirs.nodes
                        or mine.aux != theirs.aux):
                    raise CircuitError(
                        "device {!r} of circuit {!r} does not match "
                        "the batch topology (got {!r})".format(
                            mine.name, circuit.title, theirs.name))

    # -- index helpers -----------------------------------------------------
    def circuit(self, k):
        """The ``k``-th member circuit."""
        return self._circuits[k]

    def node_index(self, node):
        """Matrix index of ``node`` (-1 for ground)."""
        if not self._proto.has_node(node):
            raise CircuitError(
                "no node named {!r} in batch topology {!r}".format(
                    node, self._proto.title))
        return self._proto.node_id(node)

    def aux_index(self, device_name):
        """Auxiliary unknown index of a device (None when it has none)."""
        return self._proto.device(device_name).aux

    def _resolve_active(self, active):
        if active is None:
            return np.arange(self.size)
        active = np.asarray(active)
        if active.dtype == bool:
            return np.flatnonzero(active)
        return active.astype(int)

    # -- stacked assembly --------------------------------------------------
    def _assemble_static(self, idx):
        """Stacked DC assembly, replaying ``dc._assemble_static``."""
        m = idx.size
        n = self.n_unknowns
        G = np.zeros((m, n, n))
        b = np.zeros((m, n))
        for handler in self._handlers:
            for (i, j, vals) in handler.static_entries():
                G[:, i, j] += _take(vals, idx)
            for (i, vals) in handler.dc_b_rows(idx):
                b[:, i] += vals
        return G, b

    def _assemble_ac(self, x_op, idx):
        """Stacked AC base assembly, replaying ``ac.solve_ac``."""
        m = idx.size
        n = self.n_unknowns
        G = np.zeros((m, n, n), dtype=complex)
        b = np.zeros((m, n), dtype=complex)
        x_sub = x_op[idx]
        for handler in self._handlers:
            for (i, j, vals) in handler.static_entries():
                G[:, i, j] += _take(vals, idx)
            handler.ac_linearized(G, x_sub, idx)
        for handler in self._handlers:
            if not handler.reactive:
                for (i, vals) in handler.ac_b_rows(idx):
                    b[:, i] += vals
        return G, b

    def _assemble_tran_G(self, dt, trap, idx):
        """Stacked companion assembly, replaying ``_assemble_tran_static``."""
        m = idx.size
        n = self.n_unknowns
        G = np.zeros((m, n, n))
        for handler in self._handlers:
            for (i, j, vals) in handler.static_entries():
                G[:, i, j] += _take(vals, idx)
        for handler in self._reactive:
            for (i, j, vals) in handler.tran_G_entries(dt, trap):
                G[:, i, j] += _take(vals, idx)
        return G

    def _assemble_tran_b(self, t, states, idx):
        """Stacked per-step RHS, replaying ``transient._build_b``."""
        m = idx.size
        b = np.zeros((m, self.n_unknowns))
        reactive_pos = 0
        for handler in self._handlers:
            state = None
            if handler.reactive:
                state = states[reactive_pos]
                reactive_pos += 1
            for (i, vals) in handler.tran_b_rows(t, state, idx):
                b[:, i] += vals
        return b

    def _stamp_nonlinear(self, G, b, x, idx):
        """Stacked Newton companion stamps, in scalar device order."""
        for handler in self._nonlinear:
            handler.stamp_nonlinear(G, b, x, idx)

    # -- masked batched Newton ---------------------------------------------
    def _newton_masked(self, G0, b0, x0, idx, max_step, vtol, max_iter):
        """Newton-Raphson over a stack with per-instance convergence.

        ``idx`` maps local stack positions to batch positions (for the
        per-instance parameter slices of the nonlinear stamps).
        Returns ``(x, iterations, failed)`` where ``failed`` lists the
        *local* positions that went singular or hit the iteration limit
        -- the caller demotes those to the scalar path.
        """
        m = x0.shape[0]
        n_nodes = self.n_nodes
        x = x0.copy()
        iterations = np.zeros(m, dtype=int)
        active = np.arange(m)
        singular: list = []
        for iteration in range(1, max_iter + 1):
            if active.size == 0:
                break
            # Advanced indexing already yields fresh arrays, so the
            # nonlinear stamps below can write into them directly.
            G = G0[active]
            b = b0[active]
            self._stamp_nonlinear(G, b, x[active], idx[active])
            try:
                x_new = np.linalg.solve(G, b[..., None])[..., 0]
            except np.linalg.LinAlgError:
                # Identify the singular instances individually; the
                # per-matrix gesv results are bit-identical to the
                # stacked call for the healthy ones.
                x_new = np.empty_like(x[active])
                bad = []
                for pos in range(active.size):
                    try:
                        x_new[pos] = np.linalg.solve(
                            G[pos], b[pos, :, None])[:, 0]
                    except np.linalg.LinAlgError:
                        bad.append(pos)
                if bad:
                    singular.extend(int(p) for p in active[bad])
                    keep = np.ones(active.size, dtype=bool)
                    keep[bad] = False
                    active = active[keep]
                    x_new = x_new[keep]
                    if active.size == 0:
                        break
            delta = x_new - x[active]
            dv = delta[:, :n_nodes]
            np.clip(dv, -max_step, max_step, out=dv)
            x[active] = x[active] + delta
            iterations[active] = iteration
            converged = np.max(np.abs(dv), axis=1, initial=0.0) < vtol
            active = active[~converged]
        failed = sorted(set(int(a) for a in active) | set(singular))
        return x, iterations, failed

    # -- analyses ----------------------------------------------------------
    def solve_dc(self, active=None, max_iter=_dc.MAX_ITER, vtol=_dc.VTOL,
                 use_homotopy=True):
        """Stacked DC operating points (masked Newton, scalar demotion).

        Equivalent to :func:`repro.circuit.dc.solve_dc` per instance
        (bit for bit; see the module parity contract).  Instances whose
        plain batched Newton fails re-run individually through the
        scalar solver's homotopy fallbacks; instances that still fail
        land in ``errors`` instead of raising.
        """
        idx = self._resolve_active(active)
        n = self.n_unknowns
        G0, b0 = self._assemble_static(idx)
        x0 = np.zeros((idx.size, n))
        x, iters, failed = self._newton_masked(
            G0, b0, x0, idx, _dc.MAX_STEP, vtol, max_iter)

        X = np.full((self.size, n), np.nan)
        iterations = np.zeros(self.size, dtype=int)
        errors: list = [None] * self.size
        solved = np.zeros(self.size, dtype=bool)
        X[idx] = x
        iterations[idx] = iters
        solved[idx] = True
        for local in failed:
            k = int(idx[local])
            solved[k] = False
            X[k] = np.nan
            try:
                res = _dc.solve_dc(self._circuits[k], max_iter=max_iter,
                                   vtol=vtol, use_homotopy=use_homotopy)
            except ConvergenceError as exc:
                errors[k] = exc
                continue
            X[k] = res.x
            iterations[k] = res.iterations
            solved[k] = True
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("repro_circuit_batch_solves_total", 1,
                        analysis="dc")
            tel.counter("repro_circuit_newton_iterations_total",
                        int(np.sum(iters)), analysis="dc")
            if failed:
                tel.counter("repro_circuit_demotions_total",
                            len(failed), analysis="dc")
        return BatchDCResult(self, X, iterations, errors, solved)

    def solve_ac(self, freqs, x_op, active=None):
        """Stacked AC sweeps linearized at the operating points ``x_op``.

        ``x_op`` is the ``(B, n)`` stack from :meth:`solve_dc` (rows of
        inactive instances are ignored; an active instance whose row
        is non-finite -- its DC solve failed -- gets an
        :class:`AnalysisError` entry instead of silently solving a NaN
        system).  All instance x frequency
        systems are solved through stacked LAPACK calls in
        memory-bounded chunks; a singular instance is dropped from the
        stack with the scalar error recorded, never failing its peers.
        """
        freqs = np.asarray(list(freqs), dtype=float)
        if freqs.size == 0:
            raise AnalysisError("AC analysis needs at least one frequency")
        if np.any(freqs <= 0):
            raise AnalysisError("AC analysis frequencies must be positive")
        idx = self._resolve_active(active)
        n = self.n_unknowns
        n_freqs = freqs.size

        X = np.full((self.size, n_freqs, n), np.nan, dtype=complex)
        errors: list = [None] * self.size
        solved = np.zeros(self.size, dtype=bool)

        # An instance without a finite operating point (its DC solve
        # failed) cannot be linearized: record the failure instead of
        # silently stamping NaNs (LAPACK does not flag NaN systems).
        finite = np.all(np.isfinite(x_op[idx]), axis=1)
        for pos in np.flatnonzero(~finite):
            k = int(idx[pos])
            errors[k] = AnalysisError(
                "no finite operating point for {!r}; its DC solve "
                "failed".format(self._circuits[k].title))
        idx = idx[finite]

        work = idx.copy()
        G_base, b = self._assemble_ac(x_op, work)
        coefs = [(i, j, _take(vals, work))
                 for (i, j, vals) in self._reactive_entries]

        block = max(1, AC_CHUNK_ENTRIES // max(1, work.size * n * n))
        n_chunks = 0
        n_singular = 0
        start = 0
        while start < n_freqs and work.size:
            n_chunks += 1
            f_blk = freqs[start:start + block]
            omega = 2.0 * np.pi * f_blk
            m, nb = work.size, f_blk.size
            G = np.repeat(G_base[:, None], nb, axis=1)
            for (i, j, coef) in coefs:
                G[:, :, i, j] += omega[None, :] * coef[:, None]
            rhs = np.repeat(b[:, None], nb, axis=1)[..., None]
            try:
                sol = np.linalg.solve(
                    G.reshape(m * nb, n, n),
                    rhs.reshape(m * nb, n, 1))
                X[work, start:start + nb] = sol[..., 0].reshape(m, nb, n)
            except np.linalg.LinAlgError:
                bad = []
                for p in range(m):
                    for q in range(nb):
                        try:
                            X[work[p], start + q] = np.linalg.solve(
                                G[p, q], rhs[p, q])[:, 0]
                        except np.linalg.LinAlgError:
                            bad.append(p)
                            errors[int(work[p])] = AnalysisError(
                                "singular AC system at {:g} Hz in "
                                "{!r}".format(
                                    f_blk[q],
                                    self._circuits[int(work[p])].title))
                            X[int(work[p])] = np.nan
                            break
                if bad:
                    n_singular += len(bad)
                    keep = np.ones(m, dtype=bool)
                    keep[bad] = False
                    work = work[keep]
                    G_base = G_base[keep]
                    b = b[keep]
                    coefs = [(i, j, coef[keep])
                             for (i, j, coef) in coefs]
            start += block
        solved[work] = True
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("repro_circuit_batch_solves_total", 1,
                        analysis="ac")
            tel.counter("repro_circuit_ac_chunks_total", n_chunks)
            tel.gauge("repro_circuit_ac_chunk_freqs", block)
            if n_singular:
                tel.counter("repro_circuit_demotions_total",
                            n_singular, analysis="ac")
        return BatchACResult(self, freqs, X, errors, solved)

    def solve_transient(self, t_stop, dt, active=None, method="trap"):
        """Stacked fixed-step transient integration.

        Starts from the stacked DC operating point (like the scalar
        :func:`~repro.circuit.transient.solve_transient` with
        ``x0=None``), assembles the companion conductance stack once
        per (step size, integration method), and runs a masked batched
        Newton per step, warm-started from the previous step.  An
        instance that fails a step is demoted: its whole run is redone
        through the scalar path (including the local step-halving
        retries the scalar integrator applies).
        """
        if method not in ("trap", "be"):
            raise ConvergenceError(
                "unknown integration method {!r}".format(method))
        idx = self._resolve_active(active)
        n = self.n_unknowns
        n_steps = int(round(t_stop / dt))
        t_grid = np.linspace(0.0, n_steps * dt, n_steps + 1)

        X = np.full((self.size, n_steps + 1, n), np.nan)
        solved = np.zeros(self.size, dtype=bool)

        dc = self.solve_dc(active=idx)
        errors: list = list(dc.errors)
        work = np.array([k for k in idx if dc.errors[k] is None],
                        dtype=int)
        demoted = []

        x = dc.x[work]
        X[work, 0] = x
        states = [h.init_state(x, work) for h in self._reactive]
        G_be = self._assemble_tran_G(dt, False, work)
        G_main = (self._assemble_tran_G(dt, True, work)
                  if method != "be" else G_be)

        newton_iters = 0
        for k in range(1, n_steps + 1):
            if work.size == 0:
                break
            t_new = t_grid[k]
            trap_step = (k != 1 and method == "trap")
            G_static = G_main if trap_step else G_be
            for handler, state in zip(self._reactive, states):
                handler.prepare_step(state, dt, trap_step, work)
            b_step = self._assemble_tran_b(t_new, states, work)
            x_new, step_iters, failed = self._newton_masked(
                G_static, b_step, x, work, TRAN_MAX_STEP,
                _tran.VTOL, _tran.MAX_ITER)
            newton_iters += int(np.sum(step_iters))
            if failed:
                demoted.extend(int(work[p]) for p in failed)
                keep = np.ones(work.size, dtype=bool)
                keep[failed] = False
                work = work[keep]
                x_new = x_new[keep]
                same = G_main is G_be
                G_be = G_be[keep]
                G_main = G_be if same else G_main[keep]
                states = [{key: val[keep] for key, val in state.items()}
                          for state in states]
                if work.size == 0:
                    break
            x = x_new
            for handler, state in zip(self._reactive, states):
                handler.update_state(state, x, dt, trap_step, work)
            X[work, k] = x
        solved[work] = True

        for k in demoted:
            try:
                res = _tran.solve_transient(
                    self._circuits[k], t_stop, dt, method=method)
            except ConvergenceError as exc:
                errors[k] = exc
                X[k] = np.nan
                continue
            X[k] = res._X
            solved[k] = True
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("repro_circuit_batch_solves_total", 1,
                        analysis="tran")
            tel.counter("repro_circuit_newton_iterations_total",
                        newton_iters, analysis="tran")
            if demoted:
                tel.counter("repro_circuit_demotions_total",
                            len(demoted), analysis="tran")
        return BatchTransientResult(self, t_grid, X, errors, solved)

    def __repr__(self):
        return "CircuitBatch({!r}, B={}, n={})".format(
            self._proto.title, self.size, self.n_unknowns)


def solve_dc_batch(circuits, **kwargs):
    """One-shot stacked DC solve; see :meth:`CircuitBatch.solve_dc`."""
    return CircuitBatch(circuits).solve_dc(**kwargs)


def solve_ac_batch(circuits, freqs, x_op, **kwargs):
    """One-shot stacked AC sweep; see :meth:`CircuitBatch.solve_ac`."""
    return CircuitBatch(circuits).solve_ac(freqs, x_op, **kwargs)


def solve_transient_batch(circuits, t_stop, dt, **kwargs):
    """One-shot stacked transient; see :meth:`CircuitBatch.solve_transient`."""
    return CircuitBatch(circuits).solve_transient(t_stop, dt, **kwargs)
