"""Transient (time-domain) analysis with companion-model integration.

Reactive devices are replaced by their trapezoidal (default) or
backward-Euler companion models; nonlinear devices are iterated with
Newton-Raphson at every time step.  The step size is fixed, with an
automatic local halving retry when a step fails to converge (the step
is re-integrated as several sub-steps so the output grid is preserved).
"""

import numpy as np

from repro.errors import ConvergenceError

#: Newton tolerance on node voltages within a time step (V).
VTOL = 1e-7
#: Newton iteration limit per time step.
MAX_ITER = 60
#: Maximum number of local step-halving retries.
MAX_HALVINGS = 6


class TransientResult:
    """Time-domain waveforms for every node and auxiliary branch."""

    def __init__(self, circuit, t, X):
        self._circuit = circuit
        #: 1-D array of time points (s), including t=0.
        self.t = t
        self._X = X  # shape (n_points, n_unknowns)

    def v(self, node):
        """Waveform array of the voltage at ``node``."""
        idx = self._circuit.node_id(node)
        if idx < 0:
            return np.zeros_like(self.t)
        return self._X[:, idx]

    def branch_current(self, device_name):
        """Waveform array of the branch current through an aux device."""
        device = self._circuit.device(device_name)
        if device.aux is None:
            raise ConvergenceError(
                "device {!r} has no branch-current unknown".format(device_name))
        return self._X[:, device.aux]

    def __repr__(self):
        return "TransientResult({} points, t_end={:g}s)".format(
            len(self.t), self.t[-1] if len(self.t) else 0.0)


def _newton_step(circuit, G_static, b_step, nonlinear, x_guess,
                 max_iter=MAX_ITER, vtol=VTOL):
    """Newton iteration for a single time step; returns the solution."""
    n_nodes = circuit.n_nodes
    x = x_guess.copy()
    for iteration in range(1, max_iter + 1):
        G = G_static.copy()
        b = b_step.copy()
        for device in nonlinear:
            device.stamp_nonlinear(G, b, x)
        try:
            x_new = np.linalg.solve(G, b)
        except np.linalg.LinAlgError:
            raise ConvergenceError(
                "singular transient system in {!r}".format(circuit.title),
                iterations=iteration)
        delta = x_new - x
        dv = delta[:n_nodes]
        np.clip(dv, -0.5, 0.5, out=dv)
        x = x + delta
        if np.max(np.abs(dv), initial=0.0) < vtol:
            return x
    raise ConvergenceError(
        "transient Newton iteration failed", iterations=max_iter)


def _assemble_tran_static(circuit, dt, method):
    """Static G for a given step size: resistive stamps + companions."""
    n = circuit.n_unknowns
    G = np.zeros((n, n))
    for device in circuit.devices:
        device.stamp_static(G)
    for device in circuit.devices:
        if device.reactive:
            device._method = method
            device.stamp_tran_G(G, dt)
    return G


def _build_b(circuit, reactive, t, dt, states):
    """Per-step right-hand side: sources at time ``t`` + history currents."""
    b = np.zeros(circuit.n_unknowns)
    for device in circuit.devices:
        device.stamp_tran_b(b, t, states.get(device.name))
    return b


def solve_transient(circuit, t_stop, dt, x0=None, method="trap",
                    record_nodes=None):
    """Integrate ``circuit`` from 0 to ``t_stop`` with fixed step ``dt``.

    Parameters
    ----------
    circuit:
        The circuit to integrate.  Time-varying sources follow their
        :class:`~repro.circuit.devices.Waveform` definitions.
    t_stop, dt:
        Total simulated time and the output step size (seconds).
    x0:
        Initial solution vector; defaults to the DC operating point at
        ``t = 0`` (sources evaluated at their DC values).
    method:
        ``"trap"`` (trapezoidal, default) or ``"be"`` (backward Euler).
        The very first step always uses backward Euler to avoid the
        trapezoidal start-up ringing artifact.
    record_nodes:
        Unused hook kept for API compatibility; all unknowns are
        recorded (the systems here are small).

    Returns
    -------
    TransientResult
    """
    from repro.circuit.dc import solve_dc  # local import: avoids a cycle

    circuit.compile()
    if method not in ("trap", "be"):
        raise ConvergenceError("unknown integration method {!r}".format(method))
    _, nonlinear, reactive_all = circuit.partition()
    reactive = tuple(reactive_all)

    if x0 is None:
        x = solve_dc(circuit).x
    else:
        x = np.asarray(x0, dtype=float).copy()

    states = {d.name: d.init_state(x) for d in reactive}

    n_steps = int(round(t_stop / dt))
    t_grid = np.linspace(0.0, n_steps * dt, n_steps + 1)
    X = np.empty((n_steps + 1, circuit.n_unknowns))
    X[0] = x

    # First step with backward Euler, then the requested method.
    G_be = _assemble_tran_static(circuit, dt, "be")
    G_main = (_assemble_tran_static(circuit, dt, method)
              if method != "be" else G_be)

    for k in range(1, n_steps + 1):
        t_new = t_grid[k]
        step_method = "be" if k == 1 else method
        G_static = G_be if step_method == "be" else G_main
        for device in reactive:
            device._method = step_method
            device.prepare_step(states[device.name], dt)
        b_step = _build_b(circuit, reactive, t_new, dt, states)
        try:
            x = _newton_step(circuit, G_static, b_step, nonlinear, x)
            for device in reactive:
                states[device.name] = device.update_state(
                    states[device.name], x, dt)
        except ConvergenceError:
            x = _substep(circuit, nonlinear, reactive, states, x,
                         t_grid[k - 1], dt, method)
        X[k] = x
    return TransientResult(circuit, t_grid, X)


def _substep(circuit, nonlinear, reactive, states, x, t_start, dt, method):
    """Re-integrate one output step as progressively finer sub-steps.

    Backward Euler is used for robustness at the reduced step size.
    States are advanced through the sub-steps so the caller can resume
    the nominal step size afterwards.
    """
    last_error = None
    for halving in range(1, MAX_HALVINGS + 1):
        n_sub = 2 ** halving
        h = dt / n_sub
        x_try = x.copy()
        saved = {name: dict(state) for name, state in states.items()}
        G_static = _assemble_tran_static(circuit, h, "be")
        try:
            for s in range(1, n_sub + 1):
                t_new = t_start + s * h
                for device in reactive:
                    device._method = "be"
                    device.prepare_step(saved[device.name], h)
                b_step = _build_b(circuit, reactive, t_new, h, saved)
                x_try = _newton_step(circuit, G_static, b_step, nonlinear,
                                     x_try)
                for device in reactive:
                    saved[device.name] = device.update_state(
                        saved[device.name], x_try, h)
            states.update(saved)
            # Restore the nominal integration method on the devices.
            for device in reactive:
                device._method = method
            return x_try
        except ConvergenceError as exc:
            last_error = exc
    raise ConvergenceError(
        "transient step at t={:g}s failed after {} halvings".format(
            t_start, MAX_HALVINGS)) from last_error
