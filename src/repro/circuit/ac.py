"""Small-signal AC (frequency-domain) analysis.

The circuit is linearized around a DC operating point: nonlinear
devices contribute their small-signal conductances (``gm``, ``gds``,
junction conductance) and reactive devices contribute ``j*omega``
admittances.  Independent sources contribute their AC amplitudes; the
DC values are irrelevant here because the analysis solves for
small-signal deviations.
"""

import numpy as np

from repro.errors import AnalysisError


class _StampRecorder:
    """Captures ``(index, value)`` pairs from a device stamp call.

    The stamping helpers write ``G[i, j] += value``; handing them this
    recorder instead of a matrix turns one stamp call into an explicit
    entry list that can be replayed cheaply (``0.0 + value`` is exact,
    so recorded values equal stamped values bit for bit).
    """

    def __init__(self):
        self.entries: list = []

    def __getitem__(self, key):
        return 0.0

    def __setitem__(self, key, value):
        self.entries.append((key, value))


def reactive_entry_list(circuit, reactive):
    """Hoisted per-frequency stamp entries of the reactive devices.

    Returns ``[((i, j), coef), ...]`` such that adding
    ``omega * coef`` at ``(i, j)`` -- in list order -- reproduces the
    per-frequency ``stamp_ac`` calls exactly: every built-in reactive
    admittance is linear in ``omega`` (``j*omega*C``, ``-j*omega*L``)
    and multiplying the unit-frequency coefficient by ``omega`` rounds
    identically to stamping at ``omega`` directly.  Non-linear-in-omega
    devices raise so the hoist can never silently change a result
    (:func:`solve_ac` catches this and falls back to per-frequency
    stamping; the batched kernel, which requires the hoist, rejects
    such devices at compile time).
    """
    unit = _StampRecorder()
    double = _StampRecorder()
    dummy_b = np.zeros(circuit.n_unknowns, dtype=complex)
    for device in reactive:
        device.stamp_ac(unit, dummy_b, 1.0)
        device.stamp_ac(double, dummy_b, 2.0)
    checked = [(key, 2.0 * coef) for key, coef in unit.entries]
    if checked != double.entries:
        raise AnalysisError(
            "reactive stamps of {!r} are not linear in omega; cannot "
            "hoist the AC assembly".format(circuit.title))
    return unit.entries


class ACResult:
    """Frequency sweep result: complex node voltages vs frequency."""

    def __init__(self, circuit, freqs, X):
        self._circuit = circuit
        #: Array of analysis frequencies in Hz.
        self.freqs = freqs
        self._X = X  # shape (n_freqs, n_unknowns), complex

    def v(self, node):
        """Complex voltage phasor array for ``node`` across the sweep."""
        idx = self._circuit.node_id(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self._X[:, idx]

    def branch_current(self, device_name):
        """Complex branch-current phasor array for an aux-carrying device."""
        device = self._circuit.device(device_name)
        if device.aux is None:
            raise AnalysisError(
                "device {!r} has no branch-current unknown".format(device_name))
        return self._X[:, device.aux]

    def transfer(self, out_node, in_node):
        """Complex transfer function ``V(out)/V(in)`` across the sweep."""
        vin = self.v(in_node)
        if np.any(vin == 0):
            raise AnalysisError(
                "input node {!r} has zero AC voltage; cannot form "
                "transfer function".format(in_node))
        return self.v(out_node) / vin

    def __repr__(self):
        return "ACResult({} frequencies)".format(len(self.freqs))


def solve_ac(circuit, freqs, op):
    """Run an AC sweep of ``circuit`` linearized at operating point ``op``.

    Parameters
    ----------
    circuit:
        The circuit to analyze.
    freqs:
        Iterable of analysis frequencies in Hz (must be positive).
    op:
        A :class:`~repro.circuit.dc.DCResult` from :func:`solve_dc` on
        the *same* circuit, providing the linearization point.

    Returns
    -------
    ACResult
    """
    circuit.compile()
    freqs = np.asarray(list(freqs), dtype=float)
    if freqs.size == 0:
        raise AnalysisError("AC analysis needs at least one frequency")
    if np.any(freqs <= 0):
        raise AnalysisError("AC analysis frequencies must be positive")

    n = circuit.n_unknowns
    linear, nonlinear, reactive = circuit.partition()

    # Frequency-independent part: static stamps + linearized devices.
    G_base = np.zeros((n, n), dtype=complex)
    b = np.zeros(n, dtype=complex)
    for device in circuit.devices:
        device.stamp_static(G_base)
        device.stamp_ac_linearized(G_base, op.x)
    # AC source amplitudes (right-hand side) are frequency independent.
    for device in circuit.devices:
        if not device.reactive:
            device.stamp_ac(G_base, b, 0.0)
    # Careful: non-reactive stamp_ac implementations only touch b.

    # Hoisted reactive stamps: the static assembly above and this entry
    # list are built once; the per-frequency loop only scales and adds.
    # A (user) reactive device that is not linear in omega keeps the
    # original per-frequency stamping loop instead.
    try:
        entries = reactive_entry_list(circuit, reactive)
    except AnalysisError:
        entries = None
    dummy_b = np.zeros(n, dtype=complex)

    X = np.empty((freqs.size, n), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        G = G_base.copy()
        if entries is None:
            for device in reactive:
                device.stamp_ac(G, dummy_b, omega)
        else:
            for (i, j), coef in entries:
                G[i, j] += omega * coef
        try:
            X[k] = np.linalg.solve(G, b)
        except np.linalg.LinAlgError:
            raise AnalysisError(
                "singular AC system at {:g} Hz in {!r}".format(
                    f, circuit.title)) from None
    return ACResult(circuit, freqs, X)
