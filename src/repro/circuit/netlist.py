"""Circuit (netlist) container for the MNA simulator.

A :class:`Circuit` owns a list of devices and the mapping from node
names to matrix indices.  The ground node may be written ``"0"`` or
``"gnd"`` and maps to index ``-1``, which the stamping helpers drop.

Devices can be added either pre-constructed via :meth:`Circuit.add` or
through the convenience factory methods (:meth:`Circuit.resistor`,
:meth:`Circuit.mosfet`, ...), which mirror SPICE element cards.
"""

from repro.circuit import devices as dev
from repro.errors import CircuitError

#: Node names that alias the ground (reference) node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "ground"})


class Circuit:
    """A mutable netlist plus node/auxiliary-index bookkeeping.

    Parameters
    ----------
    title:
        Free-form label used in reprs and error messages.
    """

    def __init__(self, title=""):
        self.title = str(title)
        self._devices = []
        self._by_name = {}
        self._node_ids = {}
        self._node_names = []
        self._compiled = False

    # -- node management ---------------------------------------------------
    def node_id(self, name):
        """Return (creating if needed) the matrix index for node ``name``."""
        name = str(name)
        if name in GROUND_NAMES:
            return -1
        if name not in self._node_ids:
            self._node_ids[name] = len(self._node_names)
            self._node_names.append(name)
        return self._node_ids[name]

    @property
    def n_nodes(self):
        """Number of non-ground nodes."""
        return len(self._node_names)

    @property
    def node_names(self):
        """Tuple of non-ground node names in index order."""
        return tuple(self._node_names)

    def has_node(self, name):
        """True when ``name`` is ground or a known circuit node."""
        return str(name) in GROUND_NAMES or str(name) in self._node_ids

    # -- device management ---------------------------------------------------
    def add(self, device):
        """Add a pre-constructed :class:`~repro.circuit.devices.Device`."""
        if device.name in self._by_name:
            raise CircuitError(
                "duplicate device name {!r} in circuit {!r}".format(
                    device.name, self.title))
        for node in device.node_names:
            self.node_id(node)
        self._devices.append(device)
        self._by_name[device.name] = device
        self._compiled = False
        return device

    def device(self, name):
        """Look up a device by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CircuitError(
                "no device named {!r} in circuit {!r}".format(
                    name, self.title)) from None

    @property
    def devices(self):
        """Tuple of devices in insertion order."""
        return tuple(self._devices)

    def __len__(self):
        return len(self._devices)

    def __contains__(self, name):
        return name in self._by_name

    def __repr__(self):
        return "Circuit({!r}, nodes={}, devices={})".format(
            self.title, self.n_nodes, len(self._devices))

    # -- compilation ---------------------------------------------------------
    def compile(self):
        """Bind node and auxiliary indices into every device.

        Idempotent; analyses call this automatically.  Returns ``self``
        for chaining.
        """
        if self._compiled:
            return self
        aux = self.n_nodes
        for device in self._devices:
            ids = tuple(self.node_id(n) for n in device.node_names)
            device.bind(ids, aux)
            aux += device.n_aux
        self._n_unknowns = aux
        self._compiled = True
        return self

    @property
    def n_unknowns(self):
        """Total MNA system size (nodes + auxiliary branch currents)."""
        self.compile()
        return self._n_unknowns

    def partition(self):
        """Return ``(linear, nonlinear, reactive)`` device tuples."""
        self.compile()
        linear = tuple(d for d in self._devices if not d.nonlinear)
        nonlinear = tuple(d for d in self._devices if d.nonlinear)
        reactive = tuple(d for d in self._devices if d.reactive)
        return linear, nonlinear, reactive

    # -- SPICE-like factory methods -------------------------------------------
    def resistor(self, name, n1, n2, resistance):
        """Add a resistor and return it."""
        return self.add(dev.Resistor(name, n1, n2, resistance))

    def capacitor(self, name, n1, n2, capacitance):
        """Add a capacitor and return it."""
        return self.add(dev.Capacitor(name, n1, n2, capacitance))

    def inductor(self, name, n1, n2, inductance):
        """Add an inductor and return it."""
        return self.add(dev.Inductor(name, n1, n2, inductance))

    def voltage_source(self, name, npos, nneg, dc=0.0, ac=0.0):
        """Add an independent voltage source and return it."""
        return self.add(dev.VoltageSource(name, npos, nneg, dc=dc, ac=ac))

    def current_source(self, name, npos, nneg, dc=0.0, ac=0.0):
        """Add an independent current source and return it."""
        return self.add(dev.CurrentSource(name, npos, nneg, dc=dc, ac=ac))

    def vcvs(self, name, npos, nneg, ncpos, ncneg, gain):
        """Add a voltage-controlled voltage source and return it."""
        return self.add(dev.Vcvs(name, npos, nneg, ncpos, ncneg, gain))

    def vccs(self, name, npos, nneg, ncpos, ncneg, gm):
        """Add a voltage-controlled current source and return it."""
        return self.add(dev.Vccs(name, npos, nneg, ncpos, ncneg, gm))

    def diode(self, name, npos, nneg, isat=1e-14, n=1.0):
        """Add a junction diode and return it."""
        return self.add(dev.Diode(name, npos, nneg, isat=isat, n=n))

    def mosfet(self, name, drain, gate, source, **params):
        """Add a level-1 MOSFET and return it (see :class:`Mosfet`)."""
        return self.add(dev.Mosfet(name, drain, gate, source, **params))
