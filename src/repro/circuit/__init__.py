"""A from-scratch analog circuit simulator based on modified nodal analysis.

This subpackage is the substrate that stands in for the commercial
simulator (Cadence Virtuoso Spectre) used in the paper.  It provides:

* a netlist container (:class:`~repro.circuit.netlist.Circuit`),
* linear and nonlinear device models
  (:mod:`repro.circuit.devices`: resistors, capacitors, inductors,
  independent and controlled sources, diodes, level-1 MOSFETs),
* a DC operating-point solver with Newton-Raphson iteration plus gmin
  and source stepping (:func:`~repro.circuit.dc.solve_dc`),
* small-signal AC analysis (:func:`~repro.circuit.ac.solve_ac`),
* transient analysis with trapezoidal or backward-Euler integration
  (:func:`~repro.circuit.transient.solve_transient`),
* waveform/spectrum measurement helpers (:mod:`repro.circuit.analysis`),
* a batched simulation kernel that stacks many same-topology instances
  into single LAPACK solves (:mod:`repro.circuit.batch`), the engine
  behind population-level Monte-Carlo generation.

Example -- a low-pass RC filter::

    from repro.circuit import Circuit, solve_ac, solve_dc
    import numpy as np

    ckt = Circuit("rc")
    ckt.voltage_source("Vin", "in", "0", dc=1.0, ac=1.0)
    ckt.resistor("R1", "in", "out", 1e3)
    ckt.capacitor("C1", "out", "0", 1e-6)
    op = solve_dc(ckt)
    ac = solve_ac(ckt, np.logspace(0, 5, 101), op)
    gain = np.abs(ac.v("out"))
"""

from repro.circuit.netlist import Circuit
from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.dc import solve_dc, DCResult
from repro.circuit.ac import solve_ac, ACResult
from repro.circuit.transient import solve_transient, TransientResult
from repro.circuit.sweep import sweep_dc, DCSweepResult
from repro.circuit.batch import (
    BatchACResult,
    BatchDCResult,
    BatchTransientResult,
    CircuitBatch,
    solve_ac_batch,
    solve_dc_batch,
    solve_transient_batch,
)

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Diode",
    "Mosfet",
    "Pulse",
    "Sine",
    "Pwl",
    "solve_dc",
    "solve_ac",
    "solve_transient",
    "DCResult",
    "ACResult",
    "TransientResult",
    "sweep_dc",
    "DCSweepResult",
    "CircuitBatch",
    "BatchDCResult",
    "BatchACResult",
    "BatchTransientResult",
    "solve_dc_batch",
    "solve_ac_batch",
    "solve_transient_batch",
]
