"""Device models for the MNA circuit simulator.

Stamping conventions
--------------------

The simulator solves ``G @ x = b`` where ``x`` stacks node voltages
followed by auxiliary branch currents (one per voltage-source-like
device).  KCL rows state that the sum of currents *leaving* a node
through devices equals the current *injected* into the node by
independent sources.  The ground node has index ``-1``; stamping helpers
silently drop ground rows/columns.

Every device implements a subset of the stamping hooks:

``stamp_static(G)``
    Constant, voltage-independent conductance pattern (resistors, the
    incidence pattern of sources, controlled-source gains).  Valid for
    DC, AC and transient alike.
``stamp_dc(G, b)``
    DC-only contributions: source DC values, inductor shorts.
``stamp_nonlinear(G, b, x)``
    Linearized companion model around the candidate solution ``x``
    (MOSFETs, diodes).  Called once per Newton-Raphson iteration.
``stamp_ac(G, b, omega)``
    Small-signal frequency-dependent stamps (capacitors, inductors, AC
    source amplitudes) into a complex system.
``stamp_ac_linearized(G, x_op)``
    Frequency-independent small-signal conductances of nonlinear
    devices evaluated at the operating point ``x_op``.
``stamp_tran_G(G, dt)`` / ``stamp_tran_b(b, t, state)``
    Companion-model conductance (fixed per time step size) and history
    current for reactive devices, plus time-varying source values.
``init_state(x)`` / ``update_state(state, x, dt)``
    Reactive-device history bookkeeping for the integration method.
"""

import math

import numpy as np

from repro.errors import CircuitError

#: Minimum conductance placed across nonlinear junctions to aid convergence.
GMIN = 1e-12

#: Thermal voltage at room temperature (V).
VT_ROOM = 0.02585


def _add(G, i, j, value):
    """Accumulate ``value`` into ``G[i, j]`` unless either index is ground."""
    if i >= 0 and j >= 0:
        G[i, j] += value


def _add_b(b, i, value):
    """Accumulate ``value`` into ``b[i]`` unless ``i`` is ground."""
    if i >= 0:
        b[i] += value


# ---------------------------------------------------------------------------
# Source waveforms
# ---------------------------------------------------------------------------

class Waveform:
    """Base class for time-dependent source values.

    Subclasses provide :attr:`dc` (the operating-point value) and
    :meth:`at` (the instantaneous transient value).
    """

    dc = 0.0

    def at(self, t):
        """Return the source value at time ``t`` (seconds)."""
        raise NotImplementedError


class Dc(Waveform):
    """A constant source value."""

    def __init__(self, value):
        self.dc = float(value)

    def at(self, t):
        return self.dc

    def __repr__(self):
        return "Dc({:g})".format(self.dc)


class Pulse(Waveform):
    """A SPICE-style pulse waveform.

    Parameters
    ----------
    v1, v2:
        Initial and pulsed values.
    delay:
        Time at which the first edge starts.
    rise, fall:
        Edge durations (must be positive to keep transient solves
        well-conditioned).
    width:
        Duration at ``v2`` between the edges.
    period:
        Repetition period; ``None`` means a single pulse.
    """

    def __init__(self, v1, v2, delay=0.0, rise=1e-9, fall=1e-9,
                 width=1.0, period=None):
        if rise <= 0 or fall <= 0:
            raise CircuitError("pulse rise/fall times must be positive")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = None if period is None else float(period)
        self.dc = self.v1

    def at(self, t):
        t = t - self.delay
        if self.period is not None and t > 0:
            t = t % self.period
        if t <= 0:
            return self.v1
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1


class Sine(Waveform):
    """A sinusoidal source ``offset + amplitude*sin(2*pi*freq*(t-delay))``."""

    def __init__(self, offset, amplitude, freq, delay=0.0, phase_deg=0.0):
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.delay = float(delay)
        self.phase = math.radians(phase_deg)
        self.dc = self.offset

    def at(self, t):
        if t < self.delay:
            return self.offset
        arg = 2.0 * math.pi * self.freq * (t - self.delay) + self.phase
        return self.offset + self.amplitude * math.sin(arg)


class Pwl(Waveform):
    """A piecewise-linear waveform defined by ``(times, values)`` points."""

    def __init__(self, times, values):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape or times.size < 2:
            raise CircuitError("PWL needs matching 1-D times/values, >=2 points")
        if np.any(np.diff(times) <= 0):
            raise CircuitError("PWL times must be strictly increasing")
        self.times = times
        self.values = values
        self.dc = float(values[0])

    def at(self, t):
        return float(np.interp(t, self.times, self.values))


def _as_waveform(value):
    """Coerce a number or :class:`Waveform` into a :class:`Waveform`."""
    if isinstance(value, Waveform):
        return value
    return Dc(float(value))


# ---------------------------------------------------------------------------
# Device base class
# ---------------------------------------------------------------------------

class Device:
    """Common bookkeeping for every circuit element.

    Subclasses set :attr:`n_aux` (number of auxiliary branch-current
    unknowns) and :attr:`nonlinear`/:attr:`reactive` class flags, then
    implement the relevant stamping hooks documented in the module
    docstring.
    """

    n_aux = 0
    nonlinear = False
    reactive = False

    def __init__(self, name, node_names):
        self.name = str(name)
        self.node_names = tuple(str(n) for n in node_names)
        self.nodes = None          # integer node ids, bound by the circuit
        self.aux = None            # first auxiliary unknown index, if any

    def bind(self, node_ids, aux_base):
        """Attach resolved node indices and the auxiliary index base."""
        self.nodes = tuple(node_ids)
        self.aux = aux_base if self.n_aux else None

    # Default no-op hooks -------------------------------------------------
    def stamp_static(self, G):
        """Stamp voltage- and frequency-independent conductances."""

    def stamp_dc(self, G, b):
        """Stamp DC-only contributions (source values, inductor shorts)."""

    def stamp_nonlinear(self, G, b, x):
        """Stamp the linearized companion model at candidate solution ``x``."""

    def stamp_ac(self, G, b, omega):
        """Stamp frequency-dependent small-signal contributions."""

    def stamp_ac_linearized(self, G, x_op):
        """Stamp small-signal conductances at the DC operating point."""

    def stamp_tran_G(self, G, dt):
        """Stamp the companion conductance for time step ``dt``."""

    def stamp_tran_b(self, b, t, state):
        """Stamp time-varying source values and companion history currents."""

    def init_state(self, x):
        """Return the initial integration state from the DC solution ``x``."""
        return None

    def update_state(self, state, x, dt):
        """Advance the integration state after a converged time step."""
        return state

    def __repr__(self):
        return "{}({!r}, nodes={})".format(
            type(self).__name__, self.name, self.node_names)


# ---------------------------------------------------------------------------
# Linear two-terminal devices
# ---------------------------------------------------------------------------

class Resistor(Device):
    """An ideal linear resistor between two nodes."""

    def __init__(self, name, n1, n2, resistance):
        super().__init__(name, (n1, n2))
        resistance = float(resistance)
        if resistance <= 0:
            raise CircuitError(
                "resistor {!r} must have positive resistance".format(name))
        self.resistance = resistance

    def stamp_static(self, G):
        i, j = self.nodes
        g = 1.0 / self.resistance
        _add(G, i, i, g)
        _add(G, j, j, g)
        _add(G, i, j, -g)
        _add(G, j, i, -g)

    # The static stamp already covers AC; re-used via stamp_static.


class Capacitor(Device):
    """An ideal linear capacitor.

    Open circuit at DC, admittance ``j*omega*C`` in AC, and a
    trapezoidal (or backward-Euler) companion model in transient.
    """

    reactive = True

    def __init__(self, name, n1, n2, capacitance):
        super().__init__(name, (n1, n2))
        capacitance = float(capacitance)
        if capacitance <= 0:
            raise CircuitError(
                "capacitor {!r} must have positive capacitance".format(name))
        self.capacitance = capacitance
        self._method = "trap"

    def stamp_ac(self, G, b, omega):
        i, j = self.nodes
        y = 1j * omega * self.capacitance
        _add(G, i, i, y)
        _add(G, j, j, y)
        _add(G, i, j, -y)
        _add(G, j, i, -y)

    def _geq(self, dt):
        factor = 2.0 if self._method == "trap" else 1.0
        return factor * self.capacitance / dt

    def stamp_tran_G(self, G, dt):
        i, j = self.nodes
        g = self._geq(dt)
        _add(G, i, i, g)
        _add(G, j, j, g)
        _add(G, i, j, -g)
        _add(G, j, i, -g)

    def stamp_tran_b(self, b, t, state):
        # Companion current source in parallel with geq: i = geq*v - ieq.
        i, j = self.nodes
        _add_b(b, i, state["ieq"])
        _add_b(b, j, -state["ieq"])

    def _voltage(self, x):
        i, j = self.nodes
        vi = x[i] if i >= 0 else 0.0
        vj = x[j] if j >= 0 else 0.0
        return vi - vj

    def init_state(self, x):
        return {"v": self._voltage(x), "i": 0.0, "ieq": 0.0, "dt": None}

    def prepare_step(self, state, dt):
        """Compute the companion history current for the upcoming step."""
        g = self._geq(dt)
        if self._method == "trap":
            state["ieq"] = g * state["v"] + state["i"]
        else:
            state["ieq"] = g * state["v"]
        state["dt"] = dt

    def update_state(self, state, x, dt):
        v_new = self._voltage(x)
        g = self._geq(dt)
        state["i"] = g * v_new - state["ieq"]
        state["v"] = v_new
        return state


class Inductor(Device):
    """An ideal linear inductor with an auxiliary branch current.

    Short circuit at DC, impedance ``j*omega*L`` in AC, trapezoidal
    companion model in transient.  The branch current (from ``n1`` to
    ``n2``) is exposed as auxiliary unknown for measurement.
    """

    n_aux = 1
    reactive = True

    def __init__(self, name, n1, n2, inductance):
        super().__init__(name, (n1, n2))
        inductance = float(inductance)
        if inductance <= 0:
            raise CircuitError(
                "inductor {!r} must have positive inductance".format(name))
        self.inductance = inductance
        self._method = "trap"

    def stamp_static(self, G):
        i, j = self.nodes
        k = self.aux
        _add(G, i, k, 1.0)
        _add(G, j, k, -1.0)
        _add(G, k, i, 1.0)
        _add(G, k, j, -1.0)

    # DC: the aux row reads v_i - v_j = 0 (short); nothing extra needed.

    def stamp_ac(self, G, b, omega):
        _add(G, self.aux, self.aux, -1j * omega * self.inductance)

    def _req(self, dt):
        factor = 2.0 if self._method == "trap" else 1.0
        return factor * self.inductance / dt

    def stamp_tran_G(self, G, dt):
        _add(G, self.aux, self.aux, -self._req(dt))

    def stamp_tran_b(self, b, t, state):
        _add_b(b, self.aux, -state["veq"])

    def _voltage(self, x):
        i, j = self.nodes
        vi = x[i] if i >= 0 else 0.0
        vj = x[j] if j >= 0 else 0.0
        return vi - vj

    def init_state(self, x):
        return {"i": x[self.aux], "v": self._voltage(x), "veq": 0.0}

    def prepare_step(self, state, dt):
        """Compute the companion history voltage for the upcoming step."""
        if self._method == "trap":
            state["veq"] = self._req(dt) * state["i"] + state["v"]
        else:
            state["veq"] = self._req(dt) * state["i"]

    def update_state(self, state, x, dt):
        state["i"] = x[self.aux]
        state["v"] = self._voltage(x)
        return state


# ---------------------------------------------------------------------------
# Independent sources
# ---------------------------------------------------------------------------

class VoltageSource(Device):
    """An independent voltage source with DC, AC and transient values.

    Parameters
    ----------
    dc:
        Either a number (constant value) or a :class:`Waveform`.
    ac:
        Complex small-signal amplitude used by AC analysis (0 disables).

    The branch current flowing from ``n+`` through the source to ``n-``
    is an auxiliary unknown, retrievable from analysis results.
    """

    n_aux = 1

    def __init__(self, name, npos, nneg, dc=0.0, ac=0.0):
        super().__init__(name, (npos, nneg))
        self.wave = _as_waveform(dc)
        self.ac = complex(ac)

    def stamp_static(self, G):
        i, j = self.nodes
        k = self.aux
        _add(G, i, k, 1.0)
        _add(G, j, k, -1.0)
        _add(G, k, i, 1.0)
        _add(G, k, j, -1.0)

    def stamp_dc(self, G, b):
        _add_b(b, self.aux, self.wave.dc)

    def stamp_ac(self, G, b, omega):
        _add_b(b, self.aux, self.ac)

    def stamp_tran_b(self, b, t, state):
        _add_b(b, self.aux, self.wave.at(t))


class CurrentSource(Device):
    """An independent current source (flows from ``n+`` to ``n-``)."""

    def __init__(self, name, npos, nneg, dc=0.0, ac=0.0):
        super().__init__(name, (npos, nneg))
        self.wave = _as_waveform(dc)
        self.ac = complex(ac)

    def _stamp_value(self, b, value):
        i, j = self.nodes
        _add_b(b, i, -value)
        _add_b(b, j, value)

    def stamp_dc(self, G, b):
        self._stamp_value(b, self.wave.dc)

    def stamp_ac(self, G, b, omega):
        if self.ac != 0:
            self._stamp_value(b, self.ac)

    def stamp_tran_b(self, b, t, state):
        self._stamp_value(b, self.wave.at(t))


# ---------------------------------------------------------------------------
# Controlled sources
# ---------------------------------------------------------------------------

class Vcvs(Device):
    """A voltage-controlled voltage source (SPICE ``E`` element)."""

    n_aux = 1

    def __init__(self, name, npos, nneg, ncpos, ncneg, gain):
        super().__init__(name, (npos, nneg, ncpos, ncneg))
        self.gain = float(gain)

    def stamp_static(self, G):
        i, j, ci, cj = self.nodes
        k = self.aux
        _add(G, i, k, 1.0)
        _add(G, j, k, -1.0)
        _add(G, k, i, 1.0)
        _add(G, k, j, -1.0)
        _add(G, k, ci, -self.gain)
        _add(G, k, cj, self.gain)


class Vccs(Device):
    """A voltage-controlled current source (SPICE ``G`` element)."""

    def __init__(self, name, npos, nneg, ncpos, ncneg, transconductance):
        super().__init__(name, (npos, nneg, ncpos, ncneg))
        self.gm = float(transconductance)

    def stamp_static(self, G):
        i, j, ci, cj = self.nodes
        g = self.gm
        _add(G, i, ci, g)
        _add(G, i, cj, -g)
        _add(G, j, ci, -g)
        _add(G, j, cj, g)


# ---------------------------------------------------------------------------
# Nonlinear devices
# ---------------------------------------------------------------------------

class Diode(Device):
    """An exponential junction diode with Newton companion model.

    ``i = Is * (exp(v / (n*Vt)) - 1)`` with voltage limiting to keep the
    exponential from overflowing during Newton iterations.
    """

    nonlinear = True

    def __init__(self, name, npos, nneg, isat=1e-14, n=1.0):
        super().__init__(name, (npos, nneg))
        self.isat = float(isat)
        self.nvt = float(n) * VT_ROOM
        # Critical voltage beyond which the exponential is linearized.
        self.vcrit = self.nvt * math.log(self.nvt / (math.sqrt(2.0) * self.isat))

    def _vd(self, x):
        i, j = self.nodes
        vi = x[i] if i >= 0 else 0.0
        vj = x[j] if j >= 0 else 0.0
        return vi - vj

    def stamp_nonlinear(self, G, b, x):
        vd = min(self._vd(x), self.vcrit + 5.0 * self.nvt)
        e = math.exp(min(vd / self.nvt, 80.0))
        idd = self.isat * (e - 1.0)
        gd = self.isat * e / self.nvt + GMIN
        ieq = idd - gd * vd
        i, j = self.nodes
        _add(G, i, i, gd)
        _add(G, j, j, gd)
        _add(G, i, j, -gd)
        _add(G, j, i, -gd)
        _add_b(b, i, -ieq)
        _add_b(b, j, ieq)

    def stamp_ac_linearized(self, G, x_op):
        vd = min(self._vd(x_op), self.vcrit + 5.0 * self.nvt)
        gd = self.isat * math.exp(min(vd / self.nvt, 80.0)) / self.nvt + GMIN
        i, j = self.nodes
        _add(G, i, i, gd)
        _add(G, j, j, gd)
        _add(G, i, j, -gd)
        _add(G, j, i, -gd)


class Mosfet(Device):
    """A level-1 (square-law) MOSFET with channel-length modulation.

    Parameters
    ----------
    kind:
        ``"n"`` for NMOS or ``"p"`` for PMOS.
    w, l:
        Channel width and length in meters.
    kp:
        Process transconductance ``mu * Cox`` (A/V^2).
    vth:
        Threshold voltage magnitude (positive for both kinds).
    lam:
        Channel-length modulation coefficient (1/V), scaled by ``l``
        internally as ``lam / (l / 1e-6)`` so longer devices have higher
        output resistance, mirroring real processes.

    Nodes are ``(drain, gate, source)``; the bulk terminal is assumed
    tied to the appropriate rail (no body effect), which is accurate
    enough for the op-amp testbench while keeping Newton iterations
    robust.  A ``GMIN`` conductance is stamped drain-to-source for
    convergence.
    """

    nonlinear = True

    def __init__(self, name, drain, gate, source, kind="n", w=10e-6, l=1e-6,
                 kp=100e-6, vth=0.7, lam=0.05):
        super().__init__(name, (drain, gate, source))
        kind = str(kind).lower()
        if kind not in ("n", "p"):
            raise CircuitError("MOSFET kind must be 'n' or 'p'")
        if w <= 0 or l <= 0 or kp <= 0:
            raise CircuitError(
                "MOSFET {!r} needs positive w, l and kp".format(name))
        self.kind = kind
        self.w = float(w)
        self.l = float(l)
        self.kp = float(kp)
        self.vth = float(vth)
        self.lam = float(lam) / (self.l / 1e-6)
        self.beta = self.kp * self.w / self.l

    # -- electrical evaluation -------------------------------------------
    def _terminal_voltages(self, x):
        d, g, s = self.nodes
        vd = x[d] if d >= 0 else 0.0
        vg = x[g] if g >= 0 else 0.0
        vs = x[s] if s >= 0 else 0.0
        return vd, vg, vs

    def evaluate(self, x):
        """Return ``(id, gm, gds)`` referenced to the drain terminal.

        ``id`` is the current entering the drain (negative for PMOS in
        normal operation).  ``gm = d id / d vgs`` and
        ``gds = d id / d vds`` with voltages taken gate-to-source and
        drain-to-source regardless of polarity.
        """
        vd, vg, vs = self._terminal_voltages(x)
        sign = 1.0 if self.kind == "n" else -1.0
        # Map PMOS onto the NMOS equations via polarity reflection.
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        swapped = vds < 0.0
        if swapped:
            # Source and drain exchange roles; device is symmetric.
            vgs = vgs - vds
            vds = -vds
        vov = vgs - self.vth
        if vov <= 0.0:
            idn, gm, gds = 0.0, 0.0, GMIN
        elif vds < vov:
            clm = 1.0 + self.lam * vds
            idn = self.beta * (vov * vds - 0.5 * vds * vds) * clm
            gm = self.beta * vds * clm
            gds = (self.beta * (vov - vds) * clm
                   + self.beta * (vov * vds - 0.5 * vds * vds) * self.lam)
        else:
            clm = 1.0 + self.lam * vds
            idn = 0.5 * self.beta * vov * vov * clm
            gm = self.beta * vov * clm
            gds = 0.5 * self.beta * vov * vov * self.lam
        if swapped:
            # Undo the source/drain exchange: current reverses, and the
            # conductances transform per the chain rule.
            idn = -idn
            gds = gds + gm
            gm = -gm
        # Undo the polarity reflection: gm and gds are invariant, the
        # current flips sign for PMOS.
        return sign * idn, gm, gds + GMIN

    def stamp_nonlinear(self, G, b, x):
        vd, vg, vs = self._terminal_voltages(x)
        idd, gm, gds = self.evaluate(x)
        d, g, s = self.nodes
        vgs = vg - vs
        vds = vd - vs
        ieq = idd - gm * vgs - gds * vds
        _add(G, d, g, gm)
        _add(G, d, d, gds)
        _add(G, d, s, -(gm + gds))
        _add(G, s, g, -gm)
        _add(G, s, d, -gds)
        _add(G, s, s, gm + gds)
        _add_b(b, d, -ieq)
        _add_b(b, s, ieq)

    def stamp_ac_linearized(self, G, x_op):
        _, gm, gds = self.evaluate(x_op)
        d, g, s = self.nodes
        _add(G, d, g, gm)
        _add(G, d, d, gds)
        _add(G, d, s, -(gm + gds))
        _add(G, s, g, -gm)
        _add(G, s, d, -gds)
        _add(G, s, s, gm + gds)

    def operating_region(self, x):
        """Classify the operating region at solution ``x``.

        Returns one of ``"cutoff"``, ``"triode"`` or ``"saturation"``
        (useful for design debugging and bias verification in tests).
        """
        vd, vg, vs = self._terminal_voltages(x)
        sign = 1.0 if self.kind == "n" else -1.0
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        if vds < 0:
            vgs, vds = vgs - vds, -vds
        vov = vgs - self.vth
        if vov <= 0:
            return "cutoff"
        if vds < vov:
            return "triode"
        return "saturation"
