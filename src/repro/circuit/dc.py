"""DC operating-point analysis (Newton-Raphson with homotopy fallbacks).

The solver assembles the static MNA system once, then iterates the
nonlinear companion stamps.  Convergence aids, applied in order when the
plain iteration fails:

1. **gmin stepping** -- a shunt conductance from every node to ground is
   swept from large to tiny, each solution seeding the next.
2. **source stepping** -- all independent sources are scaled from 0 to 1
   (valid because independent sources only enter the right-hand side).

Both are standard SPICE homotopies and make the two-stage op-amp bias
point converge reliably across Monte-Carlo corners.
"""

import numpy as np

from repro.errors import CircuitError, ConvergenceError

#: Default absolute node-voltage convergence tolerance (V).
VTOL = 1e-9
#: Maximum Newton update per iteration (V); larger steps are clamped.
MAX_STEP = 0.5
#: Default iteration limit for a single Newton solve.
MAX_ITER = 120


class DCResult:
    """The solution of a DC operating-point analysis.

    Provides node-voltage and branch-current accessors so callers never
    need to know matrix indices.
    """

    def __init__(self, circuit, x, iterations):
        self._circuit = circuit
        self.x = x
        self.iterations = iterations

    def v(self, node):
        """Voltage of ``node`` (0.0 for ground)."""
        idx = self._circuit.node_id(node)
        return 0.0 if idx < 0 else float(self.x[idx])

    def branch_current(self, device_name):
        """Current through a device that carries an auxiliary unknown.

        Works for voltage sources, inductors and VCVS elements; the
        positive direction is from the ``n+`` terminal through the
        device to ``n-``.
        """
        device = self._circuit.device(device_name)
        if device.aux is None:
            raise ConvergenceError(
                "device {!r} has no branch-current unknown".format(device_name))
        return float(self.x[device.aux])

    def __repr__(self):
        return "DCResult(n={}, iterations={})".format(
            self.x.size, self.iterations)


def assemble_static_G(circuit):
    """Build the static (device-value) conductance matrix only.

    The static stamps are independent of the source values, so a DC
    sweep can assemble this matrix once and reuse it across every sweep
    point (and every homotopy fallback attempt within a point).
    """
    n = circuit.n_unknowns
    G = np.zeros((n, n))
    for device in circuit.devices:
        device.stamp_static(G)
    return G


#: Zero-size stand-in for ``G`` once a circuit's stamp_dc hooks are
#: known not to touch it (writing to it raises, never silently drops).
_NO_G = np.zeros((0, 0))


def assemble_dc_b(circuit):
    """Build the DC right-hand side (source values, inductor shorts).

    No built-in ``stamp_dc`` writes to ``G``.  A user device that does
    would silently lose its contribution here (the matrix is assembled
    separately), so the first assembly of a circuit stamps into a
    scratch matrix and rejects such devices loudly; the verdict is
    cached per device list, keeping every later call -- this is the
    Monte-Carlo hot path -- allocation- and scan-free.
    """
    n = circuit.n_unknowns
    b = np.zeros(n)
    if getattr(circuit, "_stamp_dc_pure_count", None) == len(circuit):
        for device in circuit.devices:
            device.stamp_dc(_NO_G, b)
        return b
    scratch_G = np.zeros((n, n))
    for device in circuit.devices:
        device.stamp_dc(scratch_G, b)
    if scratch_G.any():
        raise CircuitError(
            "a stamp_dc implementation in {!r} writes to G; the split "
            "DC assembly requires conductance stamps to live in "
            "stamp_static".format(circuit.title))
    circuit._stamp_dc_pure_count = len(circuit)
    return b


def _assemble_static(circuit):
    """Build the static conductance matrix and DC right-hand side.

    Split into :func:`assemble_static_G` / :func:`assemble_dc_b` so
    callers that re-solve the same circuit with different source values
    (DC sweeps) can reuse the matrix; no built-in ``stamp_dc`` touches
    ``G``, so splitting the loops preserves every accumulation order
    bit for bit.
    """
    return assemble_static_G(circuit), assemble_dc_b(circuit)


def _newton(circuit, G0, b0, nonlinear, x0, gshunt=0.0, source_scale=1.0,
            max_iter=MAX_ITER, vtol=VTOL):
    """One Newton-Raphson solve; returns ``(x, iterations)`` or raises."""
    n = circuit.n_unknowns
    n_nodes = circuit.n_nodes
    x = x0.copy()
    for iteration in range(1, max_iter + 1):
        G = G0.copy()
        b = source_scale * b0
        if gshunt > 0.0:
            G[np.arange(n_nodes), np.arange(n_nodes)] += gshunt
        for device in nonlinear:
            device.stamp_nonlinear(G, b, x)
        try:
            x_new = np.linalg.solve(G, b)
        except np.linalg.LinAlgError:
            raise ConvergenceError(
                "singular MNA matrix in DC solve of {!r}".format(
                    circuit.title), iterations=iteration)
        delta = x_new - x
        # Clamp node-voltage updates; branch currents are left free.
        dv = delta[:n_nodes]
        np.clip(dv, -MAX_STEP, MAX_STEP, out=dv)
        x = x + delta
        if np.max(np.abs(dv), initial=0.0) < vtol:
            return x, iteration
    raise ConvergenceError(
        "DC Newton iteration did not converge in {} steps".format(max_iter),
        iterations=max_iter,
        residual=float(np.max(np.abs(delta))))


def solve_dc(circuit, x0=None, max_iter=MAX_ITER, vtol=VTOL,
             use_homotopy=True, static=None):
    """Compute the DC operating point of ``circuit``.

    Parameters
    ----------
    circuit:
        The :class:`~repro.circuit.netlist.Circuit` to solve.
    x0:
        Optional initial guess (defaults to all zeros).
    max_iter, vtol:
        Newton iteration limit and node-voltage tolerance.
    use_homotopy:
        When True (default), fall back to gmin stepping and then source
        stepping if the plain Newton iteration fails.
    static:
        Optional precomputed ``(G0, b0)`` pair from
        :func:`assemble_static_G` / :func:`assemble_dc_b`.  Repeated
        solves of one circuit (DC sweeps, warm-started retries) pass
        this to skip re-stamping; the assembly is already shared across
        all homotopy fallback attempts within one call.

    Returns
    -------
    DCResult

    Raises
    ------
    ConvergenceError
        If no strategy converges.
    """
    circuit.compile()
    _, nonlinear, _ = circuit.partition()
    G0, b0 = _assemble_static(circuit) if static is None else static
    n = circuit.n_unknowns
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()

    try:
        x_sol, iters = _newton(circuit, G0, b0, nonlinear, x,
                               max_iter=max_iter, vtol=vtol)
        return DCResult(circuit, x_sol, iters)
    except ConvergenceError:
        if not use_homotopy:
            raise

    # gmin stepping: relax a global shunt conductance toward zero.
    total_iters = 0
    x_seed = x.copy()
    try:
        for gshunt in np.logspace(-2, -12, 11):
            x_seed, iters = _newton(circuit, G0, b0, nonlinear, x_seed,
                                    gshunt=gshunt, max_iter=max_iter,
                                    vtol=vtol)
            total_iters += iters
        x_sol, iters = _newton(circuit, G0, b0, nonlinear, x_seed,
                               max_iter=max_iter, vtol=vtol)
        return DCResult(circuit, x_sol, total_iters + iters)
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from 0 to full value.
    x_seed = np.zeros(n)
    total_iters = 0
    try:
        for scale in np.linspace(0.05, 1.0, 20):
            x_seed, iters = _newton(circuit, G0, b0, nonlinear, x_seed,
                                    source_scale=scale, max_iter=max_iter,
                                    vtol=vtol)
            total_iters += iters
        return DCResult(circuit, x_seed, total_iters)
    except ConvergenceError as exc:
        raise ConvergenceError(
            "DC analysis of {!r} failed after Newton, gmin stepping and "
            "source stepping".format(circuit.title),
            iterations=exc.iterations, residual=exc.residual) from exc
