"""DC sweep analysis: solve the operating point across a source sweep.

Used for transfer curves (e.g. the op-amp's DC input-output
characteristic and systematic offset) and for bias-point exploration.
Each sweep point warm-starts Newton-Raphson from the previous solution,
which makes sweeps across nonlinear transitions fast and robust --
the same continuation idea as the homotopy fallbacks in
:mod:`repro.circuit.dc`.
"""

import numpy as np

from repro.circuit.dc import (
    DCResult,
    assemble_dc_b,
    assemble_static_G,
    solve_dc,
)
from repro.circuit.devices import Dc, VoltageSource, CurrentSource
from repro.errors import AnalysisError, ConvergenceError


class DCSweepResult:
    """Solutions of a DC sweep: one operating point per sweep value."""

    def __init__(self, circuit, sweep_values, X):
        self._circuit = circuit
        #: The swept source values.
        self.values = sweep_values
        self._X = X  # (n_points, n_unknowns)

    def v(self, node):
        """Voltage waveform of ``node`` across the sweep."""
        idx = self._circuit.node_id(node)
        if idx < 0:
            return np.zeros(len(self.values))
        return self._X[:, idx]

    def branch_current(self, device_name):
        """Branch current of an aux-carrying device across the sweep."""
        device = self._circuit.device(device_name)
        if device.aux is None:
            raise AnalysisError(
                "device {!r} has no branch-current unknown".format(
                    device_name))
        return self._X[:, device.aux]

    def operating_point(self, index):
        """The full :class:`~repro.circuit.dc.DCResult` at one point."""
        return DCResult(self._circuit, self._X[index].copy(), 0)

    def __repr__(self):
        return "DCSweepResult({} points)".format(len(self.values))


def sweep_dc(circuit, source_name, values, max_iter=120):
    """Solve the DC operating point for each value of a swept source.

    Parameters
    ----------
    circuit:
        The circuit to solve.
    source_name:
        Name of an independent voltage or current source whose DC value
        is swept.  The source must carry a plain DC waveform (sweeping
        a pulse/sine source would be ambiguous).
    values:
        Iterable of source values.  Ordering matters: each point seeds
        the next, so monotone sweeps converge fastest.
    max_iter:
        Per-point Newton iteration limit.

    Returns
    -------
    DCSweepResult

    Notes
    -----
    The swept source's DC value is restored after the sweep, so the
    circuit can be reused for other analyses.
    """
    device = circuit.device(source_name)
    if not isinstance(device, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            "{!r} is not an independent source".format(source_name))
    if not isinstance(device.wave, Dc):
        raise AnalysisError(
            "swept source {!r} must carry a plain DC value".format(
                source_name))
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise AnalysisError("DC sweep needs at least one value")

    original = device.wave.dc
    circuit.compile()
    # The static stamps do not depend on the swept source value; only
    # the right-hand side changes per point, so the matrix is assembled
    # once for the whole sweep (and all homotopy retries within it).
    G0 = assemble_static_G(circuit)
    X = np.empty((values.size, circuit.n_unknowns))
    x_seed = None
    try:
        for k, value in enumerate(values):
            device.wave.dc = float(value)
            b0 = assemble_dc_b(circuit)
            try:
                op = solve_dc(circuit, x0=x_seed, max_iter=max_iter,
                              static=(G0, b0))
            except ConvergenceError:
                # Retry cold with the full homotopy arsenal.
                op = solve_dc(circuit, max_iter=max_iter,
                              static=(G0, b0))
            X[k] = op.x
            x_seed = op.x
    finally:
        device.wave.dc = original
    return DCSweepResult(circuit, values, X)
