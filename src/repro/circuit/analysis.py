"""Measurement helpers for AC sweeps and transient waveforms.

These utilities turn raw simulation output into the specification
values of the paper's Table 1 and Table 2: gain, 3-dB bandwidth,
unity-gain frequency, rise time, overshoot, settling time, slew rate,
resonance peak and quality factor.
"""

import numpy as np

from repro.errors import AnalysisError


def db(values):
    """Convert magnitudes to decibels (20*log10)."""
    values = np.abs(np.asarray(values, dtype=complex))
    return 20.0 * np.log10(np.maximum(values, 1e-300))


def _log_interp_crossing(freqs, mags, level):
    """Frequency where ``mags`` first falls below ``level``.

    Interpolates logarithmically in frequency and linearly in dB, which
    matches the straight-line segments of a Bode plot.
    """
    mags = np.asarray(mags, dtype=float)
    freqs = np.asarray(freqs, dtype=float)
    below = mags < level
    if not below.any():
        raise AnalysisError(
            "response never crosses level {:g} within the sweep".format(level))
    k = int(np.argmax(below))
    if k == 0:
        return float(freqs[0])
    f1, f2 = freqs[k - 1], freqs[k]
    m1, m2 = mags[k - 1], mags[k]
    # Linear interpolation of dB values against log10(f).
    d1, d2 = 20 * np.log10(max(m1, 1e-300)), 20 * np.log10(max(m2, 1e-300))
    dl = 20 * np.log10(level)
    if d1 == d2:
        return float(f2)
    frac = (d1 - dl) / (d1 - d2)
    return float(10 ** (np.log10(f1) + frac * (np.log10(f2) - np.log10(f1))))


def low_frequency_gain(freqs, response):
    """Magnitude of the response at the lowest swept frequency."""
    response = np.abs(np.asarray(response, dtype=complex))
    return float(response[int(np.argmin(np.asarray(freqs)))])


def bandwidth_3db(freqs, response, ref_gain=None):
    """The -3 dB bandwidth of a low-pass response.

    Parameters
    ----------
    freqs, response:
        Sweep frequencies (Hz) and complex (or magnitude) response.
    ref_gain:
        Reference gain; defaults to the magnitude at the lowest
        frequency in the sweep.
    """
    mags = np.abs(np.asarray(response, dtype=complex))
    if ref_gain is None:
        ref_gain = low_frequency_gain(freqs, mags)
    return _log_interp_crossing(freqs, mags, ref_gain / np.sqrt(2.0))


def unity_gain_frequency(freqs, response):
    """Frequency where the response magnitude crosses 1 (0 dB)."""
    mags = np.abs(np.asarray(response, dtype=complex))
    if mags[0] <= 1.0:
        raise AnalysisError("response starts below unity; no UGF in sweep")
    return _log_interp_crossing(freqs, mags, 1.0)


def peak_frequency(freqs, response):
    """Frequency of the response-magnitude maximum (parabolic refined).

    Uses a three-point parabolic fit in log-frequency around the
    discrete maximum, which recovers resonance peaks accurately from
    relatively coarse sweeps.
    """
    freqs = np.asarray(freqs, dtype=float)
    mags = np.abs(np.asarray(response, dtype=complex))
    k = int(np.argmax(mags))
    if k == 0 or k == len(mags) - 1:
        return float(freqs[k])
    lf = np.log10(freqs[k - 1:k + 2])
    m = mags[k - 1:k + 2]
    denom = (m[0] - 2 * m[1] + m[2])
    if denom == 0:
        return float(freqs[k])
    shift = 0.5 * (m[0] - m[2]) / denom
    shift = float(np.clip(shift, -1.0, 1.0))
    return float(10 ** (lf[1] + shift * (lf[1] - lf[0])))


def quality_factor(freqs, response):
    """Quality factor of a resonant response: ``f_peak / delta_f``.

    ``delta_f`` is the width of the band where the magnitude exceeds
    ``peak / sqrt(2)``; for a second-order system this equals the
    classical ``Q``.  Raises when the response has no resonant peak
    above its low-frequency value (overdamped), in which case ``Q``
    should be derived analytically instead.
    """
    freqs = np.asarray(freqs, dtype=float)
    mags = np.abs(np.asarray(response, dtype=complex))
    peak = float(mags.max())
    k = int(np.argmax(mags))
    level = peak / np.sqrt(2.0)
    if k == 0 or mags[0] >= level:
        # Peak at/below the band edge: cannot bracket the half-power band.
        raise AnalysisError("response has no interior resonant peak")
    # Walk left from the peak to the first point below the level.
    i = k
    while i > 0 and mags[i - 1] >= level:
        i -= 1
    f_lo = np.interp(level, [mags[i - 1], mags[i]], [freqs[i - 1], freqs[i]])
    j = k
    while j < len(mags) - 1 and mags[j + 1] >= level:
        j += 1
    if j == len(mags) - 1:
        raise AnalysisError("half-power band extends past the sweep")
    f_hi = np.interp(level, [mags[j + 1], mags[j]], [freqs[j + 1], freqs[j]])
    if f_hi <= f_lo:
        raise AnalysisError("degenerate half-power band")
    return float(peak_frequency(freqs, mags) / (f_hi - f_lo))


def first_crossing(t, y, level, rising=True):
    """Time of the first crossing of ``level`` with linear interpolation."""
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    if rising:
        hits = (y[:-1] < level) & (y[1:] >= level)
    else:
        hits = (y[:-1] > level) & (y[1:] <= level)
    idx = np.flatnonzero(hits)
    if idx.size == 0:
        raise AnalysisError(
            "waveform never crosses level {:g} ({})".format(
                level, "rising" if rising else "falling"))
    k = int(idx[0])
    frac = (level - y[k]) / (y[k + 1] - y[k])
    return float(t[k] + frac * (t[k + 1] - t[k]))


def rise_time(t, y, y_start, y_end, lo=0.1, hi=0.9):
    """10 %-90 % (by default) rise time of a step response."""
    span = y_end - y_start
    if span == 0:
        raise AnalysisError("zero step span; rise time undefined")
    rising = span > 0
    t_lo = first_crossing(t, y, y_start + lo * span, rising=rising)
    t_hi = first_crossing(t, y, y_start + hi * span, rising=rising)
    if t_hi <= t_lo:
        raise AnalysisError("non-monotonic rise; check the waveform")
    return t_hi - t_lo


def overshoot(y, y_start, y_end):
    """Fractional overshoot of a step response (0.05 means 5 %)."""
    y = np.asarray(y, dtype=float)
    span = y_end - y_start
    if span == 0:
        raise AnalysisError("zero step span; overshoot undefined")
    if span > 0:
        peak = float(y.max())
        return max(0.0, (peak - y_end) / span)
    trough = float(y.min())
    return max(0.0, (y_end - trough) / -span)


def settling_time(t, y, y_end, band=0.01, t_step=0.0):
    """Time after ``t_step`` for ``y`` to stay within ``band*|step|``.

    ``band`` is relative to the final value's distance from the initial
    value at ``t_step``.  Returns 0 if the waveform is already settled.
    """
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    mask = t >= t_step
    t_seg = t[mask]
    y_seg = y[mask]
    if t_seg.size < 2:
        raise AnalysisError("waveform too short for settling time")
    span = abs(y_end - y_seg[0])
    if span == 0:
        return 0.0
    tol = band * span
    outside = np.abs(y_seg - y_end) > tol
    if outside[-1]:
        raise AnalysisError("waveform does not settle within the window")
    if not outside.any():
        return 0.0
    last_out = int(np.flatnonzero(outside)[-1])
    return float(t_seg[min(last_out + 1, t_seg.size - 1)] - t_seg[0])


def slew_rate(t, y, fraction=(0.2, 0.8)):
    """Average slope of ``y`` between two amplitude fractions of its swing.

    The classic definition of large-signal slew rate: the output swing
    between (by default) 20 % and 80 % of the total excursion divided by
    the time it takes, which rejects the rounded corners of the ramp.
    Returns a positive value regardless of direction (V/s).
    """
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    y0 = float(y[0])
    y1 = float(y[-1])
    span = y1 - y0
    if span == 0:
        raise AnalysisError("no output excursion; slew rate undefined")
    rising = span > 0
    t_a = first_crossing(t, y, y0 + fraction[0] * span, rising=rising)
    t_b = first_crossing(t, y, y0 + fraction[1] * span, rising=rising)
    if t_b <= t_a:
        raise AnalysisError("could not bracket the slewing region")
    return abs((fraction[1] - fraction[0]) * span) / (t_b - t_a)
