"""Columnar shard files: uncompressed ``.npz`` + zero-copy memmap reads.

One shard holds one contiguous row range of a Monte-Carlo population
as a single ``values`` member of shape ``(n_specs, n_rows)`` --
*spec-major*, so reading one specification's measurement vector is one
contiguous slice of the file.  Members are stored uncompressed, which
makes every array a flat byte run inside the zip container; the reader
locates that run once and hands back a read-only :class:`numpy.memmap`
over it, so opening a million-row dataset touches no data pages until
a consumer actually slices rows out of it.

Integrity is content-addressed: :func:`array_sha256` hashes the array
*bytes* (plus dtype and shape), not the container file -- zip headers
carry timestamps, so file-level hashes would never be reproducible,
while the stored bytes of a deterministic generation run are.
"""

import hashlib
import os
import struct
import tempfile
import zipfile

import numpy as np

from repro.errors import DatasetError

#: The single array member every shard file carries.
MEMBER = "values"

#: Test-only fault hook (installed by :mod:`repro.chaos.inject`;
#: ``None`` in production).  Called with the destination path just
#: before the atomic publish; returning ``"torn"`` leaves a
#: deliberately truncated file at the destination and raises -- the
#: on-disk shape of a crash on a filesystem without atomic replace,
#: which the shard reader must reject rather than load as data.
SHARD_FAULT_HOOK = None

#: Size of the fixed portion of a zip local file header (APPNOTE 4.3.7).
_ZIP_LOCAL_HEADER = 30


def array_sha256(array):
    """Content hash of an array: dtype, shape and C-order bytes."""
    array = np.asarray(array)
    digest = hashlib.sha256()
    digest.update("{}:{}".format(array.dtype.str,
                                 array.shape).encode("ascii"))
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def write_shard(path, values):
    """Write one spec-major shard file atomically; returns its hash.

    ``values`` must be a 2-D ``(n_specs, n_rows)`` float64 matrix.  The
    file appears under ``path`` only complete (write to a temp file in
    the same directory, then :func:`os.replace`), so a crashed or
    interrupted generation run can never leave a half-written shard
    that later loads as data.
    """
    values = np.ascontiguousarray(values, dtype=float)
    if values.ndim != 2:
        raise DatasetError("shard values must be 2-D (n_specs, n_rows)")
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            # np.savez (not savez_compressed): members are ZIP_STORED,
            # the precondition for memory-mapped reads.
            np.savez(handle, **{MEMBER: values})
        hook = SHARD_FAULT_HOOK
        if hook is not None and hook(path) == "torn":
            with open(tmp, "rb") as whole:
                blob = whole.read()
            with open(path, "wb") as torn:
                torn.write(blob[: max(1, len(blob) // 2)])
            raise OSError(
                5, "[chaos] torn shard write (crash mid-publish): " + path
            )
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return array_sha256(values)


def _member_layout(path):
    """(data offset, dtype, shape) of the stored member inside the zip."""
    try:
        with zipfile.ZipFile(path) as archive:
            try:
                info = archive.getinfo(MEMBER + ".npy")
            except KeyError:
                raise DatasetError(
                    "shard {} has no {!r} member".format(path, MEMBER))
            if info.compress_type != zipfile.ZIP_STORED:
                raise DatasetError(
                    "shard {} is compressed; only uncompressed shards "
                    "support memory-mapped reads".format(path))
            with archive.open(info) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_1_0(member)
                elif version == (2, 0):
                    shape, fortran, dtype = \
                        np.lib.format.read_array_header_2_0(member)
                else:
                    raise DatasetError(
                        "shard {} uses unsupported npy format "
                        "{}".format(path, version))
                npy_header = member.tell()
    except zipfile.BadZipFile as exc:
        raise DatasetError(
            "shard {} is not a readable zip archive: {}".format(
                path, exc))
    if fortran:
        raise DatasetError(
            "shard {} stores Fortran-order data; shards are "
            "C-order".format(path))
    # The zip local file header precedes the member data and carries
    # variable-length name/extra fields; the central directory's
    # header_offset points at it.
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local = handle.read(_ZIP_LOCAL_HEADER)
        if len(local) != _ZIP_LOCAL_HEADER or local[:4] != b"PK\x03\x04":
            raise DatasetError(
                "shard {} has a corrupt local file header".format(path))
        name_len, extra_len = struct.unpack("<HH", local[26:30])
    offset = (info.header_offset + _ZIP_LOCAL_HEADER + name_len
              + extra_len + npy_header)
    return offset, dtype, shape


def open_shard_values(path, expect_dtype=None, expect_shape=None):
    """Read-only memmap over a shard's ``values`` member.

    Optional ``expect_dtype`` (a dtype string such as ``"<f8"``) and
    ``expect_shape`` validate the stored array against the manifest
    before any data is touched; a mismatch -- wrong endianness, a
    truncated rewrite, a foreign file dropped into the dataset
    directory -- raises :class:`~repro.errors.DatasetError`.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise DatasetError("missing shard file: {}".format(path))
    offset, dtype, shape = _member_layout(path)
    if expect_dtype is not None and np.dtype(expect_dtype) != dtype:
        raise DatasetError(
            "shard {} stores dtype {} but the manifest records {} -- "
            "refusing a mismatched (e.g. foreign-endian) load".format(
                path, dtype.str, np.dtype(expect_dtype).str))
    if expect_shape is not None and tuple(expect_shape) != tuple(shape):
        raise DatasetError(
            "shard {} stores shape {} but the manifest records "
            "{}".format(path, tuple(shape), tuple(expect_shape)))
    expected_end = offset + dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if os.path.getsize(path) < expected_end:
        raise DatasetError(
            "shard {} is truncated ({} bytes; member needs {})".format(
                path, os.path.getsize(path), expected_end))
    return np.memmap(path, dtype=dtype, mode="r", offset=offset,
                     shape=tuple(shape), order="C")
