"""Out-of-core training entry points over sharded datasets.

These helpers wire a :class:`~repro.data.store.ShardedSpecDataset`
into the learn layer with a bounded working set:

* the thin ``(n, k)`` normalized feature matrix is assembled shard
  panel by shard panel (linear in the population, tiny next to the
  quadratic Gram a naive fit would build);
* labels -- plain, guard-shifted, or grade bins -- stream shard by
  shard;
* kernel columns come from one shared
  :class:`~repro.learn.columns.KernelColumnCache`, whose byte budget
  caps the only super-linear structure of the whole fit.

Everything is bit-identical to the in-RAM path on the concatenated
values: alphas, biases, decisions.  ``tests/data/test_training.py``
asserts this across shard sizes and worker counts.
"""

import numpy as np

from repro.core.guardband import GuardBandedClassifier
from repro.errors import LearningError
from repro.learn.columns import DEFAULT_BUDGET_BYTES, KernelColumnCache
from repro.learn.ovr import OneVsRestSVCBank


def fit_guard_banded(dataset, feature_names, delta=0.05,
                     model_factory=None, warm_start=True,
                     column_budget=DEFAULT_BUDGET_BYTES):
    """Fit the paper's strict/loose guard-banded pair out-of-core.

    ``dataset`` is a :class:`~repro.data.store.ShardedSpecDataset`
    (an in-RAM :class:`~repro.process.dataset.SpecDataset` works too
    and produces bit-identical models).  Returns the fitted
    :class:`~repro.core.guardband.GuardBandedClassifier`.
    """
    classifier = GuardBandedClassifier(
        feature_names, delta=delta, model_factory=model_factory,
        warm_start=warm_start, column_budget=column_budget)
    return classifier.fit(dataset)


def fit_ovr_bank(X, y, classes=None, model_factory=None,
                 warm_start=True, column_budget=DEFAULT_BUDGET_BYTES):
    """Fit a one-vs-rest SVC bank with a bounded column working set.

    ``X`` is the shared feature matrix (e.g. from
    ``dataset.normalized_values(kept_names)``), ``y`` the per-row
    class labels.  ``classes`` defaults to the sorted distinct labels.
    All member fits above the SMO precompute limit draw kernel columns
    from one shared :class:`~repro.learn.columns.KernelColumnCache`
    sized by ``column_budget`` bytes.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if classes is None:
        classes = sorted(np.unique(y).tolist())
    if len(classes) < 2:
        raise LearningError(
            "a one-vs-rest bank needs at least 2 classes; got "
            "{!r}".format(list(classes)))
    bank = OneVsRestSVCBank(classes, model_factory=model_factory,
                            warm_start=warm_start)
    if column_budget is not None:
        bank.set_train_columns(
            KernelColumnCache(X, max_bytes=column_budget))
    return bank.fit(X, y)
