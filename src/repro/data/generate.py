"""Resumable shard-store generation on top of the seed tree.

Cold generation streams :func:`~repro.runtime.simulation.
generate_instance_batches` with ``batch_size == shard_rows`` so every
batch is exactly one shard; the manifest is re-saved after each shard,
so an interrupted run leaves a valid (shorter) store behind.

Extension never re-simulates the prefix.  Shard boundaries are fixed
(shard ``i`` always covers ``[i * shard_rows, (i + 1) * shard_rows)``),
so growing ``N -> M`` splits into at most two generation calls:

* complete the trailing partial shard, if any, by simulating only its
  missing slots (``first_slot=N``) and rewriting that one file with the
  old rows read back from disk;
* stream the remaining shard-aligned rows exactly like a cold run.

Because each slot is a pure function of ``(dut, seed, slot index)``,
the extended store is *file-for-file hash-identical* to a cold
generation of ``M`` rows -- including per-shard failure counts, and the
run-level abort decision: the extension seeds its
:class:`~repro.process.montecarlo.GenerationReport` with the prefix's
failure totals from the manifest and budgets against the target size.
"""

import os
import re

import numpy as np

from repro.data import shard as shard_io
from repro.data.manifest import Manifest, shard_file_name
from repro.data.store import ShardedSpecDataset
from repro.errors import DatasetError
from repro.process.montecarlo import (
    GenerationReport,
    default_max_failures,
)
from repro.runtime.simulation import generate_instance_batches
from repro.telemetry import get_telemetry

#: Default rows per shard: ~64k float64 cells per spec column -- large
#: enough to amortize file and GEMM overheads, small enough that a
#: handful of resident shards stay in the tens of megabytes.
DEFAULT_SHARD_ROWS = 8192


def dataset_device_name(dut):
    """The device label recorded in manifests for ``dut``."""
    return str(getattr(dut, "name", type(dut).__name__))


def _store_exists(root):
    return os.path.exists(os.path.join(os.fspath(root), "manifest.json"))


def _append_batches(root, manifest, batch_iter, report, prefix=None):
    """Write streamed shard-aligned batches; returns rows appended.

    ``prefix`` carries the trailing-partial-shard completion: a tuple
    ``(index, old_values, old_failed, old_simulated)`` meaning the
    *first* yielded batch extends shard ``index`` whose existing
    spec-major values and failure accounting are given.
    """
    appended = 0
    prev_failed, prev_simulated = report.n_failed, report.n_simulated
    for batch in batch_iter:
        values = np.ascontiguousarray(batch.T)  # spec-major
        d_failed = report.n_failed - prev_failed
        d_simulated = report.n_simulated - prev_simulated
        prev_failed, prev_simulated = report.n_failed, report.n_simulated
        if prefix is not None:
            index, old_values, old_failed, old_simulated = prefix
            prefix = None
            values = np.concatenate([old_values, values], axis=1)
            d_failed += old_failed
            d_simulated += old_simulated
            start = int(manifest.shards[index]["start"])
            del manifest.shards[index:]
        else:
            index = len(manifest.shards)
            start = index * manifest.shard_rows
        stop = start + values.shape[1]
        digest = shard_io.write_shard(
            os.path.join(root, shard_file_name(index)), values)
        manifest.shards.append({
            "file": shard_file_name(index), "start": start, "stop": stop,
            "sha256": digest, "n_failed": d_failed,
            "n_simulated": d_simulated,
        })
        manifest.n_rows = stop
        event = manifest.events[-1]
        # The event rate covers only this op's rows -- an extension's
        # free prefix must not inflate its throughput.
        rate = (0.0 if report.elapsed_s <= 0.0 else
                60.0 * (stop - int(event["start"])) / report.elapsed_s)
        event.update(
            stop=stop,
            elapsed_s=round(report.elapsed_s, 6),
            instances_per_minute=round(rate, 3))
        manifest.save(root)
        appended += stop - start
        # Per-shard throughput telemetry (the simulation inside
        # batch_iter already carries its own sim.batch spans).
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("repro_data_shards_total", 1)
            tel.counter("repro_data_rows_total", values.shape[1])
            tel.gauge("repro_data_instances_per_minute", rate)
    return appended


def generate_shards(root, dut, n_rows, seed, shard_rows=DEFAULT_SHARD_ROWS,
                    n_jobs=None, engine="scalar", max_failures=None,
                    device=None):
    """Generate a fresh shard store; returns a :class:`ShardedSpecDataset`.

    ``root`` must not already hold a store (use :func:`extend_shards`
    or :func:`ensure_dataset` to grow one).  The concatenated shards
    are bit-identical to ``generate_instances(dut, n_rows, seed)`` at
    any ``shard_rows`` and ``n_jobs``.
    """
    root = os.fspath(root)
    os.makedirs(root, exist_ok=True)
    if _store_exists(root):
        raise DatasetError(
            "{} already holds a shard store; use extend_shards to grow "
            "it".format(root))
    if int(n_rows) <= 0:
        raise DatasetError("n_rows must be positive")
    n_rows = int(n_rows)
    budget = (default_max_failures(n_rows)
              if max_failures is None else int(max_failures))
    manifest = Manifest(
        device=device or dataset_device_name(dut), seed=seed,
        engine=engine, shard_rows=shard_rows, n_rows=0,
        specifications=dut.specifications)
    manifest.events.append({
        "op": "generate", "start": 0, "stop": 0, "engine": engine,
        "max_failures": budget, "elapsed_s": 0.0,
        "instances_per_minute": 0.0,
    })
    report = GenerationReport(n_requested=n_rows)
    batches = generate_instance_batches(
        dut, n_rows, seed, batch_size=manifest.shard_rows,
        n_jobs=n_jobs, engine=engine, max_failures=budget, report=report)
    with get_telemetry().span("data.generate", rows=n_rows,
                              device=manifest.device, engine=engine):
        _append_batches(root, manifest, batches, report)
    return ShardedSpecDataset(root)


def extend_shards(root, dut, n_rows, seed=None, n_jobs=None,
                  engine=None, max_failures=None):
    """Grow an existing store to ``n_rows`` without re-simulating.

    Returns the reopened :class:`ShardedSpecDataset`.  ``seed`` and
    ``engine`` default to the manifest's values; a ``seed`` that
    contradicts the manifest raises -- the store's identity is its
    ``(device, seed)`` pair.  If the store already holds ``n_rows`` or
    more, this is a no-op.
    """
    root = os.fspath(root)
    store = ShardedSpecDataset(root)
    manifest = store.manifest
    if manifest.specifications != dut.specifications:
        raise DatasetError(
            "store {} was generated for a different specification set "
            "than this DUT".format(root))
    if seed is not None and int(seed) != manifest.seed:
        raise DatasetError(
            "store {} was generated with seed {}, not {} -- extending "
            "would mix seed trees".format(root, manifest.seed, seed))
    n_rows = int(n_rows)
    old_n = manifest.n_rows
    if n_rows <= old_n:
        return store
    engine = manifest.engine if engine is None else engine
    # A resume event: the store grows from old_n without re-simulating
    # its prefix.  Count it and span the whole extension.
    tel = get_telemetry()
    tel.counter("repro_data_resume_total", 1)
    budget = (default_max_failures(n_rows)
              if max_failures is None else int(max_failures))
    # Seed the report with the prefix's accounting so the shared
    # failure budget -- and therefore the abort decision -- matches a
    # cold generation of n_rows.
    report = GenerationReport(n_requested=n_rows)
    report.n_failed = sum(int(s["n_failed"]) for s in manifest.shards)
    report.n_simulated = sum(int(s["n_simulated"])
                             for s in manifest.shards)
    manifest.events.append({
        "op": "extend", "start": old_n, "stop": old_n, "engine": engine,
        "max_failures": budget, "elapsed_s": 0.0,
        "instances_per_minute": 0.0,
    })

    shard_rows = manifest.shard_rows
    row = old_n
    with tel.span("data.extend", rows=n_rows - old_n,
                  device=manifest.device, resume_at=old_n):
        if old_n % shard_rows:
            # Complete the trailing partial shard: simulate only its
            # missing slots, merge with the rows already on disk.
            index = old_n // shard_rows
            fill = min(n_rows, (index + 1) * shard_rows)
            entry = manifest.shards[index]
            old_values = np.array(store.shard_values(index))
            store._maps.pop(index, None)  # file is about to be replaced
            batches = generate_instance_batches(
                dut, fill - old_n, manifest.seed, batch_size=shard_rows,
                n_jobs=n_jobs, engine=engine, max_failures=budget,
                first_slot=old_n, report=report)
            _append_batches(root, manifest, batches, report,
                            prefix=(index, old_values,
                                    int(entry["n_failed"]),
                                    int(entry["n_simulated"])))
            row = fill
        if row < n_rows:
            batches = generate_instance_batches(
                dut, n_rows - row, manifest.seed, batch_size=shard_rows,
                n_jobs=n_jobs, engine=engine, max_failures=budget,
                first_slot=row, report=report)
            _append_batches(root, manifest, batches, report)
    return ShardedSpecDataset(root)


def repair_shards(root, dut, n_jobs=None, engine=None):
    """Regenerate corrupted shards from the per-instance seed tree.

    Re-hashes every shard against the manifest; each shard that fails
    -- bad content hash, truncated file, unreadable container, missing
    file -- is re-simulated from the seed tree (exactly its slot range
    ``[start, stop)`` via ``first_slot``), rewritten atomically, and
    re-verified against the *original* manifest hash.  Because every
    slot is a pure function of ``(dut, seed, slot index)``, a repaired
    shard is bit-identical to the one first generated; a repair that
    does not hash back to the manifest means the DUT, seed or engine
    does not match the store, and raises
    :class:`~repro.errors.DatasetError` rather than bless wrong bytes.

    Returns the list of repaired shard indices (empty = store clean).
    """
    root = os.fspath(root)
    store = ShardedSpecDataset(root)
    manifest = store.manifest
    if manifest.specifications != dut.specifications:
        raise DatasetError(
            "store {} was generated for a different specification set "
            "than this DUT".format(root))
    engine = manifest.engine if engine is None else engine
    budget = default_max_failures(max(manifest.n_rows, 1))
    repaired = []
    tel = get_telemetry()
    with tel.span("data.repair", device=manifest.device,
                  shards=len(manifest.shards)):
        for index, entry in enumerate(manifest.shards):
            store._maps.pop(index, None)  # never verify a cached map
            try:
                digest = shard_io.array_sha256(store.shard_values(index))
                healthy = digest == entry["sha256"]
            except (DatasetError, OSError, ValueError, KeyError):
                # Unreadable counts as corrupt: truncated zip, torn
                # write, clobbered npy header, missing file.
                healthy = False
            store._maps.pop(index, None)
            if healthy:
                continue
            start, stop = int(entry["start"]), int(entry["stop"])
            report = GenerationReport(n_requested=stop - start)
            batches = generate_instance_batches(
                dut, stop - start, manifest.seed, batch_size=stop - start,
                n_jobs=n_jobs, engine=engine, max_failures=budget,
                first_slot=start, report=report)
            values = np.ascontiguousarray(np.vstack(list(batches)).T)
            digest = shard_io.write_shard(
                os.path.join(root, entry["file"]), values)
            if digest != entry["sha256"]:
                raise DatasetError(
                    "repaired shard {} ({}) hashes to {} but the manifest "
                    "records {} -- this DUT/seed/engine does not reproduce "
                    "the store; refusing to bless wrong bytes".format(
                        index, entry["file"], digest, entry["sha256"]))
            repaired.append(index)
            tel.counter("repro_data_repaired_shards_total", 1)
    if repaired:
        manifest.events.append({
            "op": "repair", "start": 0, "stop": manifest.n_rows,
            "engine": engine, "shards": list(repaired),
        })
        manifest.save(root)
    return repaired


def ensure_dataset(root, dut, n_rows, seed, shard_rows=DEFAULT_SHARD_ROWS,
                   n_jobs=None, engine="scalar", max_failures=None,
                   device=None):
    """Open-or-grow the ``(device, seed)`` store under cache root ``root``.

    The store lives in ``root/<device>-s<seed>``.  A missing store is
    generated; an existing one is extended to at least ``n_rows`` (its
    recorded ``shard_rows`` wins over the argument -- boundaries are
    fixed for the store's lifetime).  Returns the
    :class:`ShardedSpecDataset`, which may hold *more* than ``n_rows``
    rows; consumers take the head they need (a prefix of the seed tree
    is the smaller run, by construction).
    """
    device = device or dataset_device_name(dut)
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", device)
    path = os.path.join(os.fspath(root), "{}-s{}".format(safe, int(seed)))
    if _store_exists(path):
        return extend_shards(path, dut, n_rows, seed=seed, n_jobs=n_jobs,
                             engine=engine, max_failures=max_failures)
    return generate_shards(path, dut, n_rows, seed,
                           shard_rows=shard_rows, n_jobs=n_jobs,
                           engine=engine, max_failures=max_failures,
                           device=device)
