""":class:`ShardedSpecDataset`: a manifested, memory-mapped population.

The sharded dataset is the out-of-core sibling of
:class:`~repro.process.dataset.SpecDataset`.  It exposes the same
vocabulary the rest of the codebase already speaks --
``specifications``, ``names``, ``normalized_values``, ``labels``,
``column`` -- but backs them with read-only memmaps over the shard
files, so the peak resident footprint of any consumer is bounded by
how much it slices, not by the population size.

Bit-identity contract: every accessor reproduces *exactly* the bytes
the in-RAM path would produce.  Shards store values spec-major
``(n_specs, shard_rows)``; row batches transpose a slice back to
row-major, which is a pure data movement.  ``normalized_values`` and
``shifted_labels`` apply the same element-wise arithmetic as
:class:`SpecificationSet` does in RAM, one shard panel at a time --
element-wise ops are chunk-invariant, so the assembled results are
bitwise equal to the monolithic computation.
"""

import os

import numpy as np

from repro.data import shard as shard_io
from repro.data.manifest import Manifest
from repro.errors import DatasetError
from repro.process.dataset import SpecDataset


class ShardedSpecDataset:
    """Read view over a shard store directory written by ``repro.data``.

    Parameters
    ----------
    root:
        Directory holding ``manifest.json`` and the shard files.
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        self.manifest = Manifest.load(self.root)
        self._maps = {}

    # -- identity -------------------------------------------------------------
    @property
    def specifications(self):
        return self.manifest.specifications

    @property
    def names(self):
        return self.specifications.names

    @property
    def n_rows(self):
        return self.manifest.n_rows

    @property
    def n_specs(self):
        return self.manifest.n_specs

    @property
    def seed(self):
        return self.manifest.seed

    @property
    def device(self):
        return self.manifest.device

    @property
    def engine(self):
        return self.manifest.engine

    @property
    def shard_rows(self):
        return self.manifest.shard_rows

    @property
    def n_shards(self):
        return len(self.manifest.shards)

    def __len__(self):
        return self.n_rows

    def __repr__(self):
        return ("ShardedSpecDataset({!r}, {} rows, {} specs, "
                "{} shards x {})".format(
                    self.device, self.n_rows, self.n_specs,
                    self.n_shards, self.shard_rows))

    # -- shard access ---------------------------------------------------------
    def shard_path(self, index):
        return os.path.join(self.root, self.manifest.shards[index]["file"])

    def shard_values(self, index):
        """Spec-major ``(n_specs, rows)`` memmap of one shard."""
        if index not in self._maps:
            entry = self.manifest.shards[index]
            rows = int(entry["stop"]) - int(entry["start"])
            self._maps[index] = shard_io.open_shard_values(
                self.shard_path(index),
                expect_dtype=self.manifest.dtype,
                expect_shape=(self.n_specs, rows))
        return self._maps[index]

    def iter_batches(self, batch_size=None):
        """Yield row-major ``(rows, n_specs)`` float64 batches.

        The default batch is one shard; a smaller ``batch_size`` slices
        within shards.  Concatenating all batches reproduces the in-RAM
        value matrix bitwise.
        """
        for index in range(self.n_shards):
            values = self.shard_values(index)
            rows = values.shape[1]
            step = rows if batch_size is None else int(batch_size)
            if step <= 0:
                raise DatasetError("batch_size must be positive")
            for start in range(0, rows, step):
                block = values[:, start:start + step]
                yield np.ascontiguousarray(block.T, dtype=float)

    # -- SpecDataset-compatible accessors ------------------------------------
    @property
    def values(self):
        """Full row-major value matrix, materialized in RAM.

        Provided for interop and small stores; out-of-core consumers
        should prefer :meth:`iter_batches` / :meth:`normalized_values`.
        """
        out = np.empty((self.n_rows, self.n_specs), dtype=float)
        row = 0
        for batch in self.iter_batches():
            out[row:row + batch.shape[0]] = batch
            row += batch.shape[0]
        return out

    @property
    def labels(self):
        """Ground-truth +1/-1 labels against the full spec set."""
        out = np.empty(self.n_rows, dtype=int)
        row = 0
        for batch in self.iter_batches():
            out[row:row + batch.shape[0]] = \
                self.specifications.labels(batch)
            row += batch.shape[0]
        return out

    @property
    def yield_fraction(self):
        return float(np.mean(self.labels == 1))

    def column(self, name):
        """Measurement vector of one specification (contiguous reads)."""
        idx = self.specifications.index(name)
        parts = [np.asarray(self.shard_values(i)[idx, :])
                 for i in range(self.n_shards)]
        if not parts:
            return np.empty(0, dtype=float)
        return np.concatenate(parts)

    def normalized_values(self, names=None):
        """Range-normalized ``(n_rows, k)`` feature matrix.

        Assembled shard panel by shard panel; bitwise equal to
        ``SpecDataset.normalized_values`` on the concatenated values
        because normalization is element-wise per column.
        """
        if names is None:
            names = self.names
        names = list(names)
        specs = self.specifications.subset(names)
        idx = [self.specifications.index(n) for n in names]
        out = np.empty((self.n_rows, len(names)), dtype=float)
        row = 0
        for index in range(self.n_shards):
            values = self.shard_values(index)
            panel = np.ascontiguousarray(values[idx, :].T, dtype=float)
            out[row:row + panel.shape[0]] = specs.normalize(panel)
            row += panel.shape[0]
        return out

    def shifted_labels(self, names, deltas):
        """Labels against the named specs shifted by ``deltas``.

        The streamed counterpart of
        ``specs.subset(names).shifted(deltas).labels(values)``; pass
        ``None`` for unshifted labels.  Comparisons are exact, so the
        result is bitwise equal to the in-RAM computation.
        """
        names = list(names)
        specs = self.specifications.subset(names)
        if deltas is not None:
            specs = specs.shifted(deltas)
        idx = [self.specifications.index(n) for n in names]
        out = np.empty(self.n_rows, dtype=int)
        row = 0
        for index in range(self.n_shards):
            values = self.shard_values(index)
            panel = np.ascontiguousarray(values[idx, :].T, dtype=float)
            out[row:row + panel.shape[0]] = specs.labels(panel)
            row += panel.shape[0]
        return out

    # -- conversion -----------------------------------------------------------
    def head(self, n):
        """First ``n`` rows as an in-RAM :class:`SpecDataset`."""
        n = int(n)
        if not 0 < n <= self.n_rows:
            raise DatasetError(
                "head({}) out of range for a {}-row dataset".format(
                    n, self.n_rows))
        out = np.empty((n, self.n_specs), dtype=float)
        row = 0
        for batch in self.iter_batches():
            if row >= n:
                break
            take = min(batch.shape[0], n - row)
            out[row:row + take] = batch[:take]
            row += take
        return SpecDataset(self.specifications, out)

    def to_dataset(self):
        """The whole store as an in-RAM :class:`SpecDataset`."""
        return self.head(self.n_rows)

    # -- integrity ------------------------------------------------------------
    def verify(self):
        """Re-hash every shard against the manifest.

        Raises :class:`~repro.errors.DatasetError` on the first shard
        whose stored bytes do not match its recorded content hash, and
        returns the number of shards checked otherwise.
        """
        for index, entry in enumerate(self.manifest.shards):
            digest = shard_io.array_sha256(self.shard_values(index))
            if digest != entry["sha256"]:
                raise DatasetError(
                    "shard {} ({}) fails verification: stored hash {} "
                    "!= manifest hash {}".format(
                        index, entry["file"], digest, entry["sha256"]))
        return self.n_shards

    def shard_hashes(self):
        """Manifest content hashes, in shard order."""
        return [entry["sha256"] for entry in self.manifest.shards]
