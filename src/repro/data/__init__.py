"""The million-device data plane: sharded, manifested Monte-Carlo stores.

``repro.data`` keeps arbitrarily large populations on disk as
fixed-boundary columnar shards plus a JSON manifest, and feeds them to
the rest of the stack -- floor, pipeline, benches, CLI, out-of-core
training -- through memory-mapped views.  Three invariants carry the
whole layer (see ARCHITECTURE.md, "The data plane"):

1. **Any shard in isolation**: each row is a pure function of
   ``(device, seed, row index)`` via the per-instance seed tree, so
   any shard can be regenerated -- and verified by content hash --
   without its neighbors.
2. **Concatenation is the in-RAM dataset**: reading every shard back
   in order is bit-identical to ``generate_instances`` at any shard
   size and worker count.
3. **Extending never re-simulates**: growing a store rewrites at most
   the trailing partial shard and is file-for-file hash-identical to a
   cold generation of the larger size.
"""

from repro.data.generate import (
    DEFAULT_SHARD_ROWS,
    dataset_device_name,
    ensure_dataset,
    extend_shards,
    generate_shards,
    repair_shards,
)
from repro.data.manifest import Manifest
from repro.data.shard import array_sha256
from repro.data.store import ShardedSpecDataset
from repro.data.training import fit_guard_banded, fit_ovr_bank

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "Manifest",
    "ShardedSpecDataset",
    "array_sha256",
    "dataset_device_name",
    "ensure_dataset",
    "extend_shards",
    "fit_guard_banded",
    "fit_ovr_bank",
    "generate_shards",
    "repair_shards",
]
