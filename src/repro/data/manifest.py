"""Dataset manifests: the JSON source of truth for a shard store.

The manifest records everything needed to (a) reproduce any shard in
isolation and (b) refuse to read a store that does not match what was
written: the device and generation scheme, the base seed of the
per-instance seed tree, the spec universe (full
:class:`~repro.core.specs.Specification` records, not just names), the
stored dtype, and per-shard row ranges with content hashes.

Shard boundaries are *fixed* by ``shard_rows``: shard ``i`` always
covers rows ``[i * shard_rows, min(n_rows, (i + 1) * shard_rows))``.
Because every row is a pure function of ``(device, seed, row index)``,
extending a dataset reuses every complete shard untouched and rewrites
at most the one trailing partial shard -- and a cold regeneration to
the larger size reproduces the identical files, hash for hash.

``events`` is an append-only log of generation/extension runs (row
ranges, wall-clock, throughput).  It is diagnostic only: two stores
with equal shards but different event timings are the same dataset.
"""

import json
import os
import tempfile

import numpy as np

from repro.core.specs import Specification, SpecificationSet
from repro.errors import DatasetError

FORMAT = "repro-dataset"
VERSION = 1

#: Manifest file name inside a dataset directory.
MANIFEST_NAME = "manifest.json"

#: Per-instance seed-tree scheme (``SeedSequence(seed).spawn``); the
#: only scheme this version writes or reads.
SCHEME = "per-instance-seed-tree"

#: Shards always store native little-endian float64.
DTYPE = "<f8"


def specs_to_meta(specifications):
    """Serialize a SpecificationSet to plain JSON records."""
    return [{
        "name": s.name, "unit": s.unit, "nominal": s.nominal,
        "low": s.low, "high": s.high, "description": s.description,
    } for s in specifications]


def specs_from_meta(records):
    """Rebuild a SpecificationSet from :func:`specs_to_meta` output."""
    return SpecificationSet([
        Specification(m["name"], m["unit"], m["nominal"], m["low"],
                      m["high"], m.get("description", ""))
        for m in records])


def shard_file_name(index):
    """Canonical file name of shard ``index``."""
    return "shard-{:05d}.npz".format(index)


class Manifest:
    """In-memory form of ``manifest.json``."""

    def __init__(self, device, seed, engine, shard_rows, n_rows,
                 specifications, shards=None, events=None,
                 scheme=SCHEME, dtype=DTYPE):
        if not isinstance(specifications, SpecificationSet):
            specifications = SpecificationSet(specifications)
        self.device = str(device)
        self.seed = int(seed)
        self.engine = str(engine)
        self.shard_rows = int(shard_rows)
        self.n_rows = int(n_rows)
        self.specifications = specifications
        self.shards = list(shards or [])
        self.events = list(events or [])
        self.scheme = scheme
        self.dtype = dtype
        self._check()

    # -- validation -----------------------------------------------------------
    def _check(self):
        if self.scheme != SCHEME:
            raise DatasetError(
                "unsupported generation scheme {!r} (this version "
                "understands {!r})".format(self.scheme, SCHEME))
        if np.dtype(self.dtype) != np.dtype("<f8"):
            raise DatasetError(
                "manifest records dtype {!r}; shard stores are "
                "little-endian float64 ({!r}) -- refusing a mismatched "
                "load".format(self.dtype, DTYPE))
        if self.shard_rows <= 0:
            raise DatasetError("shard_rows must be positive")
        if self.n_rows < 0:
            raise DatasetError("n_rows must be non-negative")
        expected = 0
        for index, shard in enumerate(self.shards):
            start, stop = int(shard["start"]), int(shard["stop"])
            if start != expected or stop <= start:
                raise DatasetError(
                    "manifest shard {} covers rows [{}, {}) but the "
                    "previous shard ended at row {} -- row ranges must "
                    "be contiguous".format(index, start, stop, expected))
            if start != index * self.shard_rows:
                raise DatasetError(
                    "manifest shard {} starts at row {} instead of the "
                    "fixed boundary {}".format(
                        index, start, index * self.shard_rows))
            if stop - start > self.shard_rows:
                raise DatasetError(
                    "manifest shard {} holds {} rows, more than "
                    "shard_rows={}".format(
                        index, stop - start, self.shard_rows))
            if (stop - start < self.shard_rows
                    and index != len(self.shards) - 1):
                raise DatasetError(
                    "manifest shard {} is partial but not the last "
                    "shard".format(index))
            expected = stop
        if expected != self.n_rows:
            raise DatasetError(
                "manifest records {} rows but its shards cover {}"
                .format(self.n_rows, expected))

    @property
    def n_specs(self):
        return len(self.specifications)

    # -- persistence ----------------------------------------------------------
    def to_json(self):
        return {
            "format": FORMAT,
            "version": VERSION,
            "device": self.device,
            "scheme": self.scheme,
            "seed": self.seed,
            "engine": self.engine,
            "dtype": self.dtype,
            "shard_rows": self.shard_rows,
            "n_rows": self.n_rows,
            "specifications": specs_to_meta(self.specifications),
            "shards": [{
                "file": s["file"],
                "start": int(s["start"]),
                "stop": int(s["stop"]),
                "sha256": s["sha256"],
                "n_failed": int(s.get("n_failed", 0)),
                "n_simulated": int(s.get("n_simulated", 0)),
            } for s in self.shards],
            "events": self.events,
        }

    def save(self, root):
        """Atomically write ``manifest.json`` under ``root``."""
        root = os.fspath(root)
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload + "\n")
            os.replace(tmp, os.path.join(root, MANIFEST_NAME))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @classmethod
    def load(cls, root):
        path = os.path.join(os.fspath(root), MANIFEST_NAME)
        if not os.path.exists(path):
            raise DatasetError(
                "{} is not a shard store (no {})".format(
                    root, MANIFEST_NAME))
        try:
            with open(path) as handle:
                raw = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise DatasetError(
                "cannot read manifest {}: {}".format(path, exc))
        if not isinstance(raw, dict) or raw.get("format") != FORMAT:
            raise DatasetError(
                "{} is not a {} manifest".format(path, FORMAT))
        if raw.get("version") != VERSION:
            raise DatasetError(
                "manifest {} has version {!r}; this build reads "
                "version {}".format(path, raw.get("version"), VERSION))
        try:
            return cls(
                device=raw["device"], seed=raw["seed"],
                engine=raw["engine"], shard_rows=raw["shard_rows"],
                n_rows=raw["n_rows"],
                specifications=specs_from_meta(raw["specifications"]),
                shards=raw["shards"], events=raw.get("events", []),
                scheme=raw.get("scheme", SCHEME),
                dtype=raw.get("dtype", DTYPE))
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                "manifest {} is malformed: {!r}".format(path, exc))
