"""Manufacturing process models: random disturbances on device parameters.

The paper generates training data "using Monte-Carlo simulations of
devices with random variations imposed on various device parameters".
This module provides the disturbance distributions and a generic
:class:`ProcessModel` that perturbs named parameters of any DUT whose
parameters live in a ``dict`` or dataclass.

The DUT benches in :mod:`repro.opamp` and :mod:`repro.mems` embed their
own default models; :class:`ProcessModel` is the extension point for
users bringing their own devices.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


class Disturbance:
    """Base class: a multiplicative or additive random disturbance."""

    def sample(self, rng, nominal):
        """Return a perturbed value given the nominal one."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformDisturbance(Disturbance):
    """Multiplicative uniform disturbance: ``nominal * U(1-s, 1+s)``.

    This matches the paper's description of altering parameters
    "within <x> % of their nominal values".
    """

    relative_spread: float

    def sample(self, rng, nominal):
        s = self.relative_spread
        return nominal * (1.0 + rng.uniform(-s, s))


#: Smallest multiplier :class:`NormalDisturbance` may apply; keeps the
#: perturbed value's sign and a (tiny) nonzero magnitude.
MIN_NORMAL_MULTIPLIER = 1e-6


@dataclass(frozen=True)
class NormalDisturbance(Disturbance):
    """Multiplicative Gaussian disturbance: ``nominal * N(1, sigma)``.

    ``clip_sigmas`` truncates the distribution to avoid non-physical
    (e.g. negative-width) samples.  Whenever the requested clip would
    still allow a non-positive multiplier (``relative_sigma *
    clip_sigmas >= 1``), the lower clip is tightened so that
    ``1 + relative_sigma * z`` stays at or above
    :data:`MIN_NORMAL_MULTIPLIER` -- the sampled value can never lose
    the nominal's sign, for any ``relative_sigma``.
    """

    relative_sigma: float
    clip_sigmas: float = 4.0

    def sample(self, rng, nominal):
        z = rng.normal(0.0, 1.0)
        clip_low = self.clip_sigmas
        if self.relative_sigma * self.clip_sigmas >= 1.0:
            clip_low = (1.0 - MIN_NORMAL_MULTIPLIER) / self.relative_sigma
        z = float(np.clip(z, -clip_low, self.clip_sigmas))
        return nominal * (1.0 + self.relative_sigma * z)


@dataclass(frozen=True)
class LognormalDisturbance(Disturbance):
    """Multiplicative lognormal disturbance (always positive).

    Suitable for strictly positive quantities with skewed variation,
    e.g. sheet resistances and saturation currents.
    """

    sigma_log: float

    def sample(self, rng, nominal):
        return nominal * float(np.exp(rng.normal(0.0, self.sigma_log)))


@dataclass(frozen=True)
class Parameter:
    """A named DUT parameter with its nominal value and disturbance."""

    name: str
    nominal: float
    disturbance: Disturbance

    def sample(self, rng):
        """Draw one perturbed value."""
        return self.disturbance.sample(rng, self.nominal)


class ProcessModel:
    """A named collection of :class:`Parameter` disturbances.

    Example
    -------
    ::

        model = ProcessModel([
            Parameter("w1", 50e-6, UniformDisturbance(0.15)),
            Parameter("cc", 20e-12, NormalDisturbance(0.05)),
        ])
        sample = model.sample(np.random.default_rng(0))
        # {'w1': 5.1e-05, 'cc': 1.98e-11}
    """

    def __init__(self, parameters):
        params = tuple(parameters)
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ReproError(
                "duplicate parameter names in process model: "
                "{}".format(sorted(names)))
        if not params:
            raise ReproError("a ProcessModel needs at least one parameter")
        self._params = params

    @property
    def parameters(self):
        """Tuple of :class:`Parameter` objects."""
        return self._params

    @property
    def names(self):
        """Tuple of parameter names."""
        return tuple(p.name for p in self._params)

    def sample(self, rng):
        """Draw one complete parameter assignment as a dict."""
        return {p.name: p.sample(rng) for p in self._params}

    def sample_many(self, rng, n):
        """Draw ``n`` assignments as an ``(n, n_params)`` array."""
        out = np.empty((n, len(self._params)))
        for i in range(n):
            for j, p in enumerate(self._params):
                out[i, j] = p.sample(rng)
        return out

    def __len__(self):
        return len(self._params)

    def __repr__(self):
        return "ProcessModel({} parameters)".format(len(self._params))
