"""The :class:`SpecDataset` container: measurements, labels, persistence.

A dataset holds one row per simulated device instance and one column
per specification measurement, together with the
:class:`~repro.core.specs.SpecificationSet` that defines pass/fail.
Labels are always *derived* from the full measurement matrix (+1 good /
-1 bad), so projecting the dataset onto a subset of specifications
keeps the ground-truth labels of the complete test set -- exactly what
the compaction procedure needs.
"""

import json

import numpy as np

from repro.core.specs import Specification, SpecificationSet
from repro.errors import DatasetError


class SpecDataset:
    """Measured specification values for a population of devices.

    Parameters
    ----------
    specifications:
        The :class:`~repro.core.specs.SpecificationSet` describing the
        columns.
    values:
        ``(n_instances, n_specs)`` measurement matrix in specification
        units.
    labels:
        Optional per-instance labels (+1/-1).  When omitted they are
        computed from ``values`` against the acceptability ranges --
        the standard path.  Passing labels explicitly supports the
        compaction loop, where features are projected onto a test
        subset but labels must keep reflecting the *complete*
        specification set.
    """

    def __init__(self, specifications, values, labels=None):
        if not isinstance(specifications, SpecificationSet):
            specifications = SpecificationSet(specifications)
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise DatasetError("values must be a 2-D matrix")
        if values.shape[1] != len(specifications):
            raise DatasetError(
                "values has {} columns but there are {} specifications"
                .format(values.shape[1], len(specifications)))
        if not np.all(np.isfinite(values)):
            raise DatasetError("values contain NaN or infinity")
        self.specifications = specifications
        self.values = values
        if labels is None:
            self.labels = specifications.labels(values)
        else:
            labels = np.asarray(labels)
            if labels.shape != (values.shape[0],):
                raise DatasetError("labels shape mismatch")
            if not np.all(np.isin(labels, (-1, 1))):
                raise DatasetError("labels must be +1 or -1")
            self.labels = labels.astype(int)

    # -- basic protocol -----------------------------------------------------
    def __len__(self):
        return self.values.shape[0]

    @property
    def n_specs(self):
        """Number of specification columns."""
        return self.values.shape[1]

    @property
    def names(self):
        """Specification names, in column order."""
        return self.specifications.names

    @property
    def yield_fraction(self):
        """Fraction of instances labeled good."""
        return float(np.mean(self.labels == 1))

    def __repr__(self):
        return "SpecDataset({} instances, {} specs, yield={:.1%})".format(
            len(self), self.n_specs, self.yield_fraction)

    # -- views ---------------------------------------------------------------
    def column(self, name):
        """Measurement vector of one specification."""
        return self.values[:, self.specifications.index(name)]

    def project(self, names):
        """Dataset restricted to the given specification columns.

        The labels are preserved from the *full* specification set, so
        an instance that fails only a projected-away specification
        remains labeled bad.  This is the feature view used when a test
        has been (tentatively) eliminated.
        """
        idx = [self.specifications.index(n) for n in names]
        return SpecDataset(self.specifications.subset(names),
                           self.values[:, idx], labels=self.labels)

    def normalized_values(self, names=None):
        """Range-normalized measurement matrix (paper Section 4.3)."""
        if names is None:
            return self.specifications.normalize(self.values)
        return self.project(names).normalized_values()

    def subset(self, indices):
        """Dataset restricted to the given instance rows.

        ``indices`` may be an integer index array or a boolean mask.
        """
        indices = np.asarray(indices)
        if indices.dtype != bool:
            indices = indices.astype(int)
        return SpecDataset(self.specifications, self.values[indices],
                           labels=self.labels[indices])

    def split(self, fraction, seed=0):
        """Random split into ``(first, second)`` datasets.

        ``fraction`` is the share of instances in the first part.
        """
        if not 0.0 < fraction < 1.0:
            raise DatasetError("split fraction must be inside (0, 1)")
        rng = np.random.default_rng(seed)
        n = len(self)
        order = rng.permutation(n)
        k = int(round(fraction * n))
        if k == 0 or k == n:
            raise DatasetError("split produces an empty part")
        return self.subset(order[:k]), self.subset(order[k:])

    def concat(self, other):
        """Concatenate two datasets over the same specifications."""
        if self.specifications != other.specifications:
            raise DatasetError("datasets have different specifications")
        return SpecDataset(
            self.specifications,
            np.vstack([self.values, other.values]),
            labels=np.concatenate([self.labels, other.labels]))

    def relabeled(self, specifications):
        """Re-derive labels against a *different* specification set.

        Used by the guard-band construction, which classifies the same
        measurements against inward/outward-shifted ranges.
        """
        return SpecDataset(specifications, self.values)

    # -- persistence ----------------------------------------------------------
    def save(self, path):
        """Serialize to an ``.npz`` archive (values + spec metadata).

        The metadata records the exact stored dtypes (including byte
        order, e.g. ``"<f8"``), so :meth:`load` can reject a file whose
        arrays do not match what this process wrote -- a truncated or
        foreign-endian file must fail loudly, never feed subtly wrong
        floats into a compaction run.
        """
        meta = {
            "specifications": [{
                "name": s.name, "unit": s.unit, "nominal": s.nominal,
                "low": s.low, "high": s.high,
                "description": s.description,
            } for s in self.specifications],
            "values_dtype": self.values.dtype.str,
            "labels_dtype": np.asarray(self.labels).dtype.str,
        }
        np.savez_compressed(
            path, values=self.values, labels=self.labels,
            spec_json=np.array(json.dumps(meta)))

    @classmethod
    def load(cls, path):
        """Load a dataset written by :meth:`save`.

        Files written before dtype recording (spec metadata as a bare
        list) still load; files that *do* record dtypes are checked
        and a mismatch raises :class:`~repro.errors.DatasetError`.
        """
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["spec_json"]))
            spec_meta = (meta["specifications"]
                         if isinstance(meta, dict) else meta)
            if isinstance(meta, dict):
                for key, name in (("values_dtype", "values"),
                                  ("labels_dtype", "labels")):
                    recorded = meta.get(key)
                    actual = archive[name].dtype.str
                    if recorded is not None and recorded != actual:
                        raise DatasetError(
                            "dataset file {} stores {} as dtype {} but "
                            "records {} -- refusing a mismatched "
                            "(e.g. foreign-endian) load".format(
                                path, name, actual, recorded))
            specs = SpecificationSet([
                Specification(m["name"], m["unit"], m["nominal"],
                              m["low"], m["high"], m.get("description", ""))
                for m in spec_meta])
            return cls(specs, archive["values"], labels=archive["labels"])
