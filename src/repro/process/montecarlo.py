"""The Monte-Carlo training-data generation loop (paper Fig. 1).

``generate_dataset`` repeatedly: samples a process-perturbed parameter
set, sets up and simulates the device, takes the specification
measurements and stores them -- until the requested number of training
instances is reached.  ``generate_many`` batches several independent
populations (device x temperature x lot) through one scheduler.

Seeding modes
-------------

``seed_mode="per-instance"`` (default)
    Every instance slot draws from its own child stream of
    ``numpy.random.SeedSequence(seed)`` (resamples after simulation
    failures stay inside the slot's stream).  Results are a pure
    function of ``(dut, seed, slot)``, so generation parallelizes
    across processes (``n_jobs``) with **bit-identical output at any
    worker count**, and the first ``k`` rows of an ``n``-instance run
    equal a ``k``-instance run.  See
    :mod:`repro.runtime.simulation` for the engine.
``seed_mode="sequential"``
    The legacy single shared stream: draw ``i + 1`` follows draw ``i``
    (and every resample shifts all later draws).  Kept for back-compat
    with seed-pinned datasets; inherently order-dependent, therefore
    serial-only.

The DUT protocol
----------------

Any object with these three members can be used as a device under test:

``specifications``
    A :class:`~repro.core.specs.SpecificationSet` naming the measured
    columns and their acceptability ranges.
``sample_parameters(rng)``
    Draw one process-disturbed parameter object.
``measure(params)``
    Simulate the instance and return a 1-D value array aligned with
    ``specifications``.
``measure_batch(params_list)`` (optional)
    Simulate many instances at once, returning one entry per input:
    either a value row or the :class:`~repro.errors.ReproError` that
    instance's ``measure`` would have raised.  Implementing it enables
    ``engine="batched"``, which routes whole slot waves through the
    vectorized MNA kernel (:mod:`repro.circuit.batch`); the produced
    dataset must be identical to ``measure`` per instance.

:class:`repro.opamp.OpAmpBench` and :class:`repro.mems.AccelerometerBench`
implement it; so can user-provided devices.  For parallel generation
both members must be pure functions (workers operate on pickled DUT
copies).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError, ReproError
from repro.process.dataset import SpecDataset

#: Valid ``seed_mode`` values.
SEED_MODES = ("per-instance", "sequential")

#: Valid ``engine`` values (the single authoritative tuple;
#: :mod:`repro.runtime.simulation` imports it from here).
ENGINES = ("scalar", "batched")


def default_max_failures(n_instances):
    """The documented default failure budget of a generation run."""
    return max(10, n_instances // 10)


@dataclass
class GenerationReport:
    """Bookkeeping for one Monte-Carlo generation run.

    ``n_failed`` is the authoritative failure count; ``failures``
    retains only the most recent :data:`MAX_STORED_FAILURES` messages
    so a pathological DUT in a million-instance run cannot grow an
    unbounded list.  ``elapsed_s`` is the wall-clock spent simulating
    (stamped by every generation entry point), so benches, the CLI
    ``dataset`` commands and the shard stores of :mod:`repro.data` all
    report throughput from the same figure.
    """

    n_requested: int
    n_simulated: int = 0
    n_failed: int = 0
    failures: list = field(default_factory=list)
    elapsed_s: float = 0.0

    #: Cap on retained failure messages (count is never capped).
    MAX_STORED_FAILURES = 50

    @property
    def instances_per_minute(self):
        """Generation throughput (0.0 until ``elapsed_s`` is stamped)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return 60.0 * self.n_requested / self.elapsed_s

    def record_failure(self, message):
        """Count one failure, keeping at most the newest messages."""
        self.n_failed += 1
        self.failures.append(message)
        if len(self.failures) > self.MAX_STORED_FAILURES:
            del self.failures[:len(self.failures)
                              - self.MAX_STORED_FAILURES]

    def __str__(self):
        return ("GenerationReport(requested={}, simulated={}, "
                "failed={}, {:.0f} inst/min)".format(
                    self.n_requested, self.n_simulated, self.n_failed,
                    self.instances_per_minute))


class BatchPopulation:
    """Per-instance bookkeeping for ``measure_batch`` implementations.

    The DUT protocol's batched hook must confine every failure --
    parameter validation, circuit build, batched solve, measurement
    extraction -- to its own instance, mirroring what the scalar
    ``measure`` would have raised for that instance alone.  This
    helper centralizes that pattern (both real benches use it):
    ``values[k]`` accumulates instance ``k``'s measurements and
    ``errors[k]`` its first failure; an instance with an error drops
    out of every subsequent stage.
    """

    def __init__(self, n):
        self.values = [dict() for _ in range(n)]
        self.errors = [None] * n

    def live(self):
        """Indices of instances with no recorded failure, in order."""
        return [k for k in range(len(self.errors))
                if self.errors[k] is None]

    def build(self, factory, items):
        """``factory(items[k])`` per live instance, failures confined.

        Returns ``(keys, objects)``: the instance indices that built
        successfully and the built objects, aligned.
        """
        keys, objects = [], []
        for k in self.live():
            try:
                objects.append(factory(items[k]))
            except ReproError as exc:
                self.errors[k] = exc
            else:
                keys.append(k)
        return keys, objects

    def absorb(self, keys, batch_errors):
        """Record per-instance batch failures; returns surviving keys."""
        survivors = []
        for pos, k in enumerate(keys):
            if batch_errors[pos] is not None:
                self.errors[k] = batch_errors[pos]
            else:
                survivors.append(k)
        return survivors

    def extract(self, k, fn, *args):
        """Run one instance's measurement extraction, failure-confined."""
        try:
            self.values[k].update(fn(*args))
        except ReproError as exc:
            self.errors[k] = exc

    def rows(self, names):
        """One value row (or the instance's first error) per instance."""
        out = []
        for k in range(len(self.errors)):
            if self.errors[k] is not None:
                out.append(self.errors[k])
            else:
                out.append(np.array([self.values[k][name]
                                     for name in names]))
        return out


def _resolve_generation_mode(seed_mode, n_jobs, engine="scalar"):
    """Validate the (seed_mode, n_jobs, engine) combination."""
    if seed_mode not in SEED_MODES:
        raise DatasetError("seed_mode must be one of {}".format(
            list(SEED_MODES)))
    if engine not in ENGINES:
        raise DatasetError("engine must be one of {}".format(
            list(ENGINES)))
    if seed_mode == "sequential":
        if engine != "scalar":
            raise DatasetError(
                "seed_mode='sequential' replays the legacy one-at-a-"
                "time draw order and only supports engine='scalar'")
        if n_jobs is not None:
            from repro.runtime.parallel import resolve_n_jobs

            if resolve_n_jobs(n_jobs) > 1:
                raise DatasetError(
                    "seed_mode='sequential' replays the order-dependent "
                    "legacy stream and cannot run in parallel; use "
                    "seed_mode='per-instance' with n_jobs")
    return seed_mode


def generate_dataset(dut, n_instances, seed, on_error="resample",
                     max_failures=None, return_report=False,
                     n_jobs=None, seed_mode="per-instance",
                     engine="scalar"):
    """Generate a labeled Monte-Carlo :class:`SpecDataset` for ``dut``.

    Parameters
    ----------
    dut:
        Device under test implementing the DUT protocol (see module
        docstring).
    n_instances:
        Number of device instances in the returned dataset.
    seed:
        Seed for the random process disturbances; generation is fully
        reproducible (see the seeding modes in the module docstring).
    on_error:
        ``"resample"`` (default): when a simulation fails to converge
        or a measurement cannot be extracted, record the failure and
        draw a fresh instance.  ``"raise"``: propagate the first error.
    max_failures:
        Abort (raise) at exactly this many failures with
        ``"resample"``; defaults to ``max(10, n_instances // 10)``.
    return_report:
        When True, return ``(dataset, GenerationReport)``.
    n_jobs:
        Worker processes for the instance simulations (``None``/``1``
        serial, ``-1`` one per CPU).  Requires the default
        ``seed_mode="per-instance"``; the result is bit-identical at
        any worker count.
    seed_mode:
        ``"per-instance"`` (default) or ``"sequential"`` (legacy
        shared-stream draw order, serial-only).
    engine:
        ``"scalar"`` (default, one ``dut.measure`` per instance) or
        ``"batched"`` (whole slot chunks through ``dut.measure_batch``
        and the stacked MNA kernel of :mod:`repro.circuit.batch`).
        The dataset, report and abort behaviour are identical between
        engines; ``"batched"`` requires the DUT to implement
        ``measure_batch`` and the default ``seed_mode``.

    Returns
    -------
    SpecDataset or (SpecDataset, GenerationReport)
    """
    if n_instances <= 0:
        raise DatasetError("n_instances must be positive")
    if on_error not in ("resample", "raise"):
        raise DatasetError("on_error must be 'resample' or 'raise'")
    _resolve_generation_mode(seed_mode, n_jobs, engine)

    if seed_mode == "per-instance":
        from repro.runtime.simulation import generate_instances

        values, report = generate_instances(
            dut, n_instances, seed, n_jobs=n_jobs, on_error=on_error,
            max_failures=max_failures, engine=engine)
    else:
        values, report = _generate_sequential(
            dut, n_instances, seed, on_error, max_failures)

    dataset = SpecDataset(dut.specifications, values)
    if return_report:
        return dataset, report
    return dataset


def _generate_sequential(dut, n_instances, seed, on_error, max_failures):
    """The legacy single-stream generation loop (serial by nature)."""
    import time

    if max_failures is None:
        max_failures = default_max_failures(n_instances)

    rng = np.random.default_rng(seed)
    n_specs = len(dut.specifications)
    values = np.empty((n_instances, n_specs))
    report = GenerationReport(n_requested=n_instances)
    t_start = time.perf_counter()

    filled = 0
    while filled < n_instances:
        params = dut.sample_parameters(rng)
        try:
            row = np.asarray(dut.measure(params), dtype=float)
        except ReproError as exc:
            report.record_failure(str(exc))
            if on_error == "raise":
                raise
            if report.n_failed >= max_failures:
                raise DatasetError(
                    "Monte-Carlo generation aborted: {} simulation "
                    "failures (last: {})".format(report.n_failed, exc))
            continue
        finally:
            report.n_simulated += 1
        if row.shape != (n_specs,):
            raise DatasetError(
                "DUT measure() returned shape {}, expected ({},)".format(
                    row.shape, n_specs))
        if not np.all(np.isfinite(row)):
            report.record_failure("non-finite measurement")
            if on_error == "raise":
                raise DatasetError("non-finite measurement from DUT")
            if report.n_failed >= max_failures:
                raise DatasetError(
                    "Monte-Carlo generation aborted: too many non-finite "
                    "measurements")
            continue
        values[filled] = row
        filled += 1
    report.elapsed_s = time.perf_counter() - t_start
    return values, report


def generate_many(requests, n_jobs=None, on_error="resample",
                  max_failures=None, return_reports=False,
                  seed_mode="per-instance", engine="scalar"):
    """Generate several independent Monte-Carlo populations at once.

    This is the lot scheduler for device x temperature x lot batches:
    all requested populations are flattened into one pool of instance
    simulations, so many small lots keep every worker busy.

    Parameters
    ----------
    requests:
        Sequence of ``(dut, n_instances, seed)`` tuples, one per
        population.  DUTs may differ between requests.
    n_jobs:
        Worker processes shared across *all* populations (``None``/``1``
        serial, ``-1`` one per CPU); output is independent of the
        worker count.
    on_error, max_failures:
        As in :func:`generate_dataset`, applied to every request
        (``max_failures`` defaults per lot from its own size).
    return_reports:
        When True, return ``(dataset, GenerationReport)`` pairs.
    seed_mode:
        ``"per-instance"`` (default) or the serial-only
        ``"sequential"`` legacy order.
    engine:
        ``"scalar"`` or ``"batched"``, as in :func:`generate_dataset`,
        applied to every request.

    Returns
    -------
    list of SpecDataset (or of (SpecDataset, GenerationReport))
        In request order.
    """
    requests = [tuple(request) for request in requests]
    for request in requests:
        if len(request) != 3:
            raise DatasetError(
                "generate_many expects (dut, n_instances, seed) requests")
    if on_error not in ("resample", "raise"):
        raise DatasetError("on_error must be 'resample' or 'raise'")
    _resolve_generation_mode(seed_mode, n_jobs, engine)

    if seed_mode == "sequential":
        results = [_generate_sequential(dut, n, seed, on_error,
                                        max_failures)
                   for dut, n, seed in requests]
    else:
        from repro.runtime.simulation import generate_lot_instances

        results = generate_lot_instances(
            [(dut, n, seed, max_failures) for dut, n, seed in requests],
            n_jobs=n_jobs, on_error=on_error, engine=engine)

    out = []
    for (dut, _, _), (values, report) in zip(requests, results):
        dataset = SpecDataset(dut.specifications, values)
        out.append((dataset, report) if return_reports else dataset)
    return out
